"""Scenario: is your scheduler biased against long jobs?

The classical objection to favouring short jobs (SJF-style) is starvation
of the long ones.  The paper's SITA-U-fair answers it: help short jobs
*and* keep the expected slowdown equal across size classes.  This script
makes the fairness story visible by printing the slowdown-versus-size
profile (mean slowdown per log-spaced size decile) under four policies,
plus the scalar fairness gap of each.

Run:  python examples/fairness_study.py
"""

from __future__ import annotations

from repro import (
    LeastWorkLeftPolicy,
    RandomPolicy,
    SITAPolicy,
    c90,
    equal_load_cutoffs,
    fair_cutoff,
    simulate,
    slowdown_profile,
)
from repro.core.fairness import class_fairness_gap

LOAD = 0.7
N_BUCKETS = 8


def main() -> None:
    workload = c90()
    dist = workload.service_dist
    trace = workload.make_trace(load=LOAD, n_hosts=2, n_jobs=150_000, rng=11)

    c_fair = fair_cutoff(LOAD, dist)
    policies = [
        RandomPolicy(),
        LeastWorkLeftPolicy(),
        SITAPolicy(equal_load_cutoffs(dist, 2), name="sita-e"),
        SITAPolicy([c_fair], name="sita-u-fair"),
    ]

    profiles = {}
    gaps = {}
    for policy in policies:
        result = simulate(trace, policy, 2, rng=0)
        profiles[policy.name] = slowdown_profile(
            result, n_buckets=N_BUCKETS, warmup_fraction=0.05
        )
        gaps[policy.name] = class_fairness_gap(result, c_fair, warmup_fraction=0.05)

    any_profile = next(iter(profiles.values()))
    print(f"mean slowdown per job-size bucket (C90-like workload, load {LOAD}):\n")
    header = f"{'size bucket':>22s}" + "".join(f"{n:>14s}" for n in profiles)
    print(header)
    print("-" * len(header))
    for b in range(N_BUCKETS):
        lo, hi = any_profile.edges[b], any_profile.edges[b + 1]
        row = f"{lo:>9.3g} – {hi:<9.3g}"
        for name, p in profiles.items():
            v = p.mean_slowdown[b]
            row += f"{v:14.1f}" if p.counts[b] else f"{'—':>14s}"
        print(row)

    print(f"\nE[slowdown | short] / E[slowdown | long] at cutoff {c_fair:,.0f}s:")
    for name, gap in gaps.items():
        verdict = "fair" if 0.5 < gap < 2.0 else (
            "biased against SHORT jobs" if gap > 1 else "biased against LONG jobs"
        )
        print(f"  {name:14s} {gap:8.2f}   ({verdict})")

    print(
        "\nReading: under the balanced policies the short jobs (which "
        "dominate the job count)\nsuffer slowdowns in the thousands while "
        "the elephants barely notice the queue;\nSITA-U-fair flattens the "
        "profile without starving anyone."
    )


if __name__ == "__main__":
    main()
