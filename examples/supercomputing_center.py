"""Scenario: choosing a dispatch rule for a distributed Cray server.

You administer a PSC-style machine room: a handful of identical
multiprocessor hosts behind one batch queue (the paper's figure 1).  This
script walks the decision the paper equips you to make:

1. characterise the workload from a (synthetic or SWF) job log;
2. fit the SITA cutoffs on the first half of the log — the operational
   "training" period;
3. replay the second half under each candidate policy across the loads
   the machine actually sees;
4. print a recommendation table, including the duration cutoff you would
   publish to users ("jobs shorter than X go to host 1").

Run:  python examples/supercomputing_center.py [n_hosts]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import LeastWorkLeftPolicy, SITAPolicy, c90, simulate
from repro.core.policies import GroupedSITAPolicy
from repro.core.search import sim_cutoff_pair
from repro.workloads.distributions import Empirical


def pick_policies(train, load, n_hosts):
    """Fit cutoffs on the training half and build the candidate set."""
    # One batched scan serves both searches (and refines the winners).
    pair = sim_cutoff_pair(train, n_candidates=30)
    c_opt, c_fair = pair.opt, pair.fair
    dist = Empirical(train.service_times)
    candidates = [LeastWorkLeftPolicy()]
    if n_hosts == 2:
        candidates.append(SITAPolicy([c_opt], name="sita-u-opt"))
        candidates.append(SITAPolicy([c_fair], name="sita-u-fair"))
    else:
        # Section-5 grouping for larger machine rooms.
        for cutoff, name in ((c_opt, "sita-u-opt+lwl"), (c_fair, "sita-u-fair+lwl")):
            frac = dist.partial_moment(1.0, 0.0, cutoff) / dist.mean
            n_short = int(np.clip(round(n_hosts * frac), 1, n_hosts - 1))
            candidates.append(GroupedSITAPolicy(cutoff, n_short, name=name))
    return candidates, c_fair


def main() -> None:
    n_hosts = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    workload = c90()
    loads = (0.5, 0.7, 0.9)

    print(f"machine room: {n_hosts} hosts, workload {workload.name}\n")
    best_by_load = {}
    fair_cutoffs = {}
    for load in loads:
        trace = workload.make_trace(load=load, n_hosts=n_hosts, n_jobs=80_000, rng=7)
        train, test = trace.split(0.5)
        candidates, c_fair = pick_policies(train, load, n_hosts)
        fair_cutoffs[load] = c_fair
        print(f"system load {load:.1f} (fair cutoff fitted at {c_fair:,.0f} s):")
        scores = {}
        for policy in candidates:
            s = simulate(test, policy, n_hosts, rng=0).summary(warmup_fraction=0.05)
            scores[policy.name] = s
            print(
                f"  {policy.name:18s} mean slowdown {s.mean_slowdown:10.1f}   "
                f"var {s.var_slowdown:10.3g}   mean response {s.mean_response:9.0f}s"
            )
        best = min(scores, key=lambda k: scores[k].mean_slowdown)
        best_by_load[load] = best
        print(f"  -> best: {best}\n")

    print("recommendation")
    print("---------------")
    for load, best in best_by_load.items():
        hours = fair_cutoffs[load] / 3600.0
        print(
            f"at load {load:.1f}: run {best}; publish the short/long cutoff "
            f"as ~{hours:.1f} h"
        )
    print(
        "\nThe fair variant guarantees equal expected slowdown for short and "
        "long jobs,\nso no user community is starved (paper section 8)."
    )


if __name__ == "__main__":
    main()
