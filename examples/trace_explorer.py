"""Scenario: characterise a workload before choosing a policy.

The paper's first conclusion is that *workload characterisation matters*:
the right dispatch rule depends on the size distribution's variability
and on arrival burstiness.  This script runs the characterisation
pipeline on a trace (a catalog workload by name, or your own SWF file)
and renders the two diagnostic curves as terminal charts:

* the load-by-size profile ("what fraction of the work do jobs below
  size x carry?") — the curve SITA cutoffs are read from;
* mean slowdown vs load for the main policies, from the *analytic* layer
  (instant — no simulation), so you can see where your operating point
  sits before committing to a policy.

Run:  python examples/trace_explorer.py [c90|j90|ctc|path.swf]
"""

from __future__ import annotations

import sys
from collections import OrderedDict

import numpy as np

from repro import Trace, equal_load_cutoffs, get_workload
from repro.analysis import predict_lwl, predict_random, predict_sita
from repro.experiments.plotting import ascii_chart
from repro.workloads.catalog import WORKLOAD_NAMES
from repro.workloads.distributions import Empirical
from repro.workloads.stats import trace_characterisation


def load_distribution(arg: str):
    if arg in WORKLOAD_NAMES:
        w = get_workload(arg)
        trace = w.make_trace(load=0.7, n_hosts=2, n_jobs=30_000, rng=0)
        return w.service_dist, trace, w.description
    trace = Trace.from_swf(arg)
    return Empirical(trace.service_times), trace, f"SWF log {arg}"


def main() -> None:
    arg = sys.argv[1] if len(sys.argv) > 1 else "c90"
    dist, trace, description = load_distribution(arg)
    ch = trace_characterisation(trace)

    print(f"workload: {description}\n")
    print(f"{'jobs':>24s}  {ch['n_jobs']}")
    print(f"{'mean service':>24s}  {ch['mean_service']:,.0f} s")
    print(f"{'service C²':>24s}  {ch['service_scv']:.1f}")
    print(f"{'interarrival C²':>24s}  {ch['interarrival_scv']:.2f}")
    print(f"{'dispersion index':>24s}  {ch['dispersion']:.2f}")
    print(f"{'service ACF lag 1':>24s}  {ch['service_acf_lag1']:.3f}")

    # Load-by-size profile: the structural heavy-tail picture.
    xs = np.array([dist.ppf(q) for q in np.linspace(0.02, 0.999999, 60)])
    profile = OrderedDict(
        {
            "load below size x": [
                (float(x), max(1e-4, dist.partial_moment(1.0, 0.0, x) / dist.mean))
                for x in xs
            ],
            "jobs below size x": [(float(x), max(1e-4, dist.cdf(x))) for x in xs],
        }
    )
    print()
    print(
        ascii_chart(
            profile,
            title="Where the work lives (note the gap between the curves: "
            "few jobs, most of the load)",
            x_label="job size (s)",
            y_label="fraction",
            log_y=False,
            log_x=True,
            height=12,
        )
    )

    cutoff = equal_load_cutoffs(dist, 2)[0]
    print(
        f"\nSITA-E cutoff (half the work): {cutoff:,.0f} s — "
        f"{dist.cdf(cutoff):.1%} of jobs are 'short'"
    )

    # Analytic policy curves across loads.
    loads = np.linspace(0.1, 0.9, 17)
    series: OrderedDict = OrderedDict()
    for name, fn in (
        ("random", lambda l: predict_random(l, dist, 2).mean_slowdown),
        ("least-work-left", lambda l: predict_lwl(l, dist, 2).mean_slowdown),
        ("sita-e", lambda l: predict_sita(l, dist, 2, [cutoff], "e").mean_slowdown),
    ):
        pts = []
        for l in loads:
            try:
                pts.append((float(l), fn(float(l))))
            except ValueError:
                continue
        series[name] = pts
    print()
    print(
        ascii_chart(
            series,
            title="Analytic mean slowdown vs system load (2 hosts)",
            x_label="system load",
            y_label="mean slowdown",
            height=14,
        )
    )
    print(
        "\nHigh service C² + low dispersion favours SITA; near-exponential "
        "sizes favour LWL\n(run `repro run ablate_variability` for the full "
        "sweep)."
    )


if __name__ == "__main__":
    main()
