"""Quickstart: compare task assignment policies on a supercomputing workload.

Builds the paper's C90-like workload, derives the three SITA cutoffs, and
prints mean slowdown / variance of slowdown / mean response time for every
policy at one system load — a one-screen tour of the library.

Run:  python examples/quickstart.py [load]
"""

from __future__ import annotations

import sys

from repro import (
    CentralQueuePolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
    c90,
    equal_load_cutoffs,
    fair_cutoff,
    opt_cutoff,
    simulate,
)


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.7
    n_hosts = 2
    workload = c90()
    dist = workload.service_dist

    print(f"workload: {workload.description}")
    print(f"          mean={dist.mean:.0f}s  C^2={dist.scv:.0f}  load={load}  hosts={n_hosts}\n")

    trace = workload.make_trace(load=load, n_hosts=n_hosts, n_jobs=100_000, rng=1)

    policies = [
        RandomPolicy(),
        RoundRobinPolicy(),
        ShortestQueuePolicy(),
        LeastWorkLeftPolicy(),
        CentralQueuePolicy(),
        SITAPolicy(equal_load_cutoffs(dist, n_hosts), name="sita-e"),
        SITAPolicy([opt_cutoff(load, dist)], name="sita-u-opt"),
        SITAPolicy([fair_cutoff(load, dist)], name="sita-u-fair"),
    ]

    header = f"{'policy':16s} {'mean slowdown':>14s} {'var slowdown':>14s} {'mean response':>14s}"
    print(header)
    print("-" * len(header))
    for policy in policies:
        summary = simulate(trace, policy, n_hosts, rng=0).summary(warmup_fraction=0.05)
        print(
            f"{policy.name:16s} {summary.mean_slowdown:14.1f} "
            f"{summary.var_slowdown:14.3g} {summary.mean_response:14.0f}"
        )

    print(
        "\nThe load-unbalancing SITA-U policies (the paper's contribution) "
        "should dominate;\nsee examples/fairness_study.py for why that is "
        "also the fair thing to do."
    )


if __name__ == "__main__":
    main()
