"""Scenario: evaluate the policies on YOUR machine's job log.

Point the script at any Standard Workload Format file (e.g. from the
Parallel Workloads Archive) and it will clean it, characterise it, fit
the SITA cutoffs on the first half, and replay the second half under the
main policies — the exact protocol of the paper, on your data.

Without an argument it demonstrates the flow end-to-end by synthesising a
CTC-like log, writing it as SWF, and reading it back.

Run:  python examples/custom_trace_swf.py [log.swf] [--procs N]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import LeastWorkLeftPolicy, RandomPolicy, SITAPolicy, Trace, ctc, simulate
from repro.core.cutoffs import equal_load_cutoffs, fair_cutoff, opt_cutoff
from repro.workloads.distributions import Empirical


def load_trace(argv: list[str]) -> Trace:
    if len(argv) > 1 and not argv[1].startswith("--"):
        path = Path(argv[1])
        trace = Trace.from_swf(path)
        if "--procs" in argv:
            n = int(argv[argv.index("--procs") + 1])
            trace = trace.filter_processors(n)
            print(f"filtered to {n}-processor jobs: {trace.n_jobs} jobs")
        return trace
    print("no SWF file given — synthesising a CTC-like log as a demo\n")
    demo = ctc().make_trace(load=0.7, n_hosts=2, n_jobs=20_000, rng=3)
    with tempfile.NamedTemporaryFile(suffix=".swf", delete=False) as fh:
        demo.to_swf(fh.name)
        return Trace.from_swf(fh.name, name="ctc-demo")


def main() -> None:
    trace = load_trace(sys.argv)
    stats = trace.stats()
    print(
        f"log {trace.name}: {stats.n_jobs} jobs, mean {stats.mean_service:,.0f}s, "
        f"min {stats.min_service:,.0f}s, max {stats.max_service:,.0f}s, "
        f"C^2 = {stats.scv:.1f}"
    )

    n_hosts = 2
    load = trace.offered_load(n_hosts)
    if not 0.05 <= load <= 0.95:
        target = 0.7
        print(f"offered load {load:.2f} out of range; rescaling to {target}")
        trace = trace.scaled_to_load(target, n_hosts)
        load = target
    print(f"replaying at system load {load:.2f} on {n_hosts} hosts\n")

    train, test = trace.split(0.5)
    dist = Empirical(train.service_times)
    policies = [
        RandomPolicy(),
        LeastWorkLeftPolicy(),
        SITAPolicy(equal_load_cutoffs(dist, n_hosts), name="sita-e"),
        SITAPolicy([opt_cutoff(load, dist)], name="sita-u-opt"),
        SITAPolicy([fair_cutoff(load, dist)], name="sita-u-fair"),
    ]
    print(f"{'policy':14s} {'mean slowdown':>14s} {'var slowdown':>14s}")
    print("-" * 44)
    for policy in policies:
        s = simulate(test, policy, n_hosts, rng=0).summary(warmup_fraction=0.05)
        print(f"{policy.name:14s} {s.mean_slowdown:14.1f} {s.var_slowdown:14.3g}")


if __name__ == "__main__":
    main()
