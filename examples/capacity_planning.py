"""Scenario: capacity planning — how many hosts do you need for an SLO?

Suppose the centre promises "expected slowdown under 50" at its forecast
demand.  The answer depends as much on the *policy* as on the hardware:
this script uses the analytic engine (instant, no simulation) to find the
minimum number of hosts meeting the SLO under Random, Least-Work-Left and
SITA-E dispatch, and then shows what the same iron would deliver with the
load-unbalancing cutoffs — often buying back several machines.

Run:  python examples/capacity_planning.py [slo] [demand_jobs_per_hour]
"""

from __future__ import annotations

import sys

from repro import c90, equal_load_cutoffs, opt_cutoff, predict_lwl, predict_random, predict_sita


def min_hosts(predict, dist, lam, h_max=128) -> int | None:
    """Smallest h whose predicted mean slowdown meets the SLO."""
    for h in range(1, h_max + 1):
        load = lam * dist.mean / h
        if load >= 1.0:
            continue  # unstable: need more hosts regardless of policy
        try:
            if predict(load, h):
                return h
        except ValueError:
            continue
    return None


def main() -> None:
    slo = float(sys.argv[1]) if len(sys.argv) > 1 else 50.0
    jobs_per_hour = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    lam = jobs_per_hour / 3600.0

    workload = c90()
    dist = workload.service_dist
    print(
        f"demand: {jobs_per_hour:g} jobs/hour of the C90-like workload "
        f"(mean {dist.mean:.0f}s, C^2={dist.scv:.0f}); SLO: mean slowdown <= {slo:g}\n"
    )

    def meets_random(load, h):
        return predict_random(load, dist, h).mean_slowdown <= slo

    def meets_lwl(load, h):
        return predict_lwl(load, dist, h).mean_slowdown <= slo

    def meets_sita_e(load, h):
        if h < 2:
            return False
        cuts = equal_load_cutoffs(dist, h)
        return predict_sita(load, dist, h, cuts, "sita-e").mean_slowdown <= slo

    def meets_sita_u(load, h):
        if h != 2:
            return False  # analytic opt cutoffs implemented for pairs here
        cut = opt_cutoff(load, dist)
        return predict_sita(load, dist, h, [cut], "sita-u-opt").mean_slowdown <= slo

    results = {
        "random": min_hosts(meets_random, dist, lam),
        "least-work-left": min_hosts(meets_lwl, dist, lam),
        "sita-e": min_hosts(meets_sita_e, dist, lam),
        "sita-u-opt (2 hosts)": min_hosts(meets_sita_u, dist, lam, h_max=2),
    }

    print(f"{'policy':24s} {'hosts needed':>12s}")
    print("-" * 38)
    for name, h in results.items():
        print(f"{name:24s} {h if h is not None else '> limit':>12}")

    lwl_h = results["least-work-left"]
    sita_h = results["sita-e"]
    if lwl_h and sita_h and sita_h < lwl_h:
        print(
            f"\nSITA-E meets the SLO with {lwl_h - sita_h} fewer hosts than "
            "Least-Work-Left —\nthe policy choice is worth real hardware "
            "(paper section 8: 'take the policy\ndetermination more "
            "seriously')."
        )
    if results["sita-u-opt (2 hosts)"] == 2:
        load2 = lam * dist.mean / 2
        s = predict_sita(load2, dist, 2, [opt_cutoff(load2, dist)], "x").mean_slowdown
        print(
            f"\nWith just 2 hosts, SITA-U-opt already delivers mean slowdown "
            f"{s:.1f} at load {load2:.2f}."
        )


if __name__ == "__main__":
    main()
