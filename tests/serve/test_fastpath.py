"""The fault-free fast path: bit-identity, handover, batching, SIGKILL.

The contract under test (see :mod:`repro.serve.fastpath`): a fast-path
server is *indistinguishable* from an engine-path server on everything
the accounting can see — host assignments, counters, per-job fields,
Jain index — for any fault-free prefix, and hands the exact engine
state over the moment a breaker records failure evidence.

One deliberate exclusion: the *clock after drain* is not compared
between paths.  The engine drain overshoots (work-sized chunks), the
fast drain stops at the last completion epoch; both are legal "no work
left" instants.  Same-path runs (the soak, batch invariance, resume)
do compare clocks.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ShortestQueuePolicy,
    SITAPolicy,
)
from repro.serve import DispatchServer, HealthMonitor, SnapshotStore, serve_signature

POLICIES = {
    "lwl": lambda n_hosts: LeastWorkLeftPolicy(),
    "sq": lambda n_hosts: ShortestQueuePolicy(),
    "random": lambda n_hosts: RandomPolicy(),
    "rr": lambda n_hosts: RoundRobinPolicy(),
    "sita": lambda n_hosts: SITAPolicy(
        [float(2**k) for k in range(n_hosts - 1)]
    ),
}


def stream(n, seed):
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0, n))
    sizes = rng.lognormal(0.0, 1.5, n)
    return list(zip(arrivals.tolist(), sizes.tolist()))


def make_pair(policy_name, n_hosts, **kwargs):
    """A fast-path server and an engine-path server, same config."""
    servers = []
    for fast_path in (True, False):
        servers.append(
            DispatchServer(
                n_hosts,
                POLICIES[policy_name](n_hosts),
                seed=4,
                strict=True,
                heartbeat_interval=10.0,
                fast_path=fast_path,
                **{k: v() if callable(v) else v for k, v in kwargs.items()},
            )
        )
    return servers


def assert_same_jobs(a, b):
    ja = sorted(a._inner._completed, key=lambda j: j.index)
    jb = sorted(b._inner._completed, key=lambda j: j.index)
    assert len(ja) == len(jb)
    for x, y in zip(ja, jb):
        assert x.index == y.index
        assert x.assigned_host == y.assigned_host
        assert x.host_seq == y.host_seq
        assert x.arrival_time == y.arrival_time
        assert x.size == y.size
        assert x.start_time == y.start_time
        assert x.completion_time == y.completion_time
        assert x.processing_time == y.processing_time


class TestBitIdentity:
    """Fast path vs engine path on fault-free traces."""

    @settings(max_examples=15, deadline=None)
    @given(
        policy=st.sampled_from(sorted(POLICIES)),
        n_hosts=st.integers(2, 4),
        n_jobs=st.integers(1, 120),
        seed=st.integers(0, 2**16),
    )
    def test_hypothesis_fast_equals_engine(self, policy, n_hosts, n_jobs, seed):
        jobs = stream(n_jobs, seed)
        fast, engine = make_pair(policy, n_hosts)
        hosts_fast = [fast.submit(s, t)["host"] for t, s in jobs]
        hosts_engine = [engine.submit(s, t)["host"] for t, s in jobs]
        assert hosts_fast == hosts_engine
        fast.drain()
        engine.drain()
        assert fast.counters() == engine.counters()
        assert_same_jobs(fast, engine)
        assert (
            fast.status()["jain_slowdown"] == engine.status()["jain_slowdown"]
        )

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_batched_fast_equals_engine(self, policy):
        jobs = stream(400, 13)
        fast, engine = make_pair(policy, 3)
        records = fast.submit_batch(
            [t for t, _ in jobs], [s for _, s in jobs], collect=True
        )
        hosts_engine = [engine.submit(s, t)["host"] for t, s in jobs]
        assert [r["host"] for r in records] == hosts_engine
        fast.drain()
        engine.drain()
        assert fast.counters() == engine.counters()
        assert_same_jobs(fast, engine)

    def test_mid_stream_status_matches_engine(self):
        jobs = stream(200, 21)
        fast, engine = make_pair("lwl", 2)
        for t, s in jobs:
            fast.submit(s, t)
            engine.submit(s, t)
        sf, se = fast.status(), engine.status()
        assert sf["counters"] == se["counters"]
        assert sf["clock"] == se["clock"]
        assert sf["jain_slowdown"] == se["jain_slowdown"]
        assert sf["fast_path"]["engaged"]
        assert not se["fast_path"]["engaged"]


class TestBatchInvariance:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_counters_identical_across_batch_sizes(self, policy):
        jobs = stream(1000, 11)
        results = []
        for batch_size in (1, 7, 256, 4096):
            server = DispatchServer(
                2, POLICIES[policy](2), seed=4, strict=True,
                heartbeat_interval=10.0,
            )
            status = server.run_stream(jobs, batch_size=batch_size)
            results.append(
                (status["counters"], status["clock"], status["jain_slowdown"])
            )
        assert all(r == results[0] for r in results[1:])

    def test_batch_snapshot_cadence_matches_scalar(self, tmp_path):
        jobs = stream(500, 3)

        def run(name, batch_size):
            store = SnapshotStore(
                tmp_path / f"{name}.json", serve_signature("cfg")
            )
            server = DispatchServer(
                2, LeastWorkLeftPolicy(), seed=4, strict=True,
                heartbeat_interval=10.0, snapshot_store=store,
                snapshot_every=100,
            )
            server.run_stream(jobs, batch_size=batch_size)
            return store.writes, json.loads((tmp_path / f"{name}.json").read_text())

        writes_scalar, doc_scalar = run("scalar", 1)
        writes_batch, doc_batch = run("batch", 128)
        assert writes_scalar == writes_batch
        assert doc_scalar["counters"] == doc_batch["counters"]
        assert doc_scalar["clock"] == doc_batch["clock"]

    def test_batch_validation_is_atomic(self):
        server = DispatchServer(
            2, LeastWorkLeftPolicy(), seed=4, strict=True,
            heartbeat_interval=10.0,
        )
        with pytest.raises(ValueError, match="positive and finite"):
            server.submit_batch([0.0, 1.0, 2.0], [1.0, -3.0, 1.0])
        with pytest.raises(ValueError, match="non-decreasing"):
            server.submit_batch([0.0, 2.0, 1.0], [1.0, 1.0, 1.0])
        # nothing was admitted or routed by the failed batches
        assert server.n_accepted == 0
        assert server.counters()["completed"] == 0
        assert server.submit_batch([0.0, 1.0], [1.0, 1.0]) == 2
        assert server.n_accepted == 2


class TestHandover:
    def breaker_pair(self, policy_name, batch=False):
        return make_pair(
            policy_name, 2,
            health=lambda: HealthMonitor(failure_threshold=1, cooldown=20.0),
        )

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_failure_mid_stream_hands_over_exactly(self, policy):
        jobs = stream(600, 5)
        fast, engine = self.breaker_pair(policy)
        hosts_fast, hosts_engine = [], []
        for k, (t, s) in enumerate(jobs):
            if k == 300:
                # Failure evidence out of band (a probe the operator or
                # fault layer feeds in): trips the breaker immediately
                # with failure_threshold=1.
                fast.health.probe(0, False, fast.now)
                engine.health.probe(0, False, engine.now)
            hosts_fast.append(fast.submit(s, t)["host"])
            hosts_engine.append(engine.submit(s, t)["host"])
        assert hosts_fast == hosts_engine
        fp = fast.status()["fast_path"]
        assert not fp["engaged"]
        assert fp["handovers"] == 1
        fast.drain()
        engine.drain()
        assert fast.counters() == engine.counters()
        # after handover both are on the engine path: clocks match too
        assert fast.now == engine.now
        assert_same_jobs(fast, engine)
        assert (
            fast.status()["jain_slowdown"] == engine.status()["jain_slowdown"]
        )

    def test_failure_between_batches_hands_over(self):
        jobs = stream(600, 8)
        fast, engine = self.breaker_pair("lwl")
        arr = [t for t, _ in jobs]
        siz = [s for _, s in jobs]
        fast.submit_batch(arr[:300], siz[:300])
        for t, s in jobs[:300]:
            engine.submit(s, t)
        fast.health.probe(0, False, fast.now)
        engine.health.probe(0, False, engine.now)
        records = fast.submit_batch(arr[300:], siz[300:], collect=True)
        hosts_engine = [engine.submit(s, t)["host"] for t, s in jobs[300:]]
        assert [r["host"] for r in records] == hosts_engine
        assert not fast.status()["fast_path"]["engaged"]
        fast.drain()
        engine.drain()
        assert fast.counters() == engine.counters()
        assert_same_jobs(fast, engine)

    def test_drain_after_failure_hands_over(self):
        jobs = stream(100, 2)
        fast, engine = self.breaker_pair("lwl")
        for t, s in jobs:
            fast.submit(s, t)
            engine.submit(s, t)
        fast.health.probe(1, False, fast.now)
        engine.health.probe(1, False, engine.now)
        fast.drain()
        engine.drain()
        assert not fast.status()["fast_path"]["engaged"]
        assert fast.counters() == engine.counters()
        assert fast.now == engine.now
        assert_same_jobs(fast, engine)

    def test_faulted_server_never_engages(self):
        from repro.sim.faults import FaultModel

        server = DispatchServer(
            2, LeastWorkLeftPolicy(), seed=4, strict=True,
            heartbeat_interval=10.0,
            faults=FaultModel(mtbf=50.0, mttr=5.0, seed=1),
        )
        assert not server.status()["fast_path"]["engaged"]

    def test_fast_path_false_forces_engine(self):
        server = DispatchServer(
            2, LeastWorkLeftPolicy(), seed=4, strict=True,
            heartbeat_interval=10.0, fast_path=False,
        )
        st = server.status()["fast_path"]
        assert not st["engaged"]
        assert st["mode"] is None


class TestSigkillBatched:
    """The CI soak drill through the batched fast path: a fault-free
    batched run killed mid-stream by the snapshot hook, then resumed."""

    ARGS = [
        "serve", "c90", "--policy", "lwl", "--hosts", "2", "--jobs", "800",
        "--load", "0.7", "--seed", "5", "--snapshot-every", "200",
        "--batch-size", "64",
    ]

    def run_cli(self, snapshot, extra=(), env_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_SERVE_KILL_AFTER", None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *self.ARGS,
             "--snapshot", str(snapshot), *extra],
            capture_output=True, text=True, env=env,
            cwd=Path(__file__).resolve().parents[2],
        )

    def test_sigkill_then_resume_matches_reference(self, tmp_path):
        ref = self.run_cli(tmp_path / "ref.json")
        assert ref.returncode == 0, ref.stderr
        reference = json.loads(ref.stdout)
        assert reference["fast_path"]["engaged"]

        killed = self.run_cli(
            tmp_path / "state.json", env_extra={"REPRO_SERVE_KILL_AFTER": "2"}
        )
        assert killed.returncode in (-signal.SIGKILL, 137)

        resumed = self.run_cli(tmp_path / "state.json", extra=["--resume"])
        assert resumed.returncode == 0, resumed.stderr
        status = json.loads(resumed.stdout)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]
        assert all(status["invariant"].values())


class TestLatencySplit:
    def test_decision_latency_excludes_intake(self):
        server = DispatchServer(
            2, LeastWorkLeftPolicy(), seed=4, strict=True,
            heartbeat_interval=10.0,
        )
        for t, s in stream(100, 1):
            server.submit(s, t)
        lat = server.latency_summary()
        assert lat["decisions"] == 100
        assert lat["intake"]["total_ms"] > 0
        stages = lat["stages"]
        assert stages["intake_ms"] > 0
        assert stages["route_ms"] > 0
        assert lat["p50_us"] <= lat["p95_us"] <= lat["p99_us"]
        # throughput stays full-cost: both stages in the denominator
        total_s = (lat["intake"]["total_ms"] + stages["route_ms"]) / 1e3
        assert lat["decisions_per_s"] <= 100 / total_s * 1.001

    def test_empty_summary(self):
        server = DispatchServer(2, LeastWorkLeftPolicy(), seed=4)
        assert server.latency_summary() == {"decisions": 0}
