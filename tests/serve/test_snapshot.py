"""Atomic snapshot store: write discipline and load rejection."""

from __future__ import annotations

import json

import pytest

from repro.serve.snapshot import SNAPSHOT_VERSION, SnapshotStore, serve_signature


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(tmp_path / "state.json", serve_signature("cfg-a"))


class TestSignature:
    def test_stable_and_distinct(self):
        assert serve_signature("x") == serve_signature("x")
        assert serve_signature("x") != serve_signature("y")


class TestSaveLoad:
    def test_roundtrip(self, store):
        store.save({"accepted": 7, "clock": 1.5})
        doc = store.load()
        assert doc["accepted"] == 7
        assert doc["clock"] == 1.5
        assert doc["version"] == SNAPSHOT_VERSION
        assert store.writes == 1

    def test_no_tmp_file_left_behind(self, store, tmp_path):
        store.save({"accepted": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_overwrite_keeps_latest(self, store):
        store.save({"accepted": 1})
        store.save({"accepted": 2})
        assert store.load()["accepted"] == 2

    def test_missing_file_loads_none(self, store):
        assert store.load() is None

    def test_corrupt_file_loads_none(self, store):
        store.path.write_text("{ not json")
        assert store.load() is None

    def test_non_dict_loads_none(self, store):
        store.path.write_text("[1, 2, 3]")
        assert store.load() is None

    def test_wrong_version_loads_none(self, store):
        store.save({"accepted": 1})
        doc = json.loads(store.path.read_text())
        doc["version"] = SNAPSHOT_VERSION + 1
        store.path.write_text(json.dumps(doc))
        assert store.load() is None

    def test_stale_signature_loads_none(self, store, tmp_path):
        store.save({"accepted": 1})
        other = SnapshotStore(tmp_path / "state.json", serve_signature("cfg-b"))
        assert other.load() is None
        # The original still accepts it.
        assert store.load() is not None
