"""Crash-safe resume: replay audit, tamper detection, real SIGKILL."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.policies import LeastWorkLeftPolicy
from repro.serve import DispatchServer, OnlineDispatchError, SnapshotStore, serve_signature
from repro.sim.faults import FaultModel


def stream(n=300, seed=9):
    rng = np.random.default_rng(seed)
    arrivals = np.concatenate([[0.0], np.cumsum(rng.exponential(1.0, n - 1))])
    sizes = rng.pareto(1.5, n) + 0.5
    return list(zip(arrivals.tolist(), sizes.tolist()))


def make_server(tmp_path, *, faults=None, snapshot_every=100):
    store = SnapshotStore(tmp_path / "state.json", serve_signature("test-cfg"))
    return DispatchServer(
        2,
        LeastWorkLeftPolicy(),
        seed=4,
        strict=True,
        faults=faults,
        heartbeat_interval=10.0,
        snapshot_store=store,
        snapshot_every=snapshot_every,
    )


class TestReplayResume:
    def test_resume_reproduces_uninterrupted_counters(self, tmp_path):
        jobs = stream(300)
        reference = make_server(tmp_path / "ref").run_stream(jobs)

        # "Crash" after 150 offered jobs: the snapshot at that point is
        # on disk, the process state is gone.
        crashed = make_server(tmp_path / "x", snapshot_every=150)
        for arrival, size in jobs[:150]:
            crashed.submit(size, arrival)
        del crashed

        resumed = make_server(tmp_path / "x", snapshot_every=150)
        status = resumed.run_stream(jobs, resume=True)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]

    def test_resume_without_snapshot_replays_from_scratch(self, tmp_path):
        jobs = stream(100)
        reference = make_server(tmp_path / "ref").run_stream(jobs)
        fresh = make_server(tmp_path / "empty")
        status = fresh.run_stream(jobs, resume=True)
        assert status["counters"] == reference["counters"]

    def test_resume_requires_a_store(self):
        server = DispatchServer(2, LeastWorkLeftPolicy())
        with pytest.raises(ValueError, match="snapshot store"):
            server.run_stream([(0.0, 1.0)], resume=True)

    def test_truncated_stream_refused(self, tmp_path):
        jobs = stream(100)
        server = make_server(tmp_path, snapshot_every=100)
        server.run_stream(jobs)
        resumed = make_server(tmp_path, snapshot_every=100)
        with pytest.raises(OnlineDispatchError, match="only 50"):
            resumed.run_stream(jobs[:50], resume=True)

    def test_tampered_snapshot_fails_the_audit(self, tmp_path):
        jobs = stream(100)
        server = make_server(tmp_path, snapshot_every=50)
        for arrival, size in jobs[:50]:
            server.submit(size, arrival)
        path = tmp_path / "state.json"
        doc = json.loads(path.read_text())
        doc["counters"]["completed"] += 1
        path.write_text(json.dumps(doc))

        resumed = make_server(tmp_path, snapshot_every=50)
        with pytest.raises(OnlineDispatchError, match="resume audit failed"):
            resumed.run_stream(jobs, resume=True)

    def test_faulted_resume_is_bit_identical(self, tmp_path):
        faults = FaultModel(mtbf=60.0, mttr=10.0, semantics="redispatch", seed=3)
        jobs = stream(300, seed=2)
        reference = make_server(tmp_path / "ref", faults=faults).run_stream(jobs)

        crashed = make_server(tmp_path / "x", faults=faults, snapshot_every=100)
        for arrival, size in jobs[:200]:
            crashed.submit(size, arrival)
        del crashed

        resumed = make_server(tmp_path / "x", faults=faults, snapshot_every=100)
        status = resumed.run_stream(jobs, resume=True)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]


class TestRealSigkill:
    """The CI soak in miniature: a real SIGKILL mid-run, then --resume."""

    ARGS = [
        "serve", "c90", "--policy", "lwl", "--hosts", "2", "--jobs", "800",
        "--load", "0.7", "--seed", "5", "--mtbf", "50000", "--mttr", "5000",
        "--fault-semantics", "redispatch", "--snapshot-every", "200",
    ]

    def run_cli(self, snapshot, extra=(), env_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_SERVE_KILL_AFTER", None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *self.ARGS,
             "--snapshot", str(snapshot), *extra],
            capture_output=True, text=True, env=env,
            cwd=Path(__file__).resolve().parents[2],
        )

    def test_sigkill_then_resume_matches_reference(self, tmp_path):
        ref = self.run_cli(tmp_path / "ref.json")
        assert ref.returncode == 0, ref.stderr
        reference = json.loads(ref.stdout)

        killed = self.run_cli(
            tmp_path / "state.json", env_extra={"REPRO_SERVE_KILL_AFTER": "2"}
        )
        assert killed.returncode == -signal.SIGKILL or killed.returncode == 137

        resumed = self.run_cli(tmp_path / "state.json", extra=["--resume"])
        assert resumed.returncode == 0, resumed.stderr
        status = json.loads(resumed.stdout)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]
        assert all(status["invariant"].values())
