"""Token-bucket and admission-controller unit tests."""

from __future__ import annotations

import math

import pytest

from repro.serve.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(burst=0.5)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(burst=math.inf)

    def test_infinite_rate_always_grants(self):
        bucket = TokenBucket()
        assert all(bucket.try_acquire(0.0) for _ in range(1000))

    def test_burst_then_starve_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)  # bucket empty
        assert not bucket.try_acquire(0.5)  # half a token is not a token
        assert bucket.try_acquire(1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_acquire(0.0)
        # A long idle period refills to burst, not beyond.
        assert bucket.try_acquire(100.0)
        assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)


class TestAdmissionController:
    def test_backlog_check_precedes_rate_check(self):
        ctrl = AdmissionController(rate=1.0, burst=1.0, max_deferred=4)
        assert ctrl.admit(0.0, 4) == "reject-backlog"
        # The bucket was not consulted: its token is still there.
        assert ctrl.admit(0.0, 0) == "admit"

    def test_rate_rejection(self):
        ctrl = AdmissionController(rate=0.5, burst=1.0)
        assert ctrl.admit(0.0, 0) == "admit"
        assert ctrl.admit(0.0, 0) == "reject-rate"
        assert ctrl.admit(2.0, 0) == "admit"
        assert ctrl.n_admitted == 2
        assert ctrl.n_rejected_rate == 1

    def test_overfull_backlog_is_a_programming_error(self):
        ctrl = AdmissionController(max_deferred=2)
        with pytest.raises(ValueError, match="failed to shed"):
            ctrl.admit(0.0, 3)

    def test_status_reports_unlimited_rate_as_none(self):
        # math.inf would serialise as the non-standard JSON ``Infinity``.
        assert AdmissionController().status()["rate"] is None
        assert AdmissionController(rate=2.0).status()["rate"] == 2.0
