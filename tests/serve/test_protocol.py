"""Newline-JSON wire protocol: encode/decode and rejection paths."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import MAX_LINE, ProtocolError, decode_line, encode


class TestEncode:
    def test_compact_sorted_newline_terminated(self):
        line = encode({"b": 1, "a": 2})
        assert line == b'{"a":2,"b":1}\n'

    def test_roundtrip(self):
        msg = {"op": "submit", "size": 1.5, "arrival": 2.0}
        assert decode_line(encode(msg)) == msg


class TestDecodeLine:
    def test_rejects_over_long_line(self):
        line = json.dumps({"op": "x", "pad": "y" * MAX_LINE}).encode()
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(line)

    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_line(b"{ nope\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_rejects_missing_or_non_string_op(self):
        with pytest.raises(ProtocolError, match="op"):
            decode_line(b"{}\n")
        with pytest.raises(ProtocolError, match="op"):
            decode_line(b'{"op": 7}\n')
