"""Degraded-mode cutoff management: re-fit, validation, fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.refit import CutoffManager, RefitRejected


def bimodal_sizes(n, seed=0):
    """A size mix with a clear short/long split (fit should succeed)."""
    rng = np.random.default_rng(seed)
    short = rng.uniform(0.5, 2.0, n)
    long = rng.uniform(50.0, 200.0, n)
    return np.where(rng.random(n) < 0.8, short, long)


def fill(mgr, sizes, dt=30.0):
    # dt=30 puts the window's estimated load near 0.45 for the bimodal
    # mix (mean size ~26, 2 hosts) — inside the feasible-cutoff band.
    due = False
    for i, s in enumerate(sizes):
        due = mgr.observe(float(s), i * dt)
    return due


class TestValidation:
    def test_constructor_rejects_bad_config(self):
        with pytest.raises(ValueError, match="initial cutoff"):
            CutoffManager(0.0, 2)
        with pytest.raises(ValueError, match="window"):
            CutoffManager(1.0, 2, window=4)
        with pytest.raises(ValueError, match="refit_every"):
            CutoffManager(1.0, 2, window=8, refit_every=0)


class TestObserve:
    def test_not_due_until_window_full(self):
        mgr = CutoffManager(5.0, 2, window=16, refit_every=4)
        assert not fill(mgr, bimodal_sizes(15))
        assert mgr.observe(1.0, 480.0)

    def test_refit_cadence(self):
        mgr = CutoffManager(5.0, 2, window=16, refit_every=4)
        fill(mgr, bimodal_sizes(16))
        mgr.refit()
        # In the server's loop a due observation triggers refit(), which
        # resets the cadence counter: every 4th observation is due.
        due = []
        for i in range(8):
            d = mgr.observe(1.0, 1000.0 + 30.0 * i)
            due.append(d)
            if d:
                mgr.refit()
        assert due == [False, False, False, True, False, False, False, True]


class TestRefit:
    def test_clean_window_updates_cutoff(self):
        mgr = CutoffManager(5.0, 2, window=64, refit_every=64)
        fill(mgr, bimodal_sizes(64))
        assert mgr.refit()
        assert mgr.mode == "fitted"
        assert mgr.cutoff != 5.0
        assert mgr.last_known_good == mgr.cutoff
        assert mgr.n_refits == 1
        assert mgr.last_error is None

    def test_unfittable_window_falls_back(self):
        # Identical sizes: the cutoff search itself rejects the window
        # (degenerate support), and the manager falls back rather than
        # letting the exception escape into the dispatch path.
        mgr = CutoffManager(5.0, 2, window=16, refit_every=16)
        fill(mgr, np.full(16, 3.0))
        assert not mgr.refit()
        assert mgr.mode == "fallback"
        assert mgr.cutoff == 5.0  # last-known-good preserved
        assert mgr.last_error is not None
        assert mgr.n_fallbacks == 1

    def test_validate_rejects_degenerate_split(self):
        # A cutoff below (or above) every observed size routes the whole
        # window to one host — no SITA at all.
        mgr = CutoffManager(5.0, 2, window=16, refit_every=16)
        sizes = np.linspace(1.0, 10.0, 16)
        with pytest.raises(RefitRejected, match="degenerate split"):
            mgr._validate(0.5, sizes)
        with pytest.raises(RefitRejected, match="degenerate split"):
            mgr._validate(50.0, sizes)
        mgr._validate(5.0, sizes)  # a real split passes

    def test_zero_time_span_falls_back(self):
        mgr = CutoffManager(5.0, 2, window=16, refit_every=16)
        fill(mgr, bimodal_sizes(16), dt=0.0)
        assert not mgr.refit()
        assert mgr.mode == "fallback"
        assert "zero simulated time" in mgr.last_error

    def test_contaminated_window_falls_back_until_turnover(self):
        mgr = CutoffManager(5.0, 2, window=16, refit_every=16)
        fill(mgr, bimodal_sizes(16))
        mgr.mark_contaminated()
        assert mgr.contaminated
        assert not mgr.refit()
        assert mgr.mode == "fallback"
        assert "contaminated" in mgr.last_error
        # A full window of fresh observations clears the taint.
        fill(mgr, bimodal_sizes(16, seed=1))
        assert not mgr.contaminated
        assert mgr.refit()
        assert mgr.mode == "fitted"

    def test_fallback_keeps_last_fitted_not_initial(self):
        mgr = CutoffManager(5.0, 2, window=64, refit_every=64)
        fill(mgr, bimodal_sizes(64))
        assert mgr.refit()
        fitted = mgr.cutoff
        fill(mgr, np.full(64, 3.0), dt=1.0)
        assert not mgr.refit()
        assert mgr.cutoff == fitted

    def test_status_document(self):
        mgr = CutoffManager(5.0, 2, window=16, refit_every=16)
        doc = mgr.status()
        assert doc["mode"] == "initial"
        assert doc["cutoff"] == 5.0
        assert doc["window_fill"] == 0
        assert not doc["contaminated"]
