"""DispatchServer core: accounting, determinism, faults, degraded mode."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.policies import (
    CentralQueuePolicy,
    LeastWorkLeftPolicy,
    SITAPolicy,
)
from repro.serve import (
    AdmissionController,
    CutoffManager,
    DispatchServer,
    HealthMonitor,
)
from repro.sim.faults import FaultModel
from repro.sim.server import DistributedServer
from repro.workloads.traces import Trace


def stream(n=400, seed=3):
    """A Poisson/Pareto (arrival, size) stream starting at t=0."""
    rng = np.random.default_rng(seed)
    arrivals = np.concatenate([[0.0], np.cumsum(rng.exponential(1.0, n - 1))])
    sizes = rng.pareto(1.5, n) + 0.5
    return list(zip(arrivals.tolist(), sizes.tolist()))


class TestValidation:
    def test_rejects_non_dispatch_policy_kinds(self):
        with pytest.raises(ValueError, match="immediate-dispatch"):
            DispatchServer(2, CentralQueuePolicy())

    def test_rejects_non_positive_heartbeat(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            DispatchServer(2, LeastWorkLeftPolicy(), heartbeat_interval=0.0)

    def test_refit_requires_single_cutoff_policy(self):
        mgr = CutoffManager(1.0, 4)
        with pytest.raises(ValueError, match="single-cutoff"):
            DispatchServer(
                4,
                SITAPolicy([1.0, 2.0, 4.0], name="sita"),
                cutoff_manager=mgr,
            )

    def test_submit_rejects_bad_size(self):
        server = DispatchServer(2, LeastWorkLeftPolicy())
        with pytest.raises(ValueError, match="size"):
            server.submit(0.0, 0.0)
        with pytest.raises(ValueError, match="size"):
            server.submit(math.inf, 0.0)

    def test_submit_rejects_decreasing_arrivals(self):
        server = DispatchServer(2, LeastWorkLeftPolicy())
        server.submit(1.0, 5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            server.submit(1.0, 4.0)


class TestFaultFreeBitIdentity:
    """With no faults and every breaker closed, the online dispatcher is
    the batch simulator: same hosts, same waits, job for job."""

    def test_waits_match_batch_run(self):
        jobs = stream(400)
        trace = Trace([a for a, _ in jobs], [s for _, s in jobs])

        batch = DistributedServer(3, LeastWorkLeftPolicy(), rng=0, strict=True)
        reference = batch.run_trace(trace)

        server = DispatchServer(3, LeastWorkLeftPolicy(), seed=0, strict=True)
        status = server.run_stream(jobs)

        assert status["counters"]["completed"] == len(jobs)
        done = sorted(server._inner._completed, key=lambda j: j.index)
        waits = [j.wait_time for j in done]
        hosts = [j.assigned_host for j in done]
        assert waits == pytest.approx(list(reference.wait_times))
        assert hosts == list(reference.host_assignments)


class TestAccounting:
    def test_invariant_and_deterministic_repeat(self):
        jobs = stream(300)
        runs = []
        for _ in range(2):
            server = DispatchServer(2, LeastWorkLeftPolicy(), seed=1, strict=True)
            status = server.run_stream(jobs)
            assert all(status["invariant"].values())
            assert status["counters"]["in_flight"] == 0
            runs.append((status["counters"], status["clock"]))
        assert runs[0] == runs[1]

    def test_rate_rejection_is_an_explicit_outcome(self):
        server = DispatchServer(
            2,
            LeastWorkLeftPolicy(),
            admission=AdmissionController(rate=0.5, burst=1.0),
        )
        first = server.submit(1.0, 0.0)
        second = server.submit(1.0, 0.0)
        assert first["outcome"] == "admitted"
        assert second == {"outcome": "rejected", "reason": "reject-rate", "host": None}
        server.drain()
        counters = server.counters()
        assert counters["accepted"] == 2
        assert counters["rejected_intake"] == 1
        assert counters["completed"] == 1
        assert counters["in_flight"] == 0

    def test_faulted_run_conserves_every_job(self):
        jobs = stream(300, seed=5)
        faults = FaultModel(mtbf=60.0, mttr=10.0, semantics="redispatch", seed=2)
        server = DispatchServer(
            2,
            LeastWorkLeftPolicy(),
            seed=1,
            strict=True,
            faults=faults,
            heartbeat_interval=10.0,
            health=HealthMonitor(cooldown=5.0),
        )
        status = server.run_stream(jobs)
        assert all(status["invariant"].values())
        c = status["counters"]
        assert c["accepted"] == len(jobs)
        assert c["accepted"] == c["completed"] + c["rejected"] + c["lost"]
        assert c["crashes"] > 0

    def test_jain_index_reported_over_completed_slowdowns(self):
        server = DispatchServer(2, LeastWorkLeftPolicy())
        status = server.run_stream(stream(100))
        assert 0.0 < status["jain_slowdown"] <= 1.0
        assert status["latency"]["decisions"] == 100


class TestGiveUp:
    def test_impossible_job_becomes_explicit_lost(self):
        # Under "redispatch" a job longer than every up-period restarts
        # from scratch at each crash and can never complete; the give-up
        # bound turns the livelock into an explicit "lost" outcome.
        faults = FaultModel(
            mtbf=5.0, mttr=1.0, semantics="redispatch",
            distribution="deterministic",
        )
        server = DispatchServer(
            1,
            LeastWorkLeftPolicy(),
            strict=True,
            faults=faults,
            give_up_after=3,
            heartbeat_interval=1.0,
            health=HealthMonitor(failure_threshold=1, cooldown=0.5),
        )
        status = server.run_stream([(0.0, 100.0)])
        c = status["counters"]
        assert c["lost"] == 1
        assert c["given_up"] == 1
        assert c["in_flight"] == 0
        assert all(status["invariant"].values())


class TestOverflowShedding:
    def test_deferred_cap_sheds_new_arrivals(self):
        # The only host is down and its breaker opens on the first failed
        # handoff; later arrivals go straight to the deferred queue,
        # whose single slot forces the rest to shed.
        faults = FaultModel(
            mtbf=10.0, mttr=1000.0, distribution="deterministic",
        )
        server = DispatchServer(
            1,
            LeastWorkLeftPolicy(),
            strict=True,
            faults=faults,
            max_retries=0,
            admission=AdmissionController(max_deferred=1),
            health=HealthMonitor(failure_threshold=1, cooldown=2000.0),
        )
        outcomes = [server.submit(1.0, 11.0 + i)["outcome"] for i in range(4)]
        assert outcomes[0] == "admitted"  # deferred after the failed handoff
        c = server.counters()
        assert c["deferred"] == 1
        # Arrivals 2..4: one rejected at intake (backlog full), the rest
        # also rejected — the queue never grows past its cap.
        assert c["rejected"] == 3
        assert c["deferred_peak"] == 1


class TestDegradedModeIntegration:
    def test_refit_updates_the_live_policy_cutoff(self):
        policy = SITAPolicy([5.0], name="sita")
        mgr = CutoffManager(5.0, 2, window=64, refit_every=64)
        server = DispatchServer(2, policy, cutoff_manager=mgr, strict=True)
        rng = np.random.default_rng(0)
        sizes = np.where(
            rng.random(200) < 0.8,
            rng.uniform(0.5, 2.0, 200),
            rng.uniform(50.0, 200.0, 200),
        )
        for i, s in enumerate(sizes):
            server.submit(float(s), float(i))
        server.drain()
        assert mgr.n_refits >= 1
        assert mgr.mode == "fitted"
        # The fitted cutoff was pushed into the policy object itself.
        assert float(policy.cutoffs[0]) == mgr.cutoff
        assert server.status()["cutoffs"]["mode"] == "fitted"

    def test_crash_contaminates_the_window(self):
        policy = SITAPolicy([5.0], name="sita")
        mgr = CutoffManager(5.0, 2, window=64, refit_every=64)
        faults = FaultModel(
            mtbf=50.0, mttr=5.0, semantics="resume",
            distribution="deterministic",
        )
        server = DispatchServer(
            2, policy, cutoff_manager=mgr, faults=faults,
            heartbeat_interval=5.0,
        )
        for i in range(80):
            server.submit(1.0 if i % 5 else 80.0, float(i))
        server.drain()
        assert mgr.contaminated
        assert mgr.mode == "fallback"
        assert "contaminated" in mgr.last_error
        assert mgr.cutoff == 5.0
