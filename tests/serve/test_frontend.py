"""Socket front end: request routing, per-line errors, connection life."""

from __future__ import annotations

import asyncio
import json

from repro.core.policies import LeastWorkLeftPolicy
from repro.serve import DispatchServer
from repro.serve.frontend import ServeFrontend


def talk(tmp_path, lines):
    """Run one client conversation over a Unix socket; returns replies."""

    async def session():
        core = DispatchServer(2, LeastWorkLeftPolicy(), strict=True)
        frontend = ServeFrontend(core)
        path = tmp_path / "serve.sock"
        await frontend.start_unix(path)
        try:
            reader, writer = await asyncio.open_unix_connection(str(path))
            replies = []
            for line in lines:
                writer.write(line if isinstance(line, bytes) else line.encode())
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return replies, frontend
        finally:
            await frontend.close()

    return asyncio.run(session())


def req(**kw):
    return json.dumps(kw) + "\n"


class TestFrontend:
    def test_submit_status_drain(self, tmp_path):
        replies, frontend = talk(
            tmp_path,
            [
                req(op="submit", size=2.0, arrival=0.0),
                req(op="submit", size=1.0, arrival=1.0),
                req(op="drain"),
                req(op="status"),
            ],
        )
        sub1, sub2, drain, status = replies
        assert sub1 == {
            "host": 0, "ok": True, "outcome": "admitted", "reason": "admit",
        }
        assert sub2["ok"] and sub2["outcome"] == "admitted"
        assert drain["ok"]
        assert drain["counters"]["completed"] == 2
        assert drain["counters"]["in_flight"] == 0
        doc = status["status"]
        assert all(doc["invariant"].values())
        assert frontend.requests == 4

    def test_errors_do_not_tear_down_the_connection(self, tmp_path):
        replies, _ = talk(
            tmp_path,
            [
                "not json at all\n",
                req(op="warp"),
                req(op="submit", size="large"),
                req(op="submit", size=-1.0, arrival=0.0),
                req(op="submit", size=1.0, arrival=0.0),  # still works
            ],
        )
        bad_json, bad_op, bad_type, bad_size, good = replies
        assert not bad_json["ok"] and "invalid JSON" in bad_json["error"]
        assert not bad_op["ok"] and "unknown op" in bad_op["error"]
        assert not bad_type["ok"] and "numeric" in bad_type["error"]
        assert not bad_size["ok"] and "positive" in bad_size["error"]
        assert good["ok"] and good["outcome"] == "admitted"

    def test_arrival_defaults_to_server_clock(self, tmp_path):
        replies, _ = talk(
            tmp_path,
            [
                req(op="submit", size=1.0, arrival=7.0),
                req(op="submit", size=1.0),  # no arrival: server's now
                req(op="status"),
            ],
        )
        assert replies[0]["ok"] and replies[1]["ok"]
        assert replies[2]["status"]["clock"] >= 7.0

    def test_connection_counter_returns_to_zero(self, tmp_path):
        _, frontend = talk(tmp_path, [req(op="status")])
        assert frontend.connections == 0

    def test_submit_batch_op(self, tmp_path):
        replies, _ = talk(
            tmp_path,
            [
                req(op="submit_batch", jobs=[[0.0, 2.0], [1.0, 1.0, 1.5]]),
                req(op="drain"),
            ],
        )
        batch, drain = replies
        assert batch["ok"]
        assert [r["outcome"] for r in batch["results"]] == ["admitted"] * 2
        assert all(isinstance(r["host"], int) for r in batch["results"])
        assert drain["counters"]["completed"] == 2

    def test_submit_batch_validation(self, tmp_path):
        replies, _ = talk(
            tmp_path,
            [
                req(op="submit_batch", jobs=[]),
                req(op="submit_batch", jobs=[[0.0, "x"]]),
                req(op="submit_batch", jobs=[[0.0, 1.0], [1.0, -2.0]]),
                req(op="status"),
            ],
        )
        empty, bad_row, bad_size, status = replies
        assert not empty["ok"] and "non-empty" in empty["error"]
        assert not bad_row["ok"] and "numeric" in bad_row["error"]
        assert not bad_size["ok"] and "positive" in bad_size["error"]
        # atomic: the invalid batch admitted nothing
        assert status["status"]["counters"]["accepted"] == 0
