"""Circuit-breaker and health-monitor unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.health import BREAKER_STATES, CircuitBreaker, HealthMonitor


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0.0)

    def test_starts_closed(self):
        b = CircuitBreaker()
        assert b.state(0.0) == "closed"
        assert b.allows(0.0)

    def test_trips_on_consecutive_failures_only(self):
        b = CircuitBreaker(failure_threshold=2, cooldown=10.0)
        b.record_failure(1.0)
        b.record_success(2.0)  # resets the consecutive count
        b.record_failure(3.0)
        assert b.state(4.0) == "closed"
        b.record_failure(4.0)
        assert b.state(4.0) == "open"
        assert not b.allows(4.0)
        assert b.n_trips == 1

    def test_cooldown_relaxes_to_half_open(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        assert b.state(9.99) == "open"
        assert b.state(10.0) == "half_open"
        assert b.allows(10.0)

    def test_half_open_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        b.record_success(10.0)
        assert b.state(10.0) == "closed"
        assert b.failures == 0

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        b.record_failure(10.0)  # trial failed
        assert b.state(15.0) == "open"
        assert b.state(20.0) == "half_open"
        assert b.n_trips == 2

    def test_open_ignores_stray_success(self):
        # While open nothing is dispatched, so a "success" observation
        # (e.g. a queued heartbeat) carries no information.
        b = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        b.record_success(5.0)
        assert b.state(5.0) == "open"

    def test_states_constant_is_exhaustive(self):
        assert set(BREAKER_STATES) == {"closed", "open", "half_open"}


class TestHealthMonitor:
    def make(self, n=3, **kw):
        mon = HealthMonitor(**kw)
        for i in range(n):
            mon.register_host(i)
        return mon

    def test_duplicate_registration_rejected(self):
        mon = self.make(1)
        with pytest.raises(ValueError, match="already registered"):
            mon.register_host(0)

    def test_unregistered_host_raises_with_roster(self):
        mon = self.make(2)
        with pytest.raises(KeyError, match=r"never registered.*\[0, 1\]"):
            mon.probe(7, True, 0.0)

    def test_up_mask_follows_beliefs(self):
        mon = self.make(3, failure_threshold=1, cooldown=50.0)
        mon.probe(1, False, 0.0)
        np.testing.assert_array_equal(
            mon.up_mask(1.0), np.array([True, False, True])
        )
        # After the cooldown the breaker half-opens back into the mask.
        np.testing.assert_array_equal(
            mon.up_mask(50.0), np.array([True, True, True])
        )

    def test_status_document(self):
        mon = self.make(2, failure_threshold=1)
        mon.probe(0, True, 0.0)
        mon.probe(1, False, 0.0)
        doc = mon.status(1.0)
        assert doc["0"]["state"] == "closed"
        assert doc["0"]["observations"] == {"ok": 1, "failed": 0}
        assert doc["1"]["state"] == "open"
        assert doc["1"]["trips"] == 1


class TestMaskCache:
    def make(self, n=3, **kw):
        mon = HealthMonitor(**kw)
        for i in range(n):
            mon.register_host(i)
        return mon

    def test_mask_is_cached_and_read_only(self):
        mon = self.make(3)
        m1 = mon.up_mask(1.0)
        assert m1 is mon.up_mask(2.0)  # same object, no rebuild
        with pytest.raises(ValueError):
            m1[0] = False

    def test_success_probes_do_not_invalidate(self):
        mon = self.make(2)
        m1 = mon.up_mask(0.0)
        # The dispatcher feeds a success probe back on every handoff;
        # on a clean breaker that must not thrash the cache.
        for k in range(5):
            mon.probe(0, True, float(k))
        assert mon.up_mask(5.0) is m1

    def test_failure_invalidates(self):
        mon = self.make(2, failure_threshold=1, cooldown=50.0)
        m1 = mon.up_mask(0.0)
        mon.probe(1, False, 0.0)
        m2 = mon.up_mask(1.0)
        assert m2 is not m1
        np.testing.assert_array_equal(m2, np.array([True, False]))

    def test_cooldown_expiry_invalidates_by_clock_alone(self):
        mon = self.make(2, failure_threshold=1, cooldown=50.0)
        mon.probe(1, False, 0.0)
        m_open = mon.up_mask(1.0)
        # within the validity window the cache holds...
        assert mon.up_mask(49.0) is m_open
        # ...and the open->half_open transition rebuilds it with no
        # intervening observation.
        m_half = mon.up_mask(50.0)
        assert m_half is not m_open
        np.testing.assert_array_equal(m_half, np.array([True, True]))

    def test_success_after_failure_invalidates(self):
        mon = self.make(2, failure_threshold=2)
        mon.probe(0, False, 0.0)  # sub-threshold failure: closed, dirty
        m1 = mon.up_mask(1.0)
        mon.probe(0, True, 2.0)  # clears the failure streak
        assert mon.up_mask(3.0) is not m1

    def test_pristine_tracks_failure_evidence(self):
        mon = self.make(2, failure_threshold=2, cooldown=10.0)
        assert mon.pristine()
        mon.probe(0, True, 0.0)
        assert mon.pristine()  # successes keep it pristine
        mon.probe(0, False, 1.0)
        # Sub-threshold: the mask still allows host 0, but the monitor
        # is no longer pristine — this is what disengages the fast path.
        assert mon.up_mask(1.0).all()
        assert not mon.pristine()
        mon.probe(0, True, 2.0)
        assert mon.pristine()  # streak cleared: evidence gone
