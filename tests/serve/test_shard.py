"""Sharded dispatch engine: routers, rings, bit-identical merge, crashes.

The load-bearing claim (ISSUE 10): a fault-free SITA-sharded run merges
**bit-identically** to the unsharded :class:`DispatchServer` on the same
policy and seed — counters, clock, the global Jain index, and the
per-job host/start/completion arrays.  The grid test below asserts it
across shard counts {1, 2, 4} × batch sizes {1, 256, 1024} with
hypothesis-drawn workloads; the subprocess tests SIGKILL the coordinator
and a shard worker mid-soak and require ``--resume`` to restore the same
bits.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import LeastWorkLeftPolicy, SITAPolicy
from repro.serve import DispatchServer, OnlineDispatchError, ShardedDispatchServer
from repro.serve.router import (
    HashShardRouter,
    PowerOfDRouter,
    SitaShardRouter,
    partition_hosts,
    split_cutoffs,
)
from repro.serve.shard import ShardRing


def stream(n=600, seed=9):
    rng = np.random.default_rng(seed)
    arrivals = np.concatenate([[0.0], np.cumsum(rng.exponential(1.0, n - 1))])
    sizes = rng.pareto(1.5, n) + 0.5
    return list(zip(arrivals.tolist(), sizes.tolist()))


def sita_cutoffs(jobs, n_hosts=4):
    sizes = np.array([s for _, s in jobs])
    qs = np.linspace(0, 1, n_hosts + 1)[1:-1]
    return [float(np.quantile(sizes, q)) for q in qs]


def run_unsharded(jobs, cutoffs):
    server = DispatchServer(4, SITAPolicy(cutoffs, name="sita-t"), seed=0)
    status = server.run_stream(jobs, batch_size=256)
    return server, status


# ---------------------------------------------------------------------------
# routers
# ---------------------------------------------------------------------------


class TestPartitionHosts:
    def test_even_split(self):
        assert partition_hosts(8, 4) == [(0, 2), (2, 2), (4, 2), (6, 2)]

    def test_remainder_goes_to_the_front(self):
        assert partition_hosts(5, 2) == [(0, 3), (3, 2)]

    def test_more_shards_than_hosts_refused(self):
        with pytest.raises(ValueError, match="cannot partition"):
            partition_hosts(2, 3)


class TestSitaRouter:
    @given(
        n_hosts=st.integers(2, 8),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_two_level_searchsorted_composes_to_global(self, n_hosts, data):
        """``base_j + searchsorted(interior_j, e)`` == the global route —
        the identity the whole bit-identity guarantee rests on."""
        raw = data.draw(
            st.lists(
                st.floats(0.1, 1e6, allow_nan=False, allow_infinity=False),
                min_size=n_hosts - 1,
                max_size=n_hosts - 1,
                unique=True,
            )
        )
        cutoffs = np.sort(np.array(raw, dtype=np.float64))
        n_shards = data.draw(st.integers(1, n_hosts))
        slices = partition_hosts(n_hosts, n_shards)
        boundaries, interiors = split_cutoffs(cutoffs, slices)
        router = (
            SitaShardRouter(n_shards, boundaries) if n_shards > 1 else None
        )
        drawn = data.draw(
            st.lists(
                st.floats(0.05, 2e6, allow_nan=False, allow_infinity=False),
                min_size=1,
                max_size=32,
            )
        )
        # include the cutoffs themselves: the boundary-equality edge case
        estimates = np.array(drawn + cutoffs.tolist(), dtype=np.float64)
        if router is None:
            routes = np.zeros(estimates.size, dtype=np.int64)
        else:
            routes = router.route_batch(
                0, estimates, estimates, estimates
            )
        global_hosts = np.searchsorted(cutoffs, estimates, side="left")
        for e, j, g in zip(estimates, routes, global_hosts):
            base, count = slices[j]
            local = int(np.searchsorted(interiors[j], e, side="left"))
            assert base + local == g
            assert base <= g < base + count

    def test_boundary_count_validated(self):
        with pytest.raises(ValueError, match="boundary cutoffs"):
            SitaShardRouter(3, np.array([1.0]))
        with pytest.raises(ValueError, match="strictly increasing"):
            SitaShardRouter(3, np.array([2.0, 1.0]))


class TestHashRouter:
    def test_deterministic_and_in_range(self):
        a = HashShardRouter(4)
        b = HashShardRouter(4)
        x = np.zeros(512)
        ra = a.route_batch(100, x, x, x)
        rb = b.route_batch(100, x, x, x)
        assert np.array_equal(ra, rb)
        assert ra.min() >= 0 and ra.max() < 4
        # 512 consecutive keys over a 64-replica ring touch every shard
        assert set(ra.tolist()) == {0, 1, 2, 3}

    def test_routing_is_a_function_of_the_global_index(self):
        router = HashShardRouter(4)
        x = np.zeros(16)
        first = router.route_batch(32, x, x, x)
        again = router.route_batch(32, x, x, x)
        assert np.array_equal(first, again)


class TestPowerOfDRouter:
    def test_whole_batch_to_one_shard(self):
        router = PowerOfDRouter(4, np.random.SeedSequence(1), d=2)
        sizes = np.ones(32)
        routes = router.route_batch(0, sizes, sizes, sizes)
        assert len(set(routes.tolist())) == 1

    def test_observe_steers_away_from_reported_backlog(self):
        # d == n_shards: the sample is always {0, 1}, so the choice is
        # purely the backlog comparison.
        router = PowerOfDRouter(2, np.random.SeedSequence(1), d=2)
        router.observe(0, {"backlog": 1e9})
        router.observe(1, {"backlog": 0.0})
        sizes = np.ones(8)
        assert set(router.route_batch(0, sizes, sizes, sizes).tolist()) == {1}

    def test_same_seed_same_choices(self):
        sizes = np.ones(4)
        seqs = []
        for _ in range(2):
            router = PowerOfDRouter(4, np.random.SeedSequence(7), d=2)
            seqs.append(
                [
                    int(router.route_batch(i, sizes, sizes, sizes)[0])
                    for i in range(20)
                ]
            )
        assert seqs[0] == seqs[1]


# ---------------------------------------------------------------------------
# shared-memory ring
# ---------------------------------------------------------------------------


class TestShardRing:
    def test_round_trip(self):
        try:
            ring = ShardRing(1024)
        except OSError:
            pytest.skip("no usable /dev/shm")
        try:
            t = np.arange(10, dtype=np.float64)
            s = t + 0.5
            e = t + 0.25
            ring.write(t, s, e)
            rt, rs, re_ = ring.read(10)
            assert np.array_equal(rt, t)
            assert np.array_equal(rs, s)
            assert np.array_equal(re_, e)
        finally:
            ring.close()
            ring.unlink()

    def test_attach_sees_the_same_columns(self):
        try:
            ring = ShardRing(64)
        except OSError:
            pytest.skip("no usable /dev/shm")
        try:
            t = np.array([1.0, 2.0])
            ring.write(t, t * 2, t * 3)
            other = ShardRing.attach(ring.name, 64)
            try:
                rt, rs, re_ = other.read(2)
                assert np.array_equal(rs, t * 2)
            finally:
                other.close()
        finally:
            ring.close()
            ring.unlink()


# ---------------------------------------------------------------------------
# bit-identity: the tentpole guarantee
# ---------------------------------------------------------------------------


class TestSitaBitIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("batch_size", [1, 256, 1024])
    @given(seed=st.integers(0, 2**16 - 1))
    @settings(max_examples=3, deadline=None)
    def test_merge_is_bit_identical_to_unsharded(
        self, n_shards, batch_size, seed
    ):
        jobs = stream(400, seed=seed)
        cutoffs = sita_cutoffs(jobs)
        ref_server = DispatchServer(
            4, SITAPolicy(cutoffs, name="sita-t"), seed=0
        )
        reference = ref_server.run_stream(jobs, batch_size=batch_size)

        sharded = ShardedDispatchServer(
            4,
            SITAPolicy(cutoffs, name="sita-t"),
            n_shards=n_shards,
            router="sita",
            seed=0,
            transport="inline",
        )
        with sharded:
            status = sharded.run_stream(jobs, batch_size=batch_size)
            merged = sharded.merged_job_table()

        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]
        assert status["jain_slowdown"] == reference["jain_slowdown"]
        assert all(status["invariant"].values())

        table = ref_server.job_table()
        assert np.array_equal(merged["host"], table["host"])
        assert np.array_equal(merged["start"], table["start"])
        assert np.array_equal(merged["completion"], table["completion"])

    def test_process_transport_matches_too(self):
        jobs = stream(400)
        cutoffs = sita_cutoffs(jobs)
        _, reference = run_unsharded(jobs, cutoffs)
        sharded = ShardedDispatchServer(
            4,
            SITAPolicy(cutoffs, name="sita-t"),
            n_shards=2,
            router="sita",
            seed=0,
            transport="process",
        )
        with sharded:
            status = sharded.run_stream(jobs, batch_size=256)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]
        assert status["jain_slowdown"] == reference["jain_slowdown"]


class TestOtherRouters:
    @pytest.mark.parametrize("router", ["hash", "pow2"])
    def test_invariant_holds_and_every_job_is_accounted(self, router):
        jobs = stream(400)
        server = ShardedDispatchServer(
            4,
            LeastWorkLeftPolicy(),
            n_shards=2,
            router=router,
            seed=3,
            transport="inline",
        )
        with server:
            status = server.run_stream(jobs, batch_size=64)
            merged = server.merged_job_table()
        assert all(status["invariant"].values())
        assert status["counters"]["accepted"] == len(jobs)
        assert bool(merged["filled"].all())

    def test_sita_router_requires_a_sita_policy(self):
        with pytest.raises(ValueError, match="sita"):
            ShardedDispatchServer(
                4,
                LeastWorkLeftPolicy(),
                n_shards=2,
                router="sita",
                transport="inline",
            )


# ---------------------------------------------------------------------------
# snapshots, resume, refusal diagnostics
# ---------------------------------------------------------------------------


def make_sharded(tmp, cutoffs, **kw):
    kw.setdefault("transport", "inline")
    return ShardedDispatchServer(
        4,
        SITAPolicy(cutoffs, name="sita-t"),
        n_shards=2,
        router="sita",
        seed=0,
        snapshot_dir=tmp,
        snapshot_every=150,
        **kw,
    )


class TestShardedResume:
    def test_resume_replays_to_the_same_bits(self, tmp_path):
        jobs = stream(600)
        cutoffs = sita_cutoffs(jobs)
        with make_sharded(tmp_path / "ref", cutoffs) as ref:
            reference = ref.run_stream(jobs)

        with make_sharded(tmp_path / "x", cutoffs) as first:
            first.run_stream(jobs)
        with make_sharded(tmp_path / "x", cutoffs) as resumed:
            status = resumed.run_stream(jobs, resume=True)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]
        assert status["jain_slowdown"] == reference["jain_slowdown"]

    def test_missing_shard_snapshot_refused_with_diagnosis(self, tmp_path):
        jobs = stream(600)
        cutoffs = sita_cutoffs(jobs)
        with make_sharded(tmp_path, cutoffs) as first:
            first.run_stream(jobs)
        (tmp_path / "shard-1.json").unlink()
        with make_sharded(tmp_path, cutoffs) as resumed:
            with pytest.raises(
                OnlineDispatchError, match="shard 1 snapshot .* is missing"
            ):
                resumed.run_stream(jobs, resume=True)

    def test_stale_shard_snapshot_refused(self, tmp_path):
        jobs = stream(600)
        cutoffs = sita_cutoffs(jobs)
        with make_sharded(tmp_path, cutoffs) as first:
            first.run_stream(jobs)
        path = tmp_path / "shard-1.json"
        doc = json.loads(path.read_text())
        doc["seq"] = 0
        path.write_text(json.dumps(doc))
        with make_sharded(tmp_path, cutoffs) as resumed:
            with pytest.raises(OnlineDispatchError, match="stale"):
                resumed.run_stream(jobs, resume=True)

    def test_tampered_manifest_counters_fail_the_audit(self, tmp_path):
        jobs = stream(600)
        cutoffs = sita_cutoffs(jobs)
        with make_sharded(tmp_path, cutoffs) as first:
            first.run_stream(jobs)
        path = tmp_path / "manifest.json"
        doc = json.loads(path.read_text())
        doc["shards"][0]["completed"] += 1
        path.write_text(json.dumps(doc))
        with make_sharded(tmp_path, cutoffs) as resumed:
            with pytest.raises(OnlineDispatchError, match="resume audit failed"):
                resumed.run_stream(jobs, resume=True)


# ---------------------------------------------------------------------------
# worker death surfaces as a diagnosable refusal
# ---------------------------------------------------------------------------


class TestWorkerDeath:
    def test_killed_worker_is_reported_by_shard_id(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_KILL_AFTER", "1")
        monkeypatch.setenv("REPRO_SHARD_KILL_ID", "0")
        jobs = stream(400)
        cutoffs = sita_cutoffs(jobs)
        server = ShardedDispatchServer(
            4,
            SITAPolicy(cutoffs, name="sita-t"),
            n_shards=2,
            router="sita",
            seed=0,
            transport="process",
        )
        with server:
            with pytest.raises(OnlineDispatchError, match="shard 0 worker died"):
                server.run_stream(jobs, batch_size=64)


# ---------------------------------------------------------------------------
# real SIGKILL of the coordinator and of a shard worker (CI soak in
# miniature), plus CLI-level bit-identity against --shards 0
# ---------------------------------------------------------------------------


class TestRealSigkill:
    ARGS = [
        "serve", "c90", "--policy", "sita", "--hosts", "4", "--jobs", "500",
        "--load", "0.7", "--seed", "5", "--batch-size", "64",
        "--snapshot-every", "125", "--shards", "2", "--router", "sita",
    ]

    def run_cli(self, snapshot, extra=(), env_extra=None, shards=True):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        for key in ("REPRO_SERVE_KILL_AFTER", "REPRO_SHARD_KILL_AFTER",
                    "REPRO_SHARD_KILL_ID"):
            env.pop(key, None)
        if env_extra:
            env.update(env_extra)
        args = list(self.ARGS)
        if not shards:
            args = args[: args.index("--shards")]
        if snapshot is not None:
            args += ["--snapshot", str(snapshot)]
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args, *extra],
            capture_output=True, text=True, env=env,
            cwd=Path(__file__).resolve().parents[2],
        )

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        ref = self.run_cli(None, shards=False)
        assert ref.returncode == 0, ref.stderr
        return json.loads(ref.stdout)

    def test_coordinator_sigkill_then_resume_matches_unsharded(
        self, tmp_path, reference
    ):
        killed = self.run_cli(
            tmp_path / "snap", env_extra={"REPRO_SERVE_KILL_AFTER": "2"}
        )
        assert killed.returncode in (-signal.SIGKILL, 137), killed.stderr

        resumed = self.run_cli(tmp_path / "snap", extra=["--resume"])
        assert resumed.returncode == 0, resumed.stderr
        status = json.loads(resumed.stdout)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]
        assert status["jain_slowdown"] == reference["jain_slowdown"]
        assert all(status["invariant"].values())

    def test_shard_worker_sigkill_then_resume_matches_unsharded(
        self, tmp_path, reference
    ):
        killed = self.run_cli(
            tmp_path / "snap",
            env_extra={
                "REPRO_SHARD_KILL_AFTER": "2",
                "REPRO_SHARD_KILL_ID": "1",
            },
        )
        assert killed.returncode == 1
        assert "worker died" in killed.stderr

        resumed = self.run_cli(tmp_path / "snap", extra=["--resume"])
        assert resumed.returncode == 0, resumed.stderr
        status = json.loads(resumed.stdout)
        assert status["counters"] == reference["counters"]
        assert status["clock"] == reference["clock"]
        assert status["jain_slowdown"] == reference["jain_slowdown"]
