"""Tests for the size-estimate error models (section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimation import HistoryPredictor, misclassify, multiplicative_noise


class TestMultiplicativeNoise:
    def test_exact_when_factor_one(self, rng):
        sizes = rng.lognormal(2.0, 1.0, 100)
        est = multiplicative_noise(sizes, 1.0, rng)
        np.testing.assert_array_equal(est, sizes)

    def test_unbiased_in_log(self, rng):
        sizes = np.full(200_000, 100.0)
        est = multiplicative_noise(sizes, 2.0, rng)
        log_err = np.log(est / sizes)
        assert np.mean(log_err) == pytest.approx(0.0, abs=0.01)
        assert np.std(log_err) == pytest.approx(np.log(2.0), rel=0.02)

    def test_positive(self, rng):
        est = multiplicative_noise(np.ones(1000), 16.0, rng)
        assert np.all(est > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            multiplicative_noise(np.ones(5), 0.5)


class TestMisclassify:
    def test_zero_flip_preserves_classes(self, rng):
        sizes = np.array([1.0, 5.0, 20.0, 100.0])
        est = misclassify(sizes, 10.0, 0.0, rng)
        np.testing.assert_array_equal(est <= 10.0, sizes <= 10.0)

    def test_flip_rate(self, rng):
        sizes = rng.lognormal(2.0, 2.0, 100_000)
        est = misclassify(sizes, 10.0, 0.2, rng)
        flipped = (est <= 10.0) != (sizes <= 10.0)
        assert np.mean(flipped) == pytest.approx(0.2, abs=0.01)

    def test_full_flip_inverts(self, rng):
        sizes = np.array([1.0, 100.0])
        est = misclassify(sizes, 10.0, 1.0, rng)
        assert est[0] > 10.0 and est[1] <= 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            misclassify(np.ones(3), 10.0, 1.5)
        with pytest.raises(ValueError):
            misclassify(np.ones(3), -1.0, 0.1)


class TestHistoryPredictor:
    def test_first_job_uses_prior(self):
        p = HistoryPredictor(prior=7.0)
        est = p.predict(np.array([100.0]), np.array([0]))
        assert est[0] == 7.0

    def test_class_running_mean(self):
        p = HistoryPredictor()
        sizes = np.array([10.0, 20.0, 30.0])
        classes = np.array([1, 1, 1])
        est = p.predict(sizes, classes)
        assert est[1] == pytest.approx(10.0)
        assert est[2] == pytest.approx(15.0)

    def test_no_leakage(self):
        """Prediction for job i must not use job i's own runtime."""
        p = HistoryPredictor()
        sizes = np.array([10.0, 1000.0])
        est = p.predict(sizes, np.array([1, 1]))
        assert est[1] == pytest.approx(10.0)  # not influenced by the 1000

    def test_new_class_falls_back_to_global(self):
        p = HistoryPredictor()
        sizes = np.array([10.0, 30.0, 100.0])
        classes = np.array([1, 1, 2])
        est = p.predict(sizes, classes)
        assert est[2] == pytest.approx(20.0)  # global mean of first two

    def test_predictions_help_sita(self, rng):
        """With per-user size regimes, history predictions classify most
        jobs onto the correct side of the cutoff."""
        n = 4000
        users = rng.integers(0, 20, n)
        base = np.where(users < 10, 10.0, 1000.0)
        sizes = base * rng.lognormal(0.0, 0.3, n)
        est = HistoryPredictor(prior=100.0).predict(sizes, users)
        correct = (est <= 100.0) == (sizes <= 100.0)
        assert np.mean(correct) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoryPredictor(prior=0.0)
        with pytest.raises(ValueError):
            HistoryPredictor().predict(np.ones(3), np.ones(2))


class TestMisclassifyDirections:
    def test_short_to_long_only_moves_shorts(self, rng):
        sizes = np.array([1.0, 5.0, 50.0, 500.0])
        est = misclassify(sizes, 10.0, 1.0, rng, direction="short-to-long")
        # every short claimed long; longs untouched
        assert np.all(est[:2] > 10.0)
        assert np.all(est[2:] > 10.0)

    def test_long_to_short_only_moves_longs(self, rng):
        sizes = np.array([1.0, 5.0, 50.0, 500.0])
        est = misclassify(sizes, 10.0, 1.0, rng, direction="long-to-short")
        assert np.all(est[:2] <= 10.0)
        assert np.all(est[2:] <= 10.0)

    def test_unknown_direction(self, rng):
        with pytest.raises(ValueError):
            misclassify(np.ones(3), 10.0, 0.1, rng, direction="sideways")

    def test_harm_decomposition(self):
        """Failure-injection headline, per victim class:

        * short-to-long: harm is confined to the flipped jobs (the paper's
          §7 claim) — bystander shorts are untouched;
        * long-to-short: the flipped elephants *benefit* while bystander
          shorts suffer — the gaming incentive the paper overlooks.
        """
        from repro.core.cutoffs import fair_cutoff
        from repro.core.policies import SITAPolicy
        from repro.sim.runner import simulate
        from repro.workloads.catalog import c90

        w = c90()
        load = 0.7
        cutoff = fair_cutoff(load, w.service_dist)
        trace = w.make_trace(load=load, n_hosts=2, n_jobs=60_000, rng=9)
        truly_short = trace.service_times <= cutoff
        exact = simulate(trace, SITAPolicy([cutoff]), 2, rng=0)
        n0 = int(trace.n_jobs * 0.1)
        exact_short = float(np.mean(exact.slowdowns[n0:][truly_short[n0:]]))

        def run(direction):
            est = misclassify(
                trace.service_times, cutoff, 0.1, rng=10, direction=direction
            )
            flipped = (est <= cutoff) != truly_short
            r = simulate(trace, SITAPolicy([cutoff]), 2, rng=0, size_estimates=est)
            slow, fl = r.slowdowns[n0:], flipped[n0:]
            bystander = ~fl & truly_short[n0:]
            return float(np.mean(slow[fl])), float(np.mean(slow[bystander]))

        flipped_sl, bystander_sl = run("short-to-long")
        flipped_ls, bystander_ls = run("long-to-short")
        # §7 verified: short→long errors leave bystander shorts unharmed...
        assert bystander_sl < 3.0 * exact_short
        # ...while the flipped shorts pay dearly (self-inflicted).
        assert flipped_sl > 10.0 * exact_short
        # The reverse direction: flipped elephants do *better* than anyone,
        assert flipped_ls < exact_short
        # and innocent shorts pay for it.
        assert bystander_ls > 2.0 * exact_short
