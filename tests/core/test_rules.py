"""Tests for the rho/2 rule of thumb."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sita_analysis import analyze_sita
from repro.core.cutoffs import opt_cutoff, short_host_load_fraction
from repro.core.rules import (
    rule_of_thumb_cutoff,
    rule_of_thumb_fit,
    rule_of_thumb_fraction,
)
from repro.workloads.catalog import c90


@pytest.fixture(scope="module")
def dist():
    return c90().service_dist


class TestFraction:
    def test_value(self):
        assert rule_of_thumb_fraction(0.5) == 0.25
        assert rule_of_thumb_fraction(0.8) == 0.4

    @pytest.mark.parametrize("bad", [0.0, 1.0, -1.0])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            rule_of_thumb_fraction(bad)


class TestCutoff:
    @pytest.mark.parametrize("load", [0.2, 0.5, 0.8])
    def test_realises_target_fraction(self, dist, load):
        c = rule_of_thumb_cutoff(load, dist)
        assert short_host_load_fraction(dist, c) == pytest.approx(load / 2, abs=1e-9)

    @pytest.mark.parametrize("load", [0.2, 0.5, 0.8, 0.95])
    def test_always_feasible(self, dist, load):
        """rho/2 to host 1 keeps both hosts stable for any rho < 1."""
        c = rule_of_thumb_cutoff(load, dist)
        lam = 2 * load / dist.mean
        a = analyze_sita(lam, dist, [c])
        assert a.feasible
        assert a.hosts[0].utilisation == pytest.approx(load**2, rel=1e-6)
        assert a.hosts[1].utilisation == pytest.approx(load * (2 - load), rel=1e-6)

    def test_close_to_optimal_at_high_load(self, dist):
        """Paper: rule-of-thumb results were within ~10 % of optimal; on
        our synthetic C90 the agreement is best at the loads that matter
        (>= 0.7)."""
        load = 0.8
        lam = 2 * load / dist.mean
        s_rule = analyze_sita(lam, dist, [rule_of_thumb_cutoff(load, dist)]).mean_slowdown
        s_opt = analyze_sita(lam, dist, [opt_cutoff(load, dist)]).mean_slowdown
        assert s_rule <= 1.5 * s_opt


class TestFit:
    def test_perfect_fit(self):
        loads = np.array([0.2, 0.4, 0.8])
        assert rule_of_thumb_fit(loads, loads / 2) == pytest.approx(0.0, abs=1e-12)

    def test_rms_value(self):
        assert rule_of_thumb_fit([0.4], [0.3]) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            rule_of_thumb_fit([0.5, 0.6], [0.25])
        with pytest.raises(ValueError):
            rule_of_thumb_fit([], [])
