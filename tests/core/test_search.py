"""Tests for the shared-computation cutoff-search engine.

The scan-vs-loop class runs under ``REPRO_SIM_STRICT=1`` in CI — the
kernel routes every subset Lindley pass through the same invariant
checks as ``simulate_fast``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis.sita_analysis import analyze_sita
from repro.core.cutoffs import sim_fair_cutoff, sim_opt_cutoff
from repro.core.search import (
    MomentMemo,
    analytic_cutoff_pair,
    analyze_sita_cached,
    candidate_cutoffs,
    clear_search_memo,
    search_memo_stats,
    sim_cutoff_pair,
    sim_pair_reference,
)
from repro.core.policies.sita import SITAPolicy
from repro.sim.fast import SitaScanKernel, simulate_fast, sita_scan
from repro.workloads.catalog import c90
from repro.workloads.distributions import BoundedPareto, Empirical
from repro.workloads.traces import Trace


@pytest.fixture(scope="module")
def train() -> Trace:
    trace = c90().make_trace(load=0.7, n_hosts=2, n_jobs=6_000, rng=2024)
    half = trace.n_jobs // 2
    return Trace(
        trace.arrival_times[:half], trace.service_times[:half], name="train"
    )


@pytest.fixture(scope="module")
def empirical(train) -> Empirical:
    return Empirical(train.service_times)


@dataclass
class _StubTrace:
    """Bare trace stand-in: real ``Trace`` validates sizes at build time,
    so the degenerate-grid guards need a looser object."""

    service_times: np.ndarray
    name: str = "stub"


class TestCandidateCutoffs:
    def test_matches_historical_grid(self, train):
        s = train.service_times
        lo, hi = float(np.min(s)), float(np.max(s))
        expected = np.exp(
            np.linspace(math.log(lo * 1.001), math.log(hi * 0.999), 40)
        )
        np.testing.assert_array_equal(candidate_cutoffs(train, 40), expected)

    def test_rejects_nonpositive_min_size(self):
        stub = _StubTrace(np.array([0.0, 1.0, 10.0]))
        with pytest.raises(ValueError, match="non-positive minimum service time"):
            candidate_cutoffs(stub, 10)

    def test_rejects_negative_min_size(self):
        stub = _StubTrace(np.array([-3.0, 1.0, 10.0]))
        with pytest.raises(ValueError, match="non-positive minimum"):
            candidate_cutoffs(stub, 10)

    def test_rejects_all_equal_sizes(self):
        stub = _StubTrace(np.full(50, 7.5), name="constant")
        with pytest.raises(ValueError, match="zero width"):
            candidate_cutoffs(stub, 10)
        with pytest.raises(ValueError, match="'constant'"):
            candidate_cutoffs(stub, 10)

    def test_rejects_too_few_candidates(self, train):
        with pytest.raises(ValueError, match="at least 2 candidates"):
            candidate_cutoffs(train, 1)


class TestScanVsLoop:
    """The batched scan must reproduce the per-candidate loop exactly."""

    def test_waits_bit_identical_to_simulate_fast(self, train):
        kernel = SitaScanKernel(train)
        for c in candidate_cutoffs(train, 12)[::3]:
            expected = simulate_fast(
                train, SITAPolicy([float(c)], name="sita-search"), 2, rng=0
            ).wait_times
            np.testing.assert_array_equal(
                kernel.waits_for_cutoff(float(c)), expected
            )

    @pytest.mark.parametrize(
        "metric",
        ["mean_slowdown", "mean_response", "mean_wait", "mean_waiting_slowdown"],
    )
    def test_values_bit_identical_to_summary(self, train, metric):
        candidates = candidate_cutoffs(train, 10)
        result = sita_scan(train, candidates, metric=metric, warmup_fraction=0.05)
        for i, c in enumerate(candidates):
            summ = simulate_fast(
                train, SITAPolicy([float(c)], name="sita-search"), 2, rng=0
            ).summary(warmup_fraction=0.05)
            expected = getattr(summ, metric)
            if not math.isfinite(expected):
                expected = math.inf
            assert result.values[i] == expected

    def test_class_slowdowns_bit_identical_to_trimmed(self, train):
        candidates = candidate_cutoffs(train, 10)
        result = sita_scan(train, candidates, warmup_fraction=0.05)
        for i, c in enumerate(candidates):
            trimmed = simulate_fast(
                train, SITAPolicy([float(c)], name="sita-search"), 2, rng=0
            ).trimmed(0.05)
            try:
                s_short, s_long = trimmed.class_mean_slowdowns(float(c))
            except ValueError:
                assert math.isnan(result.short_slowdown[i])
                assert math.isinf(result.gap[i])
                continue
            assert result.short_slowdown[i] == s_short
            assert result.long_slowdown[i] == s_long
            assert result.gap[i] == abs(math.log(s_short / s_long))

    def test_grid_argmins_bit_identical_to_reference_loop(self, train):
        pair = sim_cutoff_pair(train, refine=False)
        ref_opt, ref_fair = sim_pair_reference(train)
        assert pair.opt == ref_opt
        assert pair.fair == ref_fair

    def test_wrappers_match_pair(self, train):
        pair = sim_cutoff_pair(train, n_candidates=25, refine=False)
        assert sim_opt_cutoff(train, n_candidates=25) == pair.opt
        assert sim_fair_cutoff(train, n_candidates=25) == pair.fair

    def test_refinement_never_worse_than_grid(self, train):
        grid = sim_cutoff_pair(train, refine=False)
        refined = sim_cutoff_pair(train, refine=True)
        assert refined.opt_metric <= grid.opt_metric
        assert refined.fair_gap <= grid.fair_gap
        # refined winners stay inside the winning grid brackets
        cands = grid.candidates
        lo = cands[max(0, grid.opt_index - 1)]
        hi = cands[min(len(cands) - 1, grid.opt_index + 1)]
        assert lo <= refined.opt <= hi

    def test_kernel_memoises_partition_revisits(self, train):
        kernel = SitaScanKernel(train)
        c = float(candidate_cutoffs(train, 10)[5])
        row = kernel.evaluate(c)
        # Same partition rank via a nearby cutoff -> same cached row object.
        assert kernel.evaluate(c * (1.0 + 1e-12)) is row

    def test_kernel_input_validation(self, train):
        with pytest.raises(ValueError, match="not scan-supported"):
            SitaScanKernel(train, metric="p99_slowdown")
        with pytest.raises(ValueError, match="warmup_fraction"):
            SitaScanKernel(train, warmup_fraction=1.0)
        kernel = SitaScanKernel(train)
        with pytest.raises(ValueError, match="positive and finite"):
            kernel.evaluate(-1.0)
        with pytest.raises(ValueError, match="candidates"):
            kernel.scan(np.array([]))


class TestMomentMemo:
    def test_cached_analysis_bit_identical_to_direct(self, empirical):
        lam = 2.0 * 0.7 / empirical.mean
        memo = MomentMemo()
        for c in (300.0, 15_000.0, 40_000.0):
            try:
                direct = analyze_sita(lam, empirical, [c])
            except ValueError as err:
                with pytest.raises(ValueError, match="infeasible"):
                    analyze_sita_cached(lam, empirical, c, memo=memo)
                assert "infeasible" in str(err)
                continue
            for _ in range(2):  # miss path, then hit path
                cached = analyze_sita_cached(lam, empirical, c, memo=memo)
                assert cached.mean_slowdown == direct.mean_slowdown
                assert cached.mean_response == direct.mean_response
                assert cached.mean_wait == direct.mean_wait
                assert cached.var_slowdown == direct.var_slowdown
                assert (
                    cached.class_mean_slowdowns()
                    == direct.class_mean_slowdowns()
                )

    def test_agreement_across_loads_and_distributions(self, empirical):
        from repro.core.cutoffs import feasible_cutoff_range

        memo = MomentMemo()
        bp = BoundedPareto(1.0, 1e5, 1.1)
        for dist in (empirical, bp):
            # feasible at the heaviest load -> feasible at the lighter ones
            c_min, c_max = feasible_cutoff_range(0.9, dist)
            cutoff = float(math.sqrt(c_min * c_max))
            for load in (0.5, 0.7, 0.9):
                lam = 2.0 * load / dist.mean
                direct = analyze_sita(lam, dist, [cutoff])
                cached = analyze_sita_cached(lam, dist, cutoff, memo=memo)
                assert cached.mean_slowdown == pytest.approx(
                    direct.mean_slowdown, rel=1e-12
                )
        # one cutoff entry per distribution serves every load
        assert memo.stats()["n_dists"] == 2
        assert memo.stats()["n_cutoffs"] == 2

    def test_rank_keyed_sharing_for_empirical(self, empirical):
        """Cutoffs between the same adjacent observed sizes share one
        memo entry (the truncated moments are piecewise-constant)."""
        lam = 2.0 * 0.7 / empirical.mean
        v = empirical.values
        k = int(0.98 * v.size)
        c_lo, c_hi = float(v[k - 1]), float(v[k])
        assert c_hi > c_lo
        memo = MomentMemo()
        a = analyze_sita_cached(lam, empirical, c_lo, memo=memo)
        before = memo.stats()
        b = analyze_sita_cached(
            lam, empirical, 0.5 * (c_lo + c_hi), memo=memo
        )
        after = memo.stats()
        assert after["n_cutoffs"] == before["n_cutoffs"] == 1
        assert after["hits"] == before["hits"] + 1
        assert a.mean_slowdown == b.mean_slowdown

    def test_bounded_size_and_lru_eviction(self, empirical):
        from repro.core.cutoffs import feasible_cutoff_range

        lam = 2.0 * 0.7 / empirical.mean
        memo = MomentMemo(max_cutoffs=4)
        c_min, c_max = feasible_cutoff_range(0.7, empirical)
        feasible = [
            float(c)
            for c in np.exp(
                np.linspace(math.log(c_min * 1.01), math.log(c_max * 0.99), 8)
            )
        ]
        for c in feasible:
            analyze_sita_cached(lam, empirical, c, memo=memo)
        assert memo.stats()["n_cutoffs"] == 4  # bounded despite 8 inserts
        # The oldest entry was evicted: revisiting it is a miss again.
        misses = memo.stats()["misses"]
        analyze_sita_cached(lam, empirical, feasible[0], memo=memo)
        assert memo.stats()["misses"] == misses + 1
        # The freshest entry is still a hit.
        hits = memo.stats()["hits"]
        analyze_sita_cached(lam, empirical, feasible[-1], memo=memo)
        assert memo.stats()["hits"] == hits + 1

    def test_dist_bound(self, empirical):
        memo = MomentMemo(max_dists=2)
        dists = [BoundedPareto(1.0, 1e5, a) for a in (1.1, 1.3, 1.5)]
        for d in dists:
            analyze_sita_cached(2.0 * 0.5 / d.mean, d, 1_000.0, memo=memo)
        assert memo.stats()["n_dists"] == 2

    def test_global_memo_clear_and_stats(self, empirical):
        clear_search_memo()
        assert search_memo_stats()["n_cutoffs"] == 0
        analytic_cutoff_pair(0.7, empirical)
        stats = search_memo_stats()
        assert stats["n_cutoffs"] > 0
        assert stats["hits"] > 0  # opt and fair share the axis evaluations
        clear_search_memo()
        assert search_memo_stats()["n_cutoffs"] == 0


class TestAnalyticPair:
    def test_matches_wrappers(self, empirical):
        from repro.core.cutoffs import fair_cutoff, opt_cutoff

        pair = analytic_cutoff_pair(0.7, empirical)
        assert pair["opt"] == opt_cutoff(0.7, empirical)
        assert pair["fair"] == fair_cutoff(0.7, empirical)

    def test_fair_equalises_class_slowdowns(self, empirical):
        # On an Empirical the gap is piecewise-constant in the cutoff, so
        # exact equality is unreachable — the root lands on the step whose
        # residual is the sample's discretisation floor.
        pair = analytic_cutoff_pair(0.7, empirical, want=("fair",))
        lam = 2.0 * 0.7 / empirical.mean
        s_short, s_long = analyze_sita(
            lam, empirical, [pair["fair"]]
        ).class_mean_slowdowns()
        assert abs(math.log(s_short / s_long)) < 0.05

    def test_opt_beats_grid_neighbourhood(self, empirical):
        pair = analytic_cutoff_pair(0.7, empirical, want=("opt",))
        lam = 2.0 * 0.7 / empirical.mean
        best = analyze_sita(lam, empirical, [pair["opt"]]).mean_slowdown
        for factor in (0.9, 1.1):
            other = analyze_sita(
                lam, empirical, [pair["opt"] * factor]
            ).mean_slowdown
            assert best <= other

    def test_validates_inputs(self, empirical):
        with pytest.raises(ValueError, match="load"):
            analytic_cutoff_pair(1.0, empirical)
        with pytest.raises(ValueError, match="at least one"):
            analytic_cutoff_pair(0.7, empirical, want=())
        with pytest.raises(ValueError, match="unknown cutoff target"):
            analytic_cutoff_pair(0.7, empirical, want=("opt", "median"))
