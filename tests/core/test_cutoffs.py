"""Tests for the cutoff engines — the paper's central machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sita_analysis import analyze_sita, sita_host_loads
from repro.core.cutoffs import (
    equal_load_cutoffs,
    fair_cutoff,
    fair_cutoffs_multi,
    feasible_cutoff_range,
    opt_cutoff,
    opt_cutoffs_multi,
    short_host_load_fraction,
    sim_fair_cutoff,
    sim_opt_cutoff,
)
from repro.workloads.catalog import c90
from repro.workloads.distributions import Empirical, Lognormal


@pytest.fixture(scope="module")
def dist():
    return c90().service_dist


class TestEqualLoad:
    def test_two_hosts_split_load_evenly(self, dist):
        c = equal_load_cutoffs(dist, 2)
        assert c.size == 1
        assert short_host_load_fraction(dist, c[0]) == pytest.approx(0.5, abs=1e-9)

    @pytest.mark.parametrize("h", [2, 3, 4, 8])
    def test_h_hosts_equal_slices(self, dist, h):
        cuts = equal_load_cutoffs(dist, h)
        lam = h * 0.7 / dist.mean
        loads = sita_host_loads(lam, dist, cuts)
        np.testing.assert_allclose(loads, 0.7, rtol=1e-6)

    def test_most_jobs_go_short(self, dist):
        """Paper: 98.7 % of C90 jobs land on Host 1 under SITA-E."""
        c = equal_load_cutoffs(dist, 2)[0]
        assert dist.cdf(c) > 0.95

    def test_needs_two_hosts(self, dist):
        with pytest.raises(ValueError):
            equal_load_cutoffs(dist, 1)

    def test_empirical_distribution(self, rng):
        values = Lognormal.fit(100.0, 10.0).sample(5000, rng)
        cuts = equal_load_cutoffs(Empirical(values), 2)
        frac = short_host_load_fraction(Empirical(values), cuts[0])
        assert frac == pytest.approx(0.5, abs=0.02)


class TestFeasibleRange:
    @pytest.mark.parametrize("load", [0.3, 0.6, 0.9])
    def test_endpoints_are_stable(self, dist, load):
        c_min, c_max = feasible_cutoff_range(load, dist)
        assert c_min < c_max
        lam = 2 * load / dist.mean
        for c in (c_min * 1.01, c_max * 0.99):
            loads = sita_host_loads(lam, dist, [c])
            assert np.all(loads < 1.0)

    def test_range_shrinks_with_load(self, dist):
        lo_range = feasible_cutoff_range(0.3, dist)
        hi_range = feasible_cutoff_range(0.9, dist)
        assert hi_range[0] > lo_range[0] or hi_range[1] < lo_range[1]

    def test_rejects_bad_load(self, dist):
        with pytest.raises(ValueError):
            feasible_cutoff_range(1.2, dist)


class TestOptCutoff:
    def test_beats_equal_load(self, dist):
        """SITA-U-opt must not be worse than SITA-E (it optimises over a
        set containing the SITA-E cutoff)."""
        load = 0.7
        lam = 2 * load / dist.mean
        ce = equal_load_cutoffs(dist, 2)[0]
        co = opt_cutoff(load, dist)
        assert (
            analyze_sita(lam, dist, [co]).mean_slowdown
            <= analyze_sita(lam, dist, [ce]).mean_slowdown + 1e-9
        )

    def test_is_local_minimum(self, dist):
        load = 0.5
        lam = 2 * load / dist.mean
        co = opt_cutoff(load, dist)
        base = analyze_sita(lam, dist, [co]).mean_slowdown
        for factor in (0.9, 1.1):
            assert analyze_sita(lam, dist, [co * factor]).mean_slowdown >= base - 1e-9

    @pytest.mark.parametrize("load", [0.3, 0.5, 0.7, 0.9])
    def test_underloads_short_host(self, dist, load):
        """The paper's headline: the optimal cutoff sends < half the load
        to Host 1."""
        co = opt_cutoff(load, dist)
        assert short_host_load_fraction(dist, co) < 0.5

    def test_alternative_metric(self, dist):
        c_resp = opt_cutoff(0.7, dist, metric="mean_response")
        lam = 2 * 0.7 / dist.mean
        base = analyze_sita(lam, dist, [c_resp]).mean_response
        for factor in (0.9, 1.1):
            assert analyze_sita(lam, dist, [c_resp * factor]).mean_response >= base - 1e-9


class TestFairCutoff:
    @pytest.mark.parametrize("load", [0.3, 0.5, 0.7, 0.9])
    def test_equalises_class_slowdowns(self, dist, load):
        cf = fair_cutoff(load, dist)
        lam = 2 * load / dist.mean
        s_short, s_long = analyze_sita(lam, dist, [cf]).class_mean_slowdowns()
        assert s_short == pytest.approx(s_long, rel=1e-6)

    @pytest.mark.parametrize("load", [0.3, 0.5, 0.7, 0.9])
    def test_also_underloads_short_host(self, dist, load):
        """Counter-to-intuition (paper §4): fairness also unbalances."""
        cf = fair_cutoff(load, dist)
        assert short_host_load_fraction(dist, cf) < 0.5

    def test_fair_close_to_opt(self, dist):
        """Paper fig 4: SITA-U-fair only slightly worse than SITA-U-opt."""
        load = 0.7
        lam = 2 * load / dist.mean
        s_opt = analyze_sita(lam, dist, [opt_cutoff(load, dist)]).mean_slowdown
        s_fair = analyze_sita(lam, dist, [fair_cutoff(load, dist)]).mean_slowdown
        assert s_fair < 2.5 * s_opt


class TestMultiHost:
    def test_opt_multi_beats_equal_load(self, dist):
        load, h = 0.7, 3
        lam = h * load / dist.mean
        ce = equal_load_cutoffs(dist, h)
        co = opt_cutoffs_multi(load, dist, h)
        assert (
            analyze_sita(lam, dist, co).mean_slowdown
            <= analyze_sita(lam, dist, ce).mean_slowdown + 1e-9
        )

    def test_opt_multi_reduces_to_pairwise(self, dist):
        np.testing.assert_allclose(
            opt_cutoffs_multi(0.5, dist, 2), [opt_cutoff(0.5, dist)], rtol=1e-6
        )

    def test_fair_multi_equalises_all_classes(self, dist):
        load, h = 0.6, 3
        cf = fair_cutoffs_multi(load, dist, h)
        lam = h * load / dist.mean
        slows = analyze_sita(lam, dist, cf).class_mean_slowdowns()
        assert max(slows) / min(slows) == pytest.approx(1.0, rel=5e-3)

    def test_fair_multi_reduces_to_pairwise(self, dist):
        np.testing.assert_allclose(
            fair_cutoffs_multi(0.5, dist, 2), [fair_cutoff(0.5, dist)], rtol=1e-6
        )


class TestSimulationSearch:
    """The paper derived cutoffs both ways and found agreement."""

    @pytest.fixture(scope="class")
    def train(self):
        return c90().make_trace(load=0.7, n_hosts=2, n_jobs=30_000, rng=2024)

    def test_sim_opt_agrees_with_analytic(self, dist, train):
        c_sim = sim_opt_cutoff(train, n_candidates=30)
        c_ana = opt_cutoff(0.7, Empirical(train.service_times))
        # Same order of magnitude on the log-size axis (grid resolution).
        assert abs(np.log10(c_sim) - np.log10(c_ana)) < 0.8

    def test_sim_fair_agrees_with_analytic(self, dist, train):
        c_sim = sim_fair_cutoff(train, n_candidates=30)
        c_ana = fair_cutoff(0.7, Empirical(train.service_times))
        assert abs(np.log10(c_sim) - np.log10(c_ana)) < 0.8

    def test_sim_opt_beats_sita_e_in_simulation(self, train):
        from repro.core.policies import SITAPolicy
        from repro.sim.runner import simulate

        c_opt = sim_opt_cutoff(train, n_candidates=30)
        c_e = equal_load_cutoffs(Empirical(train.service_times), 2)[0]
        s_opt = simulate(train, SITAPolicy([c_opt]), 2, rng=0).summary(0.05)
        s_e = simulate(train, SITAPolicy([c_e]), 2, rng=0).summary(0.05)
        assert s_opt.mean_slowdown <= s_e.mean_slowdown


class TestOptimalGroupSplit:
    def test_keeps_both_groups_stable(self, dist):
        from repro.core.cutoffs import optimal_group_split

        load = 0.7
        cut = fair_cutoff(load, dist)
        f = dist.partial_moment(1.0, 0.0, cut) / dist.mean
        lam_factor = load  # system load
        for h in (2, 4, 8, 16):
            ns = optimal_group_split(load, dist, h, cut)
            assert 1 <= ns <= h - 1
            rho_short = load * h * f / ns
            rho_long = load * h * (1 - f) / (h - ns)
            assert rho_short < 1.0 and rho_long < 1.0

    def test_beats_proportional_rounding_at_h4(self, dist):
        """The h=4 hazard: rounding 4*0.35 to one short host saturates it."""
        from repro.analysis.policies import predict_grouped_sita
        from repro.core.cutoffs import optimal_group_split

        load = 0.7
        cut = fair_cutoff(load, dist)
        ns = optimal_group_split(load, dist, 4, cut)
        best = predict_grouped_sita(load, dist, 4, cut, ns).mean_slowdown
        for other in range(1, 4):
            try:
                val = predict_grouped_sita(load, dist, 4, cut, other).mean_slowdown
            except ValueError:
                continue
            assert best <= val + 1e-9

    def test_needs_two_hosts(self, dist):
        from repro.core.cutoffs import optimal_group_split

        with pytest.raises(ValueError):
            optimal_group_split(0.5, dist, 1, 1000.0)

    def test_impossible_split_raises(self, dist):
        from repro.core.cutoffs import optimal_group_split

        # Cutoff so low that the long group carries nearly everything but
        # gets one host at most... extreme load makes all splits unstable.
        with pytest.raises(ValueError):
            optimal_group_split(0.99, dist, 2, dist.ppf(0.00001))
