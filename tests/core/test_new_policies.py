"""Tests for the second-wave policies: SJF central queue, estimated LWL."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimation import multiplicative_noise
from repro.core.policies import (
    CentralQueuePolicy,
    EstimatedLWLPolicy,
    LeastWorkLeftPolicy,
)
from repro.sim.fast import estimated_lwl_waits, lwl_waits
from repro.sim.runner import simulate
from repro.workloads.traces import Trace


class TestSJFCentralQueue:
    def test_discipline_validation(self):
        with pytest.raises(ValueError):
            CentralQueuePolicy("lifo")

    def test_names(self):
        assert CentralQueuePolicy().name == "central-queue"
        assert CentralQueuePolicy("sjf").name == "central-sjf"

    def test_sjf_reorders_queue(self):
        # Host busy until t=10 with job0; two queued jobs: long then short.
        # FCFS serves them in arrival order; SJF serves the short first.
        trace = Trace([0.0, 1.0, 2.0], [10.0, 8.0, 1.0])
        fcfs = simulate(trace, CentralQueuePolicy("fcfs"), 1, rng=0)
        sjf = simulate(trace, CentralQueuePolicy("sjf"), 1, rng=0)
        # FCFS: job1 starts at 10, job2 at 18.
        assert fcfs.wait_times[2] == pytest.approx(16.0)
        # SJF: job2 (size 1) jumps ahead: starts at 10, job1 at 11.
        assert sjf.wait_times[2] == pytest.approx(8.0)
        assert sjf.wait_times[1] == pytest.approx(10.0)

    def test_sjf_uses_estimates(self):
        trace = Trace([0.0, 1.0, 2.0], [10.0, 8.0, 1.0])
        # Lie: claim the size-8 job is tiny and the size-1 job huge.
        est = np.array([10.0, 0.5, 100.0])
        sjf = simulate(
            trace, CentralQueuePolicy("sjf"), 1, rng=0, size_estimates=est
        )
        assert sjf.wait_times[1] == pytest.approx(9.0)  # served first
        assert sjf.wait_times[2] == pytest.approx(16.0)

    def test_sjf_improves_mean_slowdown(self, small_c90_trace):
        fcfs = simulate(small_c90_trace, CentralQueuePolicy("fcfs"), 2, rng=0)
        sjf = simulate(small_c90_trace, CentralQueuePolicy("sjf"), 2, rng=0)
        assert (
            sjf.summary(0.1).mean_slowdown < fcfs.summary(0.1).mean_slowdown
        )

    def test_sjf_requires_event_backend(self, tiny_trace):
        with pytest.raises(ValueError):
            simulate(tiny_trace, CentralQueuePolicy("sjf"), 2, rng=0, backend="fast")

    def test_fcfs_still_uses_fast_path(self, tiny_trace):
        fast = simulate(tiny_trace, CentralQueuePolicy("fcfs"), 2, rng=0, backend="fast")
        event = simulate(tiny_trace, CentralQueuePolicy("fcfs"), 2, rng=0, backend="event")
        np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-9)


class TestEstimatedLWL:
    def test_exact_estimates_equal_lwl(self, small_c90_trace):
        est = simulate(small_c90_trace, EstimatedLWLPolicy(), 2, rng=0)
        true = simulate(small_c90_trace, LeastWorkLeftPolicy(), 2, rng=0)
        assert est.summary().mean_slowdown == pytest.approx(
            true.summary().mean_slowdown, rel=1e-9
        )

    def test_fast_vs_event(self, small_c90_trace, rng):
        noisy = multiplicative_noise(small_c90_trace.service_times, 4.0, rng)
        fast = simulate(
            small_c90_trace, EstimatedLWLPolicy(), 3, rng=0,
            size_estimates=noisy, backend="fast",
        )
        event = simulate(
            small_c90_trace, EstimatedLWLPolicy(), 3, rng=0,
            size_estimates=noisy, backend="event",
        )
        np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-6)
        np.testing.assert_array_equal(fast.host_assignments, event.host_assignments)

    def test_noise_hurts(self, small_c90_trace, rng):
        exact = simulate(small_c90_trace, EstimatedLWLPolicy(), 2, rng=0)
        noisy_est = multiplicative_noise(small_c90_trace.service_times, 16.0, rng)
        noisy = simulate(
            small_c90_trace, EstimatedLWLPolicy(), 2, rng=0, size_estimates=noisy_est
        )
        assert noisy.summary(0.1).mean_slowdown > exact.summary(0.1).mean_slowdown

    def test_kernel_matches_lwl_with_exact_estimates(self, rng):
        t = np.cumsum(rng.exponential(5.0, 400))
        s = rng.lognormal(1.0, 1.5, 400)
        w_est, _ = estimated_lwl_waits(t, s, s, 3)
        w_lwl, _ = lwl_waits(t, s, 3)
        np.testing.assert_allclose(np.sort(w_est), np.sort(w_lwl), atol=1e-9)

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            estimated_lwl_waits(np.ones(3), np.ones(3), np.ones(2), 2)
        with pytest.raises(ValueError):
            estimated_lwl_waits(np.ones(3), np.ones(3), np.ones(3), 0)

    def test_believed_work_left_view(self):
        p = EstimatedLWLPolicy()
        p.reset(2, np.random.default_rng(0))
        assert list(p.believed_work_left(0.0)) == [0.0, 0.0]


class TestSummaryPercentiles:
    def test_percentiles_ordered(self, small_c90_trace):
        s = simulate(small_c90_trace, LeastWorkLeftPolicy(), 2, rng=0).summary(0.1)
        assert 1.0 <= s.mean_slowdown
        assert s.p95_slowdown <= s.p99_slowdown <= s.max_slowdown

    def test_constant_slowdown(self):
        from repro.sim.metrics import SimulationResult

        r = SimulationResult(
            policy_name="x",
            n_hosts=1,
            arrival_times=np.arange(10, dtype=float),
            sizes=np.ones(10),
            wait_times=np.ones(10),
            host_assignments=np.zeros(10, dtype=int),
        )
        s = r.summary()
        assert s.p95_slowdown == pytest.approx(2.0)
        assert s.p99_slowdown == pytest.approx(2.0)


class TestPSBaseline:
    def test_value(self):
        from repro.analysis.mg1 import mg1_ps_mean_slowdown
        from repro.workloads.distributions import Lognormal

        d = Lognormal.fit(100.0, 10.0)
        lam = 0.75 / d.mean
        assert mg1_ps_mean_slowdown(lam, d) == pytest.approx(4.0)

    def test_distribution_free(self):
        from repro.analysis.mg1 import mg1_ps_mean_slowdown
        from repro.workloads.distributions import Exponential, Lognormal

        lam_logn = 0.5 / 100.0
        a = mg1_ps_mean_slowdown(lam_logn, Lognormal.fit(100.0, 40.0))
        b = mg1_ps_mean_slowdown(0.5 / 7.0, Exponential(7.0))
        assert a == pytest.approx(b)

    def test_unstable(self):
        from repro.analysis.mg1 import mg1_ps_mean_slowdown
        from repro.workloads.distributions import Exponential

        with pytest.raises(ValueError):
            mg1_ps_mean_slowdown(1.0, Exponential(2.0))
