"""Unit tests for the policy objects (dispatch mechanics only)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import (
    CentralQueuePolicy,
    GroupedSITAPolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
    TAGSPolicy,
    validate_cutoffs,
)
from repro.sim.jobs import Job


class FakeState:
    """Minimal SystemState stand-in for unit-testing choose_host."""

    def __init__(self, work, queues):
        self._work = np.asarray(work, dtype=float)
        self._queues = np.asarray(queues, dtype=int)
        self.n_hosts = self._work.size
        self.now = 0.0

    def work_left(self):
        return self._work

    def queue_lengths(self):
        return self._queues


def job(size: float, est: float | None = None) -> Job:
    return Job(0, 0.0, size, size_estimate=est)


class TestValidateCutoffs:
    def test_accepts_increasing(self):
        out = validate_cutoffs([1.0, 5.0, 100.0])
        assert list(out) == [1.0, 5.0, 100.0]

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            validate_cutoffs([5.0, 1.0])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_cutoffs([5.0, 5.0])

    def test_rejects_nonpositive_and_nonfinite(self):
        with pytest.raises(ValueError):
            validate_cutoffs([0.0, 1.0])
        with pytest.raises(ValueError):
            validate_cutoffs([1.0, np.inf])

    def test_empty_ok(self):
        assert validate_cutoffs([]).size == 0


class TestRandom:
    def test_uniform_over_hosts(self):
        p = RandomPolicy()
        p.reset(4, np.random.default_rng(0))
        choices = [p.choose_host(job(1.0), None) for _ in range(4000)]
        counts = np.bincount(choices, minlength=4)
        assert np.all(counts > 800)

    def test_batch_shape(self):
        p = RandomPolicy()
        p.reset(3, np.random.default_rng(0))
        out = p.assign_batch(np.ones(100), np.random.default_rng(1))
        assert out.shape == (100,)
        assert out.min() >= 0 and out.max() < 3


class TestRoundRobin:
    def test_cycles(self):
        p = RoundRobinPolicy()
        p.reset(3, np.random.default_rng(0))
        seq = [p.choose_host(job(1.0), None) for _ in range(7)]
        assert seq == [0, 1, 2, 0, 1, 2, 0]

    def test_reset_restarts_cycle(self):
        p = RoundRobinPolicy()
        p.reset(2, np.random.default_rng(0))
        p.choose_host(job(1.0), None)
        p.reset(2, np.random.default_rng(0))
        assert p.choose_host(job(1.0), None) == 0

    def test_batch_matches_sequential(self):
        p = RoundRobinPolicy()
        p.reset(4, np.random.default_rng(0))
        batch = p.assign_batch(np.ones(10), np.random.default_rng(0))
        p.reset(4, np.random.default_rng(0))
        seq = [p.choose_host(job(1.0), None) for _ in range(10)]
        assert list(batch) == seq


class TestStatePolicies:
    def test_lwl_picks_min_work(self):
        p = LeastWorkLeftPolicy()
        p.reset(3, np.random.default_rng(0))
        state = FakeState(work=[5.0, 1.0, 9.0], queues=[1, 1, 1])
        assert p.choose_host(job(1.0), state) == 1

    def test_lwl_tie_breaks_low_index(self):
        p = LeastWorkLeftPolicy()
        p.reset(3, np.random.default_rng(0))
        state = FakeState(work=[0.0, 0.0, 0.0], queues=[0, 0, 0])
        assert p.choose_host(job(1.0), state) == 0

    def test_sq_picks_min_queue(self):
        p = ShortestQueuePolicy()
        p.reset(3, np.random.default_rng(0))
        state = FakeState(work=[0.0, 0.0, 0.0], queues=[3, 0, 2])
        assert p.choose_host(job(1.0), state) == 1


class TestSITA:
    def test_host_for_size(self):
        p = SITAPolicy([10.0, 100.0])
        p.reset(3, np.random.default_rng(0))
        assert p.host_for_size(5.0) == 0
        assert p.host_for_size(10.0) == 0  # boundary goes short
        assert p.host_for_size(50.0) == 1
        assert p.host_for_size(100.0) == 1
        assert p.host_for_size(5000.0) == 2

    def test_uses_estimate_not_size(self):
        p = SITAPolicy([10.0])
        p.reset(2, np.random.default_rng(0))
        j = job(size=100.0, est=5.0)
        assert p.choose_host(j, None) == 0

    def test_batch_matches_scalar(self):
        p = SITAPolicy([10.0, 100.0])
        p.reset(3, np.random.default_rng(0))
        sizes = np.array([1.0, 10.0, 11.0, 100.0, 101.0])
        batch = p.assign_batch(sizes, np.random.default_rng(0))
        scalar = [p.host_for_size(s) for s in sizes]
        assert list(batch) == scalar

    def test_cutoff_count_enforced_on_reset(self):
        p = SITAPolicy([10.0])
        with pytest.raises(ValueError):
            p.reset(3, np.random.default_rng(0))


class TestGroupedSITA:
    def test_groups(self):
        p = GroupedSITAPolicy(cutoff=50.0, n_short_hosts=2)
        p.reset(5, np.random.default_rng(0))
        assert p.group_slice(short=True) == slice(0, 2)
        assert p.group_slice(short=False) == slice(2, 5)

    def test_dispatch_within_group(self):
        p = GroupedSITAPolicy(cutoff=50.0, n_short_hosts=2)
        p.reset(4, np.random.default_rng(0))
        state = FakeState(work=[9.0, 1.0, 7.0, 2.0], queues=[0, 0, 0, 0])
        assert p.choose_host(job(10.0), state) == 1  # short group: hosts 0-1
        assert p.choose_host(job(500.0), state) == 3  # long group: hosts 2-3

    def test_needs_a_long_host(self):
        p = GroupedSITAPolicy(cutoff=50.0, n_short_hosts=2)
        with pytest.raises(ValueError):
            p.reset(2, np.random.default_rng(0))

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupedSITAPolicy(cutoff=-1.0, n_short_hosts=1)
        with pytest.raises(ValueError):
            GroupedSITAPolicy(cutoff=1.0, n_short_hosts=0)


class TestTAGSAndCentral:
    def test_tags_kind(self):
        p = TAGSPolicy([10.0])
        assert p.kind == "tags"
        p.reset(2, np.random.default_rng(0))

    def test_tags_needs_cutoffs(self):
        with pytest.raises(ValueError):
            TAGSPolicy([])

    def test_central_has_no_choose_host(self):
        p = CentralQueuePolicy()
        p.reset(2, np.random.default_rng(0))
        with pytest.raises(NotImplementedError):
            p.choose_host(job(1.0), None)

    def test_reset_validates_host_count(self):
        with pytest.raises(ValueError):
            RandomPolicy().reset(0, np.random.default_rng(0))
