"""Tests for fairness metrics and the headline fairness claims."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cutoffs import fair_cutoff
from repro.core.fairness import (
    class_fairness_gap,
    fairness_gap,
    slowdown_profile,
)
from repro.core.policies import SITAPolicy
from repro.sim.metrics import SimulationResult
from repro.sim.runner import simulate
from repro.workloads.catalog import c90


def make_result(sizes, waits):
    sizes = np.asarray(sizes, dtype=float)
    return SimulationResult(
        policy_name="x",
        n_hosts=1,
        arrival_times=np.arange(sizes.size, dtype=float),
        sizes=sizes,
        wait_times=np.asarray(waits, dtype=float),
        host_assignments=np.zeros(sizes.size, dtype=int),
    )


class TestSlowdownProfile:
    def test_buckets_cover_all_jobs(self, rng):
        sizes = rng.lognormal(2.0, 1.5, 500)
        result = make_result(sizes, rng.exponential(5.0, 500))
        p = slowdown_profile(result, n_buckets=8)
        assert int(np.sum(p.counts)) == 500
        assert p.edges.size == 9

    def test_uniform_slowdown_profile_flat(self):
        sizes = np.array([1.0, 10.0, 100.0, 1000.0] * 50)
        waits = sizes * 2.0  # slowdown exactly 3 for everyone
        p = slowdown_profile(make_result(sizes, waits), n_buckets=4)
        populated = p.mean_slowdown[p.counts > 0]
        np.testing.assert_allclose(populated, 3.0, rtol=1e-9)
        assert p.gap() == pytest.approx(1.0)

    def test_biased_profile_detected(self):
        # Short jobs suffer, long jobs fly: gap must be large.
        sizes = np.array([1.0] * 100 + [1000.0] * 100)
        waits = np.array([50.0] * 100 + [0.0] * 100)
        gap = fairness_gap(make_result(sizes, waits), n_buckets=4)
        assert gap > 10.0

    def test_identical_sizes_rejected(self):
        result = make_result(np.ones(50), np.zeros(50))
        with pytest.raises(ValueError):
            slowdown_profile(result)

    def test_min_bucket_count_filters_noise(self):
        sizes = np.concatenate([np.full(98, 10.0), [1.0, 1000.0]])
        waits = np.concatenate([np.zeros(98), [100.0, 0.0]])
        # The two extreme jobs are singleton buckets -> ignored.
        with pytest.raises(ValueError):
            fairness_gap(make_result(sizes, waits), n_buckets=5, min_bucket_count=10)

    def test_needs_at_least_two_buckets(self):
        result = make_result(np.array([1.0, 2.0]), np.zeros(2))
        with pytest.raises(ValueError):
            slowdown_profile(result, n_buckets=1)


class TestClassGap:
    def test_unbiased_is_one(self):
        sizes = np.array([1.0, 1.0, 100.0, 100.0])
        waits = np.array([1.0, 1.0, 100.0, 100.0])  # slowdown 2 for all
        assert class_fairness_gap(make_result(sizes, waits), 10.0) == pytest.approx(1.0)

    def test_direction(self):
        sizes = np.array([1.0, 100.0])
        waits = np.array([9.0, 0.0])  # shorts slowed 10x, longs 1x
        assert class_fairness_gap(make_result(sizes, waits), 10.0) == pytest.approx(10.0)


class TestEndToEndFairness:
    """SITA-U-fair must actually be fair in simulation (paper fig 4)."""

    @pytest.fixture(scope="class")
    def fair_result(self):
        w = c90()
        load = 0.7
        cutoff = fair_cutoff(load, w.service_dist)
        trace = w.make_trace(load=load, n_hosts=2, n_jobs=120_000, rng=55)
        result = simulate(trace, SITAPolicy([cutoff], name="sita-u-fair"), 2, rng=0)
        return result, cutoff

    def test_class_gap_near_one(self, fair_result):
        result, cutoff = fair_result
        gap = class_fairness_gap(result, cutoff, warmup_fraction=0.1)
        assert 0.4 < gap < 2.5  # heavy-tail sampling noise allowed

    def test_fairer_than_sita_e(self, fair_result):
        from repro.core.cutoffs import equal_load_cutoffs

        result, cutoff = fair_result
        w = c90()
        ce = equal_load_cutoffs(w.service_dist, 2)[0]
        trace = w.make_trace(load=0.7, n_hosts=2, n_jobs=120_000, rng=55)
        res_e = simulate(trace, SITAPolicy([ce], name="sita-e"), 2, rng=0)
        gap_fair = class_fairness_gap(result, cutoff, warmup_fraction=0.1)
        gap_e = class_fairness_gap(res_e, ce, warmup_fraction=0.1)
        assert abs(math.log(gap_fair)) < abs(math.log(gap_e))
