"""Edge cases and failure injection across the stack.

Production code meets malformed inputs, boundary loads, degenerate
workloads and adversarial traces; this module makes sure every layer
fails loudly (never silently wrong) or degrades gracefully.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.cutoffs import (
    equal_load_cutoffs,
    fair_cutoff,
    feasible_cutoff_range,
    opt_cutoff,
)
from repro.core.policies import (
    LeastWorkLeftPolicy,
    RandomPolicy,
    SITAPolicy,
)
from repro.sim.runner import simulate
from repro.workloads.catalog import c90
from repro.workloads.distributions import Deterministic, Empirical, Lognormal
from repro.workloads.traces import Trace, read_swf


class TestDegenerateTraces:
    def test_single_job(self):
        trace = Trace([5.0], [10.0])
        r = simulate(trace, RandomPolicy(), 2, rng=0)
        assert r.wait_times[0] == 0.0
        assert r.slowdowns[0] == 1.0

    def test_simultaneous_arrivals(self):
        trace = Trace([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        r = simulate(trace, LeastWorkLeftPolicy(), 2, rng=0)
        # Two run immediately; the third waits exactly one service.
        assert sorted(r.wait_times) == pytest.approx([0.0, 0.0, 1.0])

    def test_identical_sizes_exact_waits(self):
        # Arrivals every 1s, service 3s, 2 LWL hosts: each host gets every
        # other job (gap 2 < service 3), so its backlog grows by 1s per
        # job: wait of the i-th arrival is floor(i/2).
        trace = Trace(np.arange(50, dtype=float), np.full(50, 3.0))
        r = simulate(trace, LeastWorkLeftPolicy(), 2, rng=0)
        expected = np.arange(50) // 2
        np.testing.assert_allclose(r.wait_times, expected, atol=1e-9)

    def test_extreme_size_ratio(self):
        # 12 orders of magnitude between smallest and largest job.
        trace = Trace([0.0, 1.0, 2.0], [1e-6, 1e6, 1e-6])
        r = simulate(trace, SITAPolicy([1.0]), 2, rng=0)
        assert np.isfinite(r.slowdowns).all()
        assert r.host_assignments[1] == 1

    def test_huge_time_offsets(self):
        # Arrivals far from zero must not lose precision catastrophically.
        base = 1.6e9  # epoch-like timestamps
        trace = Trace(base + np.arange(100, dtype=float) * 10.0, np.full(100, 5.0))
        r = simulate(trace, LeastWorkLeftPolicy(), 1, rng=0)
        assert np.all(r.wait_times >= 0.0)
        assert np.all(r.wait_times < 10.0)


class TestUnstableConfigurations:
    def test_overloaded_single_host_still_simulates(self):
        """rho > 1 is not an error for a finite trace — waits just grow."""
        w = c90()
        trace = w.make_trace(load=1.5, n_hosts=1, n_jobs=2000, rng=0)
        r = simulate(trace, RandomPolicy(), 1, rng=0)
        # Waits trend upward: the last decile waits far more than the first.
        first = float(np.mean(r.wait_times[:200]))
        last = float(np.mean(r.wait_times[-200:]))
        assert last > first

    def test_analytic_layers_reject_overload(self):
        d = Lognormal.fit(100.0, 4.0)
        with pytest.raises(ValueError):
            feasible_cutoff_range(1.2, d)
        with pytest.raises(ValueError):
            opt_cutoff(1.0, d)

    def test_sita_with_all_jobs_on_one_host(self):
        trace = Trace(np.arange(100, dtype=float) * 100, np.full(100, 5.0))
        # Cutoff above every size: host 1 idles, host 0 takes everything.
        r = simulate(trace, SITAPolicy([10.0]), 2, rng=0)
        assert np.all(r.host_assignments == 0)
        assert r.summary().host_load_fraction[1] == 0.0


class TestDegenerateDistributions:
    def test_deterministic_cutoffs_rejected(self):
        d = Deterministic(5.0)
        # No cutoff can split a point mass into two non-empty classes.
        with pytest.raises(ValueError):
            equal_load_cutoffs(d, 2)

    def test_two_point_empirical(self):
        e = Empirical([1.0, 1.0, 1.0, 1000.0])
        cuts = equal_load_cutoffs(e, 2)
        assert 1.0 <= cuts[0] < 1000.0

    def test_fair_cutoff_low_load_extremes(self):
        d = c90().service_dist
        c = fair_cutoff(0.02, d)
        assert d.lower < c < d.upper

    def test_empirical_single_value(self):
        e = Empirical([5.0])
        assert e.mean == 5.0
        assert e.ppf(0.5) == 5.0
        with pytest.raises(ValueError):
            equal_load_cutoffs(e, 2)


class TestMalformedSWF:
    def test_garbage_numbers(self, tmp_path):
        p = tmp_path / "bad.swf"
        p.write_text("1 abc 0 10 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n")
        with pytest.raises(ValueError):
            read_swf(p)

    def test_only_bad_runtimes(self, tmp_path):
        p = tmp_path / "empty.swf"
        p.write_text(
            "1 0 0 -1 1 -1 -1 1 -1 -1 0 1 1 -1 1 -1 -1 -1\n"
            "2 1 0 0 1 -1 -1 1 -1 -1 0 1 1 -1 1 -1 -1 -1\n"
        )
        with pytest.raises(ValueError, match="no usable jobs"):
            read_swf(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_swf(tmp_path / "nope.swf")


class TestNumericRobustness:
    def test_long_horizon_precision(self):
        """A year-long heavy-load trace must not produce negative waits."""
        w = c90()
        trace = w.make_trace(load=0.9, n_hosts=2, n_jobs=50_000, rng=3)
        assert trace.duration > 1e8  # ~ several years of simulated time
        r = simulate(trace, LeastWorkLeftPolicy(), 2, rng=0)
        assert np.all(r.wait_times >= 0.0)

    def test_tiny_job_slowdowns_finite(self):
        sizes = np.concatenate([np.full(500, 1e-9), np.full(5, 1e5)])
        rng = np.random.default_rng(0)
        order = rng.permutation(sizes.size)
        trace = Trace(np.cumsum(rng.exponential(10.0, sizes.size)), sizes[order])
        r = simulate(trace, LeastWorkLeftPolicy(), 2, rng=0)
        assert np.all(np.isfinite(r.slowdowns))

    def test_bounded_pareto_near_degenerate(self):
        from repro.workloads.distributions import BoundedPareto

        d = BoundedPareto(1.0, 1.0 + 1e-9, 1.0)
        assert d.mean == pytest.approx(1.0, rel=1e-6)
        assert d.scv == pytest.approx(0.0, abs=1e-8)
