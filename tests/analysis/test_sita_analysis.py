"""Tests for the per-slice SITA analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.mg1 import mg1_metrics
from repro.analysis.sita_analysis import analyze_sita, sita_host_loads
from repro.core.policies import SITAPolicy
from repro.sim.runner import simulate
from repro.workloads.distributions import Exponential, Lognormal
from tests.conftest import make_poisson_trace


@pytest.fixture(scope="module")
def dist():
    return Lognormal.fit(100.0, 16.0)


class TestConsistency:
    def test_host_loads_sum_to_total(self, dist):
        lam = 2 * 0.7 / dist.mean
        loads = sita_host_loads(lam, dist, [dist.ppf(0.9)])
        assert float(np.sum(loads)) == pytest.approx(2 * 0.7, rel=1e-9)

    def test_job_and_load_fractions_sum_to_one(self, dist):
        lam = 2 * 0.5 / dist.mean
        a = analyze_sita(lam, dist, [dist.ppf(0.95)])
        assert sum(h.job_fraction for h in a.hosts) == pytest.approx(1.0, rel=1e-9)
        assert sum(h.load_fraction for h in a.hosts) == pytest.approx(1.0, rel=1e-9)

    def test_mixture_of_class_slowdowns(self, dist):
        lam = 2 * 0.6 / dist.mean
        a = analyze_sita(lam, dist, [dist.ppf(0.9)])
        mix = sum(
            h.job_fraction * s
            for h, s in zip(a.hosts, a.class_mean_slowdowns())
        )
        assert a.mean_slowdown == pytest.approx(mix, rel=1e-9)

    def test_single_interval_is_plain_mg1(self, dist):
        # A cutoff beyond the support routes everything to host 0.
        lam = 0.5 / dist.mean
        a = analyze_sita(lam, dist, [dist.ppf(1 - 1e-15) * 10])
        m = mg1_metrics(lam, dist)
        assert a.mean_slowdown == pytest.approx(m.mean_slowdown, rel=1e-6)

    def test_empty_slice_reported(self, dist):
        lam = 0.5 / dist.mean
        a = analyze_sita(lam, dist, [dist.ppf(1 - 1e-15) * 10])
        assert a.hosts[1].mg1 is None
        assert a.hosts[1].job_fraction == 0.0

    def test_variance_nonnegative(self, dist):
        lam = 2 * 0.7 / dist.mean
        a = analyze_sita(lam, dist, [dist.ppf(0.97)])
        assert a.var_slowdown >= 0.0

    def test_infeasible_raises(self, dist):
        lam = 2 * 0.9 / dist.mean
        # Cutoff at the 10th percentile: host 1 carries ~all the load.
        with pytest.raises(ValueError, match="infeasible"):
            analyze_sita(lam, dist, [dist.ppf(0.1)])

    def test_decreasing_cutoffs_rejected(self, dist):
        with pytest.raises(ValueError):
            analyze_sita(0.001, dist, [100.0, 50.0])


class TestVarianceReduction:
    def test_sita_slices_have_lower_scv(self, dist):
        """The paper's core intuition: each slice sees reduced variability."""
        cut = dist.ppf(0.97)
        short = dist.conditional(0.0, cut)
        assert short.scv < dist.scv / 3.0

    def test_exponential_gains_little(self):
        """With C² = 1 SITA's variance reduction is marginal — the
        'distribution matters' conclusion in reverse."""
        d = Exponential(100.0)
        lam = 2 * 0.7 / d.mean
        from repro.core.cutoffs import equal_load_cutoffs

        cut = equal_load_cutoffs(d, 2)
        sita = analyze_sita(lam, d, cut)
        single = mg1_metrics(lam / 2, d)
        # Waits, not slowdowns: E[1/X] diverges for exponential service.
        assert sita.mean_wait > single.mean_wait / 4.0


class TestAgainstSimulation:
    def test_mean_slowdown_matches_simulation(self, dist):
        rho = 0.6
        cut = dist.ppf(0.95)
        trace = make_poisson_trace(dist, rho, 2, 400_000, seed=31)
        result = simulate(trace, SITAPolicy([cut]), 2, rng=0)
        sim = float(np.mean(result.trimmed(0.1).slowdowns))
        a = analyze_sita(2 * rho / dist.mean, dist, [cut])
        assert sim == pytest.approx(a.mean_slowdown, rel=0.15)

    def test_load_fractions_match_simulation(self, dist):
        rho = 0.5
        cut = dist.ppf(0.9)
        trace = make_poisson_trace(dist, rho, 2, 200_000, seed=32)
        result = simulate(trace, SITAPolicy([cut]), 2, rng=0)
        summ = result.summary()
        a = analyze_sita(2 * rho / dist.mean, dist, [cut])
        assert summ.host_load_fraction[0] == pytest.approx(
            a.hosts[0].load_fraction, abs=0.03
        )
        assert summ.host_job_fraction[0] == pytest.approx(
            a.hosts[0].job_fraction, abs=0.01
        )
