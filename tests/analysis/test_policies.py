"""Tests for the per-policy analytic predictions (figures 8/9 machinery)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.policies import (
    arrival_rate_for_load,
    predict_lwl,
    predict_random,
    predict_round_robin,
    predict_sita,
)
from repro.core.cutoffs import equal_load_cutoffs
from repro.workloads.distributions import Exponential, Lognormal


@pytest.fixture(scope="module")
def dist():
    return Lognormal.fit(4562.6, 43.0)


class TestRateConversion:
    def test_definition(self, dist):
        lam = arrival_rate_for_load(0.5, dist, 2)
        assert lam * dist.mean / 2 == pytest.approx(0.5)

    @pytest.mark.parametrize("bad", [0.0, 1.0, 1.5])
    def test_rejects_out_of_range(self, dist, bad):
        with pytest.raises(ValueError):
            arrival_rate_for_load(bad, dist, 2)


class TestPaperOrdering:
    """The paper's section 3 ordering must hold analytically."""

    @pytest.mark.parametrize("load", [0.3, 0.5, 0.7, 0.8])
    def test_random_worst_sita_best(self, dist, load):
        cut = equal_load_cutoffs(dist, 2)
        rnd = predict_random(load, dist, 2).mean_slowdown
        lwl = predict_lwl(load, dist, 2).mean_slowdown
        sita = predict_sita(load, dist, 2, cut, "sita-e").mean_slowdown
        assert rnd > lwl > sita

    @pytest.mark.parametrize("load", [0.5, 0.7])
    def test_random_to_sita_gap_is_large(self, dist, load):
        cut = equal_load_cutoffs(dist, 2)
        rnd = predict_random(load, dist, 2).mean_slowdown
        sita = predict_sita(load, dist, 2, cut, "sita-e").mean_slowdown
        assert rnd / sita > 6.0  # paper: "factor of 10"

    def test_round_robin_close_to_random(self, dist):
        """RR only smooths arrivals; size variability dominates (paper §3.3)."""
        rnd = predict_random(0.7, dist, 2).mean_slowdown
        rr = predict_round_robin(0.7, dist, 2).mean_slowdown
        assert rr == pytest.approx(rnd, rel=0.35)
        assert rr < rnd  # slightly better, never worse

    def test_random_insensitive_to_host_count(self, dist):
        """Random with h hosts at system load rho is h independent M/G/1
        queues each at utilisation rho — identical per-job metrics."""
        a = predict_random(0.6, dist, 2).mean_slowdown
        b = predict_random(0.6, dist, 4).mean_slowdown
        assert a == pytest.approx(b, rel=1e-12)

    def test_lwl_improves_with_hosts(self, dist):
        """More hosts at fixed system load help LWL a lot (paper fig 3)."""
        a = predict_lwl(0.7, dist, 2).mean_slowdown
        b = predict_lwl(0.7, dist, 4).mean_slowdown
        assert b < a

    def test_exponential_service_reverses_verdict(self):
        """With C² = 1 there is little to gain from SITA — the workload
        drives the policy choice (paper conclusions)."""
        d = Exponential(100.0)
        cut = equal_load_cutoffs(d, 2)
        # Slowdown diverges for exponential service (density at 0), so the
        # comparison uses mean waiting time.
        lwl = predict_lwl(0.7, d, 2).mean_wait
        sita = predict_sita(0.7, d, 2, cut, "sita-e").mean_wait
        assert lwl < sita


class TestPredictionFields:
    def test_random_variance_finite(self, dist):
        p = predict_random(0.5, dist, 2)
        assert p.var_slowdown > 0 and math.isfinite(p.var_slowdown)

    def test_lwl_variance_is_nan(self, dist):
        assert math.isnan(predict_lwl(0.5, dist, 2).var_slowdown)

    def test_sita_reports_policy_name(self, dist):
        cut = equal_load_cutoffs(dist, 2)
        p = predict_sita(0.5, dist, 2, cut, "sita-e")
        assert p.policy == "sita-e"

    def test_monotone_in_load(self, dist):
        slows = [predict_lwl(l, dist, 2).mean_slowdown for l in (0.2, 0.5, 0.8)]
        assert slows[0] < slows[1] < slows[2]


class TestGroupedSITA:
    def test_reduces_to_mgh_per_group(self, dist):
        """With a cutoff beyond the support everything is one LWL group."""
        from repro.analysis.policies import predict_grouped_sita

        cut = dist.ppf(1 - 1e-15) * 10
        g = predict_grouped_sita(0.5, dist, 4, cut, 3)
        # Short group = full stream on 3 hosts at utilisation 0.5*4/3 — the
        # mean slowdown must match the plain M/G/3 approximation.
        from repro.analysis.mgh import mgh_metrics

        lam = 0.5 * 4 / dist.mean
        expected = mgh_metrics(lam, dist, 3).mean_slowdown
        assert g.mean_slowdown == pytest.approx(expected, rel=1e-6)

    def test_beats_plain_lwl_at_moderate_hosts(self, dist):
        from repro.analysis.policies import predict_grouped_sita
        from repro.core.cutoffs import fair_cutoff, short_host_load_fraction
        import numpy as np

        cut = fair_cutoff(0.7, dist)
        f = short_host_load_fraction(dist, cut)
        for h in (4, 8, 16):
            ns = int(np.clip(round(h * f), 1, h - 1))
            g = predict_grouped_sita(0.7, dist, h, cut, ns)
            l = predict_lwl(0.7, dist, h)
            assert g.mean_slowdown < l.mean_slowdown

    def test_converges_to_lwl_at_many_hosts(self, dist):
        from repro.analysis.policies import predict_grouped_sita
        from repro.core.cutoffs import fair_cutoff, short_host_load_fraction
        import numpy as np

        cut = fair_cutoff(0.7, dist)
        f = short_host_load_fraction(dist, cut)
        ns = int(np.clip(round(64 * f), 1, 63))
        g = predict_grouped_sita(0.7, dist, 64, cut, ns)
        l = predict_lwl(0.7, dist, 64)
        assert g.mean_slowdown == pytest.approx(l.mean_slowdown, rel=1.0)

    def test_group_split_validated(self, dist):
        from repro.analysis.policies import predict_grouped_sita

        with pytest.raises(ValueError):
            predict_grouped_sita(0.5, dist, 4, 100.0, 0)
        with pytest.raises(ValueError):
            predict_grouped_sita(0.5, dist, 4, 100.0, 4)

    def test_matches_grouped_simulation(self, dist):
        """Analytic grouped model vs the grouped-SITA fast simulator."""
        import numpy as np

        from repro.analysis.policies import predict_grouped_sita
        from repro.core.cutoffs import fair_cutoff, short_host_load_fraction
        from repro.core.policies import GroupedSITAPolicy
        from repro.sim.runner import simulate
        from repro.workloads.catalog import c90

        load, h = 0.7, 8
        cut = fair_cutoff(load, dist)
        f = short_host_load_fraction(dist, cut)
        ns = int(np.clip(round(h * f), 1, h - 1))
        trace = c90().make_trace(load=load, n_hosts=h, n_jobs=300_000, rng=17)
        sim = simulate(trace, GroupedSITAPolicy(cut, ns), h, rng=0).summary(0.1)
        ana = predict_grouped_sita(load, dist, h, cut, ns)
        assert sim.mean_slowdown == pytest.approx(ana.mean_slowdown, rel=0.6)


class TestBurstyPredictions:
    def test_reduces_to_poisson_at_scv_one(self, dist):
        from repro.analysis.policies import predict_sita_bursty
        from repro.core.cutoffs import equal_load_cutoffs

        cut = equal_load_cutoffs(dist, 2)
        poisson = predict_sita(0.6, dist, 2, cut, "x")
        bursty = predict_sita_bursty(0.6, dist, 2, cut, arrival_scv=1.0)
        assert bursty.mean_slowdown == pytest.approx(poisson.mean_slowdown, rel=1e-9)

    def test_burstiness_hurts(self, dist):
        from repro.analysis.policies import predict_lwl_bursty, predict_sita_bursty
        from repro.core.cutoffs import fair_cutoff

        cut = [fair_cutoff(0.7, dist)]
        calm = predict_sita_bursty(0.7, dist, 2, cut, arrival_scv=1.0)
        storm = predict_sita_bursty(0.7, dist, 2, cut, arrival_scv=50.0)
        assert storm.mean_slowdown > calm.mean_slowdown
        assert (
            predict_lwl_bursty(0.7, dist, 2, 50.0).mean_wait
            > predict_lwl_bursty(0.7, dist, 2, 1.0).mean_wait
        )

    def test_gap_closes_with_burstiness(self, dist):
        """The §6 trend: SITA-U's advantage over LWL shrinks as the
        arrival SCV grows — now visible analytically, not just in sim."""
        from repro.analysis.policies import predict_lwl_bursty, predict_sita_bursty
        from repro.core.cutoffs import fair_cutoff

        load = 0.9
        cut = [fair_cutoff(load, dist)]

        def ratio(ca2):
            s = predict_sita_bursty(load, dist, 2, cut, ca2).mean_slowdown
            l = predict_lwl_bursty(load, dist, 2, ca2).mean_slowdown
            return s / l

        assert ratio(200.0) > ratio(1.0)

    def test_short_host_keeps_the_burstiness(self, dist):
        """The thinning asymmetry: the short host's effective arrival SCV
        stays near the stream's, the long host's collapses toward 1."""
        from repro.core.cutoffs import equal_load_cutoffs

        cut = equal_load_cutoffs(dist, 2)[0]
        p_short = dist.prob_interval(0.0, cut)
        p_long = 1.0 - p_short
        ca2 = 40.0
        assert 1.0 + p_short * (ca2 - 1.0) > 30.0
        assert 1.0 + p_long * (ca2 - 1.0) < 3.0

    def test_against_bursty_simulation(self, dist):
        from repro.analysis.policies import predict_sita_bursty
        from repro.core.cutoffs import fair_cutoff
        from repro.core.policies import SITAPolicy
        from repro.sim.runner import simulate
        from repro.workloads.arrivals import RenewalArrivals
        from repro.workloads.catalog import c90

        load, scv = 0.7, 20.0
        cut = fair_cutoff(load, dist)
        trace = c90().make_trace(
            load=load, n_hosts=2, n_jobs=300_000, rng=77,
            arrivals=RenewalArrivals.bursty(1.0, scv),
        )
        sim = simulate(trace, SITAPolicy([cut]), 2, rng=0).summary(0.1)
        ana = predict_sita_bursty(load, dist, 2, [cut], scv)
        # Allen-Cunneen is a rough approximation; demand the right ballpark.
        assert sim.mean_slowdown == pytest.approx(ana.mean_slowdown, rel=0.6)

    def test_validation(self, dist):
        from repro.analysis.policies import predict_lwl_bursty, predict_sita_bursty

        with pytest.raises(ValueError):
            predict_sita_bursty(0.5, dist, 2, [1000.0], -1.0)
        with pytest.raises(ValueError):
            predict_lwl_bursty(0.5, dist, 2, -1.0)
