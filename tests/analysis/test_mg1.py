"""Tests for the M/G/1 Pollaczek–Khinchine machinery.

The strongest checks are against closed-form M/M/1 results (where every
metric has an exact independent formula) and against direct simulation of
a single FCFS host — the simulator and the analysis must be two views of
the same model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.mg1 import mg1_metrics, utilisation
from repro.core.policies import RandomPolicy
from repro.sim.runner import simulate
from repro.workloads.distributions import (
    BoundedPareto,
    Deterministic,
    Erlang,
    Exponential,
    Lognormal,
)
from tests.conftest import make_poisson_trace


class TestAgainstMM1ClosedForms:
    """M/M/1: E[W] = rho/(mu - lambda) exactly."""

    @pytest.mark.parametrize("rho", [0.1, 0.5, 0.9])
    def test_mean_wait(self, rho):
        mean = 10.0
        lam = rho / mean
        m = mg1_metrics(lam, Exponential(mean))
        expected = rho * mean / (1.0 - rho)
        assert m.mean_wait == pytest.approx(expected, rel=1e-12)

    def test_queue_length_little(self):
        m = mg1_metrics(0.05, Exponential(10.0))
        assert m.mean_queue_length == pytest.approx(0.05 * m.mean_wait, rel=1e-12)

    def test_mm1_wait_variance(self):
        # M/M/1 FCFS waiting time: P(W=0)=1-rho, exp tail; known moments:
        # E[W^2] = 2 rho / (mu^2 (1-rho)^2).
        mean, rho = 2.0, 0.6
        lam = rho / mean
        m = mg1_metrics(lam, Exponential(mean))
        expected_w2 = 2.0 * rho * mean**2 / (1.0 - rho) ** 2
        assert m.second_moment_wait == pytest.approx(expected_w2, rel=1e-12)


class TestMD1:
    def test_deterministic_halves_wait(self):
        """E[W_{M/D/1}] = E[W_{M/M/1}]/2 at the same mean and load."""
        mean, rho = 5.0, 0.7
        lam = rho / mean
        md1 = mg1_metrics(lam, Deterministic(mean))
        mm1 = mg1_metrics(lam, Exponential(mean))
        assert md1.mean_wait == pytest.approx(mm1.mean_wait / 2.0, rel=1e-12)


class TestStability:
    def test_unstable_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            mg1_metrics(0.2, Exponential(10.0))

    def test_utilisation(self):
        assert utilisation(0.05, Exponential(10.0)) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            utilisation(0.0, Exponential(1.0))

    def test_wait_diverges_near_saturation(self):
        mean = 1.0
        w_low = mg1_metrics(0.5, Exponential(mean)).mean_wait
        w_high = mg1_metrics(0.999, Exponential(mean)).mean_wait
        assert w_high > 100 * w_low


class TestAgainstSimulation:
    """A 1-host server fed Poisson arrivals *is* an M/G/1 queue."""

    @pytest.mark.parametrize(
        "dist,rho",
        [
            (Exponential(10.0), 0.5),
            (Erlang(4, 10.0), 0.7),
            (Lognormal.fit(100.0, 4.0), 0.5),
        ],
        ids=["mm1", "me1", "mlogn1"],
    )
    def test_mean_wait_matches(self, dist, rho):
        trace = make_poisson_trace(dist, rho, 1, 400_000, seed=5)
        result = simulate(trace, RandomPolicy(), 1, rng=0)
        sim_wait = float(np.mean(result.trimmed(0.1).wait_times))
        pred = mg1_metrics(rho / dist.mean, dist).mean_wait
        assert sim_wait == pytest.approx(pred, rel=0.1)

    def test_mean_wait_matches_heavy_tail_via_empirical_moments(self):
        """For a heavy tail (BP alpha=1.5) the sample E[X^2] converges
        slowly, so the fair check applies PK to the *trace's own* empirical
        distribution — isolating the queueing dynamics from sampling noise."""
        from repro.workloads.distributions import Empirical

        dist = BoundedPareto(1.0, 1e4, 1.5)
        rho = 0.5
        trace = make_poisson_trace(dist, rho, 1, 400_000, seed=5)
        result = simulate(trace, RandomPolicy(), 1, rng=0)
        sim_wait = float(np.mean(result.trimmed(0.1).wait_times))
        emp = Empirical(trace.service_times)
        lam = (trace.n_jobs - 1) / trace.duration
        pred = mg1_metrics(lam, emp).mean_wait
        assert sim_wait == pytest.approx(pred, rel=0.15)

    def test_mean_slowdown_matches(self):
        dist = Lognormal.fit(100.0, 4.0)
        rho = 0.6
        trace = make_poisson_trace(dist, rho, 1, 400_000, seed=6)
        result = simulate(trace, RandomPolicy(), 1, rng=0)
        sim_slow = float(np.mean(result.trimmed(0.1).slowdowns))
        pred = mg1_metrics(rho / dist.mean, dist).mean_slowdown
        assert sim_slow == pytest.approx(pred, rel=0.1)

    def test_var_slowdown_matches(self):
        # Use a moderate-variability distribution so 4e5 jobs converge
        # (and one whose E[1/X^2] is finite — Erlang-2's is not).
        dist = Lognormal.fit(50.0, 2.0)
        rho = 0.5
        trace = make_poisson_trace(dist, rho, 1, 400_000, seed=7)
        result = simulate(trace, RandomPolicy(), 1, rng=0)
        sim_var = float(np.var(result.trimmed(0.1).slowdowns))
        pred = mg1_metrics(rho / dist.mean, dist).var_slowdown
        assert sim_var == pytest.approx(pred, rel=0.25)


class TestSlowdownFactorisation:
    def test_mean_slowdown_is_one_plus_waiting(self):
        m = mg1_metrics(0.01, Lognormal.fit(50.0, 9.0))
        assert m.mean_slowdown == pytest.approx(1.0 + m.mean_waiting_slowdown)

    def test_heavier_service_tail_raises_wait(self):
        lam = 0.005
        light = mg1_metrics(lam, Lognormal.fit(100.0, 1.0))
        heavy = mg1_metrics(lam, Lognormal.fit(100.0, 40.0))
        assert heavy.mean_wait > 10 * light.mean_wait
