"""Tests for Laplace-transform inversion of the M/G/1 waiting time."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.mg1 import mg1_metrics
from repro.analysis.transforms import (
    LaplaceEvaluator,
    mg1_waiting_cdf,
    mg1_waiting_slowdown_ccdf,
)
from repro.core.policies import RandomPolicy
from repro.sim.runner import simulate
from repro.workloads.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Hyperexponential,
    Lognormal,
)
from tests.conftest import make_poisson_trace


class TestLaplaceEvaluator:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(5.0),
            Erlang(3, 9.0),
            Hyperexponential([0.3, 0.7], [1.0, 20.0]),
            Deterministic(4.0),
            Lognormal.fit(100.0, 8.0),
        ],
        ids=["exp", "erlang", "h2", "det", "logn"],
    )
    def test_at_zero_is_one(self, dist):
        lt = LaplaceEvaluator(dist)
        assert lt(0.0).real == pytest.approx(1.0, rel=1e-6)

    @pytest.mark.parametrize(
        "dist",
        [Exponential(5.0), Erlang(3, 9.0), Lognormal.fit(50.0, 4.0)],
        ids=["exp", "erlang", "logn"],
    )
    def test_derivative_at_zero_is_minus_mean(self, dist):
        lt = LaplaceEvaluator(dist)
        eps = 1e-7
        deriv = (lt(eps).real - lt(0.0).real) / eps
        assert -deriv == pytest.approx(dist.mean, rel=1e-3)

    def test_matches_monte_carlo(self, rng):
        d = Lognormal.fit(100.0, 8.0)
        lt = LaplaceEvaluator(d)
        x = d.sample(400_000, rng)
        for s in (0.001, 0.01, 0.1):
            assert lt(s).real == pytest.approx(np.mean(np.exp(-s * x)), rel=0.01)

    def test_complex_argument(self):
        lt = LaplaceEvaluator(Exponential(2.0))
        s = complex(0.1, 0.5)
        expected = 0.5 / (0.5 + s)
        got = lt(s)
        assert got.real == pytest.approx(expected.real, rel=1e-9)
        assert got.imag == pytest.approx(expected.imag, rel=1e-9)


class TestWaitingCdf:
    def test_exact_mm1(self):
        d = Exponential(10.0)
        rho = 0.7
        lam = rho / d.mean
        mu = 1.0 / d.mean
        for t in (0.5, 5.0, 50.0, 300.0):
            exact = 1.0 - rho * math.exp(-mu * (1 - rho) * t)
            assert mg1_waiting_cdf(lam, d, t) == pytest.approx(exact, abs=1e-6)

    def test_atom_at_zero(self):
        d = Exponential(10.0)
        assert mg1_waiting_cdf(0.05, d, 0.0) == pytest.approx(0.5)

    def test_negative_t(self):
        assert mg1_waiting_cdf(0.05, Exponential(10.0), -1.0) == 0.0

    def test_monotone_and_bounded(self):
        d = Lognormal.fit(100.0, 8.0)
        lam = 0.6 / d.mean
        ts = np.logspace(0, 5, 20)
        vals = mg1_waiting_cdf(lam, d, ts)
        assert np.all(np.diff(vals) >= -1e-6)
        assert np.all((0.0 <= vals) & (vals <= 1.0))

    def test_mean_from_cdf(self):
        """E[W] from numerically integrating the CCDF matches PK."""
        d = Erlang(2, 10.0)
        lam = 0.6 / d.mean
        ts = np.linspace(1e-3, 400.0, 2000)
        ccdf = 1.0 - mg1_waiting_cdf(lam, d, ts)
        mean_w = float(np.trapezoid(ccdf, ts))
        assert mean_w == pytest.approx(mg1_metrics(lam, d).mean_wait, rel=0.01)

    def test_unstable_raises(self):
        with pytest.raises(ValueError):
            mg1_waiting_cdf(1.0, Exponential(10.0), 1.0)

    def test_against_simulation(self):
        d = Lognormal.fit(50.0, 4.0)
        rho = 0.6
        trace = make_poisson_trace(d, rho, 1, 300_000, seed=41)
        result = simulate(trace, RandomPolicy(), 1, rng=0).trimmed(0.1)
        lam = rho / d.mean
        for t in (10.0, 100.0, 1000.0):
            sim = float(np.mean(result.wait_times <= t))
            ana = mg1_waiting_cdf(lam, d, t)
            assert sim == pytest.approx(ana, abs=0.03)


class TestSlowdownTail:
    def test_against_simulation(self):
        d = Lognormal.fit(50.0, 4.0)
        rho = 0.6
        trace = make_poisson_trace(d, rho, 1, 300_000, seed=42)
        result = simulate(trace, RandomPolicy(), 1, rng=0).trimmed(0.1)
        lam = rho / d.mean
        for y in (1.0, 10.0, 100.0):
            sim = float(np.mean(result.waiting_slowdowns > y))
            ana = mg1_waiting_slowdown_ccdf(lam, d, y)
            assert sim == pytest.approx(ana, abs=0.03)

    def test_monotone_in_y(self):
        d = Lognormal.fit(100.0, 8.0)
        lam = 0.5 / d.mean
        vals = mg1_waiting_slowdown_ccdf(lam, d, np.array([0.1, 1.0, 10.0, 100.0]))
        assert np.all(np.diff(vals) <= 1e-9)

    def test_negative_threshold(self):
        d = Exponential(10.0)
        assert mg1_waiting_slowdown_ccdf(0.05, d, -1.0) == 1.0


class TestSlowdownQuantile:
    def test_matches_simulation(self):
        from repro.analysis.transforms import mg1_waiting_slowdown_quantile

        d = Lognormal.fit(50.0, 4.0)
        rho = 0.6
        trace = make_poisson_trace(d, rho, 1, 300_000, seed=43)
        result = simulate(trace, RandomPolicy(), 1, rng=0).trimmed(0.1)
        lam = rho / d.mean
        for q in (0.9, 0.99):
            sim = float(np.quantile(result.waiting_slowdowns, q))
            ana = mg1_waiting_slowdown_quantile(lam, d, q)
            assert ana == pytest.approx(sim, rel=0.25)

    def test_zero_below_idle_probability(self):
        from repro.analysis.transforms import mg1_waiting_slowdown_quantile

        d = Exponential(10.0)
        # rho = 0.3: 70% of jobs wait 0, so the median waiting slowdown is 0.
        assert mg1_waiting_slowdown_quantile(0.03, d, 0.5) == 0.0

    def test_monotone_in_q(self):
        from repro.analysis.transforms import mg1_waiting_slowdown_quantile

        d = Lognormal.fit(100.0, 8.0)
        lam = 0.7 / d.mean
        q90 = mg1_waiting_slowdown_quantile(lam, d, 0.90)
        q99 = mg1_waiting_slowdown_quantile(lam, d, 0.99)
        assert q99 > q90 > 0.0

    def test_validation(self):
        from repro.analysis.transforms import mg1_waiting_slowdown_quantile

        with pytest.raises(ValueError):
            mg1_waiting_slowdown_quantile(0.01, Exponential(10.0), 1.5)
