"""Tests for Erlang-B/C and M/M/h metrics against textbook values."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.mmh import erlang_b, erlang_c, mmh_metrics
from repro.core.policies import CentralQueuePolicy
from repro.sim.runner import simulate
from repro.workloads.distributions import Exponential
from tests.conftest import make_poisson_trace


def erlang_b_direct(n: int, a: float) -> float:
    """Textbook definition: (a^n/n!) / sum_k (a^k/k!)."""
    terms = [a**k / math.factorial(k) for k in range(n + 1)]
    return terms[-1] / sum(terms)


class TestErlangB:
    @pytest.mark.parametrize("n,a", [(1, 0.5), (2, 1.0), (5, 3.0), (10, 8.0), (20, 15.0)])
    def test_matches_direct_formula(self, n, a):
        assert erlang_b(n, a) == pytest.approx(erlang_b_direct(n, a), rel=1e-12)

    def test_single_server(self):
        # B(1, a) = a / (1 + a)
        assert erlang_b(1, 2.0) == pytest.approx(2.0 / 3.0)

    def test_monotone_in_load(self):
        assert erlang_b(5, 1.0) < erlang_b(5, 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(0, 1.0)
        with pytest.raises(ValueError):
            erlang_b(2, 0.0)


class TestErlangC:
    def test_single_server_equals_rho(self):
        # C(1, rho) = rho for M/M/1.
        assert erlang_c(1, 0.7) == pytest.approx(0.7, rel=1e-12)

    def test_known_value(self):
        # Standard table value: C(2, 1.0) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0, rel=1e-9)

    def test_unstable_raises(self):
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)

    def test_bounded_probability(self):
        for n, a in [(2, 1.5), (8, 6.0), (32, 30.0)]:
            c = erlang_c(n, a)
            assert 0.0 < c < 1.0


class TestMMhMetrics:
    def test_reduces_to_mm1(self):
        mean, rho = 4.0, 0.6
        m = mmh_metrics(rho / mean, mean, 1)
        assert m.mean_wait == pytest.approx(rho * mean / (1 - rho), rel=1e-12)

    def test_little_law(self):
        m = mmh_metrics(0.3, 5.0, 4)
        assert m.mean_queue_length == pytest.approx(0.3 * m.mean_wait, rel=1e-12)

    def test_pooling_beats_splitting(self):
        # M/M/4 at the same per-server load waits less than M/M/1.
        mean = 1.0
        w1 = mmh_metrics(0.8, mean, 1).mean_wait
        w4 = mmh_metrics(3.2, mean, 4).mean_wait
        assert w4 < w1

    def test_against_simulation(self):
        """Central-Queue on exponential service is an M/M/h queue."""
        dist = Exponential(10.0)
        rho, h = 0.7, 3
        trace = make_poisson_trace(dist, rho, h, 300_000, seed=11)
        result = simulate(trace, CentralQueuePolicy(), h, rng=0)
        sim_wait = float(np.mean(result.trimmed(0.1).wait_times))
        pred = mmh_metrics(rho * h / dist.mean, dist.mean, h).mean_wait
        assert sim_wait == pytest.approx(pred, rel=0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            mmh_metrics(0.0, 1.0, 2)
        with pytest.raises(ValueError):
            mmh_metrics(1.0, 1.0, -1)
        with pytest.raises(ValueError, match="unstable"):
            mmh_metrics(1.0, 3.0, 2)
