"""Tests for the M/G/h and G/G/1 approximations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.gg1 import erlang_arrival_scv, gg1_metrics
from repro.analysis.mg1 import mg1_metrics
from repro.analysis.mgh import mgh_metrics
from repro.analysis.mmh import mmh_metrics
from repro.core.policies import CentralQueuePolicy, RoundRobinPolicy
from repro.sim.runner import simulate
from repro.workloads.distributions import Exponential, Hyperexponential, Lognormal
from tests.conftest import make_poisson_trace


class TestMGh:
    def test_exact_for_h1(self):
        dist = Lognormal.fit(50.0, 8.0)
        lam = 0.6 / dist.mean
        assert mgh_metrics(lam, dist, 1).mean_wait == pytest.approx(
            mg1_metrics(lam, dist).mean_wait, rel=1e-12
        )

    def test_exact_for_exponential_service(self):
        dist = Exponential(7.0)
        lam = 3 * 0.8 / dist.mean
        assert mgh_metrics(lam, dist, 3).mean_wait == pytest.approx(
            mmh_metrics(lam, dist.mean, 3).mean_wait, rel=1e-12
        )

    def test_scales_with_service_variability(self):
        lam = 2 * 0.7 / 10.0
        low = mgh_metrics(lam, Hyperexponential.fit_balanced(10.0, 2.0), 2)
        high = mgh_metrics(lam, Hyperexponential.fit_balanced(10.0, 32.0), 2)
        assert high.mean_wait == pytest.approx(
            low.mean_wait * (33.0 / 3.0), rel=1e-9
        )  # (1+C2)/2 ratio

    def test_against_simulated_central_queue(self):
        """The approximation should land within ~20 % for moderate C²."""
        dist = Hyperexponential.fit_balanced(10.0, 4.0)
        rho, h = 0.7, 2
        trace = make_poisson_trace(dist, rho, h, 400_000, seed=21)
        result = simulate(trace, CentralQueuePolicy(), h, rng=0)
        sim_wait = float(np.mean(result.trimmed(0.1).wait_times))
        pred = mgh_metrics(rho * h / dist.mean, dist, h).mean_wait
        assert sim_wait == pytest.approx(pred, rel=0.25)


class TestGG1:
    def test_reduces_to_mg1_at_poisson(self):
        dist = Lognormal.fit(20.0, 5.0)
        lam = 0.5 / dist.mean
        assert gg1_metrics(lam, dist, 1.0).mean_wait == pytest.approx(
            mg1_metrics(lam, dist).mean_wait, rel=1e-12
        )

    def test_erlang_arrival_scv(self):
        assert erlang_arrival_scv(4) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            erlang_arrival_scv(0)

    def test_smoother_arrivals_reduce_wait(self):
        dist = Lognormal.fit(20.0, 5.0)
        lam = 0.7 / dist.mean
        poisson = gg1_metrics(lam, dist, 1.0).mean_wait
        erlang4 = gg1_metrics(lam, dist, 0.25).mean_wait
        bursty = gg1_metrics(lam, dist, 20.0).mean_wait
        assert erlang4 < poisson < bursty

    def test_round_robin_prediction_vs_simulation(self):
        """Round-Robin hosts see E_h/G/1; the approximation should be close."""
        dist = Hyperexponential.fit_balanced(10.0, 4.0)
        rho, h = 0.7, 2
        trace = make_poisson_trace(dist, rho, h, 400_000, seed=22)
        result = simulate(trace, RoundRobinPolicy(), h, rng=0)
        sim_wait = float(np.mean(result.trimmed(0.1).wait_times))
        pred = gg1_metrics(rho / dist.mean, dist, erlang_arrival_scv(h)).mean_wait
        assert sim_wait == pytest.approx(pred, rel=0.25)

    def test_negative_scv_rejected(self):
        with pytest.raises(ValueError):
            gg1_metrics(0.01, Exponential(10.0), -1.0)
