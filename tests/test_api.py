"""Public-API surface tests: everything advertised in __all__ exists and
the quickstart from the package docstring runs."""

from __future__ import annotations


import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_docstring_quickstart_runs():
    workload = repro.c90()
    trace = workload.make_trace(load=0.7, n_hosts=2, n_jobs=3_000, rng=0)
    cutoff = repro.fair_cutoff(0.7, workload.service_dist)
    result = repro.simulate(
        trace, repro.SITAPolicy([cutoff], name="sita-u-fair"), n_hosts=2
    )
    summary = result.summary(warmup_fraction=0.05)
    assert summary.mean_slowdown >= 1.0


def test_experiment_registry_exposed():
    ids = {eid for eid, _ in repro.list_experiments()}
    assert "fig4" in ids


def test_policies_are_distinct_classes():
    names = {
        repro.RandomPolicy().name,
        repro.RoundRobinPolicy().name,
        repro.ShortestQueuePolicy().name,
        repro.LeastWorkLeftPolicy().name,
        repro.CentralQueuePolicy().name,
    }
    assert len(names) == 5
