"""Tests for heterogeneous-speed hosts across the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sita_analysis import analyze_sita
from repro.core.cutoffs import fair_cutoff, opt_cutoff
from repro.core.policies import (
    CentralQueuePolicy,
    EstimatedLWLPolicy,
    GroupedSITAPolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
    TAGSPolicy,
)
from repro.sim.runner import simulate
from repro.sim.server import DistributedServer
from repro.workloads.catalog import c90
from repro.workloads.traces import Trace


@pytest.fixture(scope="module")
def trace():
    return c90().make_trace(load=0.5, n_hosts=2, n_jobs=4_000, rng=61)


SPEEDS2 = np.array([2.0, 1.0])


class TestMechanics:
    def test_fast_host_halves_processing(self):
        t = Trace([0.0], [10.0])
        r = simulate(t, RandomPolicy(), 1, rng=0, host_speeds=np.array([2.0]))
        assert r.response_times[0] == pytest.approx(5.0)
        assert r.wait_times[0] == 0.0
        assert r.slowdowns[0] == pytest.approx(0.5)  # nominal-size slowdown

    def test_queueing_on_slow_host(self):
        t = Trace([0.0, 0.0], [10.0, 10.0])
        r = simulate(
            t, SITAPolicy([100.0]), 2, rng=0, host_speeds=np.array([0.5, 1.0])
        )
        # Both jobs to host 0 at speed 0.5: first takes 20s, second waits 20.
        assert r.wait_times[1] == pytest.approx(20.0)
        assert r.response_times[1] == pytest.approx(40.0)

    def test_unit_speeds_unchanged(self, trace):
        a = simulate(trace, LeastWorkLeftPolicy(), 2, rng=0)
        b = simulate(trace, LeastWorkLeftPolicy(), 2, rng=0,
                     host_speeds=np.array([1.0, 1.0]))
        np.testing.assert_array_equal(a.wait_times, b.wait_times)
        assert b.processing_times is None

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            simulate(trace, RandomPolicy(), 2, rng=0, host_speeds=np.array([1.0]))
        with pytest.raises(ValueError):
            simulate(trace, RandomPolicy(), 2, rng=0,
                     host_speeds=np.array([1.0, -1.0]))

    def test_tags_rejects_speeds(self, trace):
        with pytest.raises(ValueError):
            simulate(trace, TAGSPolicy([1000.0]), 2, rng=0, host_speeds=SPEEDS2)

    def test_estimated_lwl_rejects_speeds_on_fast(self, trace):
        with pytest.raises(ValueError):
            simulate(trace, EstimatedLWLPolicy(), 2, rng=0,
                     host_speeds=SPEEDS2, backend="fast")


class TestBackendAgreement:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomPolicy(),
            lambda: SITAPolicy([20_000.0]),
            lambda: LeastWorkLeftPolicy(),
            lambda: ShortestQueuePolicy(),
        ],
        ids=["random", "sita", "lwl", "sq"],
    )
    def test_fast_equals_event(self, trace, factory):
        fast = simulate(trace, factory(), 2, rng=3, backend="fast",
                        host_speeds=SPEEDS2)
        event = simulate(trace, factory(), 2, rng=3, backend="event",
                         host_speeds=SPEEDS2)
        np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-6)
        np.testing.assert_array_equal(fast.host_assignments, event.host_assignments)
        np.testing.assert_allclose(
            fast.processing_times, event.processing_times, atol=1e-9
        )

    def test_grouped_sita_with_speeds(self, trace):
        policy = lambda: GroupedSITAPolicy(20_000.0, 1)
        speeds = np.array([2.0, 1.0, 1.0])
        fast = simulate(trace, policy(), 3, rng=3, backend="fast",
                        host_speeds=speeds)
        event = simulate(trace, policy(), 3, rng=3, backend="event",
                         host_speeds=speeds)
        np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-6)

    def test_central_fcfs_with_speeds_uses_event(self, trace):
        # Equivalence with LWL breaks on unequal speeds; auto routes to the
        # event engine and the fast backend refuses.
        r = simulate(trace, CentralQueuePolicy(), 2, rng=0, host_speeds=SPEEDS2)
        assert r.n_jobs == trace.n_jobs
        with pytest.raises(ValueError):
            simulate(trace, CentralQueuePolicy(), 2, rng=0,
                     host_speeds=SPEEDS2, backend="fast")


class TestHeterogeneousAnalysis:
    def test_speed_validation(self):
        d = c90().service_dist
        with pytest.raises(ValueError):
            analyze_sita(0.0001, d, [1000.0], host_speeds=[1.0])
        with pytest.raises(ValueError):
            analyze_sita(0.0001, d, [1000.0], host_speeds=[1.0, 0.0])

    def test_reduces_to_homogeneous(self):
        d = c90().service_dist
        lam = 2 * 0.5 / d.mean
        a = analyze_sita(lam, d, [20_000.0])
        b = analyze_sita(lam, d, [20_000.0], host_speeds=[1.0, 1.0])
        assert a.mean_slowdown == pytest.approx(b.mean_slowdown, rel=1e-12)

    def test_faster_long_host_helps(self):
        d = c90().service_dist
        lam = 2 * 0.6 / d.mean
        base = analyze_sita(lam, d, [20_000.0]).mean_slowdown
        boosted = analyze_sita(
            lam, d, [20_000.0], host_speeds=[1.0, 2.0]
        ).mean_slowdown
        assert boosted < base

    def test_against_simulation(self):
        """Analytic heterogeneous SITA matches simulation."""
        d = c90().service_dist
        load, speeds = 0.5, [2.0, 1.0]
        cutoff = opt_cutoff(load, d, host_speeds=speeds)
        trace = c90().make_trace(load=load, n_hosts=2, n_jobs=200_000, rng=71)
        # The trace was generated for 2 unit hosts; speeds (2,1) give
        # capacity 3, so the realised utilisations just drop — fine for an
        # agreement check.
        r = simulate(trace, SITAPolicy([cutoff]), 2, rng=0,
                     host_speeds=np.asarray(speeds))
        sim = r.summary(0.1).mean_slowdown
        lam = 2 * load / d.mean
        ana = analyze_sita(lam, d, [cutoff], host_speeds=speeds).mean_slowdown
        assert sim == pytest.approx(ana, rel=0.4)

    def test_fair_cutoff_with_speeds_equalises(self):
        d = c90().service_dist
        cf = fair_cutoff(0.7, d, host_speeds=[1.0, 2.0])
        lam = 2 * 0.7 / d.mean
        s_short, s_long = analyze_sita(
            lam, d, [cf], host_speeds=[1.0, 2.0]
        ).class_mean_slowdowns()
        assert s_short == pytest.approx(s_long, rel=1e-4)

    def test_fast_machine_belongs_to_the_longs(self):
        """The ablate_hetero headline, asserted analytically."""
        d = c90().service_dist
        load = 0.7
        lam = 2 * load / d.mean

        def best(speeds):
            c = opt_cutoff(load, d, host_speeds=list(speeds))
            return analyze_sita(lam, d, [c], host_speeds=list(speeds)).mean_slowdown

        assert best((1.0, 2.0)) < best((2.0, 1.0))


class TestWorkConservationWithSpeeds:
    def test_busy_time_scales_with_speed(self):
        trace = Trace([0.0, 100.0], [10.0, 10.0])
        server = DistributedServer(
            2, SITAPolicy([100.0]), rng=0, host_speeds=np.array([2.0, 1.0])
        )
        server.run_trace(trace)
        # Both jobs hit host 0 (all sizes below cutoff): 2 * 10/2 = 10s busy.
        assert server.hosts[0].busy_time == pytest.approx(10.0)
        assert server.hosts[1].busy_time == 0.0
