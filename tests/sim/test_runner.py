"""Tests for the high-level simulate() entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import LeastWorkLeftPolicy, RandomPolicy, TAGSPolicy
from repro.sim.runner import simulate


class TestBackendRouting:
    def test_auto_uses_fast_for_lwl(self, small_c90_trace):
        r = simulate(small_c90_trace, LeastWorkLeftPolicy(), 2, rng=0, backend="auto")
        assert r.n_jobs == small_c90_trace.n_jobs

    def test_tags_works_on_both_backends(self, tiny_trace):
        import numpy as np

        fast = simulate(tiny_trace, TAGSPolicy([3.0]), 2, rng=0, backend="fast")
        event = simulate(tiny_trace, TAGSPolicy([3.0]), 2, rng=0, backend="event")
        assert fast.wasted_work is not None
        np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-9)

    def test_forced_event_backend(self, tiny_trace):
        r = simulate(tiny_trace, RandomPolicy(), 2, rng=0, backend="event")
        assert r.n_jobs == 5

    def test_unknown_backend(self, tiny_trace):
        with pytest.raises(ValueError, match="unknown backend"):
            simulate(tiny_trace, RandomPolicy(), 2, rng=0, backend="turbo")

    def test_backends_equivalent(self, small_c90_trace):
        fast = simulate(small_c90_trace, LeastWorkLeftPolicy(), 3, rng=1, backend="fast")
        event = simulate(small_c90_trace, LeastWorkLeftPolicy(), 3, rng=1, backend="event")
        np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-6)

    def test_size_estimates_forwarded(self, tiny_trace):
        from repro.core.policies import SITAPolicy

        est = np.full(tiny_trace.n_jobs, 1.0)
        r = simulate(tiny_trace, SITAPolicy([3.0]), 2, rng=0, size_estimates=est)
        assert np.all(r.host_assignments == 0)
