"""Unit tests for the vectorised simulation kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fast import fcfs_waits, lwl_waits, shortest_queue_waits


def brute_force_fcfs(arrivals, sizes):
    """Transparent O(n) reference Lindley recursion."""
    w = [0.0]
    for j in range(1, len(arrivals)):
        w.append(max(0.0, w[-1] + sizes[j - 1] - (arrivals[j] - arrivals[j - 1])))
    return np.array(w)


def brute_force_lwl(arrivals, sizes, h):
    """Reference LWL: explicit per-host virtual completion times."""
    v = [0.0] * h
    waits = []
    for t, s in zip(arrivals, sizes):
        work = [max(0.0, vi - t) for vi in v]
        i = int(np.argmin(work))
        waits.append(work[i])
        v[i] = t + work[i] + s
    return np.array(waits)


class TestFcfsWaits:
    def test_empty(self):
        assert fcfs_waits(np.array([]), np.array([])).size == 0

    def test_single_job(self):
        assert fcfs_waits(np.array([3.0]), np.array([5.0])) == pytest.approx([0.0])

    def test_hand_example(self):
        # (t, s): (0,4) (1,2) (2,1) (3,8) (10,1)
        w = fcfs_waits(np.array([0.0, 1, 2, 3, 10]), np.array([4.0, 2, 1, 8, 1]))
        assert list(w) == pytest.approx([0.0, 3.0, 4.0, 4.0, 5.0])

    def test_matches_brute_force(self, rng):
        t = np.cumsum(rng.exponential(1.0, 500))
        s = rng.lognormal(0.0, 1.5, 500)
        np.testing.assert_allclose(fcfs_waits(t, s), brute_force_fcfs(t, s), atol=1e-9)

    def test_light_load_all_zero(self):
        t = np.arange(100, dtype=float) * 10.0
        s = np.ones(100)
        assert np.all(fcfs_waits(t, s) == 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fcfs_waits(np.array([1.0, 2.0]), np.array([1.0]))


class TestLwlWaits:
    def test_matches_brute_force(self, rng):
        for h in (1, 2, 3, 8):
            t = np.cumsum(rng.exponential(1.0, 400))
            s = rng.lognormal(0.0, 1.5, 400)
            waits, _ = lwl_waits(t, s, h)
            np.testing.assert_allclose(waits, brute_force_lwl(t, s, h), atol=1e-9)

    def test_one_host_is_fcfs(self, rng):
        t = np.cumsum(rng.exponential(1.0, 300))
        s = rng.exponential(2.0, 300)
        waits, hosts = lwl_waits(t, s, 1)
        np.testing.assert_allclose(waits, fcfs_waits(t, s), atol=1e-12)
        assert np.all(hosts == 0)

    def test_hosts_in_range(self, rng):
        t = np.cumsum(rng.exponential(1.0, 200))
        s = rng.exponential(2.0, 200)
        _, hosts = lwl_waits(t, s, 4)
        assert hosts.min() >= 0 and hosts.max() < 4

    def test_more_hosts_never_worse(self, rng):
        t = np.cumsum(rng.exponential(0.5, 1000))
        s = rng.lognormal(0.0, 1.0, 1000)
        w2, _ = lwl_waits(t, s, 2)
        w4, _ = lwl_waits(t, s, 4)
        assert np.mean(w4) <= np.mean(w2) + 1e-12

    def test_invalid_hosts(self):
        with pytest.raises(ValueError):
            lwl_waits(np.array([0.0]), np.array([1.0]), 0)


class TestShortestQueueWaits:
    def test_single_host_is_fcfs(self, rng):
        t = np.cumsum(rng.exponential(1.0, 300))
        s = rng.exponential(2.0, 300)
        waits, _ = shortest_queue_waits(t, s, 1)
        np.testing.assert_allclose(waits, fcfs_waits(t, s), atol=1e-12)

    def test_ties_prefer_lowest_index(self):
        t = np.array([0.0, 0.0])
        s = np.array([5.0, 5.0])
        _, hosts = shortest_queue_waits(t, s, 3)
        assert list(hosts) == [0, 1]

    def test_counts_drive_choice(self):
        # Host 0 busy with a long job; a burst of shorts should spread out.
        t = np.array([0.0, 1.0, 2.0])
        s = np.array([100.0, 1.0, 1.0])
        _, hosts = shortest_queue_waits(t, s, 2)
        assert list(hosts) == [0, 1, 1]  # host1 empties before t=2

    def test_hand_example_waits(self):
        t = np.array([0.0, 0.0, 1.0])
        s = np.array([4.0, 4.0, 4.0])
        waits, hosts = shortest_queue_waits(t, s, 2)
        assert list(hosts) == [0, 1, 0]
        assert list(waits) == pytest.approx([0.0, 0.0, 3.0])


@given(
    st.integers(1, 6),
    st.lists(
        st.tuples(st.floats(0.0, 10.0), st.floats(0.01, 50.0)),
        min_size=1,
        max_size=120,
    ),
)
@settings(max_examples=60, deadline=None)
def test_lwl_property_matches_brute_force(h, jobs):
    gaps = np.array([g for g, _ in jobs])
    sizes = np.array([s for _, s in jobs])
    arrivals = np.cumsum(gaps)
    waits, _ = lwl_waits(arrivals, sizes, h)
    expected = brute_force_lwl(arrivals, sizes, h)
    np.testing.assert_allclose(waits, expected, atol=1e-9)


@given(
    st.lists(
        st.tuples(st.floats(0.0, 10.0), st.floats(0.01, 50.0)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_fcfs_property_matches_brute_force(jobs):
    gaps = np.array([g for g, _ in jobs])
    sizes = np.array([s for _, s in jobs])
    arrivals = np.cumsum(gaps)
    np.testing.assert_allclose(
        fcfs_waits(arrivals, sizes), brute_force_fcfs(arrivals, sizes), atol=1e-9
    )
