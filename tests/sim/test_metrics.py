"""Tests for SimulationResult and summary statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.metrics import SimulationResult, batch_means_ci


@pytest.fixture
def result() -> SimulationResult:
    return SimulationResult(
        policy_name="test",
        n_hosts=2,
        arrival_times=np.array([0.0, 1.0, 2.0, 3.0]),
        sizes=np.array([2.0, 4.0, 1.0, 8.0]),
        wait_times=np.array([0.0, 2.0, 3.0, 0.0]),
        host_assignments=np.array([0, 1, 0, 1]),
    )


class TestDerivedArrays:
    def test_response_times(self, result):
        assert list(result.response_times) == [2.0, 6.0, 4.0, 8.0]

    def test_slowdowns(self, result):
        assert list(result.slowdowns) == [1.0, 1.5, 4.0, 1.0]

    def test_waiting_slowdowns(self, result):
        assert list(result.waiting_slowdowns) == [0.0, 0.5, 3.0, 0.0]

    def test_slowdown_at_least_one(self, result):
        assert np.all(result.slowdowns >= 1.0)


class TestSummary:
    def test_means(self, result):
        s = result.summary()
        assert s.mean_slowdown == pytest.approx(np.mean([1.0, 1.5, 4.0, 1.0]))
        assert s.mean_response == pytest.approx(5.0)
        assert s.mean_wait == pytest.approx(1.25)
        assert s.n_jobs == 4

    def test_variances(self, result):
        s = result.summary()
        assert s.var_slowdown == pytest.approx(np.var([1.0, 1.5, 4.0, 1.0]))
        assert s.var_response == pytest.approx(np.var([2.0, 6.0, 4.0, 8.0]))

    def test_host_fractions(self, result):
        s = result.summary()
        assert s.host_load_fraction == pytest.approx((3.0 / 15.0, 12.0 / 15.0))
        assert s.host_job_fraction == pytest.approx((0.5, 0.5))
        assert sum(s.host_load_fraction) == pytest.approx(1.0)

    def test_max_slowdown(self, result):
        assert result.summary().max_slowdown == 4.0

    def test_as_row(self, result):
        row = result.summary().as_row()
        assert row["mean_slowdown"] == pytest.approx(1.875)
        assert "load_frac_host0" in row and "load_frac_host1" in row


class TestWarmupTrimming:
    def test_trim_drops_prefix(self, result):
        trimmed = result.trimmed(0.5)
        assert trimmed.n_jobs == 2
        assert list(trimmed.sizes) == [1.0, 8.0]

    def test_trim_zero_is_identity(self, result):
        assert result.trimmed(0.0) is result

    def test_trim_validation(self, result):
        with pytest.raises(ValueError):
            result.trimmed(1.0)
        with pytest.raises(ValueError):
            result.trimmed(-0.1)

    def test_summary_with_warmup(self, result):
        s = result.summary(warmup_fraction=0.5)
        assert s.n_jobs == 2
        assert s.mean_slowdown == pytest.approx(np.mean([4.0, 1.0]))


class TestClassSlowdowns:
    def test_split(self, result):
        short, long_ = result.class_mean_slowdowns(cutoff=3.0)
        # short: sizes 2,1 -> slowdowns 1.0, 4.0; long: 4,8 -> 1.5, 1.0
        assert short == pytest.approx(2.5)
        assert long_ == pytest.approx(1.25)

    def test_degenerate_cutoff_raises(self, result):
        with pytest.raises(ValueError):
            result.class_mean_slowdowns(0.5)
        with pytest.raises(ValueError):
            result.class_mean_slowdowns(100.0)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SimulationResult(
                policy_name="x",
                n_hosts=1,
                arrival_times=np.array([0.0, 1.0]),
                sizes=np.array([1.0]),
                wait_times=np.array([0.0, 0.0]),
                host_assignments=np.array([0, 0]),
            )

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError, match="negative wait"):
            SimulationResult(
                policy_name="x",
                n_hosts=1,
                arrival_times=np.array([0.0]),
                sizes=np.array([1.0]),
                wait_times=np.array([-0.5]),
                host_assignments=np.array([0]),
            )


class TestBatchMeans:
    def test_iid_ci_covers_mean(self, rng):
        x = rng.normal(10.0, 2.0, size=10_000)
        mean, half = batch_means_ci(x, n_batches=20)
        assert mean == pytest.approx(10.0, abs=0.2)
        assert half > 0
        assert abs(mean - 10.0) < 3 * half

    def test_requires_enough_data(self):
        with pytest.raises(ValueError):
            batch_means_ci(np.ones(10), n_batches=20)

    def test_correlated_data_widens_ci(self, rng):
        # AR(1) with strong correlation: batch-means CI should far exceed
        # the naive iid CI.
        n = 20_000
        x = np.empty(n)
        x[0] = 0.0
        eps = rng.normal(0.0, 1.0, n)
        for i in range(1, n):
            x[i] = 0.99 * x[i - 1] + eps[i]
        _, half = batch_means_ci(x, n_batches=20)
        naive = 1.96 * np.std(x) / np.sqrt(n)
        assert half > 3 * naive

    def test_slowdown_ci_smoke(self, small_c90_trace):
        from repro.core.policies import LeastWorkLeftPolicy
        from repro.sim.runner import simulate

        r = simulate(small_c90_trace, LeastWorkLeftPolicy(), 2, rng=0)
        mean, half = r.slowdown_ci(warmup_fraction=0.1)
        assert mean > 1.0 and half > 0.0
