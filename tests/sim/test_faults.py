"""Tests for the fault-injection subsystem (crash/repair, semantics)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.policies import (
    CentralQueuePolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ShortestQueuePolicy,
    SITAPolicy,
    TAGSPolicy,
)
from repro.core.policies.base import nearest_live_host
from repro.core.policies.sita import GroupedSITAPolicy
from repro.sim.faults import FaultInjector, FaultModel
from repro.sim.jobs import Job
from repro.sim.runner import simulate
from repro.sim.server import DistributedServer
from repro.workloads.traces import Trace


def poisson_pareto_trace(n: int = 2000, seed: int = 1) -> Trace:
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0, n))
    sizes = rng.pareto(1.5, n) + 0.5
    return Trace(arrivals, sizes, name="faulty")


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="mtbf"):
            FaultModel(mtbf=0.0, mttr=1.0)
        with pytest.raises(ValueError, match="mttr"):
            FaultModel(mtbf=1.0, mttr=math.inf)
        with pytest.raises(ValueError, match="semantics"):
            FaultModel(mtbf=1.0, mttr=1.0, semantics="explode")
        with pytest.raises(ValueError, match="distribution"):
            FaultModel(mtbf=1.0, mttr=1.0, distribution="weibull")

    def test_infinite_mtbf_disables(self):
        fm = FaultModel(mtbf=math.inf, mttr=1.0)
        assert not fm.enabled
        assert fm.availability == 1.0

    def test_availability(self):
        fm = FaultModel(mtbf=9.0, mttr=1.0)
        assert fm.availability == pytest.approx(0.9)

    def test_injector_rejects_out_of_range_hosts(self):
        fm = FaultModel(mtbf=1.0, mttr=1.0, hosts=(0, 5))
        with pytest.raises(ValueError, match="outside"):
            FaultInjector(fm, n_hosts=2)

    def test_describe_is_stable(self):
        fm = FaultModel(mtbf=10.0, mttr=2.0, semantics="lost", seed=3)
        assert fm.describe() == FaultModel(
            mtbf=10.0, mttr=2.0, semantics="lost", seed=3
        ).describe()


class TestDisabledFaultsBitIdentity:
    """Failure rate 0 must be bit-identical to no fault model at all."""

    @pytest.mark.parametrize(
        "policy_fn", [RandomPolicy, LeastWorkLeftPolicy, ShortestQueuePolicy]
    )
    def test_digest_matches_no_faults(self, policy_fn):
        trace = poisson_pareto_trace(800)
        base = simulate(trace, policy_fn(), 3, rng=7, backend="event")
        off = simulate(
            trace, policy_fn(), 3, rng=7,
            faults=FaultModel(mtbf=math.inf, mttr=1.0),
        )
        assert base.digest() == off.digest()


class TestDeterministicScenarios:
    """Hand-traceable single-host crash scenarios, strict mode on."""

    def one_host(self, semantics, trace, mtbf, mttr):
        faults = FaultModel(
            mtbf=mtbf, mttr=mttr, semantics=semantics, distribution="deterministic"
        )
        server = DistributedServer(1, RandomPolicy(), rng=0, strict=True,
                                   faults=faults)
        return server.run_trace(trace)

    def test_resume_keeps_progress(self):
        # size 9 at t=0; crash at 5 (done 5), repair at 8, finish at 12.
        trace = Trace([0.0], [9.0])
        result = self.one_host("resume", trace, mtbf=5.0, mttr=3.0)
        assert result.wait_times == pytest.approx([3.0])
        assert result.n_failures == 1
        assert result.n_lost == 0
        assert result.host_downtime == pytest.approx(3.0)

    def test_redispatch_restarts_from_scratch(self):
        # J0 runs [0,5); J1 (size 6) starts at 5, the crash at 7 wastes
        # its 2s of progress; after the repair at 10 it restarts from
        # zero and finishes at 16 (next crash only at 17).
        trace = Trace([0.0, 0.0], [5.0, 6.0])
        result = self.one_host("redispatch", trace, mtbf=7.0, mttr=3.0)
        assert result.wait_times == pytest.approx([0.0, 10.0])
        assert result.wasted_work == pytest.approx([0.0, 2.0])
        assert result.n_failures == 1

    def test_lost_job_never_completes(self):
        # J1 is in service when the host crashes at t=7 and is destroyed;
        # J0 completed untouched at t=5.
        trace = Trace([0.0, 0.0], [5.0, 6.0])
        result = self.one_host("lost", trace, mtbf=7.0, mttr=3.0)
        assert result.n_jobs == 1
        assert result.n_lost == 1
        assert result.sizes == pytest.approx([5.0])
        assert result.wait_times == pytest.approx([0.0])

    def test_arrivals_while_all_hosts_down_are_deferred(self):
        # Host down [7, 10); the job arriving at 8 is held at the
        # dispatcher and starts at the repair.
        trace = Trace([0.0, 8.0], [1.0, 1.0])
        result = self.one_host("resume", trace, mtbf=7.0, mttr=3.0)
        assert result.wait_times == pytest.approx([0.0, 2.0])


class TestCentralQueueCancellation:
    """Satellite: central-queue jobs survive a host crash correctly."""

    def run(self, semantics):
        # Host 0 crashes at t=4 and stays down past the horizon.
        faults = FaultModel(
            mtbf=4.0, mttr=1000.0, semantics=semantics, hosts=(0,),
            distribution="deterministic",
        )
        trace = Trace([0.0, 0.5, 1.0], [10.0, 10.0, 3.0])
        server = DistributedServer(
            2, CentralQueuePolicy(), rng=0, strict=True, faults=faults
        )
        return server.run_trace(trace)

    def test_redispatch_victim_reenters_queue_front(self):
        result = self.run("redispatch")
        # A ran [0,4) on host 0, re-queued ahead of C, re-ran [10.5,20.5)
        # on host 1; C follows [20.5,23.5).
        assert result.n_jobs == 3
        assert result.wait_times == pytest.approx([10.5, 0.0, 19.5])
        assert result.wasted_work == pytest.approx([4.0, 0.0, 0.0])
        assert list(result.host_assignments) == [1, 1, 1]

    def test_lost_victim_leaves_queue_intact(self):
        result = self.run("lost")
        # A is destroyed at t=4; B finishes at 10.5, C runs [10.5,13.5).
        assert result.n_jobs == 2
        assert result.n_lost == 1
        assert result.wait_times == pytest.approx([0.0, 9.5])

    def test_resume_finishes_after_repair(self):
        faults = FaultModel(
            mtbf=4.0, mttr=2.0, semantics="resume", hosts=(0,),
            distribution="deterministic",
        )
        trace = Trace([0.0, 0.5, 1.0], [10.0, 10.0, 3.0])
        server = DistributedServer(
            2, CentralQueuePolicy(), rng=0, strict=True, faults=faults
        )
        result = server.run_trace(trace)
        # A on host 0 is interrupted by both down windows [4,6) and
        # [10,12): legs [0,4)+[6,10)+[12,14) -> wait 4.  C takes host 1
        # when B frees it at 10.5 -> wait 9.5.
        assert result.n_jobs == 3
        assert result.wait_times == pytest.approx([4.0, 0.0, 9.5])


class TestStrictModeUnderFaults:
    """The runtime sanitizer holds across crash/repair for every
    semantics and policy kind (the satellite's invariant coverage)."""

    @pytest.mark.parametrize("semantics", ["lost", "redispatch", "resume"])
    @pytest.mark.parametrize(
        "policy_fn",
        [
            RandomPolicy,
            RoundRobinPolicy,
            ShortestQueuePolicy,
            LeastWorkLeftPolicy,
            CentralQueuePolicy,
            lambda: SITAPolicy([1.0, 2.0, 4.0], name="sita"),
            lambda: GroupedSITAPolicy(cutoff=2.0, n_short_hosts=2),
        ],
    )
    def test_invariants_hold(self, semantics, policy_fn):
        trace = poisson_pareto_trace(600, seed=4)
        faults = FaultModel(mtbf=80.0, mttr=15.0, semantics=semantics, seed=2)
        result = simulate(trace, policy_fn(), 4, rng=9, faults=faults, strict=True)
        assert result.n_jobs + result.n_lost == trace.n_jobs

    @pytest.mark.parametrize("semantics", ["lost", "redispatch", "resume"])
    def test_replays_are_bit_identical(self, semantics):
        trace = poisson_pareto_trace(600, seed=4)
        faults = FaultModel(mtbf=60.0, mttr=10.0, semantics=semantics, seed=2)
        a = simulate(trace, LeastWorkLeftPolicy(), 4, rng=9, faults=faults)
        b = simulate(trace, LeastWorkLeftPolicy(), 4, rng=9, faults=faults)
        assert a.digest() == b.digest()

    def test_different_fault_seed_changes_schedule(self):
        trace = poisson_pareto_trace(600, seed=4)
        a = simulate(
            trace, LeastWorkLeftPolicy(), 4, rng=9,
            faults=FaultModel(mtbf=60.0, mttr=10.0, seed=1),
        )
        b = simulate(
            trace, LeastWorkLeftPolicy(), 4, rng=9,
            faults=FaultModel(mtbf=60.0, mttr=10.0, seed=2),
        )
        assert a.digest() != b.digest()


class FakeState:
    def __init__(self, queues, work):
        self._queues = np.asarray(queues)
        self._work = np.asarray(work, dtype=float)

    def queue_lengths(self):
        return self._queues

    def work_left(self):
        return self._work


class TestFailureAwareDispatch:
    """choose_live_host skips down hosts and is the identity when all up."""

    def job(self, size=1.0):
        return Job(index=0, arrival_time=0.0, size=size)

    def test_nearest_live_host(self):
        assert nearest_live_host(2, np.array([True, False, False, False])) == 0
        assert nearest_live_host(1, np.array([True, False, True, False])) == 0
        with pytest.raises(ValueError, match="no live host"):
            nearest_live_host(0, np.zeros(3, dtype=bool))

    def test_random_skips_down_hosts(self):
        policy = RandomPolicy()
        policy.reset(4, np.random.default_rng(0))
        up = np.array([False, True, False, True])
        state = FakeState([0, 0, 0, 0], [0, 0, 0, 0])
        for _ in range(50):
            assert policy.choose_live_host(self.job(), state, up) in (1, 3)

    def test_random_identity_when_all_up(self):
        up = np.ones(4, dtype=bool)
        state = FakeState([0] * 4, [0] * 4)
        a, b = RandomPolicy(), RandomPolicy()
        a.reset(4, np.random.default_rng(5))
        b.reset(4, np.random.default_rng(5))
        for _ in range(50):
            assert a.choose_host(self.job(), state) == b.choose_live_host(
                self.job(), state, up
            )

    def test_round_robin_skips_down_hosts(self):
        policy = RoundRobinPolicy()
        policy.reset(3, np.random.default_rng(0))
        up = np.array([True, False, True])
        state = FakeState([0] * 3, [0] * 3)
        picks = [policy.choose_live_host(self.job(), state, up) for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_state_policies_skip_down_hosts(self):
        up = np.array([True, False, True])
        state = FakeState([5, 0, 9], [50.0, 0.0, 90.0])
        sq = ShortestQueuePolicy()
        sq.reset(3, np.random.default_rng(0))
        # Host 1 has the shortest queue but is down.
        assert sq.choose_live_host(self.job(), state, up) == 0
        lwl = LeastWorkLeftPolicy()
        lwl.reset(3, np.random.default_rng(0))
        assert lwl.choose_live_host(self.job(), state, up) == 0

    def test_sita_spills_to_nearest_live_host(self):
        policy = SITAPolicy([2.0, 10.0], name="sita")
        policy.reset(3, np.random.default_rng(0))
        state = FakeState([0] * 3, [0] * 3)
        # A short job belongs on host 0, which is down -> host 1.
        up = np.array([False, True, True])
        assert policy.choose_live_host(self.job(size=1.0), state, up) == 1
        # All up: interval routing unchanged.
        assert policy.choose_live_host(
            self.job(size=1.0), state, np.ones(3, dtype=bool)
        ) == 0

    def test_grouped_sita_spills_outside_dead_group(self):
        policy = GroupedSITAPolicy(cutoff=2.0, n_short_hosts=2)
        policy.reset(4, np.random.default_rng(0))
        state = FakeState([0] * 4, [1.0, 2.0, 3.0, 4.0])
        # Short group (hosts 0,1) entirely down -> nearest live host.
        up = np.array([False, False, True, True])
        assert policy.choose_live_host(self.job(size=1.0), state, up) == 2
        # One short host down -> LWL among the live short hosts.
        up = np.array([False, True, True, True])
        assert policy.choose_live_host(self.job(size=1.0), state, up) == 1


class TestRejections:
    def test_tags_plus_faults_rejected(self):
        with pytest.raises(ValueError, match="TAGS"):
            DistributedServer(
                2, TAGSPolicy([2.0]), rng=0,
                faults=FaultModel(mtbf=10.0, mttr=1.0),
            )

    def test_fast_backend_plus_faults_rejected(self):
        trace = poisson_pareto_trace(100)
        with pytest.raises(ValueError, match="event engine"):
            simulate(
                trace, RandomPolicy(), 2, rng=0, backend="fast",
                faults=FaultModel(mtbf=10.0, mttr=1.0),
            )


class TestKernelFallback:
    """Graceful degradation from a failing fast kernel to the engine."""

    def _break_fcfs(self, monkeypatch):
        import repro.sim.fast as fast

        monkeypatch.setattr(
            fast, "fcfs_waits",
            lambda t, s: np.full(np.asarray(t).size, np.nan),
        )

    def test_raise_by_default(self, monkeypatch, tiny_trace):
        self._break_fcfs(monkeypatch)
        from repro.sim.engine import InvariantViolation

        with pytest.raises(InvariantViolation, match="kernel"):
            simulate(tiny_trace, RandomPolicy(), 2, rng=0)

    def test_fallback_reruns_on_event_engine(self, monkeypatch, tiny_trace):
        reference = simulate(tiny_trace, RandomPolicy(), 2, rng=0, backend="event")
        self._break_fcfs(monkeypatch)
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = simulate(
                tiny_trace, RandomPolicy(), 2, rng=0, on_kernel_failure="fallback"
            )
        assert result.backend == "event-fallback"
        # Cross-validation: the fallback row equals a direct event run.
        assert result.wait_times == pytest.approx(reference.wait_times)
        assert list(result.host_assignments) == list(reference.host_assignments)

    def test_forced_fast_backend_still_raises(self, monkeypatch, tiny_trace):
        self._break_fcfs(monkeypatch)
        from repro.sim.engine import InvariantViolation

        with pytest.raises(InvariantViolation):
            simulate(
                tiny_trace, RandomPolicy(), 2, rng=0, backend="fast",
                on_kernel_failure="fallback",
            )


class TestLivelockDiagnosis:
    def test_impossible_fault_model_raises(self):
        # MTBF shorter than the job under re-dispatch: no progress ever.
        trace = Trace([0.0], [100.0])
        faults = FaultModel(
            mtbf=5.0, mttr=1.0, semantics="redispatch",
            distribution="deterministic",
        )
        server = DistributedServer(1, RandomPolicy(), rng=0, faults=faults)
        with pytest.raises(RuntimeError, match="availability"):
            server.run_trace(trace)

class TestMassRepairDrain:
    """All hosts down: deferred arrivals drain FCFS at the first repair."""

    def test_deferred_queue_drains_fcfs(self):
        # Both hosts crash at t=100 (deterministic draws) and repair at
        # t=150.  J0 anchors the trace at t=0 (arrivals are normalised to
        # the first arrival); J1..J3 arrive at 110/120/130 with every
        # host down and are held at the dispatcher.  Host 0's repair is
        # scheduled before host 1's (same timestamp, lower sequence
        # number), so the flush sees up=[True, False] and drains the
        # whole deferred queue FCFS onto host 0: J1 runs [150,160),
        # J2 [160,180), J3 [180,210) -> waits 40/40/50.
        faults = FaultModel(
            mtbf=100.0, mttr=50.0, semantics="resume",
            distribution="deterministic",
        )
        trace = Trace([0.0, 110.0, 120.0, 130.0], [1.0, 10.0, 20.0, 30.0])
        server = DistributedServer(
            2, LeastWorkLeftPolicy(), rng=0, strict=True, faults=faults
        )
        result = server.run_trace(trace)
        assert result.wait_times == pytest.approx([0.0, 40.0, 40.0, 50.0])
        assert list(result.host_assignments) == [0, 0, 0, 0]
        assert result.n_failures == 2
        assert result.host_downtime == pytest.approx(100.0)

    def test_drain_order_is_arrival_order(self):
        # FCFS property in isolation: with identical sizes the start
        # times (wait + arrival) of the deferred jobs must be
        # non-decreasing in arrival order.
        faults = FaultModel(
            mtbf=100.0, mttr=50.0, semantics="resume",
            distribution="deterministic",
        )
        arrivals = [0.0] + [105.0 + 5.0 * i for i in range(8)]
        trace = Trace(arrivals, [1.0] * 9)
        server = DistributedServer(
            2, LeastWorkLeftPolicy(), rng=0, strict=True, faults=faults
        )
        result = server.run_trace(trace)
        starts = np.asarray(arrivals) + np.asarray(result.wait_times)
        assert np.all(np.diff(starts[1:]) >= 0)


class TestAllUpBitIdentity:
    """choose_live_host(all-up) is bit-identical to choose_host for every
    per-job policy (satellite: 'every breaker closed' reduces to the
    fault-free dispatcher, RNG draws included)."""

    POLICIES = [
        RandomPolicy,
        RoundRobinPolicy,
        ShortestQueuePolicy,
        LeastWorkLeftPolicy,
        lambda: SITAPolicy([2.0, 10.0, 40.0], name="sita"),
        lambda: GroupedSITAPolicy(cutoff=2.0, n_short_hosts=2),
    ]

    @pytest.mark.parametrize("policy_fn", POLICIES)
    def test_sequence_identical(self, policy_fn):
        rng = np.random.default_rng(11)
        states = [
            FakeState(rng.integers(0, 6, 4), rng.uniform(0.0, 9.0, 4))
            for _ in range(40)
        ]
        sizes = rng.pareto(1.5, 40) + 0.5
        a, b = policy_fn(), policy_fn()
        a.reset(4, np.random.default_rng(3))
        b.reset(4, np.random.default_rng(3))
        up = np.ones(4, dtype=bool)
        for i, (state, size) in enumerate(zip(states, sizes)):
            job = Job(index=i, arrival_time=float(i), size=float(size))
            assert a.choose_host(job, state) == b.choose_live_host(job, state, up)


class TestScheduleIntrospection:
    """Satellite: explicit fault-schedule state + attach-time validation."""

    def test_disabled_state(self):
        inj = FaultInjector(FaultModel(mtbf=math.inf, mttr=1.0), n_hosts=2)
        status = inj.schedule_status()
        assert status["state"] == "disabled"
        assert status["total_crashes"] == 0

    def test_unattached_state(self):
        inj = FaultInjector(FaultModel(mtbf=5.0, mttr=1.0), n_hosts=2)
        assert inj.schedule_status()["state"] == "unattached"

    def test_active_state_and_down_now(self):
        faults = FaultModel(
            mtbf=4.0, mttr=1000.0, hosts=(0,), semantics="lost",
            distribution="deterministic",
        )
        trace = Trace([0.0, 0.5], [10.0, 3.0])
        server = DistributedServer(2, CentralQueuePolicy(), rng=0, faults=faults)
        server.run_trace(trace)
        status = server.fault_injector.schedule_status()
        assert status["state"] == "active"
        assert status["targets"] == [0]
        # Host 0 crashed at t=4 and its 1000s repair is still open.
        assert status["down_now"] == [0]
        assert status["crashes"] == {0: 1}

    def test_attach_rejects_unregistered_host(self):
        # Constructed against 4 hosts, attached to a 2-host server: the
        # out-of-range targets must fail loudly, not silently never crash.
        inj = FaultInjector(
            FaultModel(mtbf=5.0, mttr=1.0, hosts=(0, 3)), n_hosts=4
        )
        server = DistributedServer(2, RandomPolicy(), rng=0)
        with pytest.raises(ValueError, match="registered only hosts 0..1"):
            inj.attach(server)

    def test_double_attach_rejected(self):
        inj = FaultInjector(FaultModel(mtbf=5.0, mttr=1.0), n_hosts=1)
        server = DistributedServer(1, RandomPolicy(), rng=0)
        inj.attach(server)
        with pytest.raises(RuntimeError, match="already attached"):
            inj.attach(server)
