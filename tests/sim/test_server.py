"""Tests for the event-driven distributed server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import (
    CentralQueuePolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
    TAGSPolicy,
)
from repro.sim.server import DistributedServer
from repro.workloads.traces import Trace


class TestBasicDispatch:
    def test_round_robin_assignment(self, tiny_trace):
        server = DistributedServer(2, RoundRobinPolicy(), rng=0)
        result = server.run_trace(tiny_trace)
        assert list(result.host_assignments) == [0, 1, 0, 1, 0]

    def test_all_jobs_complete(self, tiny_trace):
        result = DistributedServer(3, RandomPolicy(), rng=1).run_trace(tiny_trace)
        assert result.n_jobs == tiny_trace.n_jobs
        assert np.all(result.wait_times >= 0)

    def test_sita_routes_by_size(self, tiny_trace):
        # cutoff 3: sizes [4,2,1,8,1] -> hosts [1,0,0,1,0]
        policy = SITAPolicy([3.0])
        result = DistributedServer(2, policy, rng=0).run_trace(tiny_trace)
        assert list(result.host_assignments) == [1, 0, 0, 1, 0]

    def test_single_host_is_fcfs_queue(self, tiny_trace):
        result = DistributedServer(1, RandomPolicy(), rng=0).run_trace(tiny_trace)
        # Manually computed FCFS waits for (t, s) = (0,4),(1,2),(2,1),(3,8),(10,1)
        assert list(result.wait_times) == pytest.approx([0.0, 3.0, 4.0, 4.0, 5.0])

    def test_lwl_prefers_least_loaded(self, tiny_trace):
        result = DistributedServer(2, LeastWorkLeftPolicy(), rng=0).run_trace(tiny_trace)
        # job0 -> host0 (both idle, argmin tie -> 0); job1 -> host1 (0 busy)
        assert result.host_assignments[0] == 0
        assert result.host_assignments[1] == 1

    def test_shortest_queue_counts_jobs(self, tiny_trace):
        result = DistributedServer(2, ShortestQueuePolicy(), rng=0).run_trace(tiny_trace)
        assert result.n_jobs == 5

    def test_size_estimates_drive_sita(self, tiny_trace):
        policy = SITAPolicy([3.0])
        # Lie about every size: claim all are tiny -> all to host 0.
        est = np.full(tiny_trace.n_jobs, 1.0)
        result = DistributedServer(2, policy, rng=0).run_trace(
            tiny_trace, size_estimates=est
        )
        assert np.all(result.host_assignments == 0)

    def test_size_estimate_length_checked(self, tiny_trace):
        with pytest.raises(ValueError):
            DistributedServer(2, SITAPolicy([3.0]), rng=0).run_trace(
                tiny_trace, size_estimates=np.ones(3)
            )


class TestCentralQueue:
    def test_jobs_start_when_hosts_free(self, tiny_trace):
        result = DistributedServer(2, CentralQueuePolicy(), rng=0).run_trace(tiny_trace)
        assert result.n_jobs == 5
        assert np.all(result.wait_times >= 0)

    def test_matches_lwl_waits(self, tiny_trace):
        cq = DistributedServer(2, CentralQueuePolicy(), rng=0).run_trace(tiny_trace)
        lwl = DistributedServer(2, LeastWorkLeftPolicy(), rng=0).run_trace(tiny_trace)
        np.testing.assert_allclose(cq.wait_times, lwl.wait_times, atol=1e-9)


class TestTAGS:
    def test_short_jobs_finish_on_host0(self):
        trace = Trace([0.0, 100.0], [2.0, 3.0])
        result = DistributedServer(2, TAGSPolicy([5.0]), rng=0).run_trace(trace)
        assert np.all(result.host_assignments == 0)
        assert np.all(result.wasted_work == 0.0)

    def test_long_jobs_restart_on_host1(self):
        trace = Trace([0.0], [10.0])
        result = DistributedServer(2, TAGSPolicy([5.0]), rng=0).run_trace(trace)
        assert result.host_assignments[0] == 1
        # 5s wasted on host 0, full 10s on host 1: response = 15.
        assert result.wasted_work[0] == pytest.approx(5.0)
        assert result.response_times[0] == pytest.approx(15.0)
        assert result.wait_times[0] == pytest.approx(5.0)

    def test_cascade_through_three_hosts(self):
        trace = Trace([0.0], [100.0])
        result = DistributedServer(3, TAGSPolicy([2.0, 10.0]), rng=0).run_trace(trace)
        assert result.host_assignments[0] == 2
        assert result.wasted_work[0] == pytest.approx(12.0)
        assert result.response_times[0] == pytest.approx(112.0)

    def test_cutoff_count_must_match_hosts(self):
        with pytest.raises(ValueError):
            DistributedServer(3, TAGSPolicy([5.0]), rng=0)


class TestValidation:
    def test_rejects_zero_hosts(self):
        with pytest.raises(ValueError):
            DistributedServer(0, RandomPolicy(), rng=0)

    def test_rejects_unknown_policy_kind(self):
        class Weird:
            kind = "quantum"

        with pytest.raises(ValueError, match="unsupported kind"):
            DistributedServer(2, Weird(), rng=0)

    def test_policy_returning_bad_host_caught(self, tiny_trace):
        class Broken(RandomPolicy):
            def choose_host(self, job, state):
                return 99

        with pytest.raises(ValueError, match="invalid host"):
            DistributedServer(2, Broken(), rng=0).run_trace(tiny_trace)

    def test_sita_cutoff_count_checked(self, tiny_trace):
        with pytest.raises(ValueError):
            DistributedServer(4, SITAPolicy([3.0]), rng=0).run_trace(tiny_trace)


class TestDeterminism:
    def test_same_seed_same_result(self, small_c90_trace):
        r1 = DistributedServer(2, RandomPolicy(), rng=9).run_trace(small_c90_trace)
        r2 = DistributedServer(2, RandomPolicy(), rng=9).run_trace(small_c90_trace)
        np.testing.assert_array_equal(r1.host_assignments, r2.host_assignments)
        np.testing.assert_array_equal(r1.wait_times, r2.wait_times)
