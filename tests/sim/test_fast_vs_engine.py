"""Cross-validation: the fast kernels must reproduce the event engine.

This is the load-bearing integration test of the whole simulator design
(DESIGN.md §5): per-job waiting times from ``simulate_fast`` must equal
those from ``DistributedServer`` to floating-point accuracy for every
policy, on both hand-written and randomly generated workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    CentralQueuePolicy,
    GroupedSITAPolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
)
from repro.sim.fast import simulate_fast
from repro.sim.server import DistributedServer
from repro.workloads.traces import Trace

POLICY_FACTORIES = [
    pytest.param(lambda: RandomPolicy(), 2, id="random-2"),
    pytest.param(lambda: RandomPolicy(), 5, id="random-5"),
    pytest.param(lambda: RoundRobinPolicy(), 3, id="round-robin-3"),
    pytest.param(lambda: ShortestQueuePolicy(), 2, id="sq-2"),
    pytest.param(lambda: ShortestQueuePolicy(), 4, id="sq-4"),
    pytest.param(lambda: LeastWorkLeftPolicy(), 2, id="lwl-2"),
    pytest.param(lambda: LeastWorkLeftPolicy(), 6, id="lwl-6"),
    pytest.param(lambda: CentralQueuePolicy(), 3, id="central-3"),
    pytest.param(lambda: SITAPolicy([50.0]), 2, id="sita-2"),
    pytest.param(lambda: SITAPolicy([10.0, 200.0]), 3, id="sita-3"),
    pytest.param(lambda: GroupedSITAPolicy(50.0, 2), 4, id="grouped-4"),
]


def random_trace(seed: int, n: int = 800) -> Trace:
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(20.0, n))
    sizes = rng.lognormal(2.5, 1.8, n)
    return Trace(arrivals, sizes, name=f"rand{seed}")


@pytest.mark.parametrize("factory,n_hosts", POLICY_FACTORIES)
def test_waits_agree(factory, n_hosts):
    trace = random_trace(31, 800)
    fast = simulate_fast(trace, factory(), n_hosts, rng=5)
    event = DistributedServer(n_hosts, factory(), rng=5).run_trace(trace)
    np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-6)


@pytest.mark.parametrize("factory,n_hosts", POLICY_FACTORIES)
def test_summaries_agree(factory, n_hosts):
    trace = random_trace(32, 600)
    fast = simulate_fast(trace, factory(), n_hosts, rng=8).summary()
    event = DistributedServer(n_hosts, factory(), rng=8).run_trace(trace).summary()
    assert fast.mean_slowdown == pytest.approx(event.mean_slowdown, rel=1e-9)
    assert fast.var_slowdown == pytest.approx(event.var_slowdown, rel=1e-9)
    assert fast.mean_response == pytest.approx(event.mean_response, rel=1e-9)


def test_assignments_agree_for_deterministic_policies():
    trace = random_trace(33, 500)
    for factory, h in ((lambda: RoundRobinPolicy(), 3), (lambda: SITAPolicy([40.0]), 2)):
        fast = simulate_fast(trace, factory(), h, rng=0)
        event = DistributedServer(h, factory(), rng=0).run_trace(trace)
        np.testing.assert_array_equal(fast.host_assignments, event.host_assignments)


def test_random_policy_consumes_rng_identically():
    """Batch assignment and per-job assignment draw the same stream."""
    trace = random_trace(34, 400)
    fast = simulate_fast(trace, RandomPolicy(), 3, rng=99)
    event = DistributedServer(3, RandomPolicy(), rng=99).run_trace(trace)
    np.testing.assert_array_equal(fast.host_assignments, event.host_assignments)


def test_tags_cascade_matches_event_engine():
    from repro.core.policies import TAGSPolicy

    trace = random_trace(35, 600)
    cutoffs = [float(np.median(trace.service_times))]
    fast = simulate_fast(trace, TAGSPolicy(cutoffs), 2, rng=0)
    event = DistributedServer(2, TAGSPolicy(cutoffs), rng=0).run_trace(trace)
    np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-6)
    np.testing.assert_array_equal(fast.host_assignments, event.host_assignments)
    np.testing.assert_allclose(fast.wasted_work, event.wasted_work, atol=1e-9)


@given(
    st.integers(0, 10_000),
    st.sampled_from(["lwl", "sq", "rr", "sita", "central", "grouped"]),
    st.integers(2, 5),
)
@settings(max_examples=25, deadline=None)
def test_property_backends_agree(seed, policy_name, n_hosts):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 150))
    arrivals = np.cumsum(rng.exponential(10.0, n))
    sizes = rng.lognormal(2.0, 1.5, n)
    trace = Trace(arrivals, sizes)

    def make():
        if policy_name == "lwl":
            return LeastWorkLeftPolicy()
        if policy_name == "sq":
            return ShortestQueuePolicy()
        if policy_name == "rr":
            return RoundRobinPolicy()
        if policy_name == "central":
            return CentralQueuePolicy()
        if policy_name == "grouped":
            return GroupedSITAPolicy(float(np.median(sizes)), max(1, n_hosts - 1))
        return SITAPolicy(
            sorted(set(np.quantile(sizes, np.linspace(0.3, 0.9, n_hosts - 1))))
        )

    try:
        policy = make()
    except ValueError:
        return  # degenerate cutoffs from tied quantiles — not this test's target
    fast = simulate_fast(trace, policy, n_hosts, rng=seed)
    event = DistributedServer(n_hosts, make(), rng=seed).run_trace(trace)
    np.testing.assert_allclose(fast.wait_times, event.wait_times, atol=1e-6)
