"""Property tests for simulator invariants (conservation laws).

These hold for *every* policy and workload, so they make strong
hypothesis targets:

* work conservation per host: busy time equals the total size assigned;
* FCFS order within a host: same-host jobs start in arrival order;
* no host runs two jobs at once;
* response ≥ size, wait ≥ 0, slowdown ≥ 1;
* the system drains: last completion ≥ last arrival, and total busy time
  equals total work.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
    TAGSPolicy,
)
from repro.sim.server import DistributedServer
from repro.workloads.traces import Trace

POLICY_NAMES = ["random", "rr", "sq", "lwl", "sita", "tags"]


def build_policy(name: str, sizes: np.ndarray, n_hosts: int):
    if name == "random":
        return RandomPolicy()
    if name == "rr":
        return RoundRobinPolicy()
    if name == "sq":
        return ShortestQueuePolicy()
    if name == "lwl":
        return LeastWorkLeftPolicy()
    if name == "sita":
        qs = np.quantile(sizes, np.linspace(0.4, 0.9, n_hosts - 1))
        qs = np.unique(qs)
        if qs.size != n_hosts - 1:
            return None
        return SITAPolicy(qs)
    if name == "tags":
        qs = np.unique(np.quantile(sizes, np.linspace(0.4, 0.9, n_hosts - 1)))
        if qs.size != n_hosts - 1:
            return None
        return TAGSPolicy(qs)
    raise AssertionError(name)


@st.composite
def workloads(draw):
    n = draw(st.integers(5, 80))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(draw(st.floats(0.5, 30.0)), n)
    sizes = rng.lognormal(draw(st.floats(0.0, 3.0)), draw(st.floats(0.2, 2.0)), n)
    return Trace(np.cumsum(gaps), sizes)


@given(workloads(), st.sampled_from(POLICY_NAMES), st.integers(2, 4))
@settings(max_examples=80, deadline=None)
def test_simulation_invariants(trace, policy_name, n_hosts):
    policy = build_policy(policy_name, trace.service_times, n_hosts)
    if policy is None:
        return  # degenerate quantile cutoffs
    server = DistributedServer(n_hosts, policy, rng=1)
    result = server.run_trace(trace)

    # Per-job sanity.
    assert np.all(result.wait_times >= 0.0)
    assert np.all(result.slowdowns >= 1.0 - 1e-9)
    assert np.all(result.response_times >= result.sizes - 1e-9)

    # Work conservation: every host's busy time is exactly the (useful)
    # work of the jobs that finished there, and the grand total (plus any
    # TAGS waste) accounts for all submitted work plus restarts.
    total_busy = sum(h.busy_time for h in server.hosts)
    assert total_busy == pytest.approx(float(np.sum(trace.service_times)), rel=1e-9)
    for i, host in enumerate(server.hosts):
        mask = result.host_assignments == i
        assert host.busy_time == pytest.approx(
            float(np.sum(result.sizes[mask])), rel=1e-9, abs=1e-9
        )
        assert host.jobs_completed == int(np.sum(mask))

    # All hosts idle at the end.
    assert all(h.idle for h in server.hosts)


@given(workloads(), st.sampled_from(["random", "rr", "sita", "lwl"]), st.integers(2, 3))
@settings(max_examples=60, deadline=None)
def test_fcfs_order_within_host(trace, policy_name, n_hosts):
    """Same-host completions must respect arrival order (FCFS, no TAGS)."""
    policy = build_policy(policy_name, trace.service_times, n_hosts)
    if policy is None:
        return
    result = DistributedServer(n_hosts, policy, rng=2).run_trace(trace)
    completion = result.arrival_times + result.response_times
    for i in range(n_hosts):
        mask = result.host_assignments == i
        comps = completion[mask]  # in arrival order by construction
        assert np.all(np.diff(comps) >= -1e-9)


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_single_host_is_work_conserving(trace):
    """One FCFS host never idles while work is queued: its makespan equals
    the Lindley bound max over k of (t_k + remaining work after t_k)."""
    result = DistributedServer(1, RandomPolicy(), rng=3).run_trace(trace)
    completion = result.arrival_times + result.response_times
    t = result.arrival_times
    s = result.sizes
    # Busy-period structure: completion of last job = max over k of
    # (t_k + sum of sizes from k onward).
    tail_work = np.cumsum(s[::-1])[::-1]
    expected_end = float(np.max(t + tail_work))
    assert float(completion[-1]) == pytest.approx(expected_end, rel=1e-12)


@given(workloads(), st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_tags_waste_accounting(trace, n_hosts):
    qs = np.unique(np.quantile(trace.service_times, np.linspace(0.4, 0.9, n_hosts - 1)))
    if qs.size != n_hosts - 1:
        return
    server = DistributedServer(n_hosts, TAGSPolicy(qs), rng=4)
    result = server.run_trace(trace)
    # Wasted work recorded on jobs equals wasted time recorded on hosts.
    job_waste = float(np.sum(result.wasted_work))
    host_waste = sum(h.wasted_time for h in server.hosts)
    assert job_waste == pytest.approx(host_waste, rel=1e-9, abs=1e-9)
    # A job that ends on host k > 0 must have wasted exactly the sum of
    # the limits of hosts 0..k-1.
    limits = list(qs)
    for j in range(result.n_jobs):
        k = int(result.host_assignments[j])
        assert result.wasted_work[j] == pytest.approx(
            float(np.sum(limits[:k])), rel=1e-9, abs=1e-9
        )
