"""Tests for the FCFS run-to-completion host."""

from __future__ import annotations

import math

import pytest

from repro.sim.engine import Simulator
from repro.sim.host import FCFSHost
from repro.sim.jobs import Job


def make_host(sim, completed, evicted=None, limit=math.inf):
    def on_completion(host, job):
        completed.append(job)

    on_eviction = None
    if evicted is not None:
        def on_eviction(host, job):
            evicted.append(job)

    return FCFSHost(sim, 0, on_completion, on_eviction, limit=limit)


class TestFCFSBehaviour:
    def test_single_job_runs_immediately(self):
        sim, done = Simulator(), []
        host = make_host(sim, done)
        sim.schedule(0.0, host.submit, Job(0, 0.0, 5.0))
        sim.run()
        assert len(done) == 1
        assert done[0].start_time == 0.0
        assert done[0].completion_time == 5.0
        assert done[0].wait_time == 0.0
        assert done[0].slowdown == 1.0

    def test_fcfs_ordering(self):
        sim, done = Simulator(), []
        host = make_host(sim, done)
        # Three jobs arrive while the first is still running.
        for i, (t, s) in enumerate([(0.0, 10.0), (1.0, 1.0), (2.0, 2.0)]):
            sim.schedule(t, host.submit, Job(i, t, s))
        sim.run()
        assert [j.index for j in done] == [0, 1, 2]
        assert done[1].start_time == 10.0  # waited for job 0
        assert done[2].start_time == 11.0  # then job 1
        assert done[1].wait_time == pytest.approx(9.0)

    def test_idle_gap_then_new_job(self):
        sim, done = Simulator(), []
        host = make_host(sim, done)
        sim.schedule(0.0, host.submit, Job(0, 0.0, 1.0))
        sim.schedule(5.0, host.submit, Job(1, 5.0, 1.0))
        sim.run()
        assert done[1].start_time == 5.0
        assert done[1].wait_time == 0.0

    def test_work_left_decays(self):
        sim, done = Simulator(), []
        host = make_host(sim, done)
        sim.schedule(0.0, host.submit, Job(0, 0.0, 10.0))
        sim.schedule(4.0, lambda: done.append(host.work_left(sim.now)))
        sim.run()
        # done[0] is the probe (work left 6 at t=4); done[1] the job.
        assert done[0] == pytest.approx(6.0)

    def test_work_left_accumulates_queue(self):
        sim, done = Simulator(), []
        host = make_host(sim, done)
        probe = []
        sim.schedule(0.0, host.submit, Job(0, 0.0, 10.0))
        sim.schedule(0.0, host.submit, Job(1, 0.0, 3.0))
        sim.schedule(1.0, lambda: probe.append(host.work_left(sim.now)))
        sim.run()
        assert probe[0] == pytest.approx(12.0)

    def test_n_in_system(self):
        sim, done = Simulator(), []
        host = make_host(sim, done)
        probe = []
        sim.schedule(0.0, host.submit, Job(0, 0.0, 10.0))
        sim.schedule(0.0, host.submit, Job(1, 0.0, 3.0))
        sim.schedule(1.0, lambda: probe.append(host.n_in_system))
        sim.schedule(11.0, lambda: probe.append(host.n_in_system))
        sim.schedule(14.0, lambda: probe.append(host.n_in_system))
        sim.run()
        assert probe == [2, 1, 0]

    def test_busy_time_accounting(self):
        sim, done = Simulator(), []
        host = make_host(sim, done)
        for i, s in enumerate([2.0, 3.0]):
            sim.schedule(0.0, host.submit, Job(i, 0.0, s))
        sim.run()
        assert host.busy_time == pytest.approx(5.0)
        assert host.jobs_completed == 2
        assert host.idle


class TestEviction:
    def test_limit_kills_long_job(self):
        sim, done, evicted = Simulator(), [], []
        host = make_host(sim, done, evicted, limit=4.0)
        sim.schedule(0.0, host.submit, Job(0, 0.0, 10.0))
        sim.run()
        assert done == []
        assert len(evicted) == 1
        assert evicted[0].wasted_work == pytest.approx(4.0)
        assert evicted[0].restarts == 1
        assert host.wasted_time == pytest.approx(4.0)

    def test_limit_spares_short_job(self):
        sim, done, evicted = Simulator(), [], []
        host = make_host(sim, done, evicted, limit=4.0)
        sim.schedule(0.0, host.submit, Job(0, 0.0, 3.0))
        sim.run()
        assert len(done) == 1 and evicted == []

    def test_eviction_without_handler_raises(self):
        sim, done = Simulator(), []
        host = make_host(sim, done, evicted=None, limit=1.0)
        sim.schedule(0.0, host.submit, Job(0, 0.0, 5.0))
        with pytest.raises(RuntimeError, match="no on_eviction handler"):
            sim.run()

    def test_work_left_uses_limited_service(self):
        sim, done, evicted = Simulator(), [], []
        host = make_host(sim, done, evicted, limit=4.0)
        probe = []
        sim.schedule(0.0, host.submit, Job(0, 0.0, 100.0))
        sim.schedule(1.0, lambda: probe.append(host.work_left(sim.now)))
        sim.run()
        assert probe[0] == pytest.approx(3.0)  # 4s limit - 1s elapsed

    def test_invalid_limit(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FCFSHost(sim, 0, lambda h, j: None, limit=0.0)


class TestJobValidation:
    def test_job_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Job(0, 0.0, 0.0)

    def test_job_estimate_defaults_to_size(self):
        j = Job(0, 0.0, 5.0)
        assert j.size_estimate == 5.0

    def test_unfinished_job_metrics_raise(self):
        j = Job(0, 0.0, 5.0)
        assert not j.finished
        with pytest.raises(ValueError):
            _ = j.response_time
        with pytest.raises(ValueError):
            _ = j.wait_time
