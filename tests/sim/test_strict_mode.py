"""The runtime sanitizer: ``Simulator(strict=True)`` / ``REPRO_SIM_STRICT``.

Strict mode re-asserts the engine invariants (monotone clock,
non-negative remaining work, FCFS order per host, conservation of jobs)
after every event.  The tests check three things: a healthy simulation is
*unchanged* by the sanitizer (same per-job waits as both the plain event
engine and the fast kernels — the repo's load-bearing cross-validation
scenario), a corrupted simulation is *caught*, and the environment hook
switches the default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import (
    CentralQueuePolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
    ShortestQueuePolicy,
    TAGSPolicy,
)
from repro.sim import InvariantViolation, Simulator, strict_from_env
from repro.sim.fast import simulate_fast
from repro.sim.server import DistributedServer
from repro.workloads.traces import Trace

POLICIES = [
    pytest.param(lambda: RandomPolicy(), 3, id="random"),
    pytest.param(lambda: RoundRobinPolicy(), 3, id="round-robin"),
    pytest.param(lambda: ShortestQueuePolicy(), 3, id="sq"),
    pytest.param(lambda: LeastWorkLeftPolicy(), 3, id="lwl"),
    pytest.param(lambda: CentralQueuePolicy(), 3, id="central"),
    pytest.param(lambda: SITAPolicy([5.0, 60.0]), 3, id="sita"),
]


def make_trace(n: int = 600, seed: int = 42) -> Trace:
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0, n))
    sizes = rng.pareto(1.5, n) + 0.05  # heavy-tailed, like the paper
    return Trace(arrivals, sizes)


@pytest.mark.parametrize("factory,n_hosts", POLICIES)
def test_strict_engine_matches_fast_kernels(factory, n_hosts):
    """The existing engine-vs-fast cross-validation, run under strict=True."""
    trace = make_trace()
    strict = DistributedServer(n_hosts, factory(), rng=7, strict=True)
    result = strict.run_trace(trace)
    fast = simulate_fast(trace, factory(), n_hosts, rng=7)
    np.testing.assert_allclose(result.wait_times, fast.wait_times, atol=1e-8)


@pytest.mark.parametrize("factory,n_hosts", POLICIES)
def test_strict_mode_does_not_change_results(factory, n_hosts):
    trace = make_trace(300, seed=3)
    loose = DistributedServer(n_hosts, factory(), rng=11, strict=False).run_trace(trace)
    strict = DistributedServer(n_hosts, factory(), rng=11, strict=True).run_trace(trace)
    np.testing.assert_array_equal(loose.wait_times, strict.wait_times)
    np.testing.assert_array_equal(loose.host_assignments, strict.host_assignments)


def test_strict_tags_with_evictions_passes():
    trace = make_trace(400, seed=9)
    cutoff = float(np.quantile(trace.service_times, 0.7))
    server = DistributedServer(2, TAGSPolicy([cutoff]), rng=1, strict=True)
    result = server.run_trace(trace)
    assert result.wasted_work.sum() > 0  # evictions actually happened


def test_conservation_violation_is_caught():
    trace = make_trace(50, seed=5)
    server = DistributedServer(2, LeastWorkLeftPolicy(), rng=1, strict=True)
    original = server._handle_arrival

    def double_counting(job):
        server._n_arrived += 1  # corrupt the books
        original(job)

    server._handle_arrival = double_counting
    with pytest.raises(InvariantViolation, match="conservation"):
        server.run_trace(trace)


def test_fcfs_violation_is_caught():
    trace = make_trace(50, seed=6)
    server = DistributedServer(2, LeastWorkLeftPolicy(), rng=1, strict=True)
    original = server._handle_arrival
    state = {"swapped": False}

    def reorder(job):
        original(job)
        host = server.hosts[job.assigned_host]
        if not state["swapped"] and len(host.queue) >= 2:
            host.queue.reverse()  # break dispatch order
            state["swapped"] = True

    server._handle_arrival = reorder
    with pytest.raises(InvariantViolation, match="FCFS"):
        server.run_trace(trace)


def test_negative_remaining_work_is_caught():
    trace = make_trace(50, seed=8)
    server = DistributedServer(2, LeastWorkLeftPolicy(), rng=1, strict=True)
    original = server._handle_arrival

    def rewind(job):
        original(job)
        host = server.hosts[job.assigned_host]
        host._virtual_completion = server.sim.now - 10.0  # impossible state

    server._handle_arrival = rewind
    with pytest.raises(InvariantViolation, match="virtual completion"):
        server.run_trace(trace)


def test_engine_monotone_clock_check():
    sim = Simulator(strict=True)
    sim.schedule(1.0, lambda: None)
    sim._now = 5.0  # simulate heap/clock corruption
    with pytest.raises(InvariantViolation, match="backwards"):
        sim.step()


def test_checkers_not_invoked_when_not_strict():
    calls = []
    sim = Simulator(strict=False)
    sim.add_invariant_checker(lambda s: calls.append(s.now))
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert calls == []
    assert not sim.strict


def test_env_hook_enables_strict(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_STRICT", raising=False)
    assert not strict_from_env()
    assert not Simulator().strict
    monkeypatch.setenv("REPRO_SIM_STRICT", "1")
    assert strict_from_env()
    assert Simulator().strict
    assert DistributedServer(2, LeastWorkLeftPolicy(), rng=0).sim.strict
    monkeypatch.setenv("REPRO_SIM_STRICT", "0")
    assert not Simulator().strict
    # explicit argument beats the environment
    monkeypatch.setenv("REPRO_SIM_STRICT", "1")
    assert not Simulator(strict=False).strict


def test_env_hook_runs_checkers_end_to_end(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_STRICT", "1")
    trace = make_trace(100, seed=13)
    server = DistributedServer(2, LeastWorkLeftPolicy(), rng=2)
    assert server.sim.strict
    result = server.run_trace(trace)
    assert result.wait_times.shape == (100,)


def test_simulate_strict_passthrough():
    """simulate(strict=True) forces the event engine with the sanitizer on
    and still matches the fast kernels exactly."""
    from repro.sim.runner import simulate

    trace = make_trace(400, seed=7)
    policy = LeastWorkLeftPolicy()
    strict = simulate(trace, policy, n_hosts=3, rng=0, strict=True)
    fast = simulate(trace, policy, n_hosts=3, rng=0, backend="fast")
    np.testing.assert_allclose(strict.wait_times, fast.wait_times, atol=1e-8)


def test_simulate_strict_rejects_fast_backend():
    from repro.sim.runner import simulate

    trace = make_trace(50, seed=3)
    with pytest.raises(ValueError, match="strict"):
        simulate(trace, LeastWorkLeftPolicy(), n_hosts=2, backend="fast", strict=True)
