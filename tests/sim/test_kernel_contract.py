"""Runtime half of the kernel contracts, and its agreement with SIM2xx.

The decorator in :mod:`repro.sim.contract` validates calls when enabled
(``REPRO_SIM_STRICT=1`` or :func:`set_contract_validation`); the static
checker (:mod:`repro.devtools.contracts`) verifies the same declarations
without running anything.  The hypothesis properties at the bottom pin
the two halves together: for call sites the static analysis can see
through completely (literal constructors), its verdict and the runtime
validator's verdict must be identical — on a toy kernel and on the real
public kernels re-exported by :mod:`repro.sim.kernel`.
"""

from __future__ import annotations

import ast
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools import ProjectGraph, lint_source, run_contract_rules
from repro.sim import fast
from repro.sim.kernel import (
    ContractViolation,
    KernelContract,
    contract_of,
    contract_validation,
    estimated_lwl_waits,
    fcfs_waits,
    kernel_contract,
    sita_scan,
    validation_enabled,
)


@pytest.fixture(autouse=True)
def _validate():
    with contract_validation(True):
        yield


def t_s(n=4):
    return np.arange(float(n)), np.ones(n)


# ---------------------------------------------------------------------------
# the validator, violation by violation
# ---------------------------------------------------------------------------


def test_contract_violation_is_a_value_error():
    assert issubclass(ContractViolation, ValueError)


def test_clean_call_passes_and_returns():
    t, s = t_s()
    waits = fcfs_waits(t, s)
    assert waits.dtype == np.float64 and waits.shape == t.shape


def test_dtype_drift_rejected():
    t, s = t_s()
    with pytest.raises(ContractViolation, match="dtype"):
        fcfs_waits(t.astype(np.int64), s)


def test_shape_symbol_unification_rejected():
    t, _ = t_s(4)
    with pytest.raises(ContractViolation, match="dimension"):
        fcfs_waits(t, np.ones(3))


def test_rank_break_rejected():
    t, s = t_s(4)
    with pytest.raises(ContractViolation, match="-D"):
        fcfs_waits(t.reshape(2, 2), s)


def test_non_contiguous_input_rejected():
    t, s = t_s(8)
    with pytest.raises(ContractViolation, match="contiguous"):
        fcfs_waits(t[::2], s[:4])


def test_written_buffer_aliasing_rejected():
    t, s = t_s(4)
    out = np.empty(4)
    work1 = np.empty(3)
    with pytest.raises(ContractViolation, match="share memory"):
        fast._fcfs_waits_into(t, s, out, work1, out)


def test_read_only_inputs_may_alias():
    t, s = t_s(4)
    waits, hosts = estimated_lwl_waits(t, s, s, 3)
    assert waits.shape == t.shape and hosts.shape == t.shape


def test_undeclared_write_raises_inside_the_kernel():
    @kernel_contract(dtypes={"xs": "float64"})
    def bad(xs):
        xs[0] = -1.0
        return xs

    xs = np.zeros(3)
    with pytest.raises(ValueError, match="read-only"):
        bad(xs)
    # the freeze is undone even though the kernel raised
    assert xs.flags.writeable
    assert xs[0] == 0.0


def test_declared_write_is_allowed_and_lands():
    @kernel_contract(writes=("out",))
    def fill(out):
        out[:] = 7.0
        return out

    out = np.zeros(3)
    fill(out)
    assert out.tolist() == [7.0, 7.0, 7.0]
    assert out.flags.writeable


def test_return_contract_checked():
    @kernel_contract(shapes={"xs": ("n",), "return": ("n",)})
    def truncating(xs):
        return xs[:-1].copy()

    with pytest.raises(ContractViolation, match="dimension"):
        truncating(np.zeros(4))


def test_validation_off_skips_all_checks():
    with contract_validation(False):
        assert not validation_enabled()
        # int inputs sail through: the NumPy body converts them itself
        waits = fcfs_waits(np.arange(4), np.ones(4, dtype=np.int64))  # repro: noqa: SIM201
    assert waits.dtype == np.float64


def test_validation_scopes_nest_and_restore():
    with contract_validation(False):
        with contract_validation(True):
            assert validation_enabled()
        assert not validation_enabled()


def test_contract_of_exposes_the_declaration():
    contract = contract_of(fcfs_waits)
    assert isinstance(contract, KernelContract)
    assert contract.shapes["arrival_times"] == ("n",)
    assert contract_of(len) is None


def test_scan_kernel_passes_under_validation():
    from repro.workloads.traces import Trace

    t = np.arange(16.0)
    s = np.ones(16) + (np.arange(16) % 3)
    result = sita_scan(Trace(t, s), np.array([1.5, 2.5]))
    assert result.values.shape == (2,)


# ---------------------------------------------------------------------------
# static/runtime agreement (hypothesis)
# ---------------------------------------------------------------------------

DTYPES = ("float64", "float32", "int64")

_TOY_TEMPLATE = """\
from repro.sim.contract import kernel_contract
import numpy as np

@kernel_contract(
    shapes={{"xs": ("n",), "ys": ("n",)}},
    dtypes={{"xs": "float64", "ys": "float64"}},
    writes=("ys",),
)
def kern(xs, ys):
    ys[:] = xs
    return ys

def caller():
{body}
"""


@st.composite
def toy_calls(draw):
    alias = draw(st.booleans())
    dt_a = draw(st.sampled_from(DTYPES))
    len_a = draw(st.integers(min_value=0, max_value=5))
    if alias:
        return alias, dt_a, len_a, dt_a, len_a
    dt_b = draw(st.sampled_from(DTYPES))
    len_b = draw(st.integers(min_value=0, max_value=5))
    return alias, dt_a, len_a, dt_b, len_b


@settings(max_examples=40, deadline=None)
@given(toy_calls())
def test_static_and_runtime_agree_on_toy_kernel(case):
    alias, dt_a, len_a, dt_b, len_b = case
    if alias:
        body = (
            f"    buf = np.zeros({len_a}, dtype=np.{dt_a})\n"
            "    return kern(buf, buf)"
        )
    else:
        body = (
            f"    return kern(np.zeros({len_a}, dtype=np.{dt_a}), "
            f"np.zeros({len_b}, dtype=np.{dt_b}))"
        )
    findings = lint_source(
        _TOY_TEMPLATE.format(body=body),
        path="src/repro/sim/prop_fixture.py",
        select=["SIM201", "SIM203", "SIM204"],
    )

    @kernel_contract(
        shapes={"xs": ("n",), "ys": ("n",)},
        dtypes={"xs": "float64", "ys": "float64"},
        writes=("ys",),
    )
    def kern(xs, ys):
        ys[:] = xs
        return ys

    if alias:
        buf = np.zeros(len_a, dtype=dt_a)
        args = (buf, buf)
    else:
        args = (np.zeros(len_a, dtype=dt_a), np.zeros(len_b, dtype=dt_b))
    try:
        kern(*args)
        raised = False
    except ContractViolation:
        raised = True
    assert bool(findings) == raised, (case, findings)


_FAST_PATH = Path(fast.__file__)
_FAST_TREE = ast.parse(_FAST_PATH.read_text(encoding="utf-8"))


@settings(max_examples=25, deadline=None)
@given(
    dt_a=st.sampled_from(DTYPES),
    len_a=st.integers(min_value=0, max_value=5),
    dt_b=st.sampled_from(DTYPES),
    len_b=st.integers(min_value=0, max_value=5),
)
def test_static_and_runtime_agree_on_public_fcfs_waits(dt_a, len_a, dt_b, len_b):
    """The real kernel, checked through the real cross-module graph."""
    driver = (
        "import numpy as np\n"
        "from repro.sim.fast import fcfs_waits\n"
        "def go():\n"
        f"    return fcfs_waits(np.zeros({len_a}, dtype=np.{dt_a}), "
        f"np.zeros({len_b}, dtype=np.{dt_b}))\n"
    )
    graph = ProjectGraph.build(
        [
            ("src/repro/sim/fast.py", _FAST_TREE),
            ("src/repro/sim/prop_driver.py", ast.parse(driver)),
        ]
    )
    findings = [
        f
        for f in run_contract_rules(graph, select={"SIM201", "SIM204"})
        if f.path.endswith("prop_driver.py")
    ]
    try:
        fcfs_waits(np.zeros(len_a, dtype=dt_a), np.zeros(len_b, dtype=dt_b))
        raised = False
    except ContractViolation:
        raised = True
    assert bool(findings) == raised, (dt_a, len_a, dt_b, len_b, findings)
