"""The certified compiled kernel tier: selection, fallback, bit-identity.

The nopython kernel bodies in :mod:`repro.sim.compiled` are plain Python
functions (``kernel_contract(nopython=True)`` returns them unwrapped),
so their claim — operation-for-operation equivalence with the
:mod:`repro.sim.fast` kernels — is testable **without numba**: hypothesis
drives degenerate traces (simultaneous arrivals, tied sizes, zero jobs,
one host) through both implementations and demands ``np.array_equal``,
hosts included.  When numba is installed the same equivalence is
asserted against the actual njit dispatchers via the audit tier check.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import compiled, fast
from repro.sim.compiled import (
    MANIFEST_PATH,
    active_tier,
    compiled_available,
    dispatch,
    kernel_tier,
    requested_tier,
    set_kernel_tier,
)

HAS_COMPILED = compiled_available()


# ---------------------------------------------------------------------------
# tier selection and fallback
# ---------------------------------------------------------------------------


def test_default_tier_is_auto(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_TIER", raising=False)
    assert requested_tier() == "auto"
    assert active_tier() == ("compiled" if HAS_COMPILED else "python")


def test_env_var_selects_the_tier(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_TIER", "python")
    assert requested_tier() == "python"
    assert active_tier() == "python"
    assert dispatch("lwl_waits") is None


def test_invalid_env_tier_is_an_error(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_TIER", "turbo")
    with pytest.raises(ValueError, match="turbo"):
        requested_tier()


def test_override_beats_the_environment(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_TIER", "python")
    previous = set_kernel_tier("auto")
    try:
        assert requested_tier() == "auto"
    finally:
        set_kernel_tier(previous)


def test_kernel_tier_context_restores_previous():
    with kernel_tier("python"):
        assert requested_tier() == "python"
        with kernel_tier("auto"):
            assert requested_tier() == "auto"
        assert requested_tier() == "python"


def test_set_kernel_tier_rejects_unknown_names():
    with pytest.raises(ValueError):
        set_kernel_tier("fastest")


@pytest.mark.skipif(HAS_COMPILED, reason="compiled tier is available here")
def test_explicit_compiled_without_numba_raises():
    with kernel_tier("compiled"):
        with pytest.raises(RuntimeError, match="unavailable"):
            active_tier()


@pytest.mark.skipif(HAS_COMPILED, reason="compiled tier is available here")
def test_python_fallback_dispatches_nothing():
    for name in compiled._KERNEL_IMPLS:
        assert dispatch(name) is None


@pytest.mark.skipif(not HAS_COMPILED, reason="needs numba")
def test_compiled_tier_dispatches_every_certified_kernel():
    with kernel_tier("compiled"):
        for name in compiled._KERNEL_IMPLS:
            assert dispatch(name) is not None


# ---------------------------------------------------------------------------
# manifest
# ---------------------------------------------------------------------------


def test_manifest_names_the_shipped_kernels():
    doc = json.loads(Path(MANIFEST_PATH).read_text(encoding="utf-8"))
    assert doc["schema_version"] == 1
    assert doc["rules"] == [f"SIM30{i}" for i in range(1, 9)]
    certified = set(doc["certified"])
    assert {
        f"repro.sim.compiled.{name}" for name in compiled._KERNEL_IMPLS
    } <= certified


# ---------------------------------------------------------------------------
# bit-identity of the ported bodies (python-executed — no numba needed)
# ---------------------------------------------------------------------------

# Coarse grids on purpose: collisions (simultaneous arrivals, tied
# sizes, repeatedly idle hosts) are exactly where tie-breaking could
# diverge between the heap/argmin ports and the originals.
_GAPS = st.lists(
    st.sampled_from([0.0, 0.25, 1.0, 3.0]), min_size=0, max_size=50
)
_SIZE = st.sampled_from([0.5, 1.0, 1.0, 2.5, 7.0])
_HOSTS = st.integers(min_value=1, max_value=5)


def _trace_arrays(gaps, draw_sizes):
    t = np.cumsum(np.asarray(gaps, dtype=np.float64))
    s = np.asarray(draw_sizes(len(gaps)), dtype=np.float64)
    return t, s


def _assert_pair_equal(python_pair, ported_pair):
    pw, ph = python_pair
    cw, ch = ported_pair
    assert cw.dtype == np.float64 and ch.dtype == np.int64
    assert np.array_equal(pw, cw)
    assert np.array_equal(ph, ch)


@given(gaps=_GAPS, data=st.data(), n_hosts=_HOSTS)
@settings(max_examples=80, deadline=None)
def test_lwl_uniform_port_is_bit_identical(gaps, data, n_hosts):
    t, s = _trace_arrays(
        gaps, lambda n: data.draw(st.lists(_SIZE, min_size=n, max_size=n))
    )
    with kernel_tier("python"):
        reference = fast.lwl_waits(t, s, n_hosts)
    ported = compiled.lwl_waits(t, s, n_hosts, np.ones(n_hosts))
    _assert_pair_equal(reference, ported)


@given(gaps=_GAPS, data=st.data(), n_hosts=_HOSTS)
@settings(max_examples=80, deadline=None)
def test_lwl_heterogeneous_port_is_bit_identical(gaps, data, n_hosts):
    t, s = _trace_arrays(
        gaps, lambda n: data.draw(st.lists(_SIZE, min_size=n, max_size=n))
    )
    speeds = np.asarray(
        data.draw(
            st.lists(
                st.sampled_from([0.5, 1.0, 2.0]),
                min_size=n_hosts,
                max_size=n_hosts,
            )
        ),
        dtype=np.float64,
    )
    # force at least one non-unit speed so both sides take the
    # heterogeneous branch
    speeds[0] = 2.0
    with kernel_tier("python"):
        reference = fast.lwl_waits(t, s, n_hosts, host_speeds=speeds)
    ported = compiled.lwl_waits(t, s, n_hosts, speeds)
    _assert_pair_equal(reference, ported)


@given(gaps=_GAPS, data=st.data(), n_hosts=_HOSTS)
@settings(max_examples=80, deadline=None)
def test_shortest_queue_port_is_bit_identical(gaps, data, n_hosts):
    t, s = _trace_arrays(
        gaps, lambda n: data.draw(st.lists(_SIZE, min_size=n, max_size=n))
    )
    with kernel_tier("python"):
        reference = fast.shortest_queue_waits(t, s, n_hosts)
    ported = compiled.shortest_queue_waits(t, s, n_hosts, np.ones(n_hosts))
    _assert_pair_equal(reference, ported)


@given(gaps=_GAPS, data=st.data(), n_hosts=_HOSTS)
@settings(max_examples=80, deadline=None)
def test_estimated_lwl_port_is_bit_identical(gaps, data, n_hosts):
    t, s = _trace_arrays(
        gaps, lambda n: data.draw(st.lists(_SIZE, min_size=n, max_size=n))
    )
    est = np.asarray(
        data.draw(st.lists(_SIZE, min_size=len(gaps), max_size=len(gaps))),
        dtype=np.float64,
    )
    with kernel_tier("python"):
        reference = fast.estimated_lwl_waits(t, s, est, n_hosts)
    ported = compiled.estimated_lwl_waits(t, s, est, n_hosts)
    _assert_pair_equal(reference, ported)


@given(gaps=_GAPS, data=st.data())
@settings(max_examples=80, deadline=None)
def test_sita_scan_port_matches_fcfs_waits(gaps, data):
    t, s = _trace_arrays(
        gaps, lambda n: data.draw(st.lists(_SIZE, min_size=n, max_size=n))
    )
    with kernel_tier("python"):
        reference = fast.fcfs_waits(t, s)
    out = np.empty(t.size, dtype=np.float64)
    ported = compiled.sita_scan(t, s, out)
    assert np.array_equal(reference, ported)


def test_ports_handle_the_empty_trace():
    empty = np.empty(0, dtype=np.float64)
    w, h = compiled.lwl_waits(empty, empty, 3, np.ones(3))
    assert w.size == 0 and h.size == 0
    w, h = compiled.shortest_queue_waits(empty, empty, 3, np.ones(3))
    assert w.size == 0 and h.size == 0
    w, h = compiled.estimated_lwl_waits(empty, empty, empty, 3)
    assert w.size == 0 and h.size == 0
    out = np.empty(0, dtype=np.float64)
    assert compiled.sita_scan(empty, empty, out).size == 0


# ---------------------------------------------------------------------------
# end-to-end with the real compiler (skipped without numba)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAS_COMPILED, reason="needs numba")
def test_njit_tier_is_bit_identical_end_to_end():
    from repro.devtools.audit import cross_check_tiers

    report = cross_check_tiers(seed=20000731, n_jobs=800)
    assert report.available
    assert report.ok, report.render()


@pytest.mark.skipif(not HAS_COMPILED, reason="needs numba")
def test_simulate_fast_agrees_across_tiers():
    from repro.core.policies import LeastWorkLeftPolicy
    from repro.workloads.catalog import get_workload

    trace = get_workload("c90").make_trace(
        load=0.7, n_hosts=4, n_jobs=600, rng=7
    )
    with kernel_tier("python"):
        py = fast.simulate_fast(trace, LeastWorkLeftPolicy(), 4, rng=7)
    with kernel_tier("compiled"):
        co = fast.simulate_fast(trace, LeastWorkLeftPolicy(), 4, rng=7)
    assert np.array_equal(py.wait_times, co.wait_times)
    assert np.array_equal(py.host_assignments, co.host_assignments)
