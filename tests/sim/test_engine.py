"""Tests for the discrete-event engine and event primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_run_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(5.0, order.append, tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_schedule_after(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: sim.schedule_after(3.0, lambda: seen.append(sim.now)))
        sim.run()
        # The inner event fires at 2 + 3 = 5; callback reads the clock then.
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda: None)

    def test_rejects_nonfinite_time(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(math.inf, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(math.nan, lambda: None)

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def chain(n: int) -> None:
            fired.append(sim.now)
            if n > 0:
                sim.schedule_after(1.0, chain, n - 1)

        sim.schedule(0.0, chain, 4)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_mid_run(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_handle_time(self):
        sim = Simulator()
        h = sim.schedule(7.5, lambda: None)
        assert h.time == 7.5


class TestRunControl:
    def test_run_until(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, fired.append, t)
        sim.run(until=2.5)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.5
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_with_empty_calendar_advances_clock(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for t in range(5):
            sim.schedule(float(t), fired.append, t)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]

    def test_counters(self):
        sim = Simulator()
        for t in range(3):
            sim.schedule(float(t), lambda: None)
        assert sim.pending == 3
        sim.run()
        assert sim.events_processed == 3
        assert sim.pending == 0


@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_events_always_fire_in_nondecreasing_time(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.schedule(t, lambda t=t: seen.append(sim.now))
    sim.run()
    assert len(seen) == len(times)
    assert all(b >= a for a, b in zip(seen, seen[1:]))
    assert sorted(times)[-1] == sim.now
