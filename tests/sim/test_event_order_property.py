"""Property-based tests of the engine's event-ordering contract.

The determinism stack (SIM105, the replay auditor) leans on one promise
from :mod:`repro.sim.events`: events fire in ``(time, seq)`` order —
simultaneous events in exactly the order they were scheduled — and a
cancelled event never fires, whether cancelled before its time, at its
time (from an earlier simultaneous event), or mid-run.  Hypothesis
drives the schedule shapes; every property must hold for *any* of them.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

# times drawn from a tiny grid on purpose: collisions (simultaneous
# events) are the interesting case and a coarse grid makes them common.
_TIME_GRID = st.sampled_from([0.0, 1.0, 1.5, 2.0, 3.0])
_SCHEDULES = st.lists(_TIME_GRID, min_size=1, max_size=40)


@given(times=_SCHEDULES)
def test_events_fire_in_time_then_schedule_order(times):
    sim = Simulator()
    fired: list[int] = []
    for i, t in enumerate(times):
        sim.schedule(t, fired.append, i)
    sim.run()
    expected = [i for _, i in sorted((t, i) for i, t in enumerate(times))]
    assert fired == expected


@given(times=_SCHEDULES, data=st.data())
def test_cancelled_events_never_fire(times, data):
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1)),
        label="to_cancel",
    )
    sim = Simulator()
    fired: list[int] = []
    handles = [sim.schedule(t, fired.append, i) for i, t in enumerate(times)]
    for i in sorted(to_cancel):
        handles[i].cancel()
        assert handles[i].cancelled
    sim.run()
    expected = [
        i
        for _, i in sorted((t, i) for i, t in enumerate(times))
        if i not in to_cancel
    ]
    assert fired == expected
    assert sim.events_processed == len(expected)


@given(times=_SCHEDULES, data=st.data())
def test_cancellation_from_a_simultaneous_event_wins(times, data):
    """An event may cancel a *later-scheduled simultaneous* event.

    seq order guarantees the canceller runs first, so the victim must
    never fire — the lazy-cancellation edge case: the victim is already
    in the heap, possibly already popped-adjacent, when it dies.
    """
    victim_index = data.draw(
        st.integers(min_value=0, max_value=len(times) - 1), label="victim"
    )
    victim_time = times[victim_index]
    sim = Simulator()
    fired: list[int] = []
    handles: dict[int, object] = {}

    def cancel_victim():
        handles[victim_index].cancel()

    # the canceller is scheduled *before* the victim at the same time,
    # so it holds the smaller seq and runs first
    sim.schedule(victim_time, cancel_victim)
    for i, t in enumerate(times):
        handles[i] = sim.schedule(t, fired.append, i)
    sim.run()
    assert victim_index not in fired
    expected = [
        i for _, i in sorted((t, i) for i, t in enumerate(times)) if i != victim_index
    ]
    assert fired == expected


@settings(max_examples=25)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_interleaved_schedule_cancel_chains_are_deterministic(seed):
    """A randomized schedule/cancel workload replays bit-identically.

    Each callback may schedule further events and cancel a pending one,
    driven by a seeded Generator — two runs with equal seeds must
    produce identical firing logs (the property `repro audit` checks on
    whole experiments).
    """

    def run_once() -> list[tuple[float, int]]:
        rng = np.random.default_rng(seed)
        sim = Simulator()
        log: list[tuple[float, int]] = []
        pending: list = []
        counter = [0]

        def fire(tag: int) -> None:
            log.append((sim.now, tag))
            if counter[0] < 200 and rng.random() < 0.6:
                for _ in range(int(rng.integers(1, 3))):
                    counter[0] += 1
                    pending.append(
                        sim.schedule_after(
                            float(rng.choice([0.0, 0.5, 1.0])), fire, counter[0]
                        )
                    )
            if pending and rng.random() < 0.3:
                pending.pop(int(rng.integers(0, len(pending)))).cancel()

        for _ in range(5):
            counter[0] += 1
            pending.append(sim.schedule(float(rng.choice([0.0, 1.0])), fire, counter[0]))
        sim.run(max_events=2000)
        return log

    assert run_once() == run_once()
