"""Tests for the crash-safe experiment harness (checkpoint/resume,
per-point timeouts, config validation, kernel-fallback recording)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.policies import RandomPolicy
from repro.experiments.base import (
    Checkpoint,
    ExperimentConfig,
    PointTimeout,
    active_checkpoint,
    checkpointed,
    config_signature,
    run_experiment,
    run_point,
)
from repro.experiments.common import SweepPoint, evaluate_policy
from repro.workloads.traces import Trace


class TestConfigValidation:
    """Satellite: ExperimentConfig rejects nonsense at construction."""

    def test_defaults_are_valid(self):
        ExperimentConfig()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"scale": 0.0}, "scale"),
            ({"scale": -1.0}, "scale"),
            ({"scale": float("inf")}, "scale"),
            ({"seed": -1}, "seed"),
            ({"seed": 1.5}, "seed"),
            ({"warmup_fraction": 1.0}, "warmup_fraction"),
            ({"warmup_fraction": -0.1}, "warmup_fraction"),
            ({"loads": ()}, "loads"),
            ({"loads": (0.5, 1.0)}, "load"),
            ({"loads": (0.0,)}, "load"),
            ({"max_load": 1.5}, "max_load"),
            ({"replications": 0}, "replications"),
            ({"replications": 2.5}, "replications"),
            ({"point_timeout": 0.0}, "point_timeout"),
            ({"point_retries": -1}, "point_retries"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExperimentConfig(**kwargs)

    def test_with_revalidates(self):
        cfg = ExperimentConfig()
        with pytest.raises(ValueError, match="scale"):
            cfg.with_(scale=-2.0)


class TestCheckpoint:
    def test_roundtrip_preserves_floats_exactly(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp", signature="sig")
        value = {"x": 0.1 + 0.2, "n": 3, "s": "policy", "flag": True}
        cp.put("point-1", value)
        loaded = cp.get("point-1")
        assert loaded == value
        assert loaded["x"] == 0.1 + 0.2  # bit-exact, not approx

    def test_missing_key_is_none(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        assert cp.get("nope") is None

    def test_stale_signature_is_invisible(self, tmp_path):
        Checkpoint(tmp_path / "cp", signature="old").put("k", 1)
        assert Checkpoint(tmp_path / "cp", signature="new").get("k") is None

    def test_corrupt_file_is_recomputed_not_fatal(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp", signature="s")
        cp.put("k", 1)
        for f in (tmp_path / "cp").glob("*.json"):
            f.write_text("{truncated")
        assert cp.get("k") is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        for i in range(5):
            cp.put(f"k{i}", i)
        leftovers = [p for p in (tmp_path / "cp").iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert len(cp) == 5

    def test_clear(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp")
        cp.put("k", 1)
        cp.clear()
        assert len(cp) == 0
        assert cp.get("k") is None

    def test_checkpointed_helper(self, tmp_path):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 42}

        # No active checkpoint: always computes.
        assert checkpointed("k", compute) == {"v": 42}
        assert len(calls) == 1
        cp = Checkpoint(tmp_path / "cp")
        with active_checkpoint(cp):
            assert checkpointed("k", compute) == {"v": 42}
            assert checkpointed("k", compute) == {"v": 42}
        assert len(calls) == 2  # second call inside the context was cached
        # Context exited: computes again.
        checkpointed("k", compute)
        assert len(calls) == 3

    def test_config_signature_distinguishes_configs(self):
        a = config_signature("fig4", ExperimentConfig(scale=0.1))
        b = config_signature("fig4", ExperimentConfig(scale=0.2))
        c = config_signature("fig5", ExperimentConfig(scale=0.1))
        assert len({a, b, c}) == 3


class TestRunPoint:
    def test_no_timeout_runs_unbounded(self):
        assert run_point(lambda: 7) == 7

    def test_timeout_raises_after_retries(self):
        calls = []

        def slow():
            calls.append(1)
            time.sleep(5.0)

        with pytest.raises(PointTimeout):
            with pytest.warns(RuntimeWarning, match="timed out"):
                run_point(slow, timeout=0.1, retries=1, backoff=0.01)
        assert len(calls) == 2

    def test_fast_point_is_untouched_by_budget(self):
        assert run_point(lambda: "ok", timeout=30.0) == "ok"

    def test_retry_can_succeed(self):
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] == 1:
                time.sleep(5.0)
            return state["n"]

        with pytest.warns(RuntimeWarning, match="retrying"):
            assert run_point(flaky, timeout=0.1, retries=2, backoff=0.01) == 2


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(scale=0.01, loads=(0.5,), seed=123)


class TestEvaluatePolicyCheckpointing:
    def trace(self):
        rng = np.random.default_rng(0)
        return Trace(np.cumsum(rng.exponential(1.0, 400)),
                     rng.pareto(1.5, 400) + 0.5)

    def test_second_call_hits_cache(self, tmp_path, monkeypatch):
        cfg = tiny_config()
        trace = self.trace()
        cp = Checkpoint(tmp_path / "cp", signature="t")
        with active_checkpoint(cp):
            first = evaluate_policy(trace, RandomPolicy(), 0.5, 2, cfg, seed=9)
            assert len(cp) == 1
            # Make any recomputation explode: a cache hit must not simulate.
            import repro.experiments.common as common

            monkeypatch.setattr(
                common, "simulate",
                lambda *a, **k: (_ for _ in ()).throw(AssertionError("resimulated")),
            )
            second = evaluate_policy(trace, RandomPolicy(), 0.5, 2, cfg, seed=9)
        # NaN fairness placeholders defeat == (NaN != NaN); compare the
        # canonical JSON text instead.
        assert json.dumps(first.to_json(), sort_keys=True) == json.dumps(
            second.to_json(), sort_keys=True
        )

    def test_fallback_is_recorded_in_point_and_row(self, monkeypatch):
        import repro.sim.fast as fast

        monkeypatch.setattr(
            fast, "fcfs_waits",
            lambda t, s: np.full(np.asarray(t).size, np.nan),
        )
        cfg = tiny_config()
        with pytest.warns(RuntimeWarning, match="falling back"):
            point = evaluate_policy(
                self.trace(), RandomPolicy(), 0.5, 2, cfg, seed=9
            )
        assert point.fallback is True
        assert point.as_row()["fallback"] is True

    def test_fallback_cross_validates_against_event_engine(self, monkeypatch):
        from repro.sim.runner import simulate as real_simulate

        cfg = tiny_config()
        trace = self.trace()
        reference = real_simulate(trace, RandomPolicy(), 2, rng=9, backend="event")
        import repro.sim.fast as fast

        monkeypatch.setattr(
            fast, "fcfs_waits",
            lambda t, s: np.full(np.asarray(t).size, np.nan),
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            point = evaluate_policy(trace, RandomPolicy(), 0.5, 2, cfg, seed=9)
        expected = reference.summary(warmup_fraction=cfg.warmup_fraction)
        assert point.summary.mean_slowdown == pytest.approx(
            expected.mean_slowdown
        )

    def test_sweep_point_json_roundtrip(self):
        cfg = tiny_config()
        point = evaluate_policy(
            self.trace(), RandomPolicy(), 0.5, 2, cfg, seed=9, class_cutoff=1.0
        )
        restored = SweepPoint.from_json(json.loads(json.dumps(point.to_json())))
        assert restored == point
        assert restored.summary.mean_slowdown == point.summary.mean_slowdown


class TestResumeRoundTrip:
    """A sweep killed mid-run resumes to the identical result."""

    EXPERIMENT = "fig4"

    def run_direct(self, config):
        return run_experiment(self.EXPERIMENT, config)

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        config = tiny_config()
        cp_dir = tmp_path / "ck"
        stale = Checkpoint(
            cp_dir / self.EXPERIMENT,
            signature=config_signature(self.EXPERIMENT, config),
        )
        stale.put("bogus", {"v": 1})
        run_experiment(self.EXPERIMENT, config, checkpoint_dir=cp_dir)
        assert stale.get("bogus") is None

    def test_resume_after_sigkill_matches_uninterrupted(self, tmp_path):
        config = tiny_config()
        direct = self.run_direct(config)
        cp_dir = tmp_path / "ck"
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.experiments.base import run_experiment\n"
            "from tests.experiments.test_checkpoint import tiny_config\n"
            "run_experiment({eid!r}, tiny_config(), checkpoint_dir={cp!r})\n"
        ).format(
            src=str(Path(__file__).resolve().parents[2] / "src"),
            eid=self.EXPERIMENT,
            cp=str(cp_dir),
        )
        env = dict(os.environ)
        env["REPRO_CHECKPOINT_KILL_AFTER"] = "2"
        env["PYTHONPATH"] = os.pathsep.join(
            [
                str(Path(__file__).resolve().parents[2] / "src"),
                str(Path(__file__).resolve().parents[2]),
            ]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        partial = len(Checkpoint(cp_dir / self.EXPERIMENT))
        assert partial == 2  # died right after the second point
        resumed = run_experiment(
            self.EXPERIMENT, config, checkpoint_dir=cp_dir, resume=True
        )
        assert resumed.rows == direct.rows
