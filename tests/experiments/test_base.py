"""Tests for the experiment infrastructure (config, results, registry)."""

from __future__ import annotations

import pytest

from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
    get_experiment,
    list_experiments,
    run_experiment,
)


class TestConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.scale == 1.0
        assert 0.8 in cfg.loads

    def test_jobs_scaling_with_floor(self):
        cfg = ExperimentConfig(scale=0.5)
        assert cfg.jobs(10_000) == 5_000
        assert cfg.jobs(100) == 2_000  # floor

    def test_sweep_loads_respects_max(self):
        cfg = ExperimentConfig(loads=(0.5, 0.9, 0.99), max_load=0.9)
        assert cfg.sweep_loads() == (0.5, 0.9)

    def test_with_(self):
        cfg = ExperimentConfig().with_(seed=1)
        assert cfg.seed == 1
        assert ExperimentConfig().seed != 1 or True  # original untouched


class TestResult:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            experiment_id="demo",
            title="Demo",
            columns=["policy", "load", "mean_slowdown"],
            rows=[
                {"policy": "a", "load": 0.5, "mean_slowdown": 12.345678},
                {"policy": "b", "load": 0.5, "mean_slowdown": 1.0},
            ],
            notes="hello",
        )

    def test_to_text_contains_all(self, result):
        text = result.to_text()
        assert "demo" in text and "policy" in text
        assert "12.35" in text  # 4 sig figs
        assert "note: hello" in text

    def test_to_csv(self, result, tmp_path):
        path = tmp_path / "r.csv"
        result.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "policy,load,mean_slowdown"
        assert len(lines) == 3

    def test_column_filter(self, result):
        assert result.column("policy") == ["a", "b"]
        assert result.column("mean_slowdown", lambda r: r["policy"] == "b") == [1.0]

    def test_missing_column_renders_empty(self, result):
        result.columns.append("bonus")
        assert "bonus" in result.to_text()


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        ids = {eid for eid, _ in list_experiments()}
        expected = {"table1"} | {f"fig{i}" for i in range(2, 14)}
        assert expected <= ids

    def test_ablations_registered(self):
        ids = {eid for eid, _ in list_experiments()}
        assert {
            "ablate_rr_sq",
            "ablate_tags",
            "ablate_estimates",
            "ablate_variability",
            "ablate_fast_vs_event",
        } <= ids

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @experiment("table1", "dup")
            def _dup(config):  # pragma: no cover
                raise AssertionError

    def test_run_experiment_dispatches(self):
        cfg = ExperimentConfig(scale=0.05, loads=(0.5,))
        result = run_experiment("fig8", cfg)
        assert result.experiment_id == "fig8"
        assert result.rows
