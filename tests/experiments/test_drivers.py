"""Smoke + structural tests: every experiment driver runs and produces
well-formed rows at a tiny scale.  Qualitative (paper-shape) assertions
live in test_paper_claims.py and in the benchmark harness.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import ExperimentConfig, list_experiments, run_experiment

TINY = ExperimentConfig(scale=0.04, loads=(0.5, 0.7), replications=1)

ALL_IDS = [eid for eid, _ in list_experiments()]


@pytest.fixture(scope="module")
def results():
    """Run every registered experiment once at tiny scale (cached)."""
    return {eid: run_experiment(eid, TINY) for eid in ALL_IDS}


def test_every_driver_produces_rows(results):
    for eid, res in results.items():
        assert res.rows, f"{eid} produced no rows"
        assert res.columns, f"{eid} has no columns"


def test_rows_have_all_columns(results):
    for eid, res in results.items():
        for row in res.rows:
            for col in res.columns:
                assert col in row or col in ("cutoff",), f"{eid}: missing {col}"


def test_metrics_are_sane(results):
    for eid, res in results.items():
        for row in res.rows:
            slow = row.get("mean_slowdown")
            if slow is not None:
                assert slow >= 1.0 or math.isnan(slow), f"{eid}: slowdown {slow} < 1"
            var = row.get("var_slowdown")
            if var is not None and not math.isnan(var):
                assert var >= 0.0, f"{eid}: negative variance"


def test_text_rendering(results):
    for eid, res in results.items():
        text = res.to_text()
        assert eid in text


def test_table1_structure(results):
    res = results["table1"]
    systems = {row["system"] for row in res.rows}
    assert systems == {"c90", "j90", "ctc"}
    kinds = {row["kind"] for row in res.rows}
    assert kinds == {"target", "sampled"}
    for row in res.rows:
        if row["kind"] == "target" and row["system"] == "c90":
            assert row["scv"] == pytest.approx(43.0, rel=1e-6)


def test_fig2_policies(results):
    policies = set(results["fig2"].column("policy"))
    assert policies == {"random", "least-work-left", "sita-e"}


def test_fig4_policies_and_cutoffs(results):
    res = results["fig4"]
    assert set(res.column("policy")) == {"sita-e", "sita-u-opt", "sita-u-fair"}
    for row in res.rows:
        assert row["cutoff"] > 0


def test_fig5_fraction_bounds(results):
    for row in results["fig5"].rows:
        assert 0.0 < row["load_frac_analytic"] < 1.0
        assert row["rule_of_thumb"] == pytest.approx(row["load"] / 2)


def test_fig6_host_counts(results):
    hosts = sorted(set(results["fig6"].column("n_hosts")))
    assert hosts[0] == 2 and hosts[-1] >= 64


def test_fig7_has_high_loads(results):
    loads = results["fig7"].column("load")
    assert max(loads) > 0.9


def test_fig8_fig9_are_deterministic(results):
    # Analytic drivers must give identical output when re-run.
    again = run_experiment("fig8", TINY)
    assert again.rows == results["fig8"].rows


def test_appendix_workload_variants(results):
    for eid in ("fig10", "fig12"):
        policies = set(results[eid].column("policy"))
        assert "sita-u-fair" in policies
        assert "random" in policies


def test_ablate_tags_reports_waste(results):
    rows = results["ablate_tags"].rows
    tags_rows = [r for r in rows if r["policy"].startswith("tags")]
    assert tags_rows
    for r in tags_rows:
        assert 0.0 <= r["wasted_work_frac"] < 1.0
    sita_rows = [r for r in rows if r["policy"] == "sita-u-opt"]
    for r in sita_rows:
        assert r["wasted_work_frac"] == 0.0


def test_ablate_fast_vs_event_agreement(results):
    for row in results["ablate_fast_vs_event"].rows:
        assert row["max_wait_gap"] < 1e-6
        assert row["speedup"] > 1.0


def test_reproducibility_same_config(results):
    again = run_experiment("fig4", TINY)
    assert again.rows == results["fig4"].rows
