"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.plotting import ascii_chart, result_chart


@pytest.fixture
def simple_series():
    return OrderedDict(
        a=[(0.0, 1.0), (1.0, 10.0), (2.0, 100.0)],
        b=[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)],
    )


class TestAsciiChart:
    def test_contains_markers_and_legend(self, simple_series):
        out = ascii_chart(simple_series, title="T", x_label="load", y_label="S")
        assert "T" in out
        assert "legend: o a   x b" in out
        assert "(load)" in out
        assert "log scale" in out

    def test_extreme_ticks(self, simple_series):
        out = ascii_chart(simple_series)
        assert "100" in out  # max y tick
        assert "1" in out  # min y tick

    def test_linear_scale(self, simple_series):
        out = ascii_chart(simple_series, log_y=False)
        assert "log scale" not in out

    def test_drops_nonpositive_on_log(self):
        series = OrderedDict(a=[(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)])
        out = ascii_chart(series, log_y=True)
        assert "not drawn" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(OrderedDict())
        with pytest.raises(ValueError):
            ascii_chart(OrderedDict(a=[]))

    def test_all_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(OrderedDict(a=[(0.0, -1.0)]), log_y=True)

    def test_size_validation(self, simple_series):
        with pytest.raises(ValueError):
            ascii_chart(simple_series, width=5)

    def test_marker_positions_monotone(self):
        # A strictly increasing series must render with increasing height.
        series = OrderedDict(a=[(float(i), 10.0**i) for i in range(5)])
        out = ascii_chart(series, width=40, height=10)
        rows = [l for l in out.splitlines() if "|" in l and "+" not in l]
        cols = {}
        for r, line in enumerate(rows):
            body = line.split("|", 1)[1]
            for c, ch in enumerate(body):
                if ch == "o":
                    cols[c] = r
        ordered = [cols[c] for c in sorted(cols)]
        assert ordered == sorted(ordered, reverse=True)


class TestResultChart:
    def test_fig8_chart(self):
        res = run_experiment("fig8", ExperimentConfig(scale=0.05, loads=(0.3, 0.7)))
        out = result_chart(res)
        assert "sita-e" in out
        assert "(load)" in out

    def test_fig5_uses_linear_fraction_axis(self):
        res = run_experiment("fig5", ExperimentConfig(scale=0.05, loads=(0.3, 0.7)))
        out = result_chart(res)
        assert "log scale" not in out
        assert "sita-u-opt" in out

    def test_table1_has_no_convention(self):
        res = run_experiment("table1", ExperimentConfig(scale=0.05))
        with pytest.raises(ValueError, match="no chart convention"):
            result_chart(res)


class TestCliPlotFlag:
    def test_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "fig8", "--scale", "0.05", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out


class TestLogX:
    def test_log_x_axis(self):
        series = OrderedDict(a=[(1.0, 1.0), (100.0, 2.0), (10000.0, 3.0)])
        out = ascii_chart(series, log_x=True, log_y=False)
        assert "log scale)" in out
        # On a log axis the three decade-spaced points are evenly spread.
        rows = [l for l in out.splitlines() if "|" in l]
        cols = sorted(
            c for l in rows for c, ch in enumerate(l.split("|", 1)[1]) if ch == "o"
        )
        assert len(cols) == 3
        gap1, gap2 = cols[1] - cols[0], cols[2] - cols[1]
        assert abs(gap1 - gap2) <= 2

    def test_log_x_drops_nonpositive(self):
        series = OrderedDict(a=[(0.0, 1.0), (10.0, 2.0), (100.0, 5.0)])
        out = ascii_chart(series, log_x=True)
        assert "not drawn" in out
