"""Tests for the shared experiment machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.base import ExperimentConfig
from repro.experiments.common import (
    aggregate_replications,
    fit_sita_cutoffs,
    grouped_sita,
    make_split_trace,
    point_seed,
)
from repro.workloads.catalog import c90


class TestPointSeed:
    def test_deterministic(self):
        cfg = ExperimentConfig()
        assert point_seed(cfg, "fig2", 0.5) == point_seed(cfg, "fig2", 0.5)

    def test_distinct_coordinates(self):
        cfg = ExperimentConfig()
        seeds = {
            point_seed(cfg, "fig2", load, h)
            for load in (0.1, 0.5, 0.9)
            for h in (2, 4)
        }
        assert len(seeds) == 6

    def test_depends_on_base_seed(self):
        a = point_seed(ExperimentConfig(seed=1), "x")
        b = point_seed(ExperimentConfig(seed=2), "x")
        assert a != b


class TestMakeSplitTrace:
    def test_halves(self):
        train, test = make_split_trace(c90(), 0.5, 2, 4000, seed=1)
        assert train.n_jobs == 2000 and test.n_jobs == 2000

    def test_reproducible(self):
        t1, _ = make_split_trace(c90(), 0.5, 2, 1000, seed=9)
        t2, _ = make_split_trace(c90(), 0.5, 2, 1000, seed=9)
        np.testing.assert_array_equal(t1.service_times, t2.service_times)


class TestFitSitaCutoffs:
    @pytest.fixture(scope="class")
    def train(self):
        return c90().make_trace(load=0.7, n_hosts=2, n_jobs=20_000, rng=4)

    def test_all_variants(self, train):
        cuts = fit_sita_cutoffs(train, 0.7)
        assert set(cuts) == {"e", "opt", "fair"}
        assert all(c > 0 for c in cuts.values())
        # opt underloads relative to equal-load: smaller cutoff.
        assert cuts["opt"] < cuts["e"]

    def test_unknown_variant(self, train):
        with pytest.raises(ValueError):
            fit_sita_cutoffs(train, 0.7, variants=("magic",))


class TestGroupedSitaHelper:
    def test_with_load_optimises_split(self):
        d = c90().service_dist
        from repro.core.cutoffs import fair_cutoff, optimal_group_split

        cut = fair_cutoff(0.7, d)
        p = grouped_sita(cut, 4, d, "g", load=0.7)
        assert p.n_short_hosts == optimal_group_split(0.7, d, 4, cut)

    def test_without_load_uses_proportional(self):
        d = c90().service_dist
        cut = d.ppf(0.99)
        p = grouped_sita(cut, 10, d, "g")
        f = d.partial_moment(1.0, 0.0, cut) / d.mean
        assert p.n_short_hosts == int(np.clip(round(10 * f), 1, 9))


class TestAggregateReplications:
    def test_single_row_passthrough(self):
        row = {"policy": "x", "load": 0.5, "mean_slowdown": 10.0}
        out = aggregate_replications([row])
        assert out["mean_slowdown"] == 10.0
        assert out["n_reps"] == 1

    def test_averaging_and_ci(self):
        rows = [
            {"policy": "x", "load": 0.5, "mean_slowdown": 10.0},
            {"policy": "x", "load": 0.5, "mean_slowdown": 20.0},
            {"policy": "x", "load": 0.5, "mean_slowdown": 30.0},
        ]
        out = aggregate_replications(rows)
        assert out["mean_slowdown"] == pytest.approx(20.0)
        assert out["load"] == 0.5  # exact, not float-averaged
        assert out["n_reps"] == 3
        assert out["ci_mean_slowdown"] > 0

    def test_disagreeing_labels_rejected(self):
        rows = [
            {"policy": "x", "mean_slowdown": 1.0},
            {"policy": "y", "mean_slowdown": 2.0},
        ]
        with pytest.raises(ValueError, match="disagree"):
            aggregate_replications(rows)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_replications([])

    def test_replications_through_driver(self):
        from repro.experiments import run_experiment

        cfg = ExperimentConfig(scale=0.05, loads=(0.5,), replications=2)
        res = run_experiment("fig2", cfg)
        for row in res.rows:
            assert row["n_reps"] == 2
            assert "ci_mean_slowdown" in row
