"""Integration tests for the paper's qualitative claims (DESIGN.md §3).

Each test reproduces one comparative statement from the paper on the
synthetic C90 workload at moderate scale.  Tolerances are loose — the
claims are about orderings and rough factors, not absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.policies import (
    predict_lwl,
    predict_random,
    predict_sita,
)
from repro.core.cutoffs import (
    equal_load_cutoffs,
    fair_cutoff,
    opt_cutoff,
    short_host_load_fraction,
)
from repro.core.policies import (
    GroupedSITAPolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    SITAPolicy,
)
from repro.sim.runner import simulate
from repro.workloads.arrivals import RenewalArrivals
from repro.workloads.catalog import c90, ctc, j90

N_JOBS = 150_000
WARMUP = 0.1


@pytest.fixture(scope="module")
def workload():
    return c90()


@pytest.fixture(scope="module")
def dist(workload):
    return workload.service_dist


def run_policy(workload, policy, load, n_hosts, seed=101, n_jobs=N_JOBS, arrivals=None):
    trace = workload.make_trace(
        load=load, n_hosts=n_hosts, n_jobs=n_jobs, rng=seed, arrivals=arrivals
    )
    return simulate(trace, policy, n_hosts, rng=7).summary(warmup_fraction=WARMUP)


class TestFig2Claims:
    """Random ≫ LWL ≳/≲ SITA-E on 2 hosts."""

    @pytest.fixture(scope="class")
    def at_07(self, workload, dist):
        ce = equal_load_cutoffs(dist, 2)
        return {
            "random": run_policy(workload, RandomPolicy(), 0.7, 2),
            "lwl": run_policy(workload, LeastWorkLeftPolicy(), 0.7, 2),
            "sita-e": run_policy(workload, SITAPolicy(ce, name="sita-e"), 0.7, 2),
        }

    def test_random_much_worse_than_lwl(self, at_07):
        assert at_07["random"].mean_slowdown > 2.0 * at_07["lwl"].mean_slowdown

    def test_sita_e_beats_lwl_at_high_load(self, at_07):
        assert at_07["sita-e"].mean_slowdown < at_07["lwl"].mean_slowdown

    def test_random_to_sita_gap(self, at_07):
        """Paper: Random exceeds SITA-E by ~10x in mean slowdown."""
        assert at_07["random"].mean_slowdown > 4.0 * at_07["sita-e"].mean_slowdown

    def test_variance_ordering(self, at_07):
        assert at_07["sita-e"].var_slowdown < at_07["random"].var_slowdown

    def test_mean_response_ordering(self, at_07):
        """For loads > 0.5 SITA-E also wins on mean response time."""
        assert at_07["sita-e"].mean_response < at_07["random"].mean_response


class TestFig3Claims:
    """4 hosts: LWL and SITA-E improve, Random doesn't; LWL wins at low load."""

    def test_lwl_improves_with_hosts(self, workload):
        s2 = run_policy(workload, LeastWorkLeftPolicy(), 0.7, 2)
        s4 = run_policy(workload, LeastWorkLeftPolicy(), 0.7, 4)
        assert s4.mean_slowdown < s2.mean_slowdown

    def test_random_unchanged_by_hosts(self, workload):
        s2 = run_policy(workload, RandomPolicy(), 0.7, 2)
        s4 = run_policy(workload, RandomPolicy(), 0.7, 4)
        assert s4.mean_slowdown == pytest.approx(s2.mean_slowdown, rel=0.5)

    def test_lwl_beats_sita_e_at_low_load_4_hosts(self, workload, dist):
        ce = equal_load_cutoffs(dist, 4)
        lwl = run_policy(workload, LeastWorkLeftPolicy(), 0.2, 4)
        sita = run_policy(workload, SITAPolicy(ce, name="sita-e"), 0.2, 4)
        assert lwl.mean_slowdown < sita.mean_slowdown


class TestFig4Claims:
    """SITA-U-opt/fair ≫ SITA-E; fair ≈ opt."""

    @pytest.fixture(scope="class")
    def at_07(self, workload, dist):
        load = 0.7
        ce = equal_load_cutoffs(dist, 2)[0]
        co = opt_cutoff(load, dist)
        cf = fair_cutoff(load, dist)
        return {
            "sita-e": run_policy(workload, SITAPolicy([ce], name="sita-e"), load, 2),
            "opt": run_policy(workload, SITAPolicy([co], name="sita-u-opt"), load, 2),
            "fair": run_policy(workload, SITAPolicy([cf], name="sita-u-fair"), load, 2),
        }

    def test_unbalancing_beats_sita_e(self, at_07):
        """Paper: 4-10x improvement in mean slowdown over loads 0.5-0.8."""
        assert at_07["opt"].mean_slowdown < at_07["sita-e"].mean_slowdown / 2.0
        assert at_07["fair"].mean_slowdown < at_07["sita-e"].mean_slowdown / 1.5

    def test_fair_only_slightly_worse_than_opt(self, at_07):
        assert at_07["fair"].mean_slowdown < 3.0 * at_07["opt"].mean_slowdown

    def test_variance_improvement(self, at_07):
        """Paper: 10-100x variance reduction."""
        assert at_07["opt"].var_slowdown < at_07["sita-e"].var_slowdown / 3.0


class TestFig5Claims:
    """Load fraction to Host 1 underloads and tracks rho/2."""

    @pytest.mark.parametrize("load", [0.5, 0.7, 0.9])
    def test_underloaded_and_near_rule(self, dist, load):
        for cut in (opt_cutoff(load, dist), fair_cutoff(load, dist)):
            frac = short_host_load_fraction(dist, cut)
            assert frac < 0.5
            assert abs(frac - load / 2) < 0.2


class TestFig6Claims:
    """Many hosts at load 0.7: grouped SITA vs LWL crossover."""

    @staticmethod
    def grouped(cutoff, h, dist, name):
        f = dist.partial_moment(1.0, 0.0, cutoff) / dist.mean
        n_short = int(np.clip(round(h * f), 1, h - 1))
        return GroupedSITAPolicy(cutoff, n_short, name=name)

    def test_sita_e_beats_lwl_small_h_loses_large_h(self, workload, dist):
        ce = equal_load_cutoffs(dist, 2)[0]
        small_lwl = run_policy(workload, LeastWorkLeftPolicy(), 0.7, 2)
        small_sita = run_policy(workload, SITAPolicy([ce], name="e"), 0.7, 2)
        assert small_sita.mean_slowdown < small_lwl.mean_slowdown

        h = 64
        big_lwl = run_policy(workload, LeastWorkLeftPolicy(), 0.7, h, n_jobs=400_000)
        big_sita = run_policy(
            workload, self.grouped(ce, h, dist, "e+lwl"), 0.7, h, n_jobs=400_000
        )
        assert big_lwl.mean_slowdown < big_sita.mean_slowdown

    def test_policies_converge_at_many_hosts(self, workload, dist):
        """Paper: beyond ~70 hosts all policies are comparable."""
        h = 80
        cf = fair_cutoff(0.7, dist)
        lwl = run_policy(workload, LeastWorkLeftPolicy(), 0.7, h, n_jobs=400_000)
        fair = run_policy(
            workload, self.grouped(cf, h, dist, "fair+lwl"), 0.7, h, n_jobs=400_000
        )
        assert fair.mean_slowdown < 10 * lwl.mean_slowdown
        assert lwl.mean_slowdown < 10 * fair.mean_slowdown


class TestFig7Claims:
    """Bursty arrivals: SITA-U wins at 0.7, LWL wins at 0.98."""

    @pytest.fixture(scope="class")
    def bursty(self):
        return RenewalArrivals.bursty(rate=1.0, scv=20.0)

    def test_sita_u_wins_moderate_load(self, workload, dist, bursty):
        cf = fair_cutoff(0.7, dist)
        lwl = run_policy(workload, LeastWorkLeftPolicy(), 0.7, 2, arrivals=bursty)
        fair = run_policy(
            workload, SITAPolicy([cf], name="fair"), 0.7, 2, arrivals=bursty
        )
        assert fair.mean_slowdown < lwl.mean_slowdown

    def test_lwl_closes_gap_at_extreme_load(self, workload, dist, bursty):
        """The paper's §6 mechanism: arrival variability favours LWL as
        ρ → 1 (LWL is the only policy that smooths it), so SITA-U's
        advantage must shrink.  The paper observes an outright crossover
        above ρ = 0.95 on its (proprietary) scaled trace; on the synthetic
        workload we reproduce the monotone trend — the crossover point
        itself depends on the log's burst structure (see EXPERIMENTS.md)."""

        def ratio(load, n_jobs):
            cf = fair_cutoff(load, dist)
            lwl = run_policy(
                workload, LeastWorkLeftPolicy(), load, 2,
                arrivals=bursty, n_jobs=n_jobs,
            )
            fair = run_policy(
                workload, SITAPolicy([cf], name="fair"), load, 2,
                arrivals=bursty, n_jobs=n_jobs,
            )
            return fair.mean_slowdown / lwl.mean_slowdown

        assert ratio(0.98, 300_000) > 1.5 * ratio(0.7, 300_000)


class TestFig8Fig9Claims:
    """Analysis agrees with simulation (paper: 'very close agreement')."""

    def test_sita_e_sim_vs_analysis(self, workload, dist):
        ce = equal_load_cutoffs(dist, 2)
        sim = run_policy(workload, SITAPolicy(ce, name="sita-e"), 0.5, 2)
        ana = predict_sita(0.5, dist, 2, ce, "sita-e")
        assert sim.mean_slowdown == pytest.approx(ana.mean_slowdown, rel=0.5)

    def test_random_sim_vs_analysis(self, workload, dist):
        sim = run_policy(workload, RandomPolicy(), 0.5, 2)
        ana = predict_random(0.5, dist, 2)
        assert sim.mean_slowdown == pytest.approx(ana.mean_slowdown, rel=0.5)

    def test_lwl_sim_vs_analysis(self, workload, dist):
        sim = run_policy(workload, LeastWorkLeftPolicy(), 0.5, 2)
        ana = predict_lwl(0.5, dist, 2)
        assert sim.mean_slowdown == pytest.approx(ana.mean_slowdown, rel=0.6)


class TestAppendixClaims:
    """The conclusions replicate on J90-like and CTC-like workloads."""

    @pytest.mark.parametrize("factory", [j90, ctc], ids=["j90", "ctc"])
    def test_unbalancing_wins_everywhere(self, factory):
        w = factory()
        d = w.service_dist
        load = 0.7
        ce = equal_load_cutoffs(d, 2)[0]
        co = opt_cutoff(load, d)
        n = min(w.n_jobs * 8, 100_000)
        sita_e = run_policy(w, SITAPolicy([ce], name="sita-e"), load, 2, n_jobs=n)
        opt = run_policy(w, SITAPolicy([co], name="sita-u-opt"), load, 2, n_jobs=n)
        assert opt.mean_slowdown < sita_e.mean_slowdown

    @pytest.mark.parametrize("factory", [j90, ctc], ids=["j90", "ctc"])
    def test_underloading_rule_holds(self, factory):
        d = factory().service_dist
        for load in (0.5, 0.8):
            frac = short_host_load_fraction(d, opt_cutoff(load, d))
            assert frac < 0.5
