"""Tests for the deterministic parallel sweep executor.

The load-bearing property is bit-identity: ``run_experiment(...,
workers=N)`` must produce exactly the rows of a serial run — same
values, same order, same CSV bytes — for any N, with or without fault
injection, and across a crash/resume cycle.  Everything else
(shared-memory transport, checkpoint write-through, the workers=1
serial path) supports that guarantee.
"""

from __future__ import annotations

import math
import os
import pickle
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.experiments.parallel as parallel
from repro.core.policies import LeastWorkLeftPolicy, RandomPolicy
from repro.experiments.base import (
    Checkpoint,
    ExperimentConfig,
    config_signature,
    run_experiment,
)
from repro.experiments.common import clear_trace_cache, evaluate_policy
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    TraceArena,
    TraceRef,
    _attach_trace,
    run_parallel_experiment,
)
from repro.sim.faults import FaultModel
from repro.workloads.traces import Trace


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(scale=0.02, loads=(0.5, 0.7), seed=77)


def make_trace(n: int = 400, seed: int = 0) -> Trace:
    rng = np.random.default_rng(seed)
    return Trace(
        np.cumsum(rng.exponential(1.0, n)),
        rng.pareto(1.5, n) + 0.5,
        name=f"test-{n}",
    )


class TestSerialParallelEquivalence:
    """workers=N is invisible in the output, byte for byte."""

    def test_fig2_rows_identical(self):
        config = tiny_config()
        clear_trace_cache()
        serial = run_experiment("fig2", config)
        clear_trace_cache()
        par = run_experiment("fig2", config, workers=4)
        assert par.rows == serial.rows
        assert par.columns == serial.columns

    def test_fig2_csv_byte_identical(self, tmp_path):
        config = tiny_config()
        serial = run_experiment("fig2", config)
        par = run_experiment("fig2", config, workers=3)
        serial.to_csv(tmp_path / "serial.csv")
        par.to_csv(tmp_path / "parallel.csv")
        assert (tmp_path / "serial.csv").read_bytes() == (
            tmp_path / "parallel.csv"
        ).read_bytes()

    def test_fault_injection_rows_identical(self):
        # The failures driver sweeps FaultModels through evaluate_policy
        # (workers replay the fault process from its seed) and
        # post-processes rows against a failure-free baseline.
        config = ExperimentConfig(scale=0.01, loads=(0.7,), seed=5)
        serial = run_experiment("failures", config)
        par = run_experiment("failures", config, workers=2)
        assert _rows_equal(serial.rows, par.rows)

    def test_analytic_driver_completes_in_collect_pass(self):
        # fig8 never simulates a point: the collect pass already returns
        # real rows and no pool is ever constructed.
        config = tiny_config()
        serial = run_experiment("fig8", config)
        par = run_experiment("fig8", config, workers=2)
        assert _rows_equal(serial.rows, par.rows)

    def test_workers_one_is_the_serial_path(self, monkeypatch):
        # workers=1 must not touch the parallel machinery at all.
        monkeypatch.setattr(
            parallel,
            "run_parallel_experiment",
            lambda *a, **k: pytest.fail("workers=1 routed to the pool"),
        )
        config = tiny_config()
        serial = run_experiment("fig2", config)
        one = run_experiment("fig2", config, workers=1)
        assert one.rows == serial.rows

    @pytest.mark.parametrize("bad", [0, -2, True, 1.5])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            run_experiment("fig2", tiny_config(), workers=bad)


def _rows_equal(a: list[dict], b: list[dict]) -> bool:
    """Row equality where NaN == NaN (ablation rows carry NaN fields)."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if ra.keys() != rb.keys():
            return False
        for k in ra:
            va, vb = ra[k], rb[k]
            if isinstance(va, float) and isinstance(vb, float):
                if va != vb and not (math.isnan(va) and math.isnan(vb)):
                    return False
            elif va != vb:
                return False
    return True


class TestTraceArena:
    def test_small_trace_is_inline(self):
        arena = TraceArena()
        trace = make_trace(100)
        ref = arena.share(trace)
        assert ref.shm_name is None and ref.inline is not None
        assert arena.n_shared == 0
        back = _attach_trace(ref)
        np.testing.assert_array_equal(back.arrival_times, trace.arrival_times)
        np.testing.assert_array_equal(back.service_times, trace.service_times)
        arena.close()

    def test_large_trace_round_trips_through_shared_memory(self):
        arena = TraceArena(share_threshold=10)
        trace = make_trace(500, seed=3)
        ref = arena.share(trace)
        try:
            assert ref.shm_name is not None and ref.inline is None
            assert arena.n_shared == 1
            parallel._WORKER_TRACES.pop(ref.shm_name, None)
            back = _attach_trace(ref)
            np.testing.assert_array_equal(back.arrival_times, trace.arrival_times)
            np.testing.assert_array_equal(back.service_times, trace.service_times)
            np.testing.assert_array_equal(back.processors, trace.processors)
            assert back.name == trace.name
        finally:
            parallel._WORKER_TRACES.pop(ref.shm_name, None)
            arena.close()

    def test_same_trace_shares_one_segment(self):
        arena = TraceArena(share_threshold=10)
        trace = make_trace(500)
        try:
            assert arena.share(trace) is arena.share(trace)
            assert arena.n_shared == 1
        finally:
            arena.close()

    def test_close_unlinks_segments(self):
        arena = TraceArena(share_threshold=10)
        ref = arena.share(make_trace(500))
        arena.close()
        with pytest.raises(FileNotFoundError):
            parallel._attach_untracked(ref.shm_name)

    def test_trace_ref_pickles_small(self):
        arena = TraceArena(share_threshold=10)
        try:
            ref = arena.share(make_trace(50_000))
            assert isinstance(pickle.loads(pickle.dumps(ref)), TraceRef)
            # The whole point: the per-task payload is a name, not 3 arrays.
            assert len(pickle.dumps(ref)) < 1000
        finally:
            arena.close()


class TestExecutor:
    def test_rejects_single_worker(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelSweepExecutor(workers=1)

    def test_replay_miss_falls_back_to_serial(self):
        # A driver whose control flow depends on point values asks the
        # replay pass for a key the collect pass never recorded; the
        # executor computes it serially rather than returning garbage.
        executor = ParallelSweepExecutor(workers=2)
        executor.phase = "replay"
        trace = make_trace(300)
        config = ExperimentConfig(scale=0.02)
        with executor.installed():
            point = evaluate_policy(trace, RandomPolicy(), 0.5, 2, config, seed=1)
        assert executor.n_serial_fallback == 1
        assert math.isfinite(point.summary.mean_slowdown)

    def test_policies_and_faults_are_picklable(self):
        # Every object in a _Task crosses the process boundary.
        for obj in (
            RandomPolicy(),
            LeastWorkLeftPolicy(),
            FaultModel(mtbf=80.0, mttr=15.0, semantics="resume", seed=2),
            tiny_config(),
        ):
            assert pickle.loads(pickle.dumps(obj)) is not None


class TestCheckpointKeys:
    def test_keys_filters_by_signature(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp", signature="sig-a")
        cp.put("k1", {"v": 1})
        cp.put("k2", {"v": 2})
        Checkpoint(tmp_path / "cp", signature="sig-b").put("k3", {"v": 3})
        assert Checkpoint(tmp_path / "cp", signature="sig-a").keys() == ["k1", "k2"]

    def test_keys_skips_corrupt_files(self, tmp_path):
        cp = Checkpoint(tmp_path / "cp", signature="s")
        cp.put("good", {"v": 1})
        (tmp_path / "cp" / "zz-corrupt.json").write_text("{nope")
        assert cp.keys() == ["good"]

    def test_keys_empty_dir(self, tmp_path):
        assert Checkpoint(tmp_path / "missing").keys() == []


class TestParallelCheckpointing:
    EXPERIMENT = "fig2"

    def test_workers_write_through_checkpoint(self, tmp_path):
        config = tiny_config()
        cp_dir = tmp_path / "ck"
        result = run_experiment(
            self.EXPERIMENT, config, checkpoint_dir=cp_dir, workers=2
        )
        cp = Checkpoint(
            cp_dir / self.EXPERIMENT,
            signature=config_signature(self.EXPERIMENT, config),
        )
        assert len(cp) > 0
        assert len(cp.keys()) == len(cp)
        serial = run_experiment(self.EXPERIMENT, config)
        assert result.rows == serial.rows

    def test_fully_checkpointed_resume_skips_the_pool(self, tmp_path, monkeypatch):
        config = tiny_config()
        cp_dir = tmp_path / "ck"
        first = run_experiment(
            self.EXPERIMENT, config, checkpoint_dir=cp_dir, workers=2
        )
        # Resuming a complete run must answer every point from the
        # checkpoint in the collect pass: constructing a pool would be
        # a bug (and a waste), so make it one.
        monkeypatch.setattr(
            parallel,
            "ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("resume of a complete run built a pool"),
        )
        resumed = run_experiment(
            self.EXPERIMENT, config, checkpoint_dir=cp_dir, resume=True, workers=2
        )
        assert resumed.rows == first.rows

    def test_serial_checkpoint_resumes_under_parallel(self, tmp_path):
        # A checkpoint written serially is valid for a parallel resume
        # (same keys, same signature) and vice versa.
        config = tiny_config()
        cp_dir = tmp_path / "ck"
        serial = run_experiment(self.EXPERIMENT, config, checkpoint_dir=cp_dir)
        resumed = run_experiment(
            self.EXPERIMENT, config, checkpoint_dir=cp_dir, resume=True, workers=2
        )
        assert resumed.rows == serial.rows

    def test_resume_after_worker_sigkill_matches_uninterrupted(self, tmp_path):
        """A worker SIGKILLed mid-dispatch leaves a valid partial
        checkpoint; a parallel resume completes to the serial rows."""
        config = tiny_config()
        direct = run_experiment(self.EXPERIMENT, config)
        cp_dir = tmp_path / "ck"
        repo_root = Path(__file__).resolve().parents[2]
        script = (
            "from repro.experiments.base import run_experiment\n"
            "from tests.experiments.test_parallel import tiny_config\n"
            "run_experiment({eid!r}, tiny_config(), checkpoint_dir={cp!r},"
            " workers=2)\n"
        ).format(eid=self.EXPERIMENT, cp=str(cp_dir))
        env = dict(os.environ)
        # The kill lands inside a pool worker (workers own the
        # write-through checkpoint), so the parent dies on
        # BrokenProcessPool rather than the kill signal itself.
        env["REPRO_CHECKPOINT_KILL_AFTER"] = "2"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src"), str(repo_root)]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode not in (0, -signal.SIGKILL), proc.stderr
        assert "BrokenProcessPool" in proc.stderr
        partial = Checkpoint(
            cp_dir / self.EXPERIMENT,
            signature=config_signature(self.EXPERIMENT, config),
        )
        assert len(partial) >= 2  # the killed worker persisted its points
        resumed = run_experiment(
            self.EXPERIMENT, config, checkpoint_dir=cp_dir, resume=True, workers=2
        )
        assert resumed.rows == direct.rows


class TestRunParallelExperiment:
    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_parallel_experiment("not-an-experiment", workers=2)

    def test_interceptor_uninstalled_after_run(self):
        from repro.experiments.common import set_point_interceptor

        run_parallel_experiment("fig2", tiny_config(), workers=2)
        # A leaked interceptor would hijack every later serial run.
        assert set_point_interceptor(None) is None
