"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workloads.traces import read_swf


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig4", "--scale", "0.2"])
        assert args.experiment == "fig4"
        assert args.scale == 0.2


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table1" in out and "ablate_tags" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "c90" in out and "scv" in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "fig8", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "mean_slowdown" in out
        assert "sita-e" in out

    def test_run_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        assert main(["run", "fig8", "--scale", "0.05", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "policy" in csv_path.read_text().splitlines()[0]

    def test_run_seed_flag(self, capsys):
        assert main(["run", "fig8", "--scale", "0.05", "--seed", "7"]) == 0

    def test_synth_writes_swf(self, tmp_path, capsys):
        out = tmp_path / "c90.swf"
        code = main(
            ["synth", "c90", str(out), "--load", "0.5", "--jobs", "500", "--seed", "3"]
        )
        assert code == 0
        trace = read_swf(out)
        assert trace.n_jobs == 500

    def test_unknown_workload_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["synth", "paragon", "x.swf"])


class TestAllCommand:
    def test_all_writes_everything(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments import list_experiments

        out = tmp_path / "res"
        assert main(["all", "--scale", "0.04", "--out", str(out)]) == 0
        ids = [eid for eid, _ in list_experiments()]
        for eid in ids:
            assert (out / f"{eid}.csv").exists(), eid
            assert (out / f"{eid}.txt").exists(), eid
        stdout = capsys.readouterr().out
        assert "results in" in stdout


class TestPlotEdgeCases:
    def test_plot_without_convention_is_graceful(self, capsys):
        from repro.cli import main

        assert main(["run", "table1", "--scale", "0.04", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(no chart:" in out
