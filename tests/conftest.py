"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    BoundedPareto,
    Exponential,
    Lognormal,
    PoissonArrivals,
    Trace,
    c90,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def c90_workload():
    return c90()


@pytest.fixture(scope="session")
def c90_dist():
    return c90().service_dist


@pytest.fixture(scope="session")
def small_c90_trace():
    """A modest C90 trace at load 0.7 on 2 hosts (session-cached)."""
    return c90().make_trace(load=0.7, n_hosts=2, n_jobs=5_000, rng=777)


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-written 5-job trace with easily traceable dynamics."""
    return Trace(
        arrival_times=[0.0, 1.0, 2.0, 3.0, 10.0],
        service_times=[4.0, 2.0, 1.0, 8.0, 1.0],
        name="tiny",
    )


@pytest.fixture
def exp_dist() -> Exponential:
    return Exponential(10.0)


@pytest.fixture
def bp_dist() -> BoundedPareto:
    return BoundedPareto(k=1.0, p=1e5, alpha=1.1)


@pytest.fixture
def logn_dist() -> Lognormal:
    return Lognormal.fit(mean=1000.0, scv=10.0)


def make_poisson_trace(
    dist, load: float, n_hosts: int, n_jobs: int, seed: int
) -> Trace:
    """Build a Poisson-arrival trace for an arbitrary distribution."""
    rng = np.random.default_rng(seed)
    rate = load * n_hosts / dist.mean
    arrivals = np.cumsum(PoissonArrivals(rate).sample_interarrivals(n_jobs, rng))
    sizes = dist.sample(n_jobs, rng)
    return Trace(arrivals, sizes, name="poisson-test")
