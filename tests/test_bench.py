"""Tests for the ``repro bench`` baseline harness."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import (
    FAMILY_NAMES,
    SCHEMA_VERSION,
    BenchSelectionError,
    default_output_path,
    main,
    render,
    resolve_workers,
    run_benchmarks,
)


@pytest.fixture(scope="module")
def quick_doc():
    # One real quick pass shared by every assertion below (the sweep
    # bench inside also asserts serial/parallel row identity itself).
    return run_benchmarks(quick=True, workers=2, scale=0.02)


class TestRunBenchmarks:
    def test_document_schema(self, quick_doc):
        assert quick_doc["schema_version"] == SCHEMA_VERSION
        assert quick_doc["quick"] is True
        env = quick_doc["environment"]
        assert env["workers"] == 2
        for field in ("python", "numpy", "platform", "cpu_count"):
            assert field in env

    def test_expected_entries_present(self, quick_doc):
        names = {e["name"] for e in quick_doc["entries"]}
        assert {
            "kernel.fcfs_waits",
            "kernel.lwl_waits",
            "kernel.shortest_queue_waits",
            "kernel.tags_waits",
            "backend.fast",
            "backend.event",
            "backend.speedup",
            "search.sim_pair",
            "search.analytic_sweep",
            "experiment.fig2.serial",
            "experiment.fig2.parallel",
            "serve.dispatch",
            "serve.dispatch.sharded",
        } <= names

    def test_search_entries_record_equivalence_and_speedups(self, quick_doc):
        sim = next(
            e for e in quick_doc["entries"] if e["name"] == "search.sim_pair"
        )
        assert sim["argmin_identical_to_loop"] is True
        assert sim["speedup_vs_loop"] > 0
        assert sim["loop_wall_s"] > 0 and sim["refined_wall_s"] > 0
        ana = next(
            e
            for e in quick_doc["entries"]
            if e["name"] == "search.analytic_sweep"
        )
        assert ana["speedup_vs_unshared"] > 0
        assert ana["unshared_wall_s"] > 0

    def test_oversubscription_recorded(self, quick_doc):
        # workers=2 was forced; whether that oversubscribes depends on
        # the host's core count — the env field must agree either way.
        cpus = os.cpu_count() or 1
        assert quick_doc["environment"]["oversubscribed"] is (2 > cpus)

    def test_timings_are_positive(self, quick_doc):
        for entry in quick_doc["entries"]:
            assert entry["wall_s"] > 0, entry["name"]

    def test_parallel_entry_records_equivalence(self, quick_doc):
        par = next(
            e
            for e in quick_doc["entries"]
            if e["name"] == "experiment.fig2.parallel"
        )
        assert par["rows_identical_to_serial"] is True
        assert par["workers"] == 2
        assert par["speedup_vs_serial"] > 0
        # the parallel row carries its own honesty flag, mirroring the
        # environment's, so a starved-box point is discountable per entry
        cpus = os.cpu_count() or 1
        assert par["oversubscribed"] is (2 > cpus)

    def test_sharded_entries_cover_the_shard_ladder(self, quick_doc):
        rows = [
            e
            for e in quick_doc["entries"]
            if e["name"] == "serve.dispatch.sharded"
        ]
        assert sorted(r["n_shards"] for r in rows) == [1, 2, 4]
        for row in rows:
            assert row["invariant_holds"] is True
            assert row["router"] == "sita"
            assert row["aggregate_decisions_per_s"] > 0
            assert row["wall_decisions_per_s"] > 0
            assert row["merge_ms"] >= 0
            assert len(row["per_shard"]) == row["n_shards"]
            assert row["speedup_vs_pr9"] > 0

    def test_document_is_json_serializable(self, quick_doc):
        assert json.loads(json.dumps(quick_doc)) == quick_doc


class TestOnlySelection:
    def test_only_runs_the_matching_families(self):
        doc = run_benchmarks(quick=True, workers=2, scale=0.02,
                             only="experiment.fig2")
        names = {e["name"] for e in doc["entries"]}
        assert names == {"experiment.fig2.serial", "experiment.fig2.parallel"}
        assert doc["only"] == "experiment.fig2"

    def test_unmatched_glob_raises_listing_families(self):
        with pytest.raises(BenchSelectionError) as err:
            run_benchmarks(quick=True, only="nope.*")
        for family in FAMILY_NAMES:
            assert family in str(err.value)

    def test_cli_unmatched_glob_exits_2(self, tmp_path, capsys):
        rc = main(["--quick", "--only", "nope.*", "--out",
                   str(tmp_path / "x.json")])
        assert rc == 2
        assert "matches no benchmark family" in capsys.readouterr().err

    def test_full_run_records_no_filter(self, quick_doc):
        assert quick_doc["only"] is None


class TestResolveWorkers:
    def test_default_floors_at_two_and_caps_at_four(self):
        cpus = os.cpu_count() or 1
        workers, oversubscribed = resolve_workers(None)
        assert workers == min(4, max(2, cpus))
        # on a box with >= 2 cores the default never oversubscribes; on
        # a 1-core box the 2-worker floor does, and must say so
        assert oversubscribed is (workers > cpus)

    def test_forced_workers_honoured_and_flagged(self):
        cpus = os.cpu_count() or 1
        workers, oversubscribed = resolve_workers(cpus + 1)
        assert workers == cpus + 1
        assert oversubscribed is True

    def test_within_budget_not_flagged(self):
        workers, oversubscribed = resolve_workers(1)
        assert workers == 1
        assert oversubscribed is False


class TestCli:
    def test_default_output_path(self):
        assert default_output_path("2026-08-06").name == "BENCH_2026-08-06.json"

    def test_render_mentions_every_entry(self, quick_doc):
        text = render(quick_doc)
        for entry in quick_doc["entries"]:
            assert entry["name"] in text

    def test_main_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(
            ["--quick", "--workers", "2", "--scale", "0.02", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["entries"]
        assert str(out) in capsys.readouterr().out


def test_kernel_entries_carry_a_tier(quick_doc):
    kernel_entries = [
        e for e in quick_doc["entries"] if e["name"].startswith("kernel.")
    ]
    assert kernel_entries
    for e in kernel_entries:
        assert e["tier"] in ("python", "compiled")
    # the python rows are always present (forced kernel_tier("python"))
    assert {e["name"] for e in kernel_entries if e["tier"] == "python"} == {
        "kernel.fcfs_waits",
        "kernel.lwl_waits",
        "kernel.shortest_queue_waits",
        "kernel.tags_waits",
    }
    for e in kernel_entries:
        if e["tier"] == "compiled":
            assert e["speedup_vs_python"] > 0
    # schema 2 records the numba version (None without the compiled tier)
    assert "numba" in quick_doc["environment"]
