"""Positive + negative fixtures for the contract tier SIM201–SIM212.

Mirrors ``test_flow_rules.py``: every rule registered in
``CONTRACT_RULES`` must have at least one fixture that triggers it and
one adjacent-but-clean fixture that does not — the completeness test
fails when a new rule lands without them.

Single-module fixtures go through :func:`repro.devtools.lint_source`
(one-module graph, same path the CLI uses).  The cross-module cases at
the bottom exercise the part the graph layer exists for: a contract
declared in one module checked against call sites in another.
"""

from __future__ import annotations

import ast

import pytest

from repro.devtools import (
    CONTRACT_RULES,
    PROFILES,
    ProjectGraph,
    contract_index,
    lint_source,
    run_contract_rules,
)

SIM_PATH = "src/repro/sim/fixture.py"
EXP_PATH = "src/repro/experiments/fixture.py"

CONTRACT_IMPORT = "from repro.sim.contract import kernel_contract\n"


def rules_of(findings):
    return {f.rule for f in findings}


def contract_findings(files: dict[str, str], select=None):
    """Run the contract rules over a virtual multi-file tree."""
    parsed = [(path, ast.parse(src)) for path, src in files.items()]
    return run_contract_rules(ProjectGraph.build(parsed), select=select)


# ---------------------------------------------------------------------------
# fixtures: {rule: (positive_src, positive_path, negative_src, negative_path)}
# ---------------------------------------------------------------------------

FIXTURES = {
    "SIM201": (
        # positive: int32 array fed to a float64-contracted parameter
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(dtypes={"xs": "float64"})
def kern(xs):
    return xs

def caller():
    return kern(np.zeros(4, dtype=np.int32))
""",
        SIM_PATH,
        # negative: np.zeros defaults to float64 — exactly the contract
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(dtypes={"xs": "float64"})
def kern(xs):
    return xs

def caller():
    return kern(np.zeros(4))
""",
        SIM_PATH,
    ),
    "SIM202": (
        # positive: kernel mutates a parameter it never declared in writes=
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(dtypes={"xs": "float64"})
def kern(xs):
    xs[0] = 0.0
    return xs
""",
        SIM_PATH,
        # negative: the mutated buffer is declared
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(dtypes={"out": "float64"}, writes=("out",))
def kern(out):
    out[0] = 0.0
    return out
""",
        SIM_PATH,
    ),
    "SIM203": (
        # positive: one buffer passed as both the input and the scratch
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(writes=("out",))
def kern(xs, out):
    out[0] = xs[0]
    return out

def caller():
    buf = np.zeros(4)
    return kern(buf, buf)
""",
        SIM_PATH,
        # negative: two read-only inputs may alias freely
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract()
def kern(xs, ys):
    return xs, ys

def caller():
    buf = np.zeros(4)
    return kern(buf, buf)
""",
        SIM_PATH,
    ),
    "SIM204": (
        # positive: two parameters sharing the symbol "n" get different lengths
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(shapes={"xs": ("n",), "ys": ("n",)})
def kern(xs, ys):
    return xs

def caller():
    return kern(np.zeros(3), np.zeros(4))
""",
        SIM_PATH,
        # negative: lengths agree
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(shapes={"xs": ("n",), "ys": ("n",)})
def kern(xs, ys):
    return xs

def caller():
    return kern(np.zeros(4), np.zeros(4))
""",
        SIM_PATH,
    ),
    "SIM205": (
        # positive: a strided view fed to a contiguous= parameter
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(contiguous=("xs",))
def kern(xs):
    return xs

def caller():
    a = np.zeros(8)
    return kern(a[::2])
""",
        SIM_PATH,
        # negative: routed through np.ascontiguousarray first
        CONTRACT_IMPORT
        + """\
import numpy as np

@kernel_contract(contiguous=("xs",))
def kern(xs):
    return xs

def caller():
    a = np.zeros(8)
    return kern(np.ascontiguousarray(a[::2]))
""",
        SIM_PATH,
    ),
    "SIM206": (
        # positive: segment created, neither closed nor handed to anyone
        """\
from multiprocessing import shared_memory

def leak(n):
    shm = shared_memory.SharedMemory(create=True, size=n)
    shm.buf[0] = 1
""",
        SIM_PATH,
        # negative: close/unlink on every exit path via finally
        """\
from multiprocessing import shared_memory

def careful(n):
    shm = shared_memory.SharedMemory(create=True, size=n)
    try:
        shm.buf[0] = 1
    finally:
        shm.close()
        shm.unlink()
""",
        SIM_PATH,
    ),
    "SIM207": (
        # positive: worker mutates a module global another function reads
        """\
from concurrent.futures import ProcessPoolExecutor

COUNTER = 0

def work(x):
    global COUNTER
    COUNTER += 1
    return x

def report():
    return COUNTER

def run(items):
    ex = ProcessPoolExecutor()
    return [ex.submit(work, item) for item in items]
""",
        SIM_PATH,
        # negative: the worker returns its count; the parent aggregates
        """\
from concurrent.futures import ProcessPoolExecutor

def work(x):
    return x + 1

def run(items):
    ex = ProcessPoolExecutor()
    return [ex.submit(work, item) for item in items]
""",
        SIM_PATH,
    ),
    "SIM208": (
        # positive: signal.alarm inside thread-pool-reachable code
        """\
import signal
from concurrent.futures import ThreadPoolExecutor

def work(x):
    signal.alarm(5)
    return x

def run(items):
    ex = ThreadPoolExecutor()
    return [ex.submit(work, item) for item in items]
""",
        SIM_PATH,
        # negative: the same alarm from code no thread pool reaches
        """\
import signal
from concurrent.futures import ThreadPoolExecutor

def work(x):
    return x

def timed_main(x):
    signal.alarm(5)
    return work(x)

def run(items):
    ex = ThreadPoolExecutor()
    return [ex.submit(work, item) for item in items]
""",
        SIM_PATH,
    ),
    "SIM209": (
        # positive: results file written in place — a crash truncates it
        """\
def save(path, rows):
    with open(path, "w") as fh:
        for row in rows:
            fh.write(row)
""",
        EXP_PATH,
        # negative: tmp file then atomic os.replace
        """\
import os

def save(path, rows):
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as fh:
        for row in rows:
            fh.write(row)
    os.replace(tmp, path)
""",
        EXP_PATH,
    ),
    "SIM210": (
        # positive: a Generator pickled into a process-pool task
        """\
import numpy as np
from concurrent.futures import ProcessPoolExecutor

def work(rng):
    return rng.random()

def run(seed, n):
    rng = np.random.default_rng(seed)
    ex = ProcessPoolExecutor()
    return [ex.submit(work, rng) for _ in range(n)]
""",
        SIM_PATH,
        # negative: ship the seed, spawn the stream inside the worker
        """\
import numpy as np
from concurrent.futures import ProcessPoolExecutor

def work(seed):
    rng = np.random.default_rng(seed)
    return rng.random()

def run(seed, n):
    ex = ProcessPoolExecutor()
    return [ex.submit(work, seed + i) for i in range(n)]
""",
        SIM_PATH,
    ),
    "SIM211": (
        # positive: read, await, write-back of shared async-server state
        """\
class Frontend:
    async def handle(self, reader, writer):
        depth = self.depth
        line = await reader.readline()
        self.depth = depth + 1
        self.pending.append(line)
""",
        "src/repro/serve/fixture.py",
        # negative: the read-modify-write is held under the lock
        """\
class Frontend:
    async def handle(self, reader, writer):
        line = await reader.readline()
        async with self._lock:
            depth = self.depth
            self.depth = depth + 1
            self.pending.append(line)
""",
        "src/repro/serve/fixture.py",
    ),
    "SIM212": (
        # positive: the same root SeedSequence handed to every worker
        """\
import numpy as np
import multiprocessing as mp

def worker(spec, conn):
    pass

def launch(seed, pipes, n):
    root = np.random.SeedSequence(seed)
    procs = [
        mp.Process(target=worker, args=(root, None)) for _ in range(n)
    ]
    for conn in pipes:
        conn.send(root)
    return procs
""",
        "src/repro/serve/fixture.py",
        # negative: spawn once, ship one child per worker
        """\
import numpy as np
import multiprocessing as mp

def worker(spec, conn):
    pass

def launch(seed, pipes, n):
    root = np.random.SeedSequence(seed)
    children = root.spawn(n)
    procs = [
        mp.Process(target=worker, args=(child, None)) for child in children
    ]
    for conn, child in zip(pipes, children):
        conn.send(child)
    return procs
""",
        "src/repro/serve/fixture.py",
    ),
}


def test_every_registered_contract_rule_has_fixtures():
    assert set(FIXTURES) == set(CONTRACT_RULES)


def test_profiles_partition_the_contract_tier():
    assert PROFILES["kernels"] | PROFILES["concurrency"] == set(CONTRACT_RULES)
    assert not PROFILES["kernels"] & PROFILES["concurrency"]


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_positive_fixture_triggers(rule):
    pos_src, pos_path, _, _ = FIXTURES[rule]
    findings = lint_source(pos_src, path=pos_path, select=[rule])
    assert rules_of(findings) == {rule}, findings


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_negative_fixture_is_clean(rule):
    _, _, neg_src, neg_path = FIXTURES[rule]
    findings = lint_source(neg_src, path=neg_path, select=[rule])
    assert findings == [], findings


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_noqa_suppresses_contract_finding(rule):
    pos_src, pos_path, _, _ = FIXTURES[rule]
    findings = lint_source(pos_src, path=pos_path, select=[rule])
    lines = pos_src.splitlines()
    for f in findings:
        lines[f.line - 1] += f"  # repro: noqa {rule}"
    suppressed = lint_source("\n".join(lines), path=pos_path, select=[rule])
    assert suppressed == []


# ---------------------------------------------------------------------------
# function-header noqa: explicit rules widen to the whole function
# ---------------------------------------------------------------------------


def test_header_noqa_covers_the_function_body():
    pos_src, pos_path, _, _ = FIXTURES["SIM201"]
    src = pos_src.replace("def caller():", "def caller():  # repro: noqa: SIM201")
    assert lint_source(src, path=pos_path, select=["SIM201"]) == []


def test_header_noqa_on_decorator_line_covers_the_function_body():
    pos_src, pos_path, _, _ = FIXTURES["SIM202"]
    src = pos_src.replace(
        '@kernel_contract(dtypes={"xs": "float64"})',
        '@kernel_contract(dtypes={"xs": "float64"})  # repro: noqa: SIM202',
    )
    assert lint_source(src, path=pos_path, select=["SIM202"]) == []


def test_bare_header_noqa_stays_line_only():
    """A blanket ``noqa`` (no rule list) must not widen to the body."""
    pos_src, pos_path, _, _ = FIXTURES["SIM201"]
    src = pos_src.replace("def caller():", "def caller():  # repro: noqa")
    findings = lint_source(src, path=pos_path, select=["SIM201"])
    assert rules_of(findings) == {"SIM201"}


def test_header_noqa_does_not_leak_past_the_function():
    pos_src, pos_path, _, _ = FIXTURES["SIM201"]
    src = (
        pos_src.replace("def caller():", "def quiet():  # repro: noqa: SIM201")
        + "\ndef caller():\n    return kern(np.zeros(4, dtype=np.int32))\n"
    )
    findings = lint_source(src, path=pos_path, select=["SIM201"])
    assert len(findings) == 1 and findings[0].rule == "SIM201"


# ---------------------------------------------------------------------------
# intentional violations inside pytest.raises are not findings
# ---------------------------------------------------------------------------


def test_call_inside_pytest_raises_is_skipped():
    src = CONTRACT_IMPORT + (
        "import numpy as np\n"
        "import pytest\n"
        "\n"
        '@kernel_contract(dtypes={"xs": "float64"})\n'
        "def kern(xs):\n"
        "    return xs\n"
        "\n"
        "def test_rejects_ints():\n"
        "    with pytest.raises(ValueError):\n"
        "        kern(np.zeros(4, dtype=np.int32))\n"
    )
    assert lint_source(src, path="tests/sim/test_fixture.py", select=["SIM201"]) == []


# ---------------------------------------------------------------------------
# cross-module: contract declared in one module, call site in another
# ---------------------------------------------------------------------------

_KERNEL_MODULE = CONTRACT_IMPORT + (
    "import numpy as np\n"
    "__all__ = ['kern']\n"
    "\n"
    '@kernel_contract(dtypes={"xs": "float64"}, shapes={"xs": ("n",)})\n'
    "def kern(xs):\n"
    "    return xs\n"
)


def test_cross_module_call_site_checked():
    findings = contract_findings(
        {
            "src/repro/sim/kernels.py": _KERNEL_MODULE,
            "src/repro/sim/driver.py": (
                "import numpy as np\n"
                "from .kernels import kern\n"
                "def go():\n"
                "    return kern(np.zeros(4, dtype=np.int32))\n"
            ),
        },
        select={"SIM201"},
    )
    assert rules_of(findings) == {"SIM201"}
    assert findings[0].path == "src/repro/sim/driver.py"


def test_cross_module_aliased_import_checked():
    """The index follows ``from .kernels import kern as fast_kern``."""
    findings = contract_findings(
        {
            "src/repro/sim/kernels.py": _KERNEL_MODULE,
            "src/repro/sim/driver.py": (
                "import numpy as np\n"
                "from .kernels import kern as fast_kern\n"
                "def go():\n"
                "    return fast_kern(np.zeros(4, dtype=np.int32))\n"
            ),
        },
        select={"SIM201"},
    )
    assert rules_of(findings) == {"SIM201"}


def test_cross_module_clean_call_site():
    findings = contract_findings(
        {
            "src/repro/sim/kernels.py": _KERNEL_MODULE,
            "src/repro/sim/driver.py": (
                "import numpy as np\n"
                "from .kernels import kern\n"
                "def go():\n"
                "    return kern(np.zeros(4))\n"
            ),
        },
        select={"SIM201"},
    )
    assert findings == []


def test_contract_index_sees_real_kernels():
    """The shipped kernels declare contracts the index picks up."""
    import repro.sim.fast as fast
    from pathlib import Path
    import inspect

    path = inspect.getsourcefile(fast)
    assert path is not None
    tree = ast.parse(Path(path).read_text(encoding="utf-8"))
    graph = ProjectGraph.build([("src/repro/sim/fast.py", tree)])
    index = contract_index(graph)
    assert "repro.sim.fast.fcfs_waits" in index
    assert "repro.sim.fast.sita_scan" in index
