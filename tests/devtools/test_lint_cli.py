"""CLI contract for ``repro lint`` / ``python -m repro.devtools.lint``.

Covers rule selection flags, the JSON report format, the documented exit
codes (0 clean / 1 findings / 2 usage error), and configuration pickup
from ``[tool.repro.lint]`` in ``pyproject.toml``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.lint import main as lint_main

CLEAN = "__all__ = []\nX = 1\n"
DIRTY = "import random\n\n\ndef f(acc=[]):\n    acc.append(1)\n"


@pytest.fixture
def tree(tmp_path: Path) -> Path:
    """A fake package tree with one clean and one dirty module."""
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(CLEAN)
    (pkg / "dirty.py").write_text(DIRTY)
    return tmp_path


def test_exit_zero_on_clean_file(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "clean.py"
    assert lint_main([str(target)]) == 0
    assert "all clean" in capsys.readouterr().out


def test_exit_one_with_findings(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert lint_main([str(target)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out and "SIM005" in out and "SIM006" in out


def test_exit_two_on_unknown_rule(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert lint_main([str(target), "--select", "NOPE123"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert lint_main([str(tmp_path / "does-not-exist")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_select_restricts_rules(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert lint_main([str(target), "--select", "SIM005"]) == 1
    out = capsys.readouterr().out
    assert "SIM005" in out and "SIM001" not in out and "SIM006" not in out


def test_ignore_drops_rules(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert (
        lint_main([str(target), "--ignore", "SIM001,SIM005,SIM006"]) == 0
    )
    assert "all clean" in capsys.readouterr().out


def test_json_format_is_parseable_and_stable(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert lint_main([str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload} == {"SIM001", "SIM005", "SIM006"}
    for item in payload:
        assert set(item) == {"path", "line", "col", "rule", "message"}
    # sorted by (path, line, col, rule)
    keys = [(f["path"], f["line"], f["col"], f["rule"]) for f in payload]
    assert keys == sorted(keys)


def test_github_format_emits_workflow_commands(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert lint_main([str(target), "--format", "github"]) == 1
    lines = capsys.readouterr().out.splitlines()
    assert lines and all(line.startswith("::error file=") for line in lines)
    assert any(",title=SIM001::" in line for line in lines)
    # one annotation per finding, each carrying its location properties
    for line in lines:
        assert "line=" in line and "col=" in line


def test_output_format_alias_matches_format(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    lint_main([str(target), "--format", "github"])
    via_format = capsys.readouterr().out
    lint_main([str(target), "--output-format", "github"])
    via_alias = capsys.readouterr().out
    assert via_format == via_alias


def test_github_format_escapes_newlines_and_percent():
    from repro.devtools.findings import Finding, format_findings

    finding = Finding(
        path="src/repro/sim/x.py",
        line=1,
        col=0,
        rule="SIM001",
        message="bad%\nworse",
    )
    (line,) = format_findings([finding], fmt="github").splitlines()
    assert "%25" in line and "%0A" in line
    assert "\n" not in line


def test_directory_argument_recurses(tree, capsys):
    assert lint_main([str(tree / "src")]) == 1
    out = capsys.readouterr().out
    assert "dirty.py" in out and "clean.py" not in out


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM007"):
        assert rule_id in out


def test_pyproject_defaults_are_picked_up(tree, capsys):
    (tree / "pyproject.toml").write_text(
        '[tool.repro.lint]\nignore = ["SIM001", "SIM005", "SIM006"]\n'
    )
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert lint_main([str(target)]) == 0
    assert "all clean" in capsys.readouterr().out
    # explicit flags override the config
    assert lint_main([str(target), "--select", "SIM001"]) == 1


def test_repro_cli_lint_subcommand(tree, capsys):
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    assert repro_main(["lint", str(target), "--select", "SIM001"]) == 1
    assert "SIM001" in capsys.readouterr().out
    assert repro_main(["lint", str(target), "--ignore", "SIM001,SIM005,SIM006"]) == 0


def test_python_dash_m_entry_point(tree):
    """``python -m repro.devtools.lint`` works as documented."""
    target = tree / "src" / "repro" / "sim" / "dirty.py"
    src_dir = Path(__file__).resolve().parents[2] / "src"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", str(target)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "SIM001" in proc.stdout


# ---------------------------------------------------------------------------
# profiles, baseline, --stats (the contract tier's CLI surface)
# ---------------------------------------------------------------------------

CONTRACTED = """\
from repro.sim.contract import kernel_contract
import numpy as np

@kernel_contract(dtypes={"xs": "float64"})
def kern(xs):
    return xs

def caller():
    return kern(np.zeros(4, dtype=np.int32))
"""


@pytest.fixture
def contract_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "kern.py").write_text(CONTRACTED)
    return tmp_path


def test_profile_kernels_runs_contract_rules(contract_tree, capsys):
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    assert lint_main([str(target), "--profile", "kernels", "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "SIM201" in out


def test_profile_concurrency_skips_kernel_rules(contract_tree, capsys):
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    assert lint_main([str(target), "--profile", "concurrency", "--no-baseline"]) == 0
    assert "all clean" in capsys.readouterr().out


def test_profile_all_includes_every_tier(contract_tree, capsys):
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    assert lint_main([str(target), "--profile", "all", "--no-baseline"]) == 1
    assert "SIM201" in capsys.readouterr().out


def test_profile_intersects_with_select(contract_tree, capsys):
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    code = lint_main(
        [str(target), "--profile", "kernels", "--select", "SIM205", "--no-baseline"]
    )
    assert code == 0
    assert "all clean" in capsys.readouterr().out


def test_baseline_roundtrip(contract_tree, capsys):
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    baseline = contract_tree / "baseline.json"
    assert (
        lint_main(
            [
                str(target),
                "--profile",
                "kernels",
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    assert "wrote 1 baseline entries" in capsys.readouterr().out
    entries = json.loads(baseline.read_text())
    assert [e["rule"] for e in entries] == ["SIM201"]
    assert "line" not in entries[0]
    # baselined finding no longer fails the run …
    assert (
        lint_main(
            [str(target), "--profile", "kernels", "--baseline", str(baseline)]
        )
        == 0
    )
    capsys.readouterr()
    # … but --no-baseline still surfaces it
    assert lint_main([str(target), "--profile", "kernels", "--no-baseline"]) == 1


def test_baseline_is_a_multiset(contract_tree, capsys):
    """Two identical findings need two entries — fixing one still reports."""
    pkg = contract_tree / "src" / "repro" / "sim"
    (pkg / "kern.py").write_text(
        CONTRACTED + "\ndef caller2():\n    return kern(np.zeros(4, dtype=np.int32))\n"
    )
    baseline = contract_tree / "baseline.json"
    target = pkg / "kern.py"
    lint_main(
        [
            str(target),
            "--profile",
            "kernels",
            "--baseline",
            str(baseline),
            "--update-baseline",
        ]
    )
    capsys.readouterr()
    entries = json.loads(baseline.read_text())
    assert len(entries) == 2
    # drop one entry: one of the two findings is fresh again
    baseline.write_text(json.dumps(entries[:1]))
    assert (
        lint_main(
            [str(target), "--profile", "kernels", "--baseline", str(baseline)]
        )
        == 1
    )


def test_baseline_path_from_pyproject(contract_tree, capsys):
    baseline = contract_tree / "accepted.json"
    (contract_tree / "pyproject.toml").write_text(
        f'[tool.repro.lint]\nbaseline = "{baseline}"\n'
    )
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    lint_main([str(target), "--profile", "kernels", "--update-baseline"])
    capsys.readouterr()
    assert baseline.is_file()
    assert lint_main([str(target), "--profile", "kernels"]) == 0


def test_stats_reports_a_single_graph_build(contract_tree, capsys):
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    lint_main([str(target), "--profile", "all", "--stats", "--no-baseline"])
    err = capsys.readouterr().err
    assert "graph-builds=1" in err
    assert "files=1" in err


def test_unknown_profile_is_a_usage_error(contract_tree, capsys):
    import argparse

    from repro.devtools.lint import build_parser, run_from_args

    # argparse rejects it at parse time; resolve_selection guards API users
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--profile", "nope"])
    from repro.devtools.lint import LintError, resolve_selection

    with pytest.raises(LintError):
        resolve_selection(profile="nope")


# ---------------------------------------------------------------------------
# the compile tier's CLI surface: comma profiles, tiers, baseline ratchet
# ---------------------------------------------------------------------------

NOPYTHON_DIRTY = """\
from repro.sim.contract import kernel_contract

@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs, **kwargs):
    return xs[0]
"""


@pytest.fixture
def combined_tree(tmp_path: Path) -> Path:
    """One contract-tier finding (SIM201) plus one compile-tier (SIM301)."""
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "kern.py").write_text(CONTRACTED)
    (pkg / "nopy.py").write_text(NOPYTHON_DIRTY)
    return tmp_path


def test_profile_compile_runs_compile_rules(combined_tree, capsys):
    target = combined_tree / "src" / "repro" / "sim" / "nopy.py"
    assert lint_main([str(target), "--profile", "compile", "--no-baseline"]) == 1
    assert "SIM301" in capsys.readouterr().out


def test_profile_compile_skips_other_tiers(combined_tree, capsys):
    target = combined_tree / "src" / "repro" / "sim" / "kern.py"
    assert lint_main([str(target), "--profile", "compile", "--no-baseline"]) == 0
    assert "all clean" in capsys.readouterr().out


def test_comma_separated_profiles_union(combined_tree, capsys):
    assert (
        lint_main(
            [
                str(combined_tree / "src"),
                "--profile",
                "kernels,compile",
                "--no-baseline",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "SIM201" in out and "SIM301" in out


def test_comma_profile_rejects_unknown_names(combined_tree):
    from repro.devtools.lint import LintError, build_parser, resolve_selection

    with pytest.raises(SystemExit):
        build_parser().parse_args(["--profile", "kernels,nope"])
    with pytest.raises(LintError):
        resolve_selection(profile=["kernels", "nope"])


def test_list_rules_shows_every_tier(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id, tier in (
        ("SIM001", "file"),
        ("SIM101", "flow"),
        ("SIM201", "contract"),
        ("SIM301", "compile"),
    ):
        line = next(ln for ln in out.splitlines() if ln.startswith(rule_id))
        assert tier in line


def test_stale_baseline_warns_then_strict_fails_then_prunes(
    contract_tree, capsys
):
    target = contract_tree / "src" / "repro" / "sim" / "kern.py"
    baseline = contract_tree / "baseline.json"
    lint_main(
        [
            str(target),
            "--profile",
            "kernels",
            "--baseline",
            str(baseline),
            "--update-baseline",
        ]
    )
    capsys.readouterr()
    # fix the finding at its source: the caller now passes float64
    target.write_text(CONTRACTED.replace(", dtype=np.int32", ""))
    # default: still exit 0, but the dead entry is called out on stderr
    assert (
        lint_main(
            [str(target), "--profile", "kernels", "--baseline", str(baseline)]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "stale baseline" in captured.err
    # the ratchet: --strict-baseline turns dead entries into a failure
    assert (
        lint_main(
            [
                str(target),
                "--profile",
                "kernels",
                "--baseline",
                str(baseline),
                "--strict-baseline",
            ]
        )
        == 1
    )
    capsys.readouterr()
    # --update-baseline prunes the dead entry away
    assert (
        lint_main(
            [
                str(target),
                "--profile",
                "kernels",
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    assert json.loads(baseline.read_text()) == []
