"""Positive + negative fixtures for the whole-program rules SIM101–SIM106.

Mirrors the contract of ``test_lint_rules.py`` for the per-file rules:
every rule registered in ``PROJECT_RULES`` must have at least one
fixture that triggers it and one adjacent-but-clean fixture that does
not — the completeness test fails when a new rule lands without them.

Single-module fixtures go through :func:`repro.devtools.lint_source`
(which builds a one-module graph), exercising the same path the CLI
uses; the cross-module flow cases build a multi-file
:class:`~repro.devtools.ProjectGraph` directly.
"""

from __future__ import annotations

import ast

import pytest

from repro.devtools import PROJECT_RULES, ProjectGraph, lint_source, run_project_rules
from repro.devtools.graph import module_name_for_path

SIM_PATH = "src/repro/sim/fixture.py"
EXP_PATH = "src/repro/experiments/fixture.py"


def rules_of(findings):
    return {f.rule for f in findings}


def project_findings(files: dict[str, str], select=None):
    """Run the project rules over a virtual multi-file tree."""
    parsed = [(path, ast.parse(src)) for path, src in files.items()]
    return run_project_rules(ProjectGraph.build(parsed), select=select)


# ---------------------------------------------------------------------------
# fixtures: {rule: (positive_src, positive_path, negative_src, negative_path)}
# ---------------------------------------------------------------------------

FIXTURES = {
    "SIM101": (
        # positive: seed parameter defaults to None and no caller feeds it
        """\
import numpy as np
__all__ = []

def make_stream(seed=None):
    return np.random.default_rng(seed)

def driver():
    return make_stream()
""",
        SIM_PATH,
        # negative: a caller supplies the seed
        """\
import numpy as np
__all__ = []

def make_stream(seed=None):
    return np.random.default_rng(seed)

def driver(config_seed):
    return make_stream(config_seed)
""",
        SIM_PATH,
    ),
    "SIM102": (
        # positive: one Generator consumed across a policy loop
        """\
import numpy as np
__all__ = []

def sweep(policies, rng: np.random.Generator):
    out = []
    for policy in policies:
        out.append(policy.run(rng))
    return out
""",
        SIM_PATH,
        # negative: explicit fan-out via spawn
        """\
import numpy as np
__all__ = []

def sweep(policies, rng: np.random.Generator):
    out = []
    for policy, child in zip(policies, rng.spawn(len(policies))):
        out.append(policy.run(child))
    return out
""",
        SIM_PATH,
    ),
    "SIM103": (
        # positive: set iteration feeding event scheduling
        """\
__all__ = []

def enqueue_all(sim, jobs):
    pending = set(jobs)
    for job in pending:
        sim.schedule(job.arrival, job.fire)
""",
        SIM_PATH,
        # negative: sorted first — replay-stable order
        """\
__all__ = []

def enqueue_all(sim, jobs):
    pending = set(jobs)
    for job in sorted(pending):
        sim.schedule(job.arrival, job.fire)
""",
        SIM_PATH,
    ),
    "SIM104": (
        # positive: float reduction over a set
        """\
__all__ = []

def total_work(sizes):
    distinct = set(sizes)
    return sum(distinct)
""",
        SIM_PATH,
        # negative: sorted before summing
        """\
__all__ = []

def total_work(sizes):
    distinct = set(sizes)
    return sum(sorted(distinct))
""",
        SIM_PATH,
    ),
    "SIM105": (
        # positive: heap entry ordered by time then payload, no seq
        """\
import heapq
__all__ = []

def push(heap, finish_time, job):
    heapq.heappush(heap, (finish_time, job))
""",
        SIM_PATH,
        # negative: (time, seq, payload) — the engine's contract
        """\
import heapq
__all__ = []

def push(heap, finish_time, seq, job):
    heapq.heappush(heap, (finish_time, seq, job))
""",
        SIM_PATH,
    ),
    "SIM106": (
        # positive: completion-order results folded into a list
        """\
__all__ = []

def run_all(pool, chunks):
    out = []
    for result in pool.imap_unordered(work, chunks):
        out.append(result)
    return out
""",
        SIM_PATH,
        # negative: each result restored to its submission slot
        """\
__all__ = []

def run_all(pool, chunks):
    out = [None] * len(chunks)
    for i, result in pool.imap_unordered(work, enumerate(chunks)):
        out[i] = result
    return out
""",
        SIM_PATH,
    ),
}


def test_every_registered_project_rule_has_fixtures():
    assert set(FIXTURES) == set(PROJECT_RULES)


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_positive_fixture_triggers(rule):
    pos_src, pos_path, _, _ = FIXTURES[rule]
    findings = lint_source(pos_src, path=pos_path, select=[rule])
    assert rules_of(findings) == {rule}, findings


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_negative_fixture_is_clean(rule):
    _, _, neg_src, neg_path = FIXTURES[rule]
    findings = lint_source(neg_src, path=neg_path, select=[rule])
    assert findings == [], findings


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_noqa_suppresses_project_finding(rule):
    pos_src, pos_path, _, _ = FIXTURES[rule]
    findings = lint_source(pos_src, path=pos_path, select=[rule])
    lines = pos_src.splitlines()
    for f in findings:
        lines[f.line - 1] += f"  # repro: noqa {rule}"
    suppressed = lint_source("\n".join(lines), path=pos_path, select=[rule])
    assert suppressed == []


# ---------------------------------------------------------------------------
# cross-module flow (the whole point of the graph layer)
# ---------------------------------------------------------------------------


def test_sim101_unfed_seed_across_modules():
    """A seed forwarded module-to-module but never supplied is reported."""
    findings = project_findings(
        {
            "src/repro/sim/streams.py": (
                "import numpy as np\n"
                "__all__ = []\n"
                "def make_stream(seed=None):\n"
                "    return np.random.default_rng(seed)\n"
            ),
            "src/repro/sim/driver.py": (
                "from .streams import make_stream\n"
                "__all__ = []\n"
                "def run(seed=None):\n"
                "    return make_stream(seed)\n"
                "def main():\n"
                "    return run()\n"
            ),
        },
        select={"SIM101"},
    )
    assert rules_of(findings) == {"SIM101"}
    assert any("streams" in f.path for f in findings) or any(
        "driver" in f.path for f in findings
    )


def test_sim101_seed_fed_across_modules_is_clean():
    """The same shape is clean once any caller supplies a real seed."""
    findings = project_findings(
        {
            "src/repro/sim/streams.py": (
                "import numpy as np\n"
                "__all__ = []\n"
                "def make_stream(seed=None):\n"
                "    return np.random.default_rng(seed)\n"
            ),
            "src/repro/sim/driver.py": (
                "from .streams import make_stream\n"
                "__all__ = []\n"
                "def run(seed=None):\n"
                "    return make_stream(seed)\n"
                "def main():\n"
                "    return run(20000731)\n"
            ),
        },
        select={"SIM101"},
    )
    assert findings == []


def test_sim101_uncalled_function_gets_benefit_of_the_doubt():
    """A public API root with no visible callers is not reported."""
    findings = project_findings(
        {
            "src/repro/sim/api.py": (
                "import numpy as np\n"
                "__all__ = ['entry']\n"
                "def entry(seed=None):\n"
                "    return np.random.default_rng(seed)\n"
            ),
        },
        select={"SIM101"},
    )
    assert findings == []


def test_sim101_direct_unseeded_construction():
    findings = project_findings(
        {
            SIM_PATH: (
                "import numpy as np\n"
                "__all__ = []\n"
                "def fresh():\n"
                "    return np.random.default_rng()\n"
            ),
        },
        select={"SIM101"},
    )
    assert len(findings) == 1 and findings[0].rule == "SIM101"


def test_sim105_order_true_dataclass_without_seq():
    findings = project_findings(
        {
            SIM_PATH: (
                "from dataclasses import dataclass\n"
                "__all__ = []\n"
                "@dataclass(order=True)\n"
                "class Pending:\n"
                "    time: float\n"
                "    payload: object\n"
            ),
        },
        select={"SIM105"},
    )
    assert rules_of(findings) == {"SIM105"}


def test_sim105_event_shaped_dataclass_is_clean():
    findings = project_findings(
        {
            SIM_PATH: (
                "from dataclasses import dataclass, field\n"
                "__all__ = []\n"
                "@dataclass(order=True)\n"
                "class Pending:\n"
                "    time: float\n"
                "    seq: int\n"
                "    payload: object = field(compare=False, default=None)\n"
            ),
        },
        select={"SIM105"},
    )
    assert findings == []


def test_sim103_dict_iteration_scheduling_flagged_but_plain_use_clean():
    scheduling = project_findings(
        {
            SIM_PATH: (
                "__all__ = []\n"
                "def go(sim, by_host):\n"
                "    for host, job in by_host.items():\n"
                "        sim.schedule(job.t, job.fire)\n"
            ),
        },
        select={"SIM103"},
    )
    assert rules_of(scheduling) == {"SIM103"}
    harmless = project_findings(
        {
            EXP_PATH: (
                "__all__ = []\n"
                "def collect(rows_by_policy):\n"
                "    out = []\n"
                "    for name, rows in rows_by_policy.items():\n"
                "        out.extend(rows)\n"
                "    return out\n"
            ),
        },
        select={"SIM103"},
    )
    assert harmless == []


# ---------------------------------------------------------------------------
# graph layer
# ---------------------------------------------------------------------------


def test_module_name_for_path():
    assert module_name_for_path("src/repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_for_path("src/repro/sim/__init__.py") == "repro.sim"
    assert module_name_for_path("tests/sim/test_engine.py") == "tests.sim.test_engine"


def test_graph_resolves_imports_and_call_sites():
    graph = ProjectGraph.build(
        [
            (
                "src/repro/sim/a.py",
                ast.parse("import numpy as np\ndef f():\n    return np.zeros(3)\n"),
            ),
            (
                "src/repro/sim/b.py",
                ast.parse("from .a import f\ndef g():\n    return f()\n"),
            ),
        ]
    )
    assert graph.call_sites("numpy.zeros")
    sites = graph.call_sites("repro.sim.a.f")
    assert len(sites) == 1 and sites[0].module.name == "repro.sim.b"
    fn = graph.function("repro.sim.a.f")
    assert fn is not None and fn.qualname == "f"


def test_graph_tracks_methods_and_defaults():
    graph = ProjectGraph.build(
        [
            (
                "src/repro/sim/c.py",
                ast.parse(
                    "class Host:\n"
                    "    def submit(self, job, priority=0):\n"
                    "        return job\n"
                ),
            ),
        ]
    )
    method = graph.function("repro.sim.c.Host.submit")
    assert method is not None and method.is_method
    default = method.default_of("priority")
    assert isinstance(default, ast.Constant) and default.value == 0
    assert method.default_of("job") is None
