"""Positive + negative fixtures for the compile-readiness tier SIM301–SIM308.

Mirrors ``test_contract_rules.py``: every rule registered in
``COMPILE_RULES`` must have a fixture pair, and the completeness test
fails when a new rule lands without one.

Two extra obligations are unique to this tier:

* **differential certification** — when numba is installed, every
  fixture is fed to the real compiler: positives of ``compile_breaking``
  rules must genuinely fail ``njit``, every other fixture must compile.
  The static verdict and the compiler must agree, fixture by fixture.
* **manifest freshness** — the committed
  ``src/repro/sim/compiled_manifest.json`` must match a fresh
  certification pass over the real source tree.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import numpy as np
import pytest

from repro.devtools import (
    COMPILE_RULES,
    CONTRACT_RULES,
    PROFILES,
    ProjectGraph,
    certification,
    certified_kernels,
    lint_source,
)
from repro.devtools.compile_rules import build_graph, manifest_payload

try:
    import numba
except ImportError:
    numba = None

REPO_ROOT = Path(__file__).resolve().parents[2]
SIM_PATH = "src/repro/sim/fixture.py"

PRELUDE = (
    "from repro.sim.contract import kernel_contract\n"
    "import numpy as np\n"
)


def rules_of(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# fixtures: {rule: (positive_src, negative_src)}
#
# Every fixture defines a nopython kernel named ``kern`` that accepts one
# float64 1-D array, so the differential test can exec + njit + call each
# one uniformly.
# ---------------------------------------------------------------------------

FIXTURES = {
    "SIM301": (
        # positive: **kwargs forces object mode — njit cannot type it
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs, **kwargs):
    total = 0.0
    for i in range(xs.size):
        total += xs[i]
    return total
""",
        # negative: the same reduction with a plain signature
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    total = 0.0
    for i in range(xs.size):
        total += xs[i]
    return total
""",
    ),
    "SIM302": (
        # positive: the float64-contracted input rebound to float32
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    xs = xs.astype(np.float32)
    total = 0.0
    for i in range(xs.size):
        total += xs[i]
    return total
""",
        # negative: the narrowed copy gets its own (undeclared) name
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    ys = xs.astype(np.float64)
    total = 0.0
    for i in range(ys.size):
        total += ys[i]
    return total
""",
    ),
    "SIM303": (
        # positive: numba's np.cumsum overload rejects out=
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    out = np.empty(xs.size, dtype=np.float64)
    np.cumsum(xs, out=out)
    return out
""",
        # negative: the allocating form numba supports
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    return np.cumsum(xs)
""",
    ),
    "SIM304": (
        # positive: a fresh buffer allocated every iteration
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    total = 0.0
    for i in range(xs.size):
        buf = np.zeros(4)
        buf[0] = xs[i]
        total += buf[0]
    return total
""",
        # negative: the buffer hoisted out of the loop
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    total = 0.0
    buf = np.zeros(4)
    for i in range(xs.size):
        buf[0] = xs[i]
        total += buf[0]
    return total
""",
    ),
    "SIM305": (
        # positive: a mutable module global captured by the kernel
        PRELUDE
        + """\
STATE = []

@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    STATE.append(xs[0])
    return xs[0]
""",
        # negative: kernel-local NumPy state only
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    ws = np.empty(2, dtype=np.float64)
    ws[0] = 0.5
    ws[1] = 0.5
    return xs[0] * ws[0] + xs[1] * ws[1]
""",
    ),
    "SIM306": (
        # positive: calls a plain (uncertified) helper
        PRELUDE
        + """\
def scale(x):
    return x * 2.0

@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    total = 0.0
    for i in range(xs.size):
        total += scale(xs[i])
    return total
""",
        # negative: the helper is itself a certified nopython kernel
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"x": "float64"})
def scale(x):
    return x * 2.0

@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    total = 0.0
    for i in range(xs.size):
        total += scale(xs[i])
    return total
""",
    ),
    "SIM307": (
        # positive: one branch returns int64 against a float64 contract
        PRELUDE
        + """\
@kernel_contract(
    nopython=True,
    dtypes={"xs": "float64", "return": "float64"},
    shapes={"xs": ("n",), "return": ("n",)},
)
def kern(xs):
    if xs[0] > 0.0:
        return np.zeros(xs.size, dtype=np.int64)
    return np.zeros(xs.size)
""",
        # negative: every branch returns the declared float64 lane
        PRELUDE
        + """\
@kernel_contract(
    nopython=True,
    dtypes={"xs": "float64", "return": "float64"},
    shapes={"xs": ("n",), "return": ("n",)},
)
def kern(xs):
    if xs[0] > 0.0:
        return np.ones(xs.size)
    return np.zeros(xs.size)
""",
    ),
    "SIM308": (
        # positive: 2**63 overflows the int64 lane (numba silently
        # retypes it, so this compiles — and misbehaves)
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    big = 2 ** 63
    total = 0.0
    for i in range(xs.size):
        total += xs[i] + big
    return total
""",
        # negative: the same constant inside the int64 range
        PRELUDE
        + """\
@kernel_contract(nopython=True, dtypes={"xs": "float64"})
def kern(xs):
    big = 2 ** 62
    total = 0.0
    for i in range(xs.size):
        total += xs[i] + big
    return total
""",
    ),
}


def test_every_registered_compile_rule_has_fixtures():
    assert set(FIXTURES) == set(COMPILE_RULES)


def test_compile_profile_covers_the_tier():
    assert PROFILES["compile"] == set(COMPILE_RULES)
    assert not PROFILES["compile"] & set(CONTRACT_RULES)


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_positive_fixture_triggers(rule):
    pos_src, _ = FIXTURES[rule]
    findings = lint_source(pos_src, path=SIM_PATH, select=[rule])
    assert rules_of(findings) == {rule}, findings


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_negative_fixture_is_clean(rule):
    _, neg_src = FIXTURES[rule]
    findings = lint_source(neg_src, path=SIM_PATH, select=[rule])
    assert findings == [], findings


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_noqa_suppresses_compile_finding(rule):
    pos_src, _ = FIXTURES[rule]
    findings = lint_source(pos_src, path=SIM_PATH, select=[rule])
    lines = pos_src.splitlines()
    for f in findings:
        lines[f.line - 1] += f"  # repro: noqa {rule}"
    suppressed = lint_source("\n".join(lines), path=SIM_PATH, select=[rule])
    assert suppressed == []


def test_rules_ignore_python_tier_kernels():
    """A contract without nopython=True is out of scope for every rule."""
    src = PRELUDE + (
        '@kernel_contract(dtypes={"xs": "float64"})\n'
        "def kern(xs, **kwargs):\n"
        "    state = []\n"
        "    state.append({'a': 1})\n"
        "    return xs\n"
    )
    findings = lint_source(src, path=SIM_PATH, select=sorted(COMPILE_RULES))
    assert findings == []


def test_sim305_allows_array_literal_payload():
    """``np.array([...])`` consumes its list literal — not a reflection."""
    src = PRELUDE + (
        '@kernel_contract(nopython=True, dtypes={"xs": "float64"})\n'
        "def kern(xs):\n"
        "    ws = np.array([0.5, 0.5])\n"
        "    return xs[0] * ws[0]\n"
    )
    assert lint_source(src, path=SIM_PATH, select=["SIM305"]) == []


# ---------------------------------------------------------------------------
# SIM306 fixpoint: decertifying a helper decertifies its dependency cone
# ---------------------------------------------------------------------------


def test_closure_decertification_cascades():
    src = PRELUDE + (
        "def plain(x):\n"
        "    return x * 2.0\n"
        "\n"
        "@kernel_contract(nopython=True)\n"
        "def inner(x):\n"
        "    return plain(x)\n"
        "\n"
        "@kernel_contract(nopython=True)\n"
        "def outer(x):\n"
        "    return inner(x)\n"
        "\n"
        "@kernel_contract(nopython=True)\n"
        "def clean(x):\n"
        "    return x + 1.0\n"
    )
    graph = ProjectGraph.build([(SIM_PATH, ast.parse(src))])
    verdicts = certification(graph)
    assert not verdicts["repro.sim.fixture.inner"].certified
    assert not verdicts["repro.sim.fixture.outer"].certified
    assert verdicts["repro.sim.fixture.clean"].certified
    outer_rules = rules_of(verdicts["repro.sim.fixture.outer"].findings)
    assert outer_rules == {"SIM306"}
    assert certified_kernels(graph) == ["repro.sim.fixture.clean"]


# ---------------------------------------------------------------------------
# the real tree: every shipped compiled kernel certifies, manifest is fresh
# ---------------------------------------------------------------------------


def test_shipped_compiled_kernels_certify():
    graph = build_graph(REPO_ROOT / "src" / "repro")
    certified = certified_kernels(graph)
    for name in (
        "repro.sim.compiled.estimated_lwl_waits",
        "repro.sim.compiled.lwl_waits",
        "repro.sim.compiled.shortest_queue_waits",
        "repro.sim.compiled.sita_scan",
    ):
        assert name in certified, certified


def test_committed_manifest_is_fresh():
    payload = manifest_payload(REPO_ROOT / "src" / "repro")
    manifest_path = (
        REPO_ROOT / "src" / "repro" / "sim" / "compiled_manifest.json"
    )
    committed = json.loads(manifest_path.read_text(encoding="utf-8"))
    assert committed == payload
    assert committed["rules"] == sorted(COMPILE_RULES)


# ---------------------------------------------------------------------------
# differential certification: static verdict ≡ the real compiler
# ---------------------------------------------------------------------------


def _njit_compiles(src: str) -> bool:
    """Exec a fixture, njit every nopython kernel in it, call ``kern``."""
    ns: dict = {}
    exec(compile(src, "<fixture>", "exec"), ns)
    contracted = [
        (name, obj)
        for name, obj in list(ns.items())
        if callable(obj)
        and getattr(getattr(obj, "__kernel_contract__", None), "nopython", False)
    ]
    try:
        for name, obj in contracted:
            ns[name] = numba.njit(obj)
        ns["kern"](np.arange(4, dtype=np.float64))
    except Exception:
        return False
    return True


@pytest.mark.skipif(numba is None, reason="numba not installed")
@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_static_verdict_matches_njit(rule):
    pos_src, neg_src = FIXTURES[rule]
    breaking = COMPILE_RULES[rule].compile_breaking
    # a compile-breaking positive must genuinely fail the compiler; a
    # non-breaking positive compiles (and misbehaves — that is the point
    # of flagging it statically).
    assert _njit_compiles(pos_src) == (not breaking)
    # every negative fixture must be compilable as claimed.
    assert _njit_compiles(neg_src)
