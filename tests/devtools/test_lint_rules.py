"""One positive and one negative fixture per lint rule (SIM001–SIM007).

Each fixture is a source snippet linted under a *virtual path*, so the
path-scoped rules (SIM001/SIM002/SIM003/SIM006) can be exercised as if
the snippet lived inside ``src/repro``.  The positive snippet must
trigger exactly its rule; the negative snippet must not trigger it.
"""

from __future__ import annotations

import pytest

from repro.devtools import RULES, LintContext, lint_source
from repro.devtools.lint import SYNTAX_RULE

SIM_PATH = "src/repro/sim/fixture.py"
CORE_PATH = "src/repro/core/fixture.py"
LIB_PATH = "src/repro/fixture.py"

#: rule id -> (positive snippet, path, negative snippet, path)
FIXTURES: dict[str, tuple[str, str, str, str]] = {
    "SIM001": (
        "import numpy as np\n"
        "__all__ = []\n"
        "def sample():\n"
        "    np.random.seed(0)\n"
        "    return np.random.rand(10)\n",
        SIM_PATH,
        "import numpy as np\n"
        "__all__ = []\n"
        "def sample(rng: np.random.Generator):\n"
        "    return rng.random(10)\n",
        SIM_PATH,
    ),
    "SIM002": (
        "import time\n"
        "__all__ = []\n"
        "def stamp():\n"
        "    return time.perf_counter()\n",
        CORE_PATH,
        "__all__ = []\n"
        "def stamp(sim):\n"
        "    return sim.now\n",
        CORE_PATH,
    ),
    "SIM003": (
        "__all__ = []\n"
        "def due(job, now):\n"
        "    return job.completion_time == now\n",
        SIM_PATH,
        "import math\n"
        "__all__ = []\n"
        "def due(job, now):\n"
        "    return math.isclose(job.completion_time, now)\n",
        SIM_PATH,
    ),
    "SIM004": (
        "__all__ = []\n"
        "class BrokenPolicy(StatePolicy):\n"
        "    def reset(self, n_hosts, rng):\n"
        "        self.counter = 0\n",
        CORE_PATH,
        "__all__ = []\n"
        "class GoodPolicy(StatePolicy):\n"
        "    name = 'good'\n"
        "    def reset(self, n_hosts, rng):\n"
        "        super().reset(n_hosts, rng)\n"
        "        self.counter = 0\n",
        CORE_PATH,
    ),
    "SIM005": (
        "__all__ = []\n"
        "def run(trace, completed=[]):\n"
        "    completed.append(trace)\n",
        LIB_PATH,
        "__all__ = []\n"
        "def run(trace, completed=None):\n"
        "    completed = [] if completed is None else completed\n",
        LIB_PATH,
    ),
    "SIM006": (
        "x = 1\n",
        LIB_PATH,
        "__all__ = ['x']\nx = 1\n",
        LIB_PATH,
    ),
    "SIM007": (
        "__all__ = []\n"
        "def guarded(f):\n"
        "    try:\n"
        "        f()\n"
        "    except Exception:\n"
        "        pass\n",
        LIB_PATH,
        "__all__ = []\n"
        "def guarded(f):\n"
        "    try:\n"
        "        f()\n"
        "    except ValueError:\n"
        "        return None\n",
        LIB_PATH,
    ),
}


def test_every_registered_rule_has_fixtures():
    assert set(FIXTURES) == set(RULES)


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_positive_fixture_triggers_rule(rule_id):
    source, path, _, _ = FIXTURES[rule_id]
    hits = [f.rule for f in lint_source(source, path=path)]
    assert rule_id in hits, f"{rule_id} fixture produced {hits}"


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_negative_fixture_is_clean(rule_id):
    _, _, source, path = FIXTURES[rule_id]
    hits = [f.rule for f in lint_source(source, path=path)]
    assert rule_id not in hits, f"{rule_id} false positive: {hits}"


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_findings_carry_location_and_message(rule_id):
    source, path, _, _ = FIXTURES[rule_id]
    finding = next(f for f in lint_source(source, path=path) if f.rule == rule_id)
    assert finding.path == path
    assert finding.line >= 1 and finding.col >= 1
    assert finding.message
    assert finding.render().startswith(f"{path}:{finding.line}:")


# ---------------------------------------------------------------------------
# rule-specific edge cases
# ---------------------------------------------------------------------------


def test_sim001_exempts_distributions_module():
    source = "import numpy as np\n__all__ = []\nnp.random.seed(0)\n"
    hits = lint_source(source, path="src/repro/workloads/distributions.py")
    assert not any(f.rule == "SIM001" for f in hits)


def test_sim001_allows_default_rng():
    source = "import numpy as np\n__all__ = []\nr = np.random.default_rng(3)\n"
    assert not any(f.rule == "SIM001" for f in lint_source(source, path=SIM_PATH))


def test_sim002_inactive_outside_simulation_packages():
    source = "import time\n__all__ = []\nt0 = time.perf_counter()\n"
    hits = lint_source(source, path="src/repro/experiments/fixture.py")
    assert not any(f.rule == "SIM002" for f in hits)


def test_sim003_skips_boolean_and_metadata_comparisons():
    source = (
        "__all__ = []\n"
        "flipped = (est <= cutoff) != truly_short\n"
        "bad_shape = a.shape != b.shape\n"
        "is_poll = mode == 'time'\n"
    )
    assert not any(f.rule == "SIM003" for f in lint_source(source, path=SIM_PATH))


def test_sim003_sees_through_arithmetic_and_subscripts():
    source = "__all__ = []\nhit = arrival_times[0] + delta == cutoff\n"
    assert any(f.rule == "SIM003" for f in lint_source(source, path=SIM_PATH))


def test_sim004_direct_policy_subclass_needs_kind():
    source = (
        "__all__ = []\n"
        "class NoKindPolicy(Policy):\n"
        "    name = 'x'\n"
        "    def choose_host(self, job, state):\n"
        "        return 0\n"
    )
    messages = [f.message for f in lint_source(source, path=CORE_PATH) if f.rule == "SIM004"]
    assert any("kind" in m for m in messages)


def test_sim004_skips_abstract_intermediaries():
    source = (
        "from abc import abstractmethod\n"
        "__all__ = []\n"
        "class Intermediate(Policy):\n"
        "    kind = 'static'\n"
        "    @abstractmethod\n"
        "    def assign_batch(self, sizes, rng): ...\n"
    )
    assert not any(f.rule == "SIM004" for f in lint_source(source, path=CORE_PATH))


def test_sim007_flags_bare_except_even_with_real_body():
    source = "__all__ = []\ntry:\n    f()\nexcept:\n    raise ValueError('x')\n"
    assert any(f.rule == "SIM007" for f in lint_source(source, path=LIB_PATH))


def test_syntax_error_reported_as_sim000():
    findings = lint_source("def broken(:\n", path=LIB_PATH)
    assert [f.rule for f in findings] == [SYNTAX_RULE]


# ---------------------------------------------------------------------------
# noqa pragmas and selection
# ---------------------------------------------------------------------------


def test_noqa_suppresses_named_rule_only():
    source = "import random  # repro: noqa SIM001\n"
    hits = {f.rule for f in lint_source(source, path=SIM_PATH)}
    assert "SIM001" not in hits
    assert "SIM006" in hits  # still missing __all__ (reported at line 1)


def test_noqa_bare_suppresses_everything_on_the_line():
    source = "import random  # repro: noqa\n"
    assert lint_source(source, path=SIM_PATH) == []


def test_noqa_list_of_rules():
    source = "__all__ = []\ndef f(x=[]):  # repro: noqa SIM005, SIM003\n    return x\n"
    assert lint_source(source, path=LIB_PATH) == []


def test_noqa_on_other_line_does_not_leak():
    source = "# repro: noqa SIM001\n\nimport random\n__all__ = []\n"
    assert any(f.rule == "SIM001" for f in lint_source(source, path=SIM_PATH))


def test_select_and_ignore():
    source, path, _, _ = FIXTURES["SIM006"]
    assert any(
        f.rule == "SIM006" for f in lint_source(source, path=path, select=["SIM006"])
    )
    assert lint_source(source, path=path, ignore=["SIM006"]) == []
    only = lint_source(source, path=path, select=["SIM001"])
    assert not any(f.rule == "SIM006" for f in only)


def test_context_virtual_paths():
    ctx = LintContext.for_path("src/repro/sim/engine.py")
    assert ctx.module == ("sim", "engine")
    assert ctx.in_subpackage("sim", "core")
    assert not LintContext.for_path("tests/sim/test_engine.py").in_library
    assert LintContext.for_path("src/repro/__main__.py").is_private_module


def test_linter_is_clean_on_its_own_package():
    from pathlib import Path

    import repro.devtools as devtools
    from repro.devtools import lint_paths

    assert lint_paths([Path(devtools.__file__).parent]) == []
