"""Tests of the replay-divergence auditor (``repro audit``).

The acceptance contract: a clean experiment audits deterministic (exit
0), and an experiment with injected nondeterminism — here a toy policy
drawing from a fresh OS-entropy Generator per run — is caught, with the
first divergent event located and described.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.devtools.audit import (
    AuditError,
    ReplayRecord,
    ShardedCheck,
    audit_experiment,
    cross_check_backends,
    cross_check_sharded,
    find_first_divergence,
    record_replay,
    resolve_experiment_ids,
)
from repro.experiments import ExperimentResult
from repro.experiments.base import _REGISTRY, experiment
from repro.sim import DistributedServer, Simulator, array_digest, simulate_fast
from repro.sim.engine import set_event_hook
from repro.sim.metrics import set_result_observer
from repro.workloads import Trace


# ---------------------------------------------------------------------------
# toy experiments: one deterministic, one deliberately nondeterministic
# ---------------------------------------------------------------------------


class _ToyPolicy:
    """State policy whose host choice may use a deliberately fresh RNG."""

    kind = "state"
    name = "toy"

    def __init__(self, deterministic: bool) -> None:
        self.deterministic = deterministic

    def reset(self, n_hosts, rng):
        self.n_hosts = n_hosts
        self.rng = rng

    def choose_host(self, job, state):
        if self.deterministic:
            return job.index % self.n_hosts
        # the injected fault: OS entropy, different every replay
        fresh = np.random.default_rng()
        return int(fresh.integers(0, self.n_hosts))


def _toy_trace(n_jobs: int) -> Trace:
    arrivals = np.linspace(0.0, float(n_jobs), n_jobs, endpoint=False)
    sizes = np.full(n_jobs, 3.0)
    return Trace(arrival_times=arrivals, service_times=sizes)


def _toy_driver(deterministic: bool):
    def driver(config) -> ExperimentResult:
        trace = _toy_trace(50)
        server = DistributedServer(2, _ToyPolicy(deterministic), rng=config.seed)
        result = server.run_trace(trace)
        return ExperimentResult(
            experiment_id="toy",
            title="toy",
            columns=["mean_wait"],
            rows=[{"mean_wait": float(np.mean(result.wait_times))}],
        )

    return driver


@pytest.fixture
def toy_experiments():
    """Register toy drivers for the test, unregister afterwards."""
    experiment("toy_det", "deterministic toy")(_toy_driver(True))
    experiment("toy_nondet", "nondeterministic toy")(_toy_driver(False))
    yield
    _REGISTRY.pop("toy_det", None)
    _REGISTRY.pop("toy_nondet", None)


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------


def test_array_digest_is_order_and_value_sensitive():
    a = np.array([1.0, 2.0, 3.0])
    assert array_digest(a) == array_digest(a.copy())
    assert array_digest(a) != array_digest(a[::-1])
    assert array_digest(a) != array_digest(a + 1e-15)


def test_array_digest_quantized_tolerates_noise_and_negative_zero():
    a = np.array([1.0, 0.0])
    b = np.array([1.0 + 1e-14, -0.0])
    assert array_digest(a) != array_digest(b)
    assert array_digest(a, precision=10) == array_digest(b, precision=10)


def test_array_digest_distinguishes_absent_from_empty():
    assert array_digest(None) != array_digest(np.empty(0))


def test_result_digest_bit_identical_across_replays():
    trace = _toy_trace(200)

    class _RR:
        kind = "static"
        name = "rr"

        def reset(self, n_hosts, rng):
            self.n_hosts = n_hosts

        def assign_batch(self, sizes, rng):
            return np.arange(sizes.size) % self.n_hosts

    a = simulate_fast(trace, _RR(), n_hosts=2, rng=1)
    b = simulate_fast(trace, _RR(), n_hosts=2, rng=1)
    assert a.digest() == b.digest()


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------


def test_record_replay_observes_engine_events_and_results():
    trace = _toy_trace(20)
    with record_replay() as rec:
        server = DistributedServer(2, _ToyPolicy(True), rng=0)
        server.run_trace(trace)
    # one arrival + one finish per job
    assert rec.n_events == 40
    assert rec.n_results == 1
    assert len(rec.event_digests) == len(rec.event_descriptions) == 40
    assert all(len(d) == 16 for d in rec.event_digests)
    assert "_handle_arrival" in rec.event_descriptions[0]
    assert "Job#0" in rec.event_descriptions[0]


def test_record_replay_restores_previous_hooks():
    sentinel_events = []
    sentinel_hook = sentinel_events.append
    previous = set_event_hook(sentinel_hook)
    try:
        with record_replay():
            pass
        from repro.sim import engine

        assert engine._EVENT_HOOK is sentinel_hook
    finally:
        set_event_hook(previous)
    set_result_observer(None)


def test_identical_replays_have_identical_records():
    def one_replay() -> ReplayRecord:
        with record_replay() as rec:
            server = DistributedServer(2, _ToyPolicy(True), rng=7)
            server.run_trace(_toy_trace(30))
        return rec

    a, b = one_replay(), one_replay()
    assert a.event_digests == b.event_digests
    assert a.result_digests == b.result_digests
    assert a.final_digest() == b.final_digest()
    assert find_first_divergence(a, b) is None


# ---------------------------------------------------------------------------
# divergence search
# ---------------------------------------------------------------------------


def _synthetic_record(tags: list[str]) -> ReplayRecord:
    rec = ReplayRecord()
    chain = b"\x00" * 16
    for tag in tags:
        chain = hashlib.blake2b(chain + tag.encode(), digest_size=16).digest()
        rec.event_digests.append(chain)
        rec.event_descriptions.append(tag)
    return rec


@pytest.mark.parametrize("split", [0, 1, 17, 98, 99])
def test_binary_search_finds_exact_first_divergence(split):
    base = [f"event-{i}" for i in range(100)]
    other = list(base)
    other[split] = "MUTANT"
    div = find_first_divergence(_synthetic_record(base), _synthetic_record(other))
    assert div is not None
    assert div.kind == "event"
    assert div.index == split
    assert div.detail_a == f"event-{split}"
    assert div.detail_b == "MUTANT"


def test_prefix_equal_streams_report_count_divergence():
    base = [f"event-{i}" for i in range(10)]
    div = find_first_divergence(
        _synthetic_record(base), _synthetic_record(base + ["extra"])
    )
    assert div is not None
    assert div.kind == "event-count"
    assert div.index == 10
    assert "extra" in div.detail_b


def test_result_digest_divergence_reported_when_streams_agree():
    a, b = ReplayRecord(), ReplayRecord()
    a.result_digests, a.result_names = ["d1", "d2"], ["run0", "run1"]
    b.result_digests, b.result_names = ["d1", "XX"], ["run0", "run1"]
    div = find_first_divergence(a, b)
    assert div is not None and div.kind == "result" and div.index == 1


# ---------------------------------------------------------------------------
# the audit end to end
# ---------------------------------------------------------------------------


def test_resolve_experiment_ids():
    assert resolve_experiment_ids("fig2") == ["fig2"]
    assert resolve_experiment_ids("fig2_3") == ["fig2", "fig3"]
    with pytest.raises(AuditError):
        resolve_experiment_ids("nope")


def test_audit_detects_injected_nondeterminism(toy_experiments):
    report = audit_experiment("toy_nondet", replays=2, cross_check=False)
    assert not report.ok
    assert report.divergence is not None
    assert report.divergence.kind == "event"
    # the first divergent event is identified and described from both sides
    assert report.divergence.detail_a != report.divergence.detail_b
    assert "t=" in report.divergence.detail_a
    rendered = report.render()
    assert "first divergent event" in rendered
    assert "audit FAILED" in rendered


def test_audit_passes_on_deterministic_experiment(toy_experiments):
    report = audit_experiment("toy_det", replays=3, cross_check=False)
    assert report.ok
    assert report.divergence is None
    assert report.n_events == 100  # 50 jobs × (arrival + finish)
    assert "audit PASSED" in report.render()


def test_audit_rejects_single_replay(toy_experiments):
    with pytest.raises(AuditError):
        audit_experiment("toy_det", replays=1, cross_check=False)


def test_cross_check_backends_agree_on_clean_tree():
    check = cross_check_backends(seed=123, n_jobs=500)
    assert check.ok
    assert check.max_abs_deviation < 1e-6


def test_cross_check_sharded_merges_bit_identically():
    check = cross_check_sharded(seed=42, n_jobs=800)
    assert check.ok, check.first_mismatch
    assert check.n_shards == 2
    assert "bit-identically" in check.render()


def test_sharded_check_failure_renders_the_mismatch():
    check = ShardedCheck(
        n_shards=2, n_jobs=100, first_mismatch="clock: sharded 1.0 != unsharded 2.0"
    )
    assert not check.ok
    assert "DISAGREE" in check.render()
    assert "clock" in check.render()


def test_audit_sharded_flag_attaches_the_check(toy_experiments):
    report = audit_experiment(
        "toy_det", replays=2, cross_check=False, sharded=True
    )
    assert report.sharded_check is not None
    assert report.sharded_check.ok
    assert report.ok
    assert "bit-identically" in report.render()


def test_audit_cli_sharded_flag(toy_experiments, capsys):
    from repro.cli import main

    rc = main(
        ["audit", "--experiment", "toy_det", "--no-cross-check", "--sharded"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "bit-identically" in out
    assert "audit PASSED" in out


def test_audit_cli_exit_codes(toy_experiments, capsys):
    from repro.cli import main

    assert main(["audit", "--experiment", "toy_det", "--no-cross-check"]) == 0
    out = capsys.readouterr().out
    assert "audit PASSED" in out
    assert main(["audit", "--experiment", "toy_nondet", "--no-cross-check"]) == 1
    assert main(["audit", "--experiment", "missing_experiment"]) == 2


def test_event_hook_default_is_uninstalled():
    # module-level sanity: no test may leak an installed hook
    from repro.sim import engine

    assert engine._EVENT_HOOK is None


def test_simulator_unaffected_by_hook_contents():
    fired: list[float] = []
    with record_replay() as rec:
        sim = Simulator()
        sim.schedule(1.0, fired.append, 1.0)
        sim.schedule(1.0, fired.append, 2.0)
        handle = sim.schedule(0.5, fired.append, 99.0)
        handle.cancel()
        sim.run()
    assert fired == [1.0, 2.0]
    # cancelled events are never observed by the audit hook either
    assert rec.n_events == 2
    assert all("99.0" not in d for d in rec.event_descriptions)
