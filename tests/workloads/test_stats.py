"""Tests for the workload characterisation statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import MMPP2Arrivals, PoissonArrivals
from repro.workloads.catalog import c90
from repro.workloads.stats import (
    autocorrelation,
    index_of_dispersion,
    scv,
    trace_characterisation,
)


class TestScv:
    def test_constant_is_zero(self):
        assert scv(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_exponential_is_one(self, rng):
        assert scv(rng.exponential(5.0, 200_000)) == pytest.approx(1.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            scv([1.0])


class TestAutocorrelation:
    def test_iid_near_zero(self, rng):
        x = rng.lognormal(0.0, 1.0, 50_000)
        assert abs(autocorrelation(x, 1)) < 0.03

    def test_sessions_positive(self):
        trace = c90().make_trace(
            load=0.5, n_hosts=2, n_jobs=20_000, rng=3, session_length=16.0
        )
        assert autocorrelation(trace.service_times, 1) > 0.3

    def test_alternating_negative(self):
        x = np.tile([1.0, 10.0], 500)
        assert autocorrelation(x, 1) < -0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], 5)
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0, 3.0], 0)


class TestIndexOfDispersion:
    def test_poisson_near_one(self, rng):
        arrivals = np.cumsum(PoissonArrivals(1.0).sample_interarrivals(100_000, rng))
        assert index_of_dispersion(arrivals) == pytest.approx(1.0, abs=0.15)

    def test_mmpp_much_larger(self, rng):
        m = MMPP2Arrivals.bursty(1.0, peak_to_mean=8.0, quiet_fraction=0.9)
        arrivals = np.cumsum(m.sample_interarrivals(100_000, rng))
        assert index_of_dispersion(arrivals) > 3.0

    def test_deterministic_near_zero(self):
        arrivals = np.arange(1000, dtype=float)
        assert index_of_dispersion(arrivals) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            index_of_dispersion(np.arange(5, dtype=float))
        with pytest.raises(ValueError):
            index_of_dispersion(np.arange(100, dtype=float), window=1000.0)


class TestTraceCharacterisation:
    def test_keys_and_values(self):
        trace = c90().make_trace(load=0.6, n_hosts=2, n_jobs=10_000, rng=4)
        ch = trace_characterisation(trace)
        assert ch["n_jobs"] == 10_000
        assert ch["interarrival_scv"] == pytest.approx(1.0, abs=0.2)  # Poisson
        assert ch["dispersion"] == pytest.approx(1.0, abs=0.3)
        assert abs(ch["service_acf_lag1"]) < 0.1  # i.i.d. sizes

    def test_detects_sessions(self):
        iid = c90().make_trace(load=0.6, n_hosts=2, n_jobs=10_000, rng=4)
        sess = c90().make_trace(
            load=0.6, n_hosts=2, n_jobs=10_000, rng=4, session_length=16.0
        )
        a = trace_characterisation(iid)["service_acf_lag1"]
        b = trace_characterisation(sess)["service_acf_lag1"]
        assert b > a + 0.2
