"""Calibration tests: the catalog must match the paper's Table 1 facts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.catalog import (
    CTC_RUNTIME_CAP,
    WORKLOAD_NAMES,
    c90,
    ctc,
    get_workload,
    j90,
)
from repro.workloads.synthetic import half_load_tail_fraction_dist


class TestCalibrationTargets:
    def test_c90_moments(self):
        d = c90().service_dist
        assert d.mean == pytest.approx(4562.6, rel=1e-9)
        assert d.scv == pytest.approx(43.0, rel=1e-9)

    def test_j90_moments(self):
        d = j90().service_dist
        assert d.mean == pytest.approx(6538.1, rel=1e-9)
        assert d.scv == pytest.approx(39.0, rel=1e-9)

    def test_ctc_moments_and_cap(self):
        d = ctc().service_dist
        assert d.mean == pytest.approx(4520.0, rel=1e-6)
        assert d.scv == pytest.approx(3.0, rel=1e-6)
        assert d.upper <= CTC_RUNTIME_CAP

    def test_job_counts(self):
        assert c90().n_jobs == 54_962
        assert j90().n_jobs == 10_240
        assert ctc().n_jobs == 8_567


class TestStructuralFacts:
    def test_c90_implied_extremes_match_table1(self):
        """At 55k samples the lognormal's min/max match the paper's Table 1."""
        d = c90().service_dist
        n = c90().n_jobs
        # Expected extreme order statistics: quantiles 1/(n+1), n/(n+1).
        assert d.ppf(1.0 / (n + 1)) < 5.0  # min of a few seconds
        assert d.ppf(n / (n + 1.0)) == pytest.approx(2.2e6, rel=0.25)

    def test_c90_half_load_tail(self):
        """A tiny fraction of the largest jobs carries half the load
        (paper: 1.3 % for the C90)."""
        frac = half_load_tail_fraction_dist(c90().service_dist)
        assert 0.005 < frac < 0.05

    def test_c90_sampled_scv_approaches_target(self):
        trace = c90().make_trace(load=0.7, n_hosts=2, n_jobs=300_000, rng=0)
        stats = trace.stats()
        assert stats.mean_service == pytest.approx(4562.6, rel=0.05)
        # SCV of a heavy-tailed sample converges slowly; just demand the
        # right order of magnitude.
        assert 15.0 < stats.scv < 120.0

    def test_ctc_sample_respects_cap(self):
        trace = ctc().make_trace(load=0.7, n_hosts=2, n_jobs=20_000, rng=0)
        assert float(np.max(trace.service_times)) <= CTC_RUNTIME_CAP

    def test_ctc_much_lower_variability_than_c90(self):
        assert ctc().service_dist.scv < c90().service_dist.scv / 5.0


class TestLookup:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_get_workload(self, name):
        w = get_workload(name)
        assert w.name == name

    def test_case_insensitive(self):
        assert get_workload("  C90 ").name == "c90"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("paragon")

    def test_cached_instances(self):
        assert get_workload("c90") is get_workload("c90")
