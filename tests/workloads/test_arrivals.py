"""Tests for the arrival-process library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.arrivals import (
    MMPP2Arrivals,
    PoissonArrivals,
    RenewalArrivals,
    TraceArrivals,
    load_for_rate,
    rate_for_load,
)
from repro.workloads.distributions import Exponential


class TestRateForLoad:
    def test_roundtrip(self):
        rate = rate_for_load(0.7, 4, 100.0)
        assert load_for_rate(rate, 4, 100.0) == pytest.approx(0.7)

    def test_definition(self):
        # rho = lambda * E[X] / h
        assert rate_for_load(0.5, 2, 10.0) == pytest.approx(0.1)

    @pytest.mark.parametrize("bad", [0.0, -0.5])
    def test_rejects_nonpositive_load(self, bad):
        with pytest.raises(ValueError):
            rate_for_load(bad, 2, 10.0)

    def test_rejects_bad_hosts_and_service(self):
        with pytest.raises(ValueError):
            rate_for_load(0.5, 0, 10.0)
        with pytest.raises(ValueError):
            rate_for_load(0.5, 2, 0.0)


class TestPoisson:
    def test_mean_rate(self, rng):
        p = PoissonArrivals(0.25)
        gaps = p.sample_interarrivals(100_000, rng)
        assert np.mean(gaps) == pytest.approx(4.0, rel=0.02)

    def test_scv_is_one(self, rng):
        gaps = PoissonArrivals(1.0).sample_interarrivals(100_000, rng)
        assert np.var(gaps) / np.mean(gaps) ** 2 == pytest.approx(1.0, rel=0.05)

    def test_arrival_times_monotone(self, rng):
        t = PoissonArrivals(1.0).sample_arrival_times(1000, rng)
        assert np.all(np.diff(t) >= 0)

    def test_with_rate(self):
        assert PoissonArrivals(1.0).with_rate(3.0).rate == pytest.approx(3.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestRenewal:
    def test_exponential_renewal_is_poisson(self, rng):
        r = RenewalArrivals(Exponential(2.0))
        assert r.rate == pytest.approx(0.5)
        assert r.interarrival_scv == pytest.approx(1.0)

    def test_bursty_hits_target_scv(self, rng):
        r = RenewalArrivals.bursty(rate=0.1, scv=20.0)
        assert r.rate == pytest.approx(0.1, rel=1e-9)
        assert r.interarrival_scv == pytest.approx(20.0, rel=1e-9)
        gaps = r.sample_interarrivals(400_000, rng)
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.05)

    def test_with_rate_preserves_shape(self):
        r = RenewalArrivals.bursty(rate=1.0, scv=9.0)
        r2 = r.with_rate(0.01)
        assert r2.rate == pytest.approx(0.01, rel=1e-9)
        assert r2.interarrival_scv == pytest.approx(9.0, rel=1e-6)

    def test_with_rate_generic_distribution(self, rng):
        r = RenewalArrivals(Exponential(1.0)).with_rate(4.0)
        assert r.rate == pytest.approx(4.0)
        gaps = r.sample_interarrivals(50_000, rng)
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.05)


class TestMMPP:
    def test_mean_rate(self, rng):
        m = MMPP2Arrivals([0.1, 10.0], [1.0, 1.0])
        # equal sojourns: mean rate is the average of the two.
        assert m.rate == pytest.approx(5.05)
        gaps = m.sample_interarrivals(200_000, rng)
        assert 1.0 / np.mean(gaps) == pytest.approx(m.rate, rel=0.1)

    def test_interarrivals_positive(self, rng):
        m = MMPP2Arrivals.bursty(rate=1.0, peak_to_mean=5.0, quiet_fraction=0.8)
        gaps = m.sample_interarrivals(10_000, rng)
        assert np.all(gaps >= 0)
        assert gaps.size == 10_000

    def test_bursty_constructor_rate(self, rng):
        m = MMPP2Arrivals.bursty(rate=0.2, peak_to_mean=8.0, quiet_fraction=0.9)
        assert m.rate == pytest.approx(0.2, rel=1e-9)
        gaps = m.sample_interarrivals(300_000, rng)
        assert 1.0 / np.mean(gaps) == pytest.approx(0.2, rel=0.1)

    def test_burstiness_above_one(self):
        m = MMPP2Arrivals.bursty(rate=1.0, peak_to_mean=5.0, quiet_fraction=0.9)
        assert m.burstiness == pytest.approx(5.0, rel=1e-9)

    def test_mmpp_scv_exceeds_poisson(self, rng):
        m = MMPP2Arrivals.bursty(rate=1.0, peak_to_mean=9.0, quiet_fraction=0.95)
        gaps = m.sample_interarrivals(200_000, rng)
        scv = np.var(gaps) / np.mean(gaps) ** 2
        assert scv > 2.0

    def test_with_rate(self):
        m = MMPP2Arrivals.bursty(rate=1.0, peak_to_mean=5.0, quiet_fraction=0.9)
        assert m.with_rate(0.5).rate == pytest.approx(0.5, rel=1e-9)

    def test_peak_to_mean_validation(self):
        with pytest.raises(ValueError):
            MMPP2Arrivals.bursty(rate=1.0, peak_to_mean=100.0, quiet_fraction=0.5)


class TestTraceArrivals:
    def test_replay_statistics(self, rng):
        times = np.cumsum(rng.exponential(2.0, size=5000))
        t = TraceArrivals(times)
        assert t.rate == pytest.approx(0.5, rel=0.1)
        gaps = t.sample_interarrivals(20_000, rng)
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.1)

    def test_scaling_preserves_scv(self, rng):
        times = np.cumsum(rng.lognormal(0.0, 1.5, size=5000))
        t = TraceArrivals(times)
        t2 = t.with_rate(t.rate * 10.0)
        assert t2.interarrival_scv == pytest.approx(t.interarrival_scv, rel=1e-9)
        assert t2.rate == pytest.approx(t.rate * 10.0, rel=1e-9)

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            TraceArrivals([0.0, 2.0, 1.0])

    def test_rejects_too_few(self):
        with pytest.raises(ValueError):
            TraceArrivals([1.0])


@given(st.floats(0.05, 0.95), st.integers(1, 64), st.floats(1.0, 1e5))
@settings(max_examples=50, deadline=None)
def test_rate_for_load_properties(load, hosts, mean):
    rate = rate_for_load(load, hosts, mean)
    assert rate > 0
    assert load_for_rate(rate, hosts, mean) == pytest.approx(load, rel=1e-12)


@given(st.floats(1.5, 50.0), st.floats(0.001, 10.0))
@settings(max_examples=30, deadline=None)
def test_bursty_renewal_fit(scv, rate):
    r = RenewalArrivals.bursty(rate=rate, scv=scv)
    assert r.rate == pytest.approx(rate, rel=1e-9)
    assert r.interarrival_scv == pytest.approx(scv, rel=1e-9)
