"""Tests for synthetic workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import RenewalArrivals
from repro.workloads.distributions import BoundedPareto, Lognormal
from repro.workloads.synthetic import (
    SyntheticWorkload,
    half_load_tail_fraction,
    half_load_tail_fraction_dist,
)


@pytest.fixture
def workload() -> SyntheticWorkload:
    return SyntheticWorkload(
        name="test", service_dist=Lognormal.fit(100.0, 9.0), n_jobs=5000
    )


class TestHalfLoadTailFraction:
    def test_uniform_sizes(self):
        # Equal sizes: half the load is exactly half the jobs.
        assert half_load_tail_fraction(np.full(100, 3.0)) == pytest.approx(0.5)

    def test_one_giant(self):
        # One job carries > half the total load by itself.
        sizes = np.array([1.0] * 99 + [1000.0])
        assert half_load_tail_fraction(sizes) == pytest.approx(0.01)

    def test_empirical_matches_analytic(self, rng):
        d = BoundedPareto(1.0, 1e5, 1.1)
        x = d.sample(400_000, rng)
        emp = half_load_tail_fraction(x)
        ana = half_load_tail_fraction_dist(d)
        assert emp == pytest.approx(ana, rel=0.35)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            half_load_tail_fraction(np.array([]))

    def test_heavier_tail_smaller_fraction(self):
        light = half_load_tail_fraction_dist(Lognormal.fit(100.0, 2.0))
        heavy = half_load_tail_fraction_dist(Lognormal.fit(100.0, 50.0))
        assert heavy < light


class TestMakeTrace:
    def test_reproducible(self, workload):
        t1 = workload.make_trace(load=0.5, n_hosts=2, rng=42)
        t2 = workload.make_trace(load=0.5, n_hosts=2, rng=42)
        np.testing.assert_array_equal(t1.service_times, t2.service_times)
        np.testing.assert_array_equal(t1.arrival_times, t2.arrival_times)

    def test_different_seeds_differ(self, workload):
        t1 = workload.make_trace(load=0.5, n_hosts=2, rng=1)
        t2 = workload.make_trace(load=0.5, n_hosts=2, rng=2)
        assert not np.array_equal(t1.service_times, t2.service_times)

    def test_offered_load_close_to_target(self, workload):
        t = workload.make_trace(load=0.6, n_hosts=2, n_jobs=60_000, rng=0)
        assert t.offered_load(2) == pytest.approx(0.6, rel=0.05)

    def test_job_count_override(self, workload):
        t = workload.make_trace(load=0.5, n_hosts=2, n_jobs=123, rng=0)
        assert t.n_jobs == 123

    def test_default_job_count(self, workload):
        assert workload.make_trace(load=0.5, n_hosts=2, rng=0).n_jobs == 5000

    def test_custom_arrivals_rescaled(self, workload):
        bursty = RenewalArrivals.bursty(rate=123.0, scv=16.0)
        t = workload.make_trace(
            load=0.5, n_hosts=2, n_jobs=40_000, rng=0, arrivals=bursty
        )
        # The process must be rescaled to the load-implied rate, not 123/s.
        assert t.offered_load(2) == pytest.approx(0.5, rel=0.15)

    def test_rejects_bad_job_count(self, workload):
        with pytest.raises(ValueError):
            workload.make_trace(load=0.5, n_hosts=2, n_jobs=0, rng=0)

    def test_with_jobs(self, workload):
        assert workload.with_jobs(77).n_jobs == 77
        assert workload.n_jobs == 5000  # frozen original untouched

    def test_table1_row_keys(self, workload):
        row = workload.table1_row()
        assert row["mean_service"] == pytest.approx(100.0)
        assert 0.0 < row["half_load_tail_fraction"] < 0.5


class TestArrivalProcessHelper:
    def test_rate_matches_load(self, workload):
        proc = workload.arrival_process(load=0.6, n_hosts=4)
        assert proc.rate == pytest.approx(0.6 * 4 / workload.service_dist.mean)

    def test_sessionized_marginal_close(self, rng):
        w = SyntheticWorkload(
            name="t", service_dist=Lognormal.fit(100.0, 9.0), n_jobs=40_000
        )
        iid = w.make_trace(load=0.5, n_hosts=2, rng=1)
        sess = w.make_trace(load=0.5, n_hosts=2, rng=1, session_length=8.0)
        # Sessions reorder and jitter sizes but keep the marginal mean.
        assert np.mean(sess.service_times) == pytest.approx(
            np.mean(iid.service_times), rel=0.25
        )

    def test_session_length_validation(self, workload):
        with pytest.raises(ValueError):
            workload.make_trace(load=0.5, n_hosts=2, rng=0, session_length=0.5)
