"""Tests for Trace manipulation and SWF I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.traces import SWF_FIELDS, Trace, read_swf, write_swf


@pytest.fixture
def trace(rng) -> Trace:
    arrivals = np.cumsum(rng.exponential(10.0, size=400))
    sizes = rng.lognormal(2.0, 1.0, size=400)
    procs = rng.choice([1, 4, 8], size=400)
    return Trace(arrivals, sizes, procs, name="t")


class TestTraceBasics:
    def test_properties(self, trace):
        assert trace.n_jobs == 400
        assert trace.duration > 0
        assert trace.interarrivals.size == 399
        assert trace.mean_service == pytest.approx(np.mean(trace.service_times))

    def test_stats_row(self, trace):
        stats = trace.stats()
        assert stats.n_jobs == 400
        assert stats.min_service <= stats.mean_service <= stats.max_service
        row = stats.as_row()
        assert set(row) == {
            "n_jobs", "duration", "mean_service", "min_service",
            "max_service", "scv",
        }

    def test_service_distribution(self, trace):
        d = trace.service_distribution()
        assert d.mean == pytest.approx(trace.mean_service)

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], [1.0])  # length mismatch
        with pytest.raises(ValueError):
            Trace([1.0, 0.5], [1.0, 1.0])  # decreasing arrivals
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], [1.0, 0.0])  # non-positive service
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], [1.0, 2.0], processors=[1])  # procs mismatch


class TestOfferedLoadAndScaling:
    def test_offered_load_definition(self):
        # 11 jobs over 100s => rate 0.1; mean service 5 => rho = 0.25 on 2 hosts
        arrivals = np.linspace(0.0, 100.0, 11)
        t = Trace(arrivals, np.full(11, 5.0))
        assert t.offered_load(2) == pytest.approx(0.25)

    def test_scaled_to_load(self, trace):
        scaled = trace.scaled_to_load(0.6, 2)
        assert scaled.offered_load(2) == pytest.approx(0.6, rel=1e-9)
        # Service times and burstiness shape are untouched.
        np.testing.assert_array_equal(scaled.service_times, trace.service_times)
        orig_gaps = trace.interarrivals
        new_gaps = scaled.interarrivals
        ratio = new_gaps[orig_gaps > 0] / orig_gaps[orig_gaps > 0]
        assert np.allclose(ratio, ratio[0])

    def test_scaling_rejects_bad_load(self, trace):
        with pytest.raises(ValueError):
            trace.scaled_to_load(0.0, 2)


class TestSplitFilterHead:
    def test_split_halves(self, trace):
        a, b = trace.split(0.5)
        assert a.n_jobs + b.n_jobs == trace.n_jobs
        assert abs(a.n_jobs - b.n_jobs) <= 1
        np.testing.assert_array_equal(
            np.concatenate([a.service_times, b.service_times]), trace.service_times
        )

    def test_split_fraction(self, trace):
        a, b = trace.split(0.25)
        assert a.n_jobs == 100

    def test_split_validation(self, trace):
        with pytest.raises(ValueError):
            trace.split(0.0)
        with pytest.raises(ValueError):
            trace.split(1.0)

    def test_filter_processors(self, trace):
        t8 = trace.filter_processors(8)
        assert np.all(t8.processors == 8)
        assert t8.n_jobs == int(np.sum(trace.processors == 8))

    def test_filter_missing_count(self, trace):
        with pytest.raises(ValueError):
            trace.filter_processors(1024)

    def test_head(self, trace):
        h = trace.head(10)
        assert h.n_jobs == 10
        assert trace.head(10**9).n_jobs == trace.n_jobs


class TestSWF:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(trace, path)
        back = read_swf(path)
        assert back.n_jobs == trace.n_jobs
        np.testing.assert_allclose(back.service_times, trace.service_times, rtol=1e-5)
        np.testing.assert_allclose(
            back.arrival_times, trace.arrival_times, rtol=1e-5, atol=1e-4
        )
        np.testing.assert_array_equal(back.processors, trace.processors)

    def test_reader_skips_comments_and_bad_jobs(self, tmp_path):
        path = tmp_path / "log.swf"
        path.write_text(
            "; Comment: header\n"
            "; UnixStartTime: 0\n"
            "1 10.0 5.0 100.0 8 -1 -1 8 -1 -1 1 1 1 -1 1 -1 -1 -1\n"
            "2 20.0 0.0 -1 8 -1 -1 8 -1 -1 0 1 1 -1 1 -1 -1 -1\n"  # no runtime
            "3 30.0 1.0 50.0 4 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"
        )
        t = read_swf(path)
        assert t.n_jobs == 2
        assert t.service_times[0] == 100.0
        assert t.processors[0] == 8
        assert t.processors[1] == 4  # fell back to allocated

    def test_reader_sorts_by_submit(self, tmp_path):
        path = tmp_path / "log.swf"
        path.write_text(
            "1 30.0 0 10.0 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"
            "2 10.0 0 20.0 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"
        )
        t = read_swf(path)
        assert list(t.arrival_times) == [10.0, 30.0]
        assert list(t.service_times) == [20.0, 10.0]

    def test_reader_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.swf"
        path.write_text("; nothing here\n")
        with pytest.raises(ValueError):
            read_swf(path)

    def test_reader_rejects_short_lines(self, tmp_path):
        path = tmp_path / "short.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            read_swf(path)

    def test_swf_field_count(self):
        assert len(SWF_FIELDS) == 18

    def test_trace_convenience_methods(self, trace, tmp_path):
        path = tmp_path / "x.swf"
        trace.to_swf(path)
        back = Trace.from_swf(path, name="restored")
        assert back.name == "restored"
        assert back.n_jobs == trace.n_jobs


class TestLenientSWF:
    """read_swf(on_error="skip") tolerates malformed archive lines."""

    GOOD = "1 0.0 0 10.0 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"
    SHORT = "2 3.0 0\n"
    GARBAGE = "3 what 0 ten 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"

    def test_skip_drops_malformed_lines_with_warning(self, tmp_path):
        path = tmp_path / "messy.swf"
        path.write_text(self.GOOD + self.SHORT + self.GARBAGE + self.GOOD)
        with pytest.warns(RuntimeWarning, match="skipped 2 malformed"):
            t = read_swf(path, on_error="skip")
        assert t.n_jobs == 2
        assert list(t.service_times) == [10.0, 10.0]

    def test_warning_names_line_numbers(self, tmp_path):
        path = tmp_path / "messy.swf"
        path.write_text(self.GOOD + self.SHORT + self.GOOD)
        with pytest.warns(RuntimeWarning, match=r"lines 2"):
            read_swf(path, on_error="skip")

    def test_raise_mode_names_offending_line(self, tmp_path):
        path = tmp_path / "messy.swf"
        path.write_text(self.GOOD + self.GARBAGE)
        with pytest.raises(ValueError, match="messy.swf:2"):
            read_swf(path)

    def test_skip_still_rejects_fully_unusable_file(self, tmp_path):
        path = tmp_path / "hopeless.swf"
        path.write_text(self.SHORT + self.GARBAGE)
        with pytest.warns(RuntimeWarning), pytest.raises(ValueError, match="no usable jobs"):
            read_swf(path, on_error="skip")

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "x.swf"
        path.write_text(self.GOOD)
        with pytest.raises(ValueError, match="on_error"):
            read_swf(path, on_error="ignore")

    def test_from_swf_passes_mode_through(self, tmp_path):
        path = tmp_path / "messy.swf"
        path.write_text(self.GOOD + self.SHORT)
        with pytest.warns(RuntimeWarning):
            t = Trace.from_swf(path, on_error="skip")
        assert t.n_jobs == 1
