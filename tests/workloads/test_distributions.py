"""Unit and property tests for the service-time distribution library.

The moment machinery here underpins every analytic result in the repo
(Pollaczek–Khinchine needs E[X^2]/E[X^3], slowdowns need E[1/X]/E[1/X^2],
SITA needs partial moments), so these tests are deliberately exhaustive:
closed-form moments vs numerical integration, sampling vs analytic
moments, partial-moment additivity, CDF/PPF roundtrips, and conditional
(truncated) views.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


from repro.workloads.distributions import (
    BoundedPareto,
    ConditionalDistribution,
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Hyperexponential,
    Lognormal,
    Pareto,
    Weibull,
)

# A representative instance of every family, with the moment orders that
# are finite for it.
FAMILIES = [
    pytest.param(BoundedPareto(1.0, 1e5, 1.1), (-2, -1, 0, 1, 2, 3), id="bounded-pareto"),
    pytest.param(BoundedPareto(2.0, 5e4, 0.5), (-2, -1, 0, 1, 2, 3), id="bp-alpha<1"),
    pytest.param(BoundedPareto(1.0, 1e4, 2.0), (-2, -1, 0, 1, 2, 3), id="bp-alpha=2"),
    pytest.param(Pareto(1.0, 2.5), (0, 1, 2), id="pareto"),
    pytest.param(Exponential(10.0), (0, 1, 2, 3), id="exponential"),
    pytest.param(
        Hyperexponential([0.6, 0.4], [5.0, 50.0]), (0, 1, 2, 3), id="hyperexp"
    ),
    pytest.param(Erlang(3, 12.0), (-2, -1, 0, 1, 2, 3), id="erlang3"),
    pytest.param(Lognormal(2.0, 1.5), (-2, -1, 0, 1, 2, 3), id="lognormal"),
    pytest.param(Weibull(10.0, 0.7), (0, 1, 2, 3), id="weibull-heavy"),
    pytest.param(Weibull(10.0, 3.0), (-2, -1, 0, 1, 2, 3), id="weibull-light"),
    pytest.param(Deterministic(7.0), (-2, -1, 0, 1, 2, 3), id="deterministic"),
    pytest.param(
        Empirical([1.0, 2.0, 2.0, 5.0, 100.0]), (-2, -1, 0, 1, 2, 3), id="empirical"
    ),
]


def _numeric_moment(dist, j: float) -> float:
    """Brute-force E[X^j] as a Stieltjes sum over a fine log-spaced grid.

    ``E[X^j] = Σ x_mid^j · (F(b) − F(a))`` with geometric midpoints — robust
    even for heavy tails and near-critical moment orders where adaptive
    quadrature gives up.
    """
    lo = max(dist.lower, dist.ppf(1e-13))
    hi = dist.upper if math.isfinite(dist.upper) else dist.ppf(1.0 - 1e-13)
    edges = np.exp(np.linspace(math.log(lo) - 1e-12, math.log(hi) + 1e-12, 40_001))
    cdf = np.array([dist.cdf(x) for x in edges])
    mids = np.sqrt(edges[:-1] * edges[1:])
    return float(np.sum(mids**j * np.diff(cdf)))


class TestMomentsAgainstQuadrature:
    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_moment_matches_quadrature(self, dist, orders):
        for j in orders:
            if isinstance(dist, (Pareto, Exponential, Hyperexponential, Weibull)) and j > 1:
                tol = 0.05  # unbounded heavy tails strain the quadrature
            else:
                tol = 5e-3
            analytic = dist.moment(j)
            numeric = _numeric_moment(dist, j)
            assert analytic == pytest.approx(numeric, rel=tol), f"j={j}"

    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_zeroth_moment_is_one(self, dist, orders):
        assert dist.moment(0) == pytest.approx(1.0, rel=1e-9)


class TestMomentsAgainstSampling:
    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_sample_mean(self, dist, orders):
        x = dist.sample(200_000, np.random.default_rng(7))
        assert np.all(x > 0)
        assert np.mean(x) == pytest.approx(dist.mean, rel=0.1)

    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_sample_within_support(self, dist, orders):
        x = dist.sample(10_000, np.random.default_rng(8))
        assert np.min(x) >= dist.lower - 1e-9
        assert np.max(x) <= dist.upper + 1e-9

    def test_sample_inverse_moment(self):
        d = BoundedPareto(1.0, 1e4, 1.2)
        x = d.sample(400_000, np.random.default_rng(9))
        assert np.mean(1.0 / x) == pytest.approx(d.inverse_moment, rel=0.02)


class TestDerivedMoments:
    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_variance_consistency(self, dist, orders):
        if 2 in orders:
            assert dist.variance == pytest.approx(
                dist.moment(2) - dist.moment(1) ** 2, rel=1e-9, abs=1e-12
            )

    def test_exponential_scv_is_one(self):
        assert Exponential(3.0).scv == pytest.approx(1.0)

    def test_erlang_scv(self):
        assert Erlang(4, 10.0).scv == pytest.approx(0.25)

    def test_deterministic_scv_is_zero(self):
        assert Deterministic(5.0).scv == pytest.approx(0.0, abs=1e-12)

    def test_hyperexponential_scv_above_one(self):
        assert Hyperexponential([0.5, 0.5], [1.0, 100.0]).scv > 1.0


class TestPartialMoments:
    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_full_range_equals_moment(self, dist, orders):
        for j in orders:
            full = dist.partial_moment(j, 0.0, math.inf if math.isinf(dist.upper) else dist.upper)
            assert full == pytest.approx(dist.moment(j), rel=1e-9)

    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_additivity(self, dist, orders):
        mid = dist.ppf(0.6)
        hi = dist.upper if not math.isinf(dist.upper) else dist.ppf(1 - 1e-13)
        for j in orders:
            left = dist.partial_moment(j, 0.0, mid)
            right = dist.partial_moment(j, mid, hi)
            total = dist.partial_moment(j, 0.0, hi)
            assert left + right == pytest.approx(total, rel=1e-8)

    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_empty_interval_is_zero(self, dist, orders):
        assert dist.partial_moment(1, 5.0, 5.0) == 0.0
        assert dist.partial_moment(1, 7.0, 3.0) == 0.0

    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_prob_interval_matches_cdf(self, dist, orders):
        a = dist.ppf(0.25)
        b = dist.ppf(0.8)
        assert dist.prob_interval(a, b) == pytest.approx(
            dist.cdf(b) - dist.cdf(a), rel=1e-6, abs=1e-9
        )

    def test_load_fraction_monotone(self):
        d = BoundedPareto(1.0, 1e5, 1.1)
        cs = np.logspace(0.1, 5.0, 20)
        fracs = [d.load_fraction(0.0, c) for c in cs]
        assert all(b >= a for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] == pytest.approx(1.0, rel=1e-9)


class TestCdfPpf:
    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_roundtrip(self, dist, orders):
        if isinstance(dist, (Deterministic, Empirical)):
            pytest.skip("atomic distributions don't invert pointwise")
        for q in (0.01, 0.25, 0.5, 0.9, 0.999):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, rel=1e-6, abs=1e-9)

    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_cdf_monotone_and_bounded(self, dist, orders):
        grid = [dist.ppf(q) for q in np.linspace(0.001, 0.999, 25)]
        vals = [dist.cdf(x) for x in grid]
        assert all(0.0 <= v <= 1.0 for v in vals)
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))

    @pytest.mark.parametrize("dist,orders", FAMILIES)
    def test_cdf_below_support_is_zero(self, dist, orders):
        assert dist.cdf(dist.lower * 0.5 if dist.lower > 0 else -1.0) == 0.0


class TestConditional:
    def test_conditional_moments_match_resampling(self):
        d = BoundedPareto(1.0, 1e5, 1.1)
        lo, hi = 10.0, 1000.0
        cond = d.conditional(lo, hi)
        x = d.sample(500_000, np.random.default_rng(3))
        sel = x[(x > lo) & (x <= hi)]
        assert cond.mean == pytest.approx(np.mean(sel), rel=0.02)
        assert cond.moment(2) == pytest.approx(np.mean(sel**2), rel=0.05)

    def test_conditional_support(self):
        d = Lognormal(1.0, 1.0)
        cond = d.conditional(2.0, 8.0)
        x = cond.sample(5_000, np.random.default_rng(4))
        assert np.all(x > 2.0)
        assert np.all(x <= 8.0)

    def test_conditional_mass_sums(self):
        d = Exponential(5.0)
        c = d.ppf(0.5)
        below = d.conditional(0.0, c)
        above = d.conditional(c, math.inf)
        total = (
            d.prob_interval(0, c) * below.mean
            + d.prob_interval(c, math.inf) * above.mean
        )
        assert total == pytest.approx(d.mean, rel=1e-9)

    def test_zero_mass_interval_raises(self):
        d = BoundedPareto(1.0, 100.0, 1.0)
        with pytest.raises(ValueError):
            ConditionalDistribution(d, 200.0, 300.0)

    def test_conditional_cdf_endpoints(self):
        d = Lognormal(0.0, 1.0)
        cond = d.conditional(1.0, 5.0)
        assert cond.cdf(1.0) == 0.0
        assert cond.cdf(5.0) == 1.0
        assert 0.0 < cond.cdf(2.0) < 1.0

    def test_rejection_sampling_matches_ppf_path(self):
        # Interval holding most of the mass uses the rejection fast path.
        d = Lognormal(0.0, 1.0)
        cond = d.conditional(0.0, d.ppf(0.95))
        x = cond.sample(100_000, np.random.default_rng(5))
        assert np.mean(x) == pytest.approx(cond.mean, rel=0.02)


class TestValidation:
    def test_bounded_pareto_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BoundedPareto(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            BoundedPareto(10.0, 5.0, 1.0)
        with pytest.raises(ValueError):
            BoundedPareto(1.0, 10.0, -1.0)

    def test_pareto_moment_divergence(self):
        d = Pareto(1.0, 1.5)
        with pytest.raises(ValueError):
            d.moment(2)

    def test_exponential_inverse_moment_divergence(self):
        with pytest.raises(ValueError):
            Exponential(1.0).moment(-1)

    def test_hyperexp_probs_must_sum(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.4], [1.0, 2.0])

    def test_empirical_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Empirical([1.0, 0.0])

    def test_erlang_rejects_fractional_n(self):
        with pytest.raises(ValueError):
            Erlang(1.5, 1.0)


class TestFits:
    @pytest.mark.parametrize(
        "mean,scv,upper",
        [(4562.6, 43.0, 2.2e6), (100.0, 10.0, 1e5), (50.0, 2.0, 5e3)],
    )
    def test_bounded_pareto_fit(self, mean, scv, upper):
        d = BoundedPareto.fit(mean, scv, upper)
        assert d.mean == pytest.approx(mean, rel=1e-6)
        assert d.scv == pytest.approx(scv, rel=1e-6)
        assert d.p == upper

    @pytest.mark.parametrize(
        "lower,mean,scv", [(1.0, 4562.6, 43.0), (30.0, 4520.0, 3.0), (1.0, 100.0, 5.0)]
    )
    def test_bounded_pareto_fit_min(self, lower, mean, scv):
        d = BoundedPareto.fit_min(lower, mean, scv)
        assert d.k == lower
        assert d.mean == pytest.approx(mean, rel=1e-6)
        assert d.scv == pytest.approx(scv, rel=1e-6)

    def test_bounded_pareto_fit_infeasible(self):
        # SCV beyond the family's reach for this upper/mean ratio.
        with pytest.raises(ValueError, match="reachable SCV"):
            BoundedPareto.fit(mean=4520.0, scv=4.5, upper=43_200.0)

    def test_lognormal_fit(self):
        d = Lognormal.fit(1000.0, 25.0)
        assert d.mean == pytest.approx(1000.0, rel=1e-9)
        assert d.scv == pytest.approx(25.0, rel=1e-9)

    def test_lognormal_fit_truncated(self):
        d = Lognormal.fit_truncated(4520.0, 3.0, 43_200.0)
        assert d.mean == pytest.approx(4520.0, rel=1e-6)
        assert d.scv == pytest.approx(3.0, rel=1e-6)
        assert d.upper <= 43_200.0

    def test_h2_balanced_fit(self):
        d = Hyperexponential.fit_balanced(100.0, 16.0)
        assert d.mean == pytest.approx(100.0, rel=1e-9)
        assert d.scv == pytest.approx(16.0, rel=1e-9)

    def test_h2_fit_rejects_low_scv(self):
        with pytest.raises(ValueError):
            Hyperexponential.fit_balanced(1.0, 0.5)


class TestEmpirical:
    def test_moments_are_sample_moments(self, rng):
        vals = rng.lognormal(1.0, 1.0, size=500)
        e = Empirical(vals)
        assert e.mean == pytest.approx(np.mean(vals))
        assert e.moment(2) == pytest.approx(np.mean(vals**2))
        assert e.inverse_moment == pytest.approx(np.mean(1.0 / vals))

    def test_partial_moment_counts(self):
        e = Empirical([1.0, 2.0, 3.0, 4.0])
        assert e.prob_interval(1.5, 3.5) == pytest.approx(0.5)
        assert e.partial_moment(1, 1.5, 3.5) == pytest.approx((2 + 3) / 4)

    def test_conditional_slices(self):
        e = Empirical([1.0, 2.0, 3.0, 4.0, 5.0])
        c = e.conditional(1.5, 4.5)
        assert c.n == 3
        assert c.mean == pytest.approx(3.0)

    def test_ppf_is_order_statistic(self):
        e = Empirical([10.0, 20.0, 30.0, 40.0])
        assert e.ppf(0.0) == 10.0
        assert e.ppf(0.25) == 10.0
        assert e.ppf(0.26) == 20.0
        assert e.ppf(1.0) == 40.0


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------

bp_params = st.tuples(
    st.floats(0.1, 100.0),
    st.floats(2.0, 1e6),
    st.floats(0.2, 5.0),
).filter(lambda t: t[1] > t[0] * 2)


@given(bp_params, st.floats(-2.0, 3.0))
@settings(max_examples=60, deadline=None)
def test_bp_partial_moment_never_exceeds_moment(params, j):
    k, p_mult, alpha = params
    d = BoundedPareto(k, k * p_mult if k * p_mult > k else k * 2, alpha)
    mid = d.ppf(0.7)
    partial = d.partial_moment(j, d.k, mid)
    assert partial <= d.moment(j) * (1 + 1e-9)
    assert partial >= 0.0


@given(bp_params, st.floats(0.001, 0.999))
@settings(max_examples=60, deadline=None)
def test_bp_cdf_ppf_roundtrip(params, q):
    k, p_mult, alpha = params
    d = BoundedPareto(k, k * p_mult if k * p_mult > k else k * 2, alpha)
    assert d.cdf(d.ppf(q)) == pytest.approx(q, rel=1e-6, abs=1e-9)


@given(
    st.lists(st.floats(0.01, 1e6), min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_empirical_mean_bounds(values):
    e = Empirical(values)
    assert e.lower * (1 - 1e-12) <= e.mean <= e.upper * (1 + 1e-12)
    assert e.cdf(e.upper) == pytest.approx(1.0)
    assert e.prob_interval(0.0, e.upper) == pytest.approx(1.0)


@given(st.floats(0.05, 0.95), st.floats(1.5, 60.0))
@settings(max_examples=40, deadline=None)
def test_lognormal_fit_roundtrip(mean_scale, scv):
    mean = mean_scale * 1000.0
    d = Lognormal.fit(mean, scv)
    assert d.mean == pytest.approx(mean, rel=1e-9)
    assert d.scv == pytest.approx(scv, rel=1e-9)
