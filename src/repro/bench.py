"""Benchmark-trajectory harness: ``repro bench``.

Runs a fixed set of named benchmarks over the hot paths — the
vectorised/tight-loop simulation kernels, the event engine vs the fast
kernels, and a full experiment sweep serial vs parallel — and writes a
machine-readable ``BENCH_<date>.json`` baseline.  Each PR that touches a
hot path re-runs the harness and commits a fresh baseline, so the
repository carries its own performance trajectory and a regression shows
up as a diff, not a vibe.

The harness measures **wall-clock only**.  It deliberately does not
assert thresholds: absolute numbers are machine-dependent (CI runners
differ wildly), so the JSON records the environment alongside every
entry and comparisons are made between files from the same machine.

Schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "created": "YYYY-MM-DD",
      "quick": false,
      "environment": {"python": …, "numpy": …, "platform": …,
                       "cpu_count": …, "workers": …},
      "entries": [
        {"name": "kernel.lwl_waits", "wall_s": …, "n_jobs": …,
         "jobs_per_s": …},
        …,
        {"name": "experiment.fig2.parallel", "wall_s": …,
         "speedup_vs_serial": …}, …
      ]
    }

``repro bench --quick`` shrinks every size for a smoke-test pass (CI);
the committed baselines use the default sizes.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = [
    "add_bench_arguments",
    "default_output_path",
    "main",
    "run_benchmarks",
    "run_from_args",
]

SCHEMA_VERSION = 1


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _kernel_workload(n_jobs: int, seed: int = 20000731):
    """A heavy-tailed arrival/size pair shared by the kernel benches."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.exponential(1.0, n_jobs))
    s = rng.pareto(1.5, n_jobs) + 0.1
    return t, s


def _bench_kernels(n_jobs: int, repeats: int) -> list[dict]:
    """Per-kernel throughput (the satellite-optimised Python loops and
    the vectorised Lindley passes)."""
    from .sim.fast import fcfs_waits, lwl_waits, shortest_queue_waits, tags_waits

    t, s = _kernel_workload(n_jobs)
    cutoffs = [float(np.quantile(s, 0.5)), float(np.quantile(s, 0.9))]
    kernels: list[tuple[str, Callable[[], object]]] = [
        ("kernel.fcfs_waits", lambda: fcfs_waits(t, s)),
        ("kernel.lwl_waits", lambda: lwl_waits(t, s, 4)),
        ("kernel.shortest_queue_waits", lambda: shortest_queue_waits(t, s, 4)),
        ("kernel.tags_waits", lambda: tags_waits(t, s, cutoffs)),
    ]
    entries = []
    for name, fn in kernels:
        fn()  # warm
        wall = _time(fn, repeats)
        entries.append(
            {
                "name": name,
                "wall_s": wall,
                "n_jobs": n_jobs,
                "jobs_per_s": n_jobs / wall if wall > 0 else None,
            }
        )
    return entries


def _bench_engine_vs_fast(n_jobs: int, repeats: int) -> list[dict]:
    """The reference event engine against the fast kernels on one
    workload — the speedup that justifies the fast path's existence."""
    from .core.policies import LeastWorkLeftPolicy
    from .sim.runner import simulate
    from .workloads.catalog import get_workload

    trace = get_workload("c90").make_trace(load=0.7, n_hosts=4, n_jobs=n_jobs, rng=1)
    fast = _time(
        lambda: simulate(trace, LeastWorkLeftPolicy(), 4, rng=1, backend="fast"),
        repeats,
    )
    engine = _time(
        lambda: simulate(trace, LeastWorkLeftPolicy(), 4, rng=1, backend="event"),
        max(1, repeats - 1),
    )
    return [
        {"name": "backend.fast", "wall_s": fast, "n_jobs": n_jobs,
         "jobs_per_s": n_jobs / fast if fast > 0 else None},
        {"name": "backend.event", "wall_s": engine, "n_jobs": n_jobs,
         "jobs_per_s": n_jobs / engine if engine > 0 else None},
        {"name": "backend.speedup", "wall_s": engine,
         "speedup_vs_event": engine / fast if fast > 0 else None},
    ]


def _bench_sweep(scale: float, workers: int) -> list[dict]:
    """One full experiment sweep, serial then parallel.

    Uses ``fig2`` (the canonical balanced-policy sweep).  The serial and
    parallel runs produce identical rows by construction — the harness
    asserts that here too, so every committed baseline doubles as an
    equivalence check on the machine that produced it.
    """
    from .experiments import ExperimentConfig, run_experiment
    from .experiments.common import clear_trace_cache

    config = ExperimentConfig(scale=scale)
    clear_trace_cache()
    t0 = time.perf_counter()
    serial = run_experiment("fig2", config)
    serial_s = time.perf_counter() - t0
    clear_trace_cache()  # parallel run pays its own trace generation
    t0 = time.perf_counter()
    parallel = run_experiment("fig2", config, workers=workers)
    parallel_s = time.perf_counter() - t0
    if serial.rows != parallel.rows:
        raise AssertionError(
            "parallel sweep rows differ from serial — determinism bug"
        )
    return [
        {"name": "experiment.fig2.serial", "wall_s": serial_s, "scale": scale},
        {
            "name": "experiment.fig2.parallel",
            "wall_s": parallel_s,
            "scale": scale,
            "workers": workers,
            "speedup_vs_serial": serial_s / parallel_s if parallel_s > 0 else None,
            "rows_identical_to_serial": True,
        },
    ]


def run_benchmarks(
    quick: bool = False,
    workers: int | None = None,
    scale: float | None = None,
) -> dict:
    """Execute every benchmark and return the baseline document."""
    if workers is None:
        # At least 2 even on a single core: the sweep bench doubles as a
        # serial-vs-parallel equivalence check, which needs a real pool.
        workers = max(2, min(4, os.cpu_count() or 1))
    n_kernel = 20_000 if quick else 200_000
    n_backend = 5_000 if quick else 20_000
    repeats = 1 if quick else 3
    sweep_scale = scale if scale is not None else (0.05 if quick else 0.25)
    entries: list[dict] = []
    entries += _bench_kernels(n_kernel, repeats)
    entries += _bench_engine_vs_fast(n_backend, repeats)
    entries += _bench_sweep(sweep_scale, workers)
    return {
        "schema_version": SCHEMA_VERSION,
        "created": _dt.date.today().isoformat(),
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": workers,
        },
        "entries": entries,
    }


def default_output_path(created: str, directory: str | Path = ".") -> Path:
    """``BENCH_<date>.json`` in ``directory`` (the repo root by convention)."""
    return Path(directory) / f"BENCH_{created}.json"


def render(doc: dict) -> str:
    """Human-readable table of a baseline document."""
    env = doc["environment"]
    lines = [
        f"bench {doc['created']} — python {env['python']}, numpy {env['numpy']}, "
        f"{env['cpu_count']} cpus, {env['workers']} workers"
        + (" (quick)" if doc.get("quick") else "")
    ]
    for e in doc["entries"]:
        extra = []
        if e.get("jobs_per_s"):
            extra.append(f"{e['jobs_per_s'] / 1e3:8.0f}k jobs/s")
        for key in ("speedup_vs_event", "speedup_vs_serial"):
            if e.get(key):
                extra.append(f"{e[key]:.2f}x {key.split('_vs_')[1]}")
        lines.append(
            f"  {e['name']:32s} {e['wall_s'] * 1e3:10.1f} ms  " + "  ".join(extra)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the bench options on ``parser`` (shared with ``repro bench``)."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, single repeat — the CI smoke configuration",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the parallel sweep bench (default: min(4, cpus))",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="job-count multiplier for the sweep bench (default: 0.25, quick 0.05)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output JSON path (default: ./BENCH_<date>.json)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed bench invocation; returns the process exit code."""
    doc = run_benchmarks(quick=args.quick, workers=args.workers, scale=args.scale)
    out = Path(args.out) if args.out else default_output_path(doc["created"])
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(render(doc))
    print(f"\nwrote {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="performance baseline harness (writes BENCH_<date>.json)",
    )
    add_bench_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
