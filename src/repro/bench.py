"""Benchmark-trajectory harness: ``repro bench``.

Runs a fixed set of named benchmarks over the hot paths — the
vectorised/tight-loop simulation kernels, the event engine vs the fast
kernels, and a full experiment sweep serial vs parallel — and writes a
machine-readable ``BENCH_<date>.json`` baseline.  Each PR that touches a
hot path re-runs the harness and commits a fresh baseline, so the
repository carries its own performance trajectory and a regression shows
up as a diff, not a vibe.

The harness measures **wall-clock only**.  It deliberately does not
assert thresholds: absolute numbers are machine-dependent (CI runners
differ wildly), so the JSON records the environment alongside every
entry and comparisons are made between files from the same machine.

Schema (``schema_version`` 2)::

    {
      "schema_version": 2,
      "created": "YYYY-MM-DD",
      "quick": false,
      "environment": {"python": …, "numpy": …, "numba": … | null,
                       "platform": …, "cpu_count": …, "workers": …,
                       "oversubscribed": …},
      "entries": [
        {"name": "kernel.lwl_waits", "tier": "python", "wall_s": …,
         "n_jobs": …, "jobs_per_s": …},
        {"name": "kernel.lwl_waits", "tier": "compiled", "wall_s": …,
         "n_jobs": …, "jobs_per_s": …, "speedup_vs_python": …},
        …,
        {"name": "search.sim_pair", "wall_s": …, "loop_wall_s": …,
         "speedup_vs_loop": …, "argmin_identical_to_loop": true},
        {"name": "search.analytic_sweep", "wall_s": …,
         "speedup_vs_unshared": …},
        {"name": "experiment.fig2.parallel", "wall_s": …,
         "speedup_vs_serial": …},
        {"name": "serve.dispatch", "wall_s": …, "n_jobs": …,
         "batch_size": …, "fast_path_engaged": true,
         "decisions_per_s": …, "speedup_vs_pr8": …,
         "latency_p50_us": …, "latency_p95_us": …, "latency_p99_us": …,
         "intake_ms": …, "route_ms": …, "commit_ms": …},
        {"name": "serve.dispatch.batch", "batch_size": …, …},
        {"name": "serve.dispatch.faulted", "availability": …, …},
        {"name": "serve.dispatch.sharded", "n_shards": …, "router": "sita",
         "aggregate_decisions_per_s": …, "wall_decisions_per_s": …,
         "speedup_vs_pr9": …, "merge_ms": …, "per_shard": […],
         "exceeds_single_process": …}, …
      ]
    }

The benchmarks are grouped into named **families** (``kernel``,
``backend``, ``search``, ``experiment.fig2``, ``serve.dispatch``,
``serve.dispatch.sharded``); ``repro bench --only 'serve.*'`` runs just
the families matching the glob (``fnmatch``) — the CI smoke uses this to
exercise the sharded rows without paying for the kernel sweeps.  A
filtered run records ``"only"`` in the document so a partial baseline
can never be mistaken for a full trajectory point; committed baselines
are always full runs.

Every ``kernel.*`` entry carries a ``tier``: the python rows are always
measured (under a forced ``kernel_tier("python")``), and when the
certified compiled tier (:mod:`repro.sim.compiled`) is importable the
ported kernels get a second, ``"compiled"`` row with its
``speedup_vs_python`` — so one baseline file shows both tiers of the
trajectory.  Schema 1 predates the ``tier``/``numba`` fields.

Sweep workers default to ``min(4, max(2, cpu_count))`` — floored at two
so the parallel row always exercises a real pool; whenever the resolved
size exceeds the visible cores (forced via ``--workers`` or the floor on
a 1-cpu box) the environment and the parallel entry both record
``oversubscribed: true`` so trajectory comparisons can discount the
point.

``repro bench --quick`` shrinks every size for a smoke-test pass (CI);
the committed baselines use the default sizes.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import fnmatch
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = [
    "BenchSelectionError",
    "FAMILY_NAMES",
    "add_bench_arguments",
    "default_output_path",
    "main",
    "resolve_workers",
    "run_benchmarks",
    "run_from_args",
]

SCHEMA_VERSION = 2

#: the named benchmark families ``--only`` globs against, in run order.
FAMILY_NAMES = (
    "kernel",
    "backend",
    "search",
    "experiment.fig2",
    "serve.dispatch",
    "serve.dispatch.sharded",
)


class BenchSelectionError(ValueError):
    """``--only`` glob that matches no benchmark family."""


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _kernel_workload(n_jobs: int, seed: int = 20000731):
    """A heavy-tailed arrival/size pair shared by the kernel benches."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.exponential(1.0, n_jobs))
    s = rng.pareto(1.5, n_jobs) + 0.1
    return t, s


def _bench_kernels(n_jobs: int, repeats: int) -> list[dict]:
    """Per-kernel throughput, tier by tier.

    The python rows are always measured under a forced
    ``kernel_tier("python")`` so they stay comparable across machines
    with and without numba; kernels with a certified compiled port get a
    second ``tier: "compiled"`` row with its ``speedup_vs_python``.
    """
    from .sim.compiled import compiled_available, kernel_tier
    from .sim.fast import fcfs_waits, lwl_waits, shortest_queue_waits, tags_waits

    t, s = _kernel_workload(n_jobs)
    cutoffs = [float(np.quantile(s, 0.5)), float(np.quantile(s, 0.9))]
    # (name, thunk, has a compiled port)
    kernels: list[tuple[str, Callable[[], object], bool]] = [
        ("kernel.fcfs_waits", lambda: fcfs_waits(t, s), False),
        ("kernel.lwl_waits", lambda: lwl_waits(t, s, 4), True),
        ("kernel.shortest_queue_waits", lambda: shortest_queue_waits(t, s, 4), True),
        ("kernel.tags_waits", lambda: tags_waits(t, s, cutoffs), False),
    ]
    entries = []
    python_wall: dict[str, float] = {}
    with kernel_tier("python"):
        for name, fn, _ported in kernels:
            fn()  # warm
            wall = _time(fn, repeats)
            python_wall[name] = wall
            entries.append(
                {
                    "name": name,
                    "tier": "python",
                    "wall_s": wall,
                    "n_jobs": n_jobs,
                    "jobs_per_s": n_jobs / wall if wall > 0 else None,
                }
            )
    if compiled_available():
        with kernel_tier("compiled"):
            for name, fn, ported in kernels:
                if not ported:
                    continue
                fn()  # warm (pays the JIT compile outside the timing)
                wall = _time(fn, repeats)
                entries.append(
                    {
                        "name": name,
                        "tier": "compiled",
                        "wall_s": wall,
                        "n_jobs": n_jobs,
                        "jobs_per_s": n_jobs / wall if wall > 0 else None,
                        "speedup_vs_python": (
                            python_wall[name] / wall if wall > 0 else None
                        ),
                    }
                )
    return entries


def _bench_engine_vs_fast(n_jobs: int, repeats: int) -> list[dict]:
    """The reference event engine against the fast kernels on one
    workload — the speedup that justifies the fast path's existence."""
    from .core.policies import LeastWorkLeftPolicy
    from .sim.runner import simulate
    from .workloads.catalog import get_workload

    trace = get_workload("c90").make_trace(load=0.7, n_hosts=4, n_jobs=n_jobs, rng=1)
    fast = _time(
        lambda: simulate(trace, LeastWorkLeftPolicy(), 4, rng=1, backend="fast"),
        repeats,
    )
    engine = _time(
        lambda: simulate(trace, LeastWorkLeftPolicy(), 4, rng=1, backend="event"),
        max(1, repeats - 1),
    )
    return [
        {"name": "backend.fast", "wall_s": fast, "n_jobs": n_jobs,
         "jobs_per_s": n_jobs / fast if fast > 0 else None},
        {"name": "backend.event", "wall_s": engine, "n_jobs": n_jobs,
         "jobs_per_s": n_jobs / engine if engine > 0 else None},
        {"name": "backend.speedup", "wall_s": engine,
         "speedup_vs_event": engine / fast if fast > 0 else None},
    ]


def _bench_search(quick: bool, repeats: int) -> list[dict]:
    """The shared-computation cutoff-search engine vs the pre-engine paths.

    ``search.sim_pair`` times one batched-scan opt+fair search
    (:func:`repro.core.search.sim_cutoff_pair`, ``refine=False`` so both
    sides do exactly the same grid work) against the historical
    per-candidate ``simulate_fast`` loop pair
    (:func:`repro.core.search.sim_pair_reference`) **in the same run**,
    and asserts the grid argmins are bit-identical.  The refined search
    is timed alongside for reference.

    ``search.analytic_sweep`` times a 3-load analytic opt+fair sweep with
    one shared :class:`~repro.core.search.MomentMemo` against the same
    sweep with a fresh memo per load — the cross-load win that every
    figure sweep (and each ``--workers`` process) inherits.
    """
    from .core.search import (
        MomentMemo,
        analytic_cutoff_pair,
        sim_cutoff_pair,
        sim_pair_reference,
    )
    from .workloads.catalog import get_workload
    from .workloads.distributions import Empirical

    n_jobs = 4_000 if quick else 30_000
    n_candidates = 40
    train = get_workload("c90").make_trace(
        load=0.7, n_hosts=2, n_jobs=n_jobs, rng=2024
    )

    pair = sim_cutoff_pair(train, n_candidates=n_candidates, refine=False)  # warm
    loop_opt, loop_fair = sim_pair_reference(train, n_candidates=n_candidates)
    if (pair.opt, pair.fair) != (loop_opt, loop_fair):
        raise AssertionError(
            "batched-scan grid argmins differ from the per-candidate loop "
            f"({pair.opt}, {pair.fair}) != ({loop_opt}, {loop_fair})"
        )
    # Best-of needs more repeats here than the kernel benches: the loop
    # side is long enough that scheduler noise otherwise dominates the
    # recorded ratio.
    sim_repeats = repeats if quick else max(repeats, 5)
    scan_s = _time(
        lambda: sim_cutoff_pair(train, n_candidates=n_candidates, refine=False),
        sim_repeats,
    )
    loop_s = _time(
        lambda: sim_pair_reference(train, n_candidates=n_candidates), sim_repeats
    )
    refined_s = _time(
        lambda: sim_cutoff_pair(train, n_candidates=n_candidates), sim_repeats
    )

    dist = Empirical(train.service_times)
    loads = (0.5, 0.7, 0.9)

    def analytic_sweep(shared: bool) -> None:
        memo = MomentMemo()
        for load in loads:
            analytic_cutoff_pair(
                load, dist, memo=memo if shared else MomentMemo()
            )

    analytic_sweep(shared=True)  # warm
    shared_s = _time(lambda: analytic_sweep(shared=True), repeats)
    unshared_s = _time(lambda: analytic_sweep(shared=False), repeats)
    return [
        {
            "name": "search.sim_pair",
            "wall_s": scan_s,
            "n_jobs": n_jobs,
            "n_candidates": n_candidates,
            "loop_wall_s": loop_s,
            "refined_wall_s": refined_s,
            "speedup_vs_loop": loop_s / scan_s if scan_s > 0 else None,
            "argmin_identical_to_loop": True,
        },
        {
            "name": "search.analytic_sweep",
            "wall_s": shared_s,
            "n_jobs": n_jobs,
            "loads": list(loads),
            "unshared_wall_s": unshared_s,
            "speedup_vs_unshared": unshared_s / shared_s if shared_s > 0 else None,
        },
    ]


def _bench_sweep(scale: float, workers: int, oversubscribed: bool) -> list[dict]:
    """One full experiment sweep, serial then parallel.

    Uses ``fig2`` (the canonical balanced-policy sweep).  The serial and
    parallel runs produce identical rows by construction — the harness
    asserts that here too, so every committed baseline doubles as an
    equivalence check on the machine that produced it.  ``workers`` is
    the *resolved* pool size (always >= 2, see :func:`resolve_workers`)
    and is recorded on the parallel entry together with the
    oversubscription flag, so a starved-box baseline reads as "2 workers
    on 1 cpu, 0.9x" instead of a mystery slowdown.
    """
    from .experiments import ExperimentConfig, run_experiment
    from .experiments.common import clear_trace_cache

    config = ExperimentConfig(scale=scale)
    clear_trace_cache()
    t0 = time.perf_counter()
    serial = run_experiment("fig2", config)
    serial_s = time.perf_counter() - t0
    clear_trace_cache()  # parallel run pays its own trace generation
    t0 = time.perf_counter()
    parallel = run_experiment("fig2", config, workers=workers)
    parallel_s = time.perf_counter() - t0
    if serial.rows != parallel.rows:
        raise AssertionError(
            "parallel sweep rows differ from serial — determinism bug"
        )
    return [
        {"name": "experiment.fig2.serial", "wall_s": serial_s, "scale": scale},
        {
            "name": "experiment.fig2.parallel",
            "wall_s": parallel_s,
            "scale": scale,
            "workers": workers,
            "oversubscribed": oversubscribed,
            "speedup_vs_serial": serial_s / parallel_s if parallel_s > 0 else None,
            "rows_identical_to_serial": True,
        },
    ]


#: ``serve.dispatch`` ``decisions_per_s`` from the committed PR 8
#: baseline (BENCH_2026-08-08.json before the fast path landed), kept as
#: a constant because each bench run overwrites the same-day file.  The
#: ≥50x CI smoke assertion and the ``speedup_vs_pr8`` field both anchor
#: on this number.
PR8_DISPATCH_BASELINE = 1264.4323422617022

#: ``serve.dispatch`` ``decisions_per_s`` from the committed PR 9
#: baseline (the fault-free fast path, batch 1024) — the single-process
#: row the sharded engine has to beat on aggregate capacity.  Frozen for
#: the same reason as :data:`PR8_DISPATCH_BASELINE`.
PR9_DISPATCH_BASELINE = 1338924.3242649774


def _serve_stream(n_jobs: int) -> list[tuple[float, float]]:
    """The C90 stream every serve bench drives (PR 8's exact workload)."""
    from .workloads.catalog import get_workload

    trace = get_workload("c90").make_trace(load=0.7, n_hosts=4, n_jobs=n_jobs, rng=7)
    t0 = float(trace.arrival_times[0])
    return [
        (float(a) - t0, float(s))
        for a, s in zip(trace.arrival_times, trace.service_times)
    ]


def _bench_serve(quick: bool) -> list[dict]:
    """Online dispatcher decision throughput, fast path and engine path.

    Three entry families over the same seeded C90 stream PR 8 measured:

    * ``serve.dispatch`` — the fault-free batched fast path, with
      per-stage wall-clock (intake / route / commit) and
      ``speedup_vs_pr8`` against the committed PR 8 baseline
      (:data:`PR8_DISPATCH_BASELINE`);
    * ``serve.dispatch.batch`` — a batch-size sweep showing where the
      per-call overhead amortises;
    * ``serve.dispatch.faulted`` — PR 8's exact configuration (a
      ~91%-availability re-dispatch fault model, so the engine path with
      breakers tripping and retries backing off), keeping the original
      trajectory comparable.

    Decision latency percentiles exclude admission/intake wait — the two
    stages are recorded separately (see
    :meth:`repro.serve.DispatchServer.latency_summary`).  The accounting
    invariant is asserted on every run, so the baseline doubles as a
    soak in miniature.
    """
    from .core.policies import LeastWorkLeftPolicy
    from .serve import DispatchServer, HealthMonitor
    from .sim.faults import FaultModel

    n_jobs = 2_000 if quick else 20_000
    jobs = _serve_stream(n_jobs)

    def run(batch_size: int, faults: FaultModel | None) -> tuple[dict, float]:
        kwargs: dict = {}
        if faults is not None:
            kwargs = {
                "faults": faults,
                "heartbeat_interval": faults.mttr,
                "health": HealthMonitor(cooldown=faults.mttr / 2),
            }
        server = DispatchServer(4, LeastWorkLeftPolicy(), seed=1, **kwargs)
        start = time.perf_counter()
        status = server.run_stream(jobs, batch_size=batch_size)
        wall = time.perf_counter() - start
        if not all(status["invariant"].values()):
            raise AssertionError(
                f"serve bench broke the accounting invariant: "
                f"{status['counters']}"
            )
        return status, wall

    entries: list[dict] = []
    status, wall = run(batch_size=1024, faults=None)
    lat = status["latency"]
    entries.append(
        {
            "name": "serve.dispatch",
            "wall_s": wall,
            "n_jobs": n_jobs,
            "batch_size": 1024,
            "fast_path_engaged": status["fast_path"]["engaged"],
            "decisions_per_s": lat["decisions_per_s"],
            "speedup_vs_pr8": lat["decisions_per_s"] / PR8_DISPATCH_BASELINE,
            "latency_p50_us": lat["p50_us"],
            "latency_p95_us": lat["p95_us"],
            "latency_p99_us": lat["p99_us"],
            "intake_ms": lat["stages"]["intake_ms"],
            "route_ms": lat["stages"]["route_ms"],
            "commit_ms": lat["stages"]["commit_ms"],
            "invariant_holds": True,
        }
    )
    for batch_size in (1, 16, 256):
        status, wall = run(batch_size=batch_size, faults=None)
        lat = status["latency"]
        entries.append(
            {
                "name": "serve.dispatch.batch",
                "wall_s": wall,
                "n_jobs": n_jobs,
                "batch_size": batch_size,
                "fast_path_engaged": status["fast_path"]["engaged"],
                "decisions_per_s": lat["decisions_per_s"],
                "latency_p50_us": lat["p50_us"],
                "latency_p95_us": lat["p95_us"],
                "latency_p99_us": lat["p99_us"],
                "invariant_holds": True,
            }
        )
    faults = FaultModel(mtbf=20_000.0, mttr=2_000.0, semantics="redispatch", seed=3)
    status, wall = run(batch_size=1, faults=faults)
    lat = status["latency"]
    entries.append(
        {
            "name": "serve.dispatch.faulted",
            "wall_s": wall,
            "n_jobs": n_jobs,
            "batch_size": 1,
            "fast_path_engaged": status["fast_path"]["engaged"],
            "decisions_per_s": lat["decisions_per_s"],
            "latency_p50_us": lat["p50_us"],
            "latency_p95_us": lat["p95_us"],
            "latency_p99_us": lat["p99_us"],
            "availability": faults.availability,
            "crashes": status["counters"]["crashes"],
            "invariant_holds": True,
        }
    )
    return entries


def _bench_serve_sharded(quick: bool) -> list[dict]:
    """The multi-process sharded dispatcher at 1, 2 and 4 shards.

    Same seeded C90 stream as ``serve.dispatch``, SITA routing over 4
    hosts, process transport (real workers, shared-memory rings).  Two
    rates per row:

    * ``aggregate_decisions_per_s`` — the sum of per-shard decision
      rates, i.e. the fleet's dispatch *capacity* if each shard owned a
      core.  This is the scaling claim and what ``speedup_vs_pr9``
      anchors on (:data:`PR9_DISPATCH_BASELINE`, the single-process fast
      path).
    * ``wall_decisions_per_s`` — jobs over coordinator wall-clock, the
      honest number on this machine.  On a starved box the shards
      time-slice one core and this stays *below* the single-process
      rate; that is expected and documented, not a regression
      (see ``docs/PERFORMANCE.md``).

    The merge stage is timed separately (``merge_ms``) and the global
    accounting invariant is asserted on every row.
    """
    from .core.policies import SITAPolicy
    from .serve.shard import ShardedDispatchServer

    n_jobs = 2_000 if quick else 20_000
    jobs = _serve_stream(n_jobs)
    sizes = np.array([s for _, s in jobs])
    cutoffs = [float(np.quantile(sizes, q)) for q in (0.25, 0.5, 0.75)]
    entries: list[dict] = []
    for n_shards in (1, 2, 4):
        server = ShardedDispatchServer(
            4,
            SITAPolicy(cutoffs, name="sita-bench"),
            n_shards=n_shards,
            router="sita",
            seed=1,
        )
        try:
            start = time.perf_counter()
            status = server.run_stream(jobs, batch_size=1024)
            wall = time.perf_counter() - start
        finally:
            server.close()
        if not all(status["invariant"].values()):
            raise AssertionError(
                f"sharded serve bench ({n_shards} shards) broke the "
                f"accounting invariant: {status['counters']}"
            )
        lat = status["latency"]
        aggregate = lat["aggregate_decisions_per_s"]
        entries.append(
            {
                "name": "serve.dispatch.sharded",
                "wall_s": wall,
                "n_jobs": n_jobs,
                "batch_size": 1024,
                "n_shards": n_shards,
                "router": "sita",
                "transport": status["sharding"]["transport"],
                "aggregate_decisions_per_s": aggregate,
                "wall_decisions_per_s": lat["wall_decisions_per_s"],
                "speedup_vs_pr9": aggregate / PR9_DISPATCH_BASELINE,
                "exceeds_single_process": aggregate > PR9_DISPATCH_BASELINE,
                "intake_ms": lat["stages"]["intake_ms"],
                "route_ms": lat["stages"]["route_ms"],
                "merge_ms": lat["stages"]["merge_ms"],
                "per_shard": [
                    {
                        "shard": p["shard"],
                        "accepted": p["counters"]["accepted"],
                        "decisions_per_s": p["latency"].get("decisions_per_s"),
                    }
                    for p in status["shards"]
                ],
                "invariant_holds": True,
            }
        )
    return entries


def _numba_version() -> str | None:
    """The numba version the compiled tier saw, or ``None``."""
    from .sim.compiled import NUMBA_VERSION

    return NUMBA_VERSION


def resolve_workers(requested: int | None) -> tuple[int, bool]:
    """Pool size for the sweep bench and whether it oversubscribes.

    Two honesty bugs have shipped in committed baselines: a forced
    2-worker pool on a 1-cpu box recorded a 0.38x "speedup", and the
    min(4, cpu_count) default later resolved to a **1-worker pool** on
    the same box — a parallel row that measured pool overhead, not
    parallelism, while still labelling itself a speedup.  The default
    therefore floors at 2 workers so the parallel row always exercises a
    real pool, and the second element reports whether the resolved size
    oversubscribes the visible cores — for the default and for an
    explicit ``--workers`` alike — so the baseline can record it and
    trajectory comparisons can discount the point.
    """
    cpus = os.cpu_count() or 1
    resolved = requested if requested is not None else min(4, max(2, cpus))
    return resolved, resolved > cpus


def run_benchmarks(
    quick: bool = False,
    workers: int | None = None,
    scale: float | None = None,
    only: str | None = None,
) -> dict:
    """Execute the selected benchmark families, return the document.

    ``only`` is an ``fnmatch`` glob over :data:`FAMILY_NAMES`; ``None``
    runs everything.  A glob matching nothing raises
    :class:`BenchSelectionError` listing the families.
    """
    workers, oversubscribed = resolve_workers(workers)
    n_kernel = 20_000 if quick else 200_000
    n_backend = 5_000 if quick else 20_000
    repeats = 1 if quick else 3
    # Full paper scale by default (scale 1.0 = the experiment sizes the
    # figures are reproduced at); --quick keeps the CI smoke tiny.
    sweep_scale = scale if scale is not None else (0.05 if quick else 1.0)
    families: list[tuple[str, Callable[[], list[dict]]]] = [
        ("kernel", lambda: _bench_kernels(n_kernel, repeats)),
        ("backend", lambda: _bench_engine_vs_fast(n_backend, repeats)),
        ("search", lambda: _bench_search(quick, repeats)),
        (
            "experiment.fig2",
            lambda: _bench_sweep(sweep_scale, workers, oversubscribed),
        ),
        ("serve.dispatch", lambda: _bench_serve(quick)),
        ("serve.dispatch.sharded", lambda: _bench_serve_sharded(quick)),
    ]
    assert tuple(name for name, _ in families) == FAMILY_NAMES
    if only is not None:
        families = [
            (name, fn) for name, fn in families if fnmatch.fnmatch(name, only)
        ]
        if not families:
            raise BenchSelectionError(
                f"--only {only!r} matches no benchmark family "
                f"(families: {', '.join(FAMILY_NAMES)})"
            )
    entries: list[dict] = []
    for _name, fn in families:
        entries += fn()
    return {
        "schema_version": SCHEMA_VERSION,
        "created": _dt.date.today().isoformat(),
        "quick": quick,
        "only": only,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "numba": _numba_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "oversubscribed": oversubscribed,
        },
        "entries": entries,
    }


def default_output_path(created: str, directory: str | Path = ".") -> Path:
    """``BENCH_<date>.json`` in ``directory`` (the repo root by convention)."""
    return Path(directory) / f"BENCH_{created}.json"


def render(doc: dict) -> str:
    """Human-readable table of a baseline document."""
    env = doc["environment"]
    lines = [
        f"bench {doc['created']} — python {env['python']}, numpy {env['numpy']}, "
        f"{env['cpu_count']} cpus, {env['workers']} workers"
        + (" (quick)" if doc.get("quick") else "")
    ]
    for e in doc["entries"]:
        extra = []
        if e.get("jobs_per_s"):
            extra.append(f"{e['jobs_per_s'] / 1e3:8.0f}k jobs/s")
        if e.get("decisions_per_s"):
            extra.append(
                f"{e['decisions_per_s']:6.0f} decisions/s  "
                f"p50 {e['latency_p50_us']:.0f}us  p99 {e['latency_p99_us']:.0f}us"
            )
        if e.get("aggregate_decisions_per_s"):
            extra.append(
                f"{e['n_shards']} shards  "
                f"{e['aggregate_decisions_per_s']:8.0f} agg/s  "
                f"wall {e['wall_decisions_per_s']:6.0f}/s  "
                f"merge {e['merge_ms']:.1f}ms"
            )
        for key in ("speedup_vs_event", "speedup_vs_loop",
                    "speedup_vs_unshared", "speedup_vs_serial",
                    "speedup_vs_python", "speedup_vs_pr8",
                    "speedup_vs_pr9"):
            if e.get(key):
                extra.append(f"{e[key]:.2f}x {key.split('_vs_')[1]}")
        label = e["name"]
        if "tier" in e:
            label = f"{label}[{e['tier']}]"
        lines.append(
            f"  {label:32s} {e['wall_s'] * 1e3:10.1f} ms  " + "  ".join(extra)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the bench options on ``parser`` (shared with ``repro bench``)."""
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, single repeat — the CI smoke configuration",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the parallel sweep bench (default: min(4, cpus))",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="job-count multiplier for the sweep bench (default: 0.25, quick 0.05)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="GLOB",
        help=(
            "run only the benchmark families matching this fnmatch glob "
            f"(e.g. 'serve.*'; families: {', '.join(FAMILY_NAMES)})"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output JSON path (default: ./BENCH_<date>.json)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed bench invocation; returns the process exit code."""
    try:
        doc = run_benchmarks(
            quick=args.quick,
            workers=args.workers,
            scale=args.scale,
            only=getattr(args, "only", None),
        )
    except BenchSelectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else default_output_path(doc["created"])
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(render(doc))
    print(f"\nwrote {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="performance baseline harness (writes BENCH_<date>.json)",
    )
    add_bench_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
