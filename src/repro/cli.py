"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------

``repro list``
    Show every registered experiment (paper tables/figures + ablations).
``repro run fig4 [--scale 0.2] [--csv out.csv]``
    Run one experiment and print its rows (optionally also write CSV).
    ``--checkpoint DIR`` makes the sweep crash-safe (atomic per-point
    writes) and ``--resume`` picks an interrupted sweep back up;
    ``--timeout``/``--retries`` bound the wall-clock cost of a single
    point (see ``docs/ROBUSTNESS.md``); ``--workers N`` fans points out
    over N processes while keeping the rows bit-identical to a serial
    run (see ``docs/PERFORMANCE.md``).
``repro workloads``
    Print the calibrated workload catalog (Table-1 style).
``repro synth c90 out.swf --load 0.7 --hosts 2 --jobs 50000``
    Materialise a synthetic trace as a Standard Workload Format file.
``repro lint [paths] [--select/--ignore RULES] [--format text|json|github]``
    Run the simulation-correctness linter (per-file rules SIM001–SIM007
    plus whole-program flow rules SIM101–SIM106, see
    ``docs/DEVTOOLS.md``); exits 0 clean, 1 with findings, 2 on usage
    errors.
``repro audit --experiment fig2_3 [--replays 2] [--scale 0.1]``
    Replay-divergence determinism audit: run an experiment twice with
    identical seeds, digest the event stream and every simulation
    result, report the first divergent event on mismatch, and
    cross-check the event engine against the fast kernels; exits 0
    deterministic, 1 divergence, 2 usage error.  ``--workers N`` also
    checks that a parallel sweep reproduces the serial rows exactly.
``repro serve c90 --policy sita --mtbf 2000 --snapshot state.json``
    Fault-tolerant online dispatcher: admission-controlled intake,
    per-host circuit breakers, jittered-backoff retries, crash-safe
    snapshots with deterministic ``--resume``, and (``--refit``)
    degraded-mode SITA cutoff re-fitting; drives a seeded stream by
    default (batched through the fault-free fast path, ``--batch-size``,
    see ``docs/PERFORMANCE.md``), or serves newline-JSON over
    ``--socket``/``--tcp`` (see ``docs/ROBUSTNESS.md``).
``repro serve c90 --policy sita --hosts 4 --shards 2 --router sita``
    The same dispatcher sharded across worker processes: hosts are
    partitioned per shard, jobs are routed by ``--router``
    (``sita``/``hash``/``pow2``), and the per-shard accounting is merged
    deterministically — fault-free SITA-sharded runs are bit-identical
    to ``--shards 0`` (see ``docs/PERFORMANCE.md``, "Sharding the
    dispatcher").  ``--snapshot DIR`` writes per-shard snapshots plus a
    coordinator manifest, and ``--resume`` restores the consistent
    boundary after a crash of either the coordinator or a shard worker.
``repro bench [--quick] [--only GLOB] [--workers N] [--out PATH]``
    Performance baseline harness: time the simulation kernels, the
    event engine vs the fast path, the shared-computation cutoff-search
    engine vs the pre-engine per-candidate loops (``search.*``), a
    serial-vs-parallel sweep, and the online dispatcher single-process
    and sharded, and write a machine-readable ``BENCH_<date>.json``
    (see ``docs/PERFORMANCE.md``).  ``--only 'serve.*'`` runs a subset
    of the named benchmark families.  Sweep workers default to
    ``min(4, max(2, cpu_count))``; when the resolved pool exceeds the
    visible cores the baseline records ``oversubscribed: true``.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ExperimentConfig, list_experiments, run_experiment
from .workloads.catalog import WORKLOAD_NAMES, get_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Task assignment policies for supercomputing servers "
            "(Schroeder & Harchol-Balter, HPDC 2000) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    run_p = sub.add_parser("run", help="run one experiment and print its rows")
    run_p.add_argument("experiment", help="experiment id, e.g. fig4")
    run_p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="job-count multiplier (1.0 = paper scale; 0.1 for a quick look)",
    )
    run_p.add_argument("--seed", type=int, default=None, help="base RNG seed")
    run_p.add_argument("--csv", default=None, help="also write the rows as CSV")
    run_p.add_argument(
        "--plot",
        action="store_true",
        help="also render the result as an ASCII chart (where it has one)",
    )
    run_p.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "persist every completed point under DIR/<experiment>/ with "
            "atomic writes, so an interrupted sweep can be resumed"
        ),
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse points already checkpointed under --checkpoint "
            "(same experiment and config) instead of recomputing them"
        ),
    )
    run_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per simulated point (default: unlimited)",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries for a timed-out point before giving up (default: 1)",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan simulated points out over N worker processes; results "
            "are collected in deterministic submission order, so the rows "
            "are bit-identical to a serial run (default: serial)"
        ),
    )

    all_p = sub.add_parser(
        "all", help="run every registered experiment and write results to a directory"
    )
    all_p.add_argument("--scale", type=float, default=1.0, help="job-count multiplier")
    all_p.add_argument("--seed", type=int, default=None, help="base RNG seed")
    all_p.add_argument(
        "--out", default="results", help="output directory for <id>.txt/<id>.csv"
    )

    sub.add_parser("workloads", help="print the calibrated workload catalog")

    lint_p = sub.add_parser(
        "lint",
        help="run the simulation-correctness linter (SIM001–SIM007, SIM101–SIM106)",
    )
    from .devtools.lint import add_lint_arguments

    add_lint_arguments(lint_p)

    audit_p = sub.add_parser(
        "audit", help="replay-divergence determinism audit of an experiment"
    )
    from .devtools.audit import add_audit_arguments

    add_audit_arguments(audit_p)

    bench_p = sub.add_parser(
        "bench", help="performance baseline harness (writes BENCH_<date>.json)"
    )
    from .bench import add_bench_arguments

    add_bench_arguments(bench_p)

    serve_p = sub.add_parser(
        "serve",
        help="fault-tolerant online dispatcher (driver or newline-JSON socket)",
    )
    from .serve.runner import add_serve_arguments

    add_serve_arguments(serve_p)

    synth_p = sub.add_parser("synth", help="write a synthetic trace as SWF")
    synth_p.add_argument("workload", choices=WORKLOAD_NAMES)
    synth_p.add_argument("output", help="path of the SWF file to write")
    synth_p.add_argument("--load", type=float, default=0.7, help="system load")
    synth_p.add_argument("--hosts", type=int, default=2, help="number of hosts")
    synth_p.add_argument("--jobs", type=int, default=None, help="number of jobs")
    synth_p.add_argument("--seed", type=int, default=0, help="RNG seed")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for eid, title in list_experiments():
            print(f"{eid:22s} {title}")
        return 0

    if args.command == "run":
        config = ExperimentConfig(
            scale=args.scale,
            point_timeout=args.timeout,
            point_retries=args.retries,
        )
        if args.seed is not None:
            config = config.with_(seed=args.seed)
        if args.resume and not args.checkpoint:
            print("error: --resume requires --checkpoint DIR", file=sys.stderr)
            return 2
        result = run_experiment(
            args.experiment,
            config,
            checkpoint_dir=args.checkpoint,
            resume=args.resume,
            workers=args.workers,
        )
        print(result.to_text())
        if args.plot:
            from .experiments.plotting import result_chart

            print()
            try:
                print(result_chart(result))
            except ValueError as exc:
                print(f"(no chart: {exc})")
        if args.csv:
            result.to_csv(args.csv)
            print(f"\nwrote {args.csv}")
        return 0

    if args.command == "all":
        import time
        from pathlib import Path

        config = ExperimentConfig(scale=args.scale)
        if args.seed is not None:
            config = config.with_(seed=args.seed)
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        failures = 0
        for eid, title in list_experiments():
            t0 = time.perf_counter()
            try:
                result = run_experiment(eid, config)
            except Exception as exc:  # pragma: no cover - surfaced to the user
                print(f"{eid:22s} FAILED: {exc}")
                failures += 1
                continue
            result.to_csv(out_dir / f"{eid}.csv")
            (out_dir / f"{eid}.txt").write_text(result.to_text() + "\n")
            print(f"{eid:22s} ok in {time.perf_counter() - t0:6.1f}s  ({title})")
        print(f"\nresults in {out_dir}/")
        return 1 if failures else 0

    if args.command == "workloads":
        for name in WORKLOAD_NAMES:
            w = get_workload(name)
            row = w.table1_row()
            print(f"{name}: {w.description}")
            for k, v in row.items():
                print(f"    {k:24s} {v:.6g}")
        return 0

    if args.command == "lint":
        from .devtools.lint import run_from_args

        return run_from_args(args)

    if args.command == "audit":
        from .devtools.audit import run_from_args as run_audit

        return run_audit(args)

    if args.command == "bench":
        from .bench import run_from_args as run_bench

        return run_bench(args)

    if args.command == "serve":
        from .serve.runner import run_from_args as run_serve

        return run_serve(args)

    if args.command == "synth":
        w = get_workload(args.workload)
        trace = w.make_trace(
            load=args.load,
            n_hosts=args.hosts,
            n_jobs=args.jobs,
            rng=args.seed,
        )
        trace.to_swf(args.output)
        stats = trace.stats()
        print(
            f"wrote {args.output}: {stats.n_jobs} jobs, mean service "
            f"{stats.mean_service:.1f}s, SCV {stats.scv:.1f}"
        )
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
