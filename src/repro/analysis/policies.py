"""Analytic mean-performance predictions per task-assignment policy.

One function per policy family, each mirroring the paper's section 3.3
reasoning, all parameterised by *system load* ρ (so the figures 8/9 sweeps
read naturally).  The arrival rate is λ = ρ·h/E[X].

* Random — Bernoulli splitting ⇒ each host an independent M/G/1 at
  rate λ/h with the *unreduced* service distribution;
* Round-Robin — E_h/G/1 per host (Allen–Cunneen approximation);
* Least-Work-Left / Central-Queue — M/G/h approximation;
* SITA — per-host M/G/1 on size slices (:mod:`.sita_analysis`).

For Random and Round-Robin, per-job metrics equal per-host metrics (every
job sees a statistically identical host).  Variance of slowdown is exact
for Random/SITA (M/G/1 with Takács); no usable second-moment formula
exists for M/G/h or E_h/G/1, so those report ``nan`` variance — matching
the paper, whose analysis section also only compares means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..workloads.distributions import ServiceDistribution
from .gg1 import erlang_arrival_scv, gg1_metrics
from .mg1 import mg1_metrics
from .mgh import mgh_metrics
from .sita_analysis import analyze_sita

__all__ = ["PolicyPrediction", "predict_random", "predict_round_robin",
           "predict_lwl", "predict_sita", "predict_grouped_sita",
           "predict_sita_bursty", "predict_lwl_bursty",
           "arrival_rate_for_load"]


def arrival_rate_for_load(load: float, dist: ServiceDistribution, n_hosts: int) -> float:
    """λ = ρ·h/E[X] (system-load convention used throughout the paper)."""
    if not 0.0 < load < 1.0:
        raise ValueError(f"system load must be in (0,1), got {load}")
    return load * n_hosts / dist.mean


@dataclass(frozen=True)
class PolicyPrediction:
    """Analytic steady-state prediction for one policy at one load."""

    policy: str
    load: float
    n_hosts: int
    mean_slowdown: float
    mean_waiting_slowdown: float
    var_slowdown: float
    mean_response: float
    mean_wait: float


def predict_random(
    load: float, dist: ServiceDistribution, n_hosts: int
) -> PolicyPrediction:
    """Random splitting: h independent M/G/1 queues at rate λ/h each."""
    lam = arrival_rate_for_load(load, dist, n_hosts)
    m = mg1_metrics(lam / n_hosts, dist)
    inv2 = dist.inverse_second_moment
    es2 = 1.0 + 2.0 * m.mean_wait * dist.inverse_moment + m.second_moment_wait * inv2
    return PolicyPrediction(
        policy="random",
        load=load,
        n_hosts=n_hosts,
        mean_slowdown=m.mean_slowdown,
        mean_waiting_slowdown=m.mean_waiting_slowdown,
        var_slowdown=es2 - m.mean_slowdown**2,
        mean_response=m.mean_response,
        mean_wait=m.mean_wait,
    )


def predict_round_robin(
    load: float, dist: ServiceDistribution, n_hosts: int
) -> PolicyPrediction:
    """Round-Robin: each host an E_h/G/1 queue at rate λ/h."""
    lam = arrival_rate_for_load(load, dist, n_hosts)
    m = gg1_metrics(lam / n_hosts, dist, erlang_arrival_scv(n_hosts))
    return PolicyPrediction(
        policy="round-robin",
        load=load,
        n_hosts=n_hosts,
        mean_slowdown=m.mean_slowdown,
        mean_waiting_slowdown=m.mean_waiting_slowdown,
        var_slowdown=math.nan,
        mean_response=m.mean_response,
        mean_wait=m.mean_wait,
    )


def predict_lwl(
    load: float, dist: ServiceDistribution, n_hosts: int
) -> PolicyPrediction:
    """Least-Work-Left / Central-Queue: the M/G/h approximation."""
    lam = arrival_rate_for_load(load, dist, n_hosts)
    m = mgh_metrics(lam, dist, n_hosts)
    return PolicyPrediction(
        policy="least-work-left",
        load=load,
        n_hosts=n_hosts,
        mean_slowdown=m.mean_slowdown,
        mean_waiting_slowdown=m.mean_waiting_slowdown,
        var_slowdown=math.nan,
        mean_response=m.mean_response,
        mean_wait=m.mean_wait,
    )


def predict_grouped_sita(
    load: float,
    dist: ServiceDistribution,
    n_hosts: int,
    cutoff: float,
    n_short_hosts: int,
    policy_name: str = "grouped-sita",
) -> PolicyPrediction:
    """Section-5 grouped SITA: per-group M/G/h approximation.

    A single size cutoff splits the stream; the short group's
    ``n_short_hosts`` hosts run Least-Work-Left among themselves (an
    M/G/h_short queue on the conditional short distribution) and likewise
    for the long group.  Job-fraction mixing gives the system metrics —
    the analytic counterpart of :class:`~repro.core.policies.GroupedSITAPolicy`,
    exact in the same sense the M/G/h approximation is.
    """
    if not 1 <= n_short_hosts < n_hosts:
        raise ValueError(
            f"need 1 <= n_short_hosts < n_hosts, got {n_short_hosts}/{n_hosts}"
        )
    lam = arrival_rate_for_load(load, dist, n_hosts)
    mean_slow = 0.0
    mean_wslow = 0.0
    mean_resp = 0.0
    mean_wait = 0.0
    groups = (
        (0.0, cutoff, n_short_hosts),
        (cutoff, math.inf, n_hosts - n_short_hosts),
    )
    for lo, hi, h_group in groups:
        p = dist.prob_interval(lo, hi)
        if p <= 0.0:
            continue
        cond = dist.conditional(lo, hi)
        m = mgh_metrics(lam * p, cond, h_group)
        mean_slow += p * m.mean_slowdown
        mean_wslow += p * m.mean_waiting_slowdown
        mean_resp += p * m.mean_response
        mean_wait += p * m.mean_wait
    return PolicyPrediction(
        policy=policy_name,
        load=load,
        n_hosts=n_hosts,
        mean_slowdown=mean_slow,
        mean_waiting_slowdown=mean_wslow,
        var_slowdown=math.nan,
        mean_response=mean_resp,
        mean_wait=mean_wait,
    )


def predict_sita(
    load: float,
    dist: ServiceDistribution,
    n_hosts: int,
    cutoffs: Sequence[float],
    policy_name: str = "sita",
) -> PolicyPrediction:
    """SITA with explicit cutoffs: per-host M/G/1 on size slices."""
    lam = arrival_rate_for_load(load, dist, n_hosts)
    a = analyze_sita(lam, dist, cutoffs)
    return PolicyPrediction(
        policy=policy_name,
        load=load,
        n_hosts=n_hosts,
        mean_slowdown=a.mean_slowdown,
        mean_waiting_slowdown=a.mean_waiting_slowdown,
        var_slowdown=a.var_slowdown,
        mean_response=a.mean_response,
        mean_wait=a.mean_wait,
    )


def predict_sita_bursty(
    load: float,
    dist: ServiceDistribution,
    n_hosts: int,
    cutoffs: Sequence[float],
    arrival_scv: float,
    policy_name: str = "sita-bursty",
) -> PolicyPrediction:
    """SITA under a *bursty* (renewal, SCV > 1) arrival stream — the §6
    regime the paper calls "analytically intractable" and studies only by
    simulation.

    Approximation: size-marking splits the renewal stream independently,
    and the thinned stream keeping each arrival with probability ``p`` has
    interarrival SCV ``≈ 1 + p·(Ca² − 1)`` (exact for the first two
    moments of a geometric sum of i.i.d. interarrivals).  Each host is
    then an Allen–Cunneen G/G/1 on its size slice: the short host — which
    keeps ~98 % of arrivals — inherits nearly the full burstiness, while
    the long host's trickle looks almost Poisson.  That asymmetry is the
    quantitative core of the paper's §6 discussion.
    """
    from .gg1 import gg1_metrics

    if arrival_scv < 0:
        raise ValueError(f"arrival_scv must be >= 0, got {arrival_scv}")
    lam = arrival_rate_for_load(load, dist, n_hosts)
    edges = [0.0, *cutoffs, math.inf]
    mean_slow = 0.0
    mean_wslow = 0.0
    mean_resp = 0.0
    mean_wait = 0.0
    for lo, hi in zip(edges, edges[1:]):
        p = dist.prob_interval(lo, hi)
        if p <= 0.0:
            continue
        cond = dist.conditional(lo, hi)
        thinned_scv = 1.0 + p * (arrival_scv - 1.0)
        m = gg1_metrics(lam * p, cond, thinned_scv)
        mean_slow += p * m.mean_slowdown
        mean_wslow += p * m.mean_waiting_slowdown
        mean_resp += p * m.mean_response
        mean_wait += p * m.mean_wait
    return PolicyPrediction(
        policy=policy_name,
        load=load,
        n_hosts=n_hosts,
        mean_slowdown=mean_slow,
        mean_waiting_slowdown=mean_wslow,
        var_slowdown=math.nan,
        mean_response=mean_resp,
        mean_wait=mean_wait,
    )


def predict_lwl_bursty(
    load: float,
    dist: ServiceDistribution,
    n_hosts: int,
    arrival_scv: float,
) -> PolicyPrediction:
    """LWL/Central-Queue under bursty renewal arrivals.

    G/G/h via the same interpolation as :func:`predict_lwl` scaled by
    the Kingman arrival factor ``(Ca² + Cs²)/(1 + Cs²)`` — crude, but it
    captures the one §6 effect that matters: LWL's wait grows only
    linearly in Ca² while keeping its pooling advantage.
    """
    if arrival_scv < 0:
        raise ValueError(f"arrival_scv must be >= 0, got {arrival_scv}")
    base = predict_lwl(load, dist, n_hosts)
    cs2 = dist.scv
    factor = (arrival_scv + cs2) / (1.0 + cs2)
    ew = base.mean_wait * factor
    from .mg1 import safe_inverse_moments

    wslow = ew * safe_inverse_moments(dist)[0]
    return PolicyPrediction(
        policy="least-work-left-bursty",
        load=load,
        n_hosts=n_hosts,
        mean_slowdown=1.0 + wslow,
        mean_waiting_slowdown=wslow,
        var_slowdown=math.nan,
        mean_response=ew + dist.mean,
        mean_wait=ew,
    )
