"""M/G/1 FCFS analysis — the paper's Theorem 1 (Pollaczek–Khinchine).

For a single FCFS queue with Poisson(λ) arrivals and service distribution
``X`` at utilisation ρ = λ·E[X] < 1:

* ``E[W] = λ·E[X²] / (2(1 − ρ))``                       (Pollaczek–Khinchine)
* ``E[W²] = 2·E[W]² + λ·E[X³] / (3(1 − ρ))``            (Takács)
* ``E[Q] = λ·E[W]``                                     (Little)

Because an arriving job's waiting time is independent of its own size
(PASTA + FCFS), slowdown moments factor:

* waiting slowdown  ``S_w = W/X``:  ``E[S_w] = E[W]·E[1/X]``,
  ``E[S_w²] = E[W²]·E[1/X²]`` — this is the paper's Theorem-1 convention;
* response slowdown ``S = (W+X)/X = 1 + S_w``: same variance, mean + 1.

Everything a task-assignment analysis needs is bundled in
:class:`MG1Metrics`, produced by :func:`mg1_metrics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..workloads.distributions import ServiceDistribution

__all__ = [
    "MG1Metrics",
    "mg1_metrics",
    "mg1_ps_mean_slowdown",
    "utilisation",
    "safe_inverse_moments",
]


def safe_inverse_moments(dist: ServiceDistribution) -> tuple[float, float]:
    """``(E[1/X], E[1/X^2])``, or ``inf`` where the moment diverges.

    For distributions whose density is positive at 0 (exponential,
    hyperexponential, …) the expected slowdown is genuinely infinite —
    arbitrarily small jobs see unbounded slowdown from any positive wait.
    Real traces have a minimum job size, so this only arises for idealised
    models; reporting ``inf`` keeps the waiting-time metrics usable.
    """
    try:
        inv1 = dist.inverse_moment
    except ValueError:
        return math.inf, math.inf
    try:
        inv2 = dist.inverse_second_moment
    except ValueError:
        return inv1, math.inf
    return inv1, inv2


def utilisation(arrival_rate: float, dist: ServiceDistribution) -> float:
    """ρ = λ·E[X]."""
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    return arrival_rate * dist.mean


@dataclass(frozen=True)
class MG1Metrics:
    """Closed-form steady-state metrics of one M/G/1 FCFS queue."""

    arrival_rate: float
    utilisation: float
    mean_wait: float
    second_moment_wait: float
    mean_response: float
    mean_queue_length: float
    #: E[W/X] — the paper's Theorem-1 "slowdown".
    mean_waiting_slowdown: float
    #: E[(W+X)/X] = 1 + E[W/X].
    mean_slowdown: float
    #: Var[W/X] = Var[(W+X)/X].
    var_slowdown: float

    @property
    def var_wait(self) -> float:
        return self.second_moment_wait - self.mean_wait**2


def mg1_metrics(arrival_rate: float, dist: ServiceDistribution) -> MG1Metrics:
    """Evaluate Theorem 1 for one FCFS host.

    Raises
    ------
    ValueError
        If ρ = λ·E[X] ≥ 1 (the queue is unstable — the cutoff search uses
        this as its feasibility boundary).
    """
    rho = utilisation(arrival_rate, dist)
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilisation {rho:.4f} >= 1")
    ew = arrival_rate * dist.second_moment / (2.0 * (1.0 - rho))
    ew2 = 2.0 * ew**2 + arrival_rate * dist.third_moment / (3.0 * (1.0 - rho))
    inv1, inv2 = safe_inverse_moments(dist)
    mean_wslow = ew * inv1
    var_slow = ew2 * inv2 - mean_wslow**2 if math.isfinite(inv2) else math.inf
    return MG1Metrics(
        arrival_rate=arrival_rate,
        utilisation=rho,
        mean_wait=ew,
        second_moment_wait=ew2,
        mean_response=ew + dist.mean,
        mean_queue_length=arrival_rate * ew,
        mean_waiting_slowdown=mean_wslow,
        mean_slowdown=1.0 + mean_wslow,
        var_slowdown=var_slow,
    )


def mg1_ps_mean_slowdown(arrival_rate: float, dist: ServiceDistribution) -> float:
    """Mean slowdown of an M/G/1 *Processor-Sharing* queue: ``1/(1 − ρ)``.

    The paper's footnote 1: PS is "ultimately fair in that every job
    experiences the same expected slowdown" — conditional response time is
    ``E[T | x] = x/(1 − ρ)`` for every size ``x``, independent of the
    service distribution.  The paper's model forbids time-sharing (huge
    memory footprints), so PS is a fairness *reference*, not a candidate
    policy; SITA-U-fair approximates its fairness without preemption.
    """
    rho = utilisation(arrival_rate, dist)
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilisation {rho:.4f} >= 1")
    return 1.0 / (1.0 - rho)
