"""M/G/h approximation — the analytic model of Least-Work-Left/Central-Queue.

The paper (section 3.3, citing Sozaki & Ross and Wolff) approximates the
M/G/h queue from the M/M/h queue by scaling with the service-time
variability:

    ``E[W_{M/G/h}] ≈ E[W_{M/M/h}] · (1 + C²)/2 = E[W_{M/M/h}] · E[X²]/(2·E[X]²)``

This is the classical Lee–Longton / Allen–Cunneen correction; it is exact
for h = 1 (it reduces to Pollaczek–Khinchine) and for exponential service.
The paper's text prints the scaling factor as ``E[X²]/E[X]²`` without the
factor 2 — we implement the standard (and h=1-exact) form and note the
discrepancy here; only the absolute scale, not any policy comparison,
is affected.

Key observation (paper): the mean wait is *still proportional to E[X²]*,
so LWL inherits the full variability of a heavy-tailed workload; its
advantage over Random is purely its optimal use of idle hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.distributions import ServiceDistribution
from .mg1 import safe_inverse_moments
from .mmh import mmh_metrics

__all__ = ["MGhMetrics", "mgh_metrics"]


@dataclass(frozen=True)
class MGhMetrics:
    """Approximate steady-state metrics of an M/G/h FCFS queue."""

    n_servers: int
    utilisation: float
    mean_wait: float
    mean_queue_length: float
    mean_response: float
    #: E[W/X] under the FCFS independence of W and the tagged job's size.
    mean_waiting_slowdown: float
    #: 1 + E[W/X].
    mean_slowdown: float


def mgh_metrics(
    arrival_rate: float, dist: ServiceDistribution, n_servers: int
) -> MGhMetrics:
    """Approximate the M/G/h queue fed at rate λ with service ``dist``."""
    base = mmh_metrics(arrival_rate, dist.mean, n_servers)
    scale = dist.second_moment / (2.0 * dist.mean**2)
    ew = base.mean_wait * scale
    mean_wslow = ew * safe_inverse_moments(dist)[0]
    return MGhMetrics(
        n_servers=n_servers,
        utilisation=base.utilisation,
        mean_wait=ew,
        mean_queue_length=arrival_rate * ew,
        mean_response=ew + dist.mean,
        mean_waiting_slowdown=mean_wslow,
        mean_slowdown=1.0 + mean_wslow,
    )
