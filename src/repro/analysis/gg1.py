"""G/G/1 approximations — the analytic model of Round-Robin splitting.

Round-Robin splitting of a Poisson(λ) stream hands each of ``h`` hosts an
Erlang-h renewal arrival process (interarrival SCV ``Ca² = 1/h``) at rate
λ/h — an ``E_h/G/1`` queue (paper section 3.3).  No exact formula exists
for general service, so we use the Allen–Cunneen / Kingman-style
approximation, exact in the M/G/1 case (``Ca² = 1``):

    ``E[W] ≈ (Ca² + Cs²)/2 · ρ/(1 − ρ) · E[X] · ... `` in the Marchal form
    ``E[W] ≈ E[W_{M/G/1}] · (Ca² + Cs²)/(1 + Cs²)``

which interpolates the PK mean wait by the arrival variability.  It also
covers the bursty-arrival regime of section 6 (``Ca² ≫ 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.distributions import ServiceDistribution
from .mg1 import mg1_metrics, safe_inverse_moments

__all__ = ["GG1Metrics", "gg1_metrics", "erlang_arrival_scv"]


def erlang_arrival_scv(n_hosts: int) -> float:
    """Interarrival SCV seen by one host under Round-Robin splitting."""
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    return 1.0 / n_hosts


@dataclass(frozen=True)
class GG1Metrics:
    """Approximate steady-state metrics of a G/G/1 FCFS queue."""

    utilisation: float
    arrival_scv: float
    mean_wait: float
    mean_response: float
    mean_waiting_slowdown: float
    mean_slowdown: float


def gg1_metrics(
    arrival_rate: float, dist: ServiceDistribution, arrival_scv: float
) -> GG1Metrics:
    """Approximate a G/G/1 queue with interarrival SCV ``arrival_scv``."""
    if arrival_scv < 0:
        raise ValueError(f"arrival_scv must be >= 0, got {arrival_scv}")
    base = mg1_metrics(arrival_rate, dist)
    cs2 = dist.scv
    ew = base.mean_wait * (arrival_scv + cs2) / (1.0 + cs2)
    mean_wslow = ew * safe_inverse_moments(dist)[0]
    return GG1Metrics(
        utilisation=base.utilisation,
        arrival_scv=arrival_scv,
        mean_wait=ew,
        mean_response=ew + dist.mean,
        mean_waiting_slowdown=mean_wslow,
        mean_slowdown=1.0 + mean_wslow,
    )
