"""Waiting-time *distributions* via Laplace-transform inversion.

The Pollaczek–Khinchine machinery in :mod:`.mg1` gives moments; this
module gives the full FCFS waiting-time distribution, so tail metrics
(the p95/p99 slowdowns the simulator reports) have analytic
counterparts:

* :class:`LaplaceEvaluator` — ``X*(s) = E[e^{−sX}]`` for any
  :class:`~repro.workloads.distributions.ServiceDistribution`: closed
  form for the exponential family, a fixed Stieltjes quadrature grid
  otherwise (vectorised over many ``s``);
* :func:`mg1_waiting_cdf` — the PK *transform* form
  ``W*(s) = (1−ρ)s / (s − λ(1 − X*(s)))`` inverted with the classic
  Abate–Whitt Euler algorithm (binomially accelerated alternating
  series);
* :func:`mg1_waiting_slowdown_ccdf` — ``P(W/X > y)`` by conditioning on
  the tagged job's size (independent of its wait under FCFS/PASTA):
  ``∫ P(W > y·x) dF(x)`` over a quantile grid — the analytic tail of the
  paper's slowdown metric.

Accuracy is validated against the exact M/M/1 waiting CDF
(``F(t) = 1 − ρ·e^{−μ(1−ρ)t}``) and against simulation in
``tests/analysis/test_transforms.py``.
"""

from __future__ import annotations

import math

import numpy as np

from ..workloads.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Hyperexponential,
    ServiceDistribution,
)
from .mg1 import utilisation

__all__ = [
    "LaplaceEvaluator",
    "mg1_waiting_cdf",
    "mg1_waiting_slowdown_ccdf",
    "mg1_waiting_slowdown_quantile",
]


class LaplaceEvaluator:
    """Evaluate ``X*(s) = E[e^{−sX}]`` for a service distribution.

    Closed forms where they exist; otherwise a 4000-point log-spaced
    Stieltjes grid built once at construction, so evaluating the
    transform at the many complex points an inversion needs stays cheap.
    Supports complex ``s`` with ``Re(s) >= 0``.
    """

    def __init__(self, dist: ServiceDistribution, n_grid: int = 4000) -> None:
        self.dist = dist
        self._kind = "numeric"
        if isinstance(dist, Exponential):
            self._kind = "exponential"
        elif isinstance(dist, Erlang):
            self._kind = "erlang"
        elif isinstance(dist, Hyperexponential):
            self._kind = "hyperexp"
        elif isinstance(dist, Deterministic):
            self._kind = "deterministic"
        else:
            lo = max(dist.lower, dist.ppf(1e-12), 1e-300)
            hi = dist.upper if math.isfinite(dist.upper) else dist.ppf(1.0 - 1e-12)
            if hi <= lo:
                # Degenerate numeric support: treat as a point mass.
                self._kind = "deterministic-numeric"
                self._atom = lo
                return
            edges = np.exp(np.linspace(math.log(lo), math.log(hi), n_grid + 1))
            cdf = np.array([dist.cdf(x) for x in edges])
            self._weights = np.diff(cdf)
            self._points = np.sqrt(edges[:-1] * edges[1:])
            # Mass the grid may have missed at the extremes.
            self._w_lo = cdf[0]
            self._w_hi = 1.0 - cdf[-1]

    def __call__(self, s: complex) -> complex:
        return complex(self.batch(np.asarray([s], dtype=complex))[0])

    def batch(self, s: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over an array of complex ``s``."""
        s = np.asarray(s, dtype=complex)
        if self._kind == "exponential":
            mu = 1.0 / self.dist.mu
            return mu / (mu + s)
        if self._kind == "erlang":
            stage = 1.0 / (self.dist.mu / self.dist.n)
            return (stage / (stage + s)) ** self.dist.n
        if self._kind == "hyperexp":
            rates = 1.0 / self.dist.means
            return np.sum(
                self.dist.probs[None, :] * (rates[None, :] / (rates[None, :] + s[:, None])),
                axis=1,
            )
        if self._kind == "deterministic":
            return np.exp(-s * self.dist.value)
        if self._kind == "deterministic-numeric":
            return np.exp(-s * self._atom)
        out = np.empty(s.shape, dtype=complex)
        # Chunk so the (chunk × grid) matrix stays cache-friendly.
        chunk = max(1, 2_000_000 // self._points.size)
        for start in range(0, s.size, chunk):
            block = s[start : start + chunk, None]
            e = np.exp(-block * self._points[None, :])
            out[start : start + chunk] = e @ self._weights
            # Endpoint corrections: treat missed mass as atoms at the edges.
            out[start : start + chunk] += self._w_lo * e[:, 0] + self._w_hi * e[:, -1]
        return out


def _abate_whitt_euler_batch(
    transform_batch, ts: np.ndarray, m: int = 15, n: int = 30
) -> np.ndarray:
    """Invert a Laplace transform at every ``t > 0`` in ``ts`` (Abate–Whitt
    EULER), with one batched transform evaluation for all contour points.

    ``transform_batch`` maps a complex array to the transform values; uses
    the alternating series on the Bromwich contour with binomial (Euler)
    acceleration of the last ``m`` partial sums.
    """
    ts = np.asarray(ts, dtype=float)
    if np.any(ts <= 0):
        raise ValueError("inversion requires t > 0")
    a = 18.4  # controls the discretisation error (~1e-8)
    ks = np.arange(n + m + 1)
    # s[i, k] = a/(2 t_i) + i·kπ/t_i — all contour points, all targets.
    s = a / (2.0 * ts)[:, None] + 1j * (ks[None, :] * math.pi / ts[:, None])
    vals = transform_batch(s.ravel()).reshape(s.shape).real
    signs = np.where(ks % 2 == 0, 1.0, -1.0)
    terms = vals * signs[None, :]
    terms[:, 0] *= 0.5
    partial = np.cumsum(terms, axis=1)
    weights = np.array([math.comb(m, j) for j in range(m + 1)], dtype=float)
    accel = partial[:, n : n + m + 1] @ weights / weights.sum()
    return np.exp(a / 2.0) / ts * accel


def _abate_whitt_euler(transform, t: float, m: int = 15, n: int = 30) -> float:
    """Scalar convenience wrapper around :func:`_abate_whitt_euler_batch`."""
    if t <= 0:
        raise ValueError(f"inversion requires t > 0, got {t}")

    def batch(s_flat: np.ndarray) -> np.ndarray:
        return np.asarray([transform(si) for si in s_flat], dtype=complex)

    return float(_abate_whitt_euler_batch(batch, np.asarray([t]), m, n)[0])


def mg1_waiting_cdf(
    arrival_rate: float,
    dist: ServiceDistribution,
    t,
    evaluator: LaplaceEvaluator | None = None,
) -> np.ndarray:
    """``P(W <= t)`` for the M/G/1 FCFS waiting time, by PK inversion.

    ``t`` may be a scalar or array; ``t = 0`` returns the atom ``1 − ρ``.
    Pass a prebuilt ``evaluator`` to amortise the quadrature grid across
    many calls.
    """
    rho = utilisation(arrival_rate, dist)
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilisation {rho:.4f} >= 1")
    lt = evaluator if evaluator is not None else LaplaceEvaluator(dist)

    def w_over_s_batch(s: np.ndarray) -> np.ndarray:
        # W*(s)/s — the transform of the CDF.
        return (1.0 - rho) / (s - arrival_rate * (1.0 - lt.batch(s)))

    ts = np.atleast_1d(np.asarray(t, dtype=float))
    out = np.empty(ts.shape)
    pos = ts > 0
    out[ts < 0] = 0.0
    out[ts == 0] = 1.0 - rho
    if np.any(pos):
        inverted = _abate_whitt_euler_batch(w_over_s_batch, ts[pos])
        out[pos] = np.clip(inverted, 0.0, 1.0)
    return out if np.ndim(t) else float(out[0])


def _interpolated_waiting_cdf(
    arrival_rate: float,
    dist: ServiceDistribution,
    evaluator: LaplaceEvaluator,
    t_min: float,
    t_max: float,
    n_grid: int = 200,
):
    """A cheap callable CDF: invert once on a log grid, interpolate after.

    The waiting CDF is smooth and monotone, so 200 grid inversions plus
    log-t interpolation reproduce it to ~1e-3 at a fraction of the cost of
    per-point inversion.
    """
    t_grid = np.logspace(math.log10(max(t_min, 1e-12)), math.log10(t_max), n_grid)
    cdf_grid = np.asarray(
        mg1_waiting_cdf(arrival_rate, dist, t_grid, evaluator=evaluator)
    )
    cdf_grid = np.maximum.accumulate(cdf_grid)
    log_t = np.log(t_grid)
    atom = mg1_waiting_cdf(arrival_rate, dist, 0.0, evaluator=evaluator)

    def cdf(t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        out = np.interp(
            np.log(np.maximum(t, t_grid[0])), log_t, cdf_grid
        )
        out = np.where(t <= 0.0, np.where(t < 0.0, 0.0, atom), out)
        return out

    return cdf


def mg1_waiting_slowdown_ccdf(
    arrival_rate: float,
    dist: ServiceDistribution,
    y,
    n_quantiles: int = 200,
) -> np.ndarray:
    """``P(W/X > y)`` for a tagged M/G/1 job, by conditioning on its size.

    Under FCFS/PASTA a job's waiting time is independent of its own size,
    so ``P(W/X > y) = ∫ P(W > y·x) dF(x)``; the integral uses the size
    distribution's quantile grid and a grid-interpolated waiting CDF.
    The paper's response-based slowdown satisfies
    ``P(S > 1 + y) = P(W/X > y)``.
    """
    lt = LaplaceEvaluator(dist)
    qs = (np.arange(n_quantiles) + 0.5) / n_quantiles
    xs = np.array([dist.ppf(q) for q in qs])
    ys = np.atleast_1d(np.asarray(y, dtype=float))
    pos = ys[ys > 0]
    out = np.empty(ys.shape)
    out[ys <= 0] = np.where(
        ys[ys <= 0] < 0, 1.0, utilisation(arrival_rate, dist)
    )
    if pos.size:
        t_min = float(pos.min() * xs.min())
        t_max = float(pos.max() * xs.max())
        cdf = _interpolated_waiting_cdf(arrival_rate, dist, lt, t_min, t_max)
        thresholds = np.outer(pos, xs)
        vals = 1.0 - cdf(thresholds.ravel()).reshape(thresholds.shape)
        out[ys > 0] = np.mean(vals, axis=1)
    return out if np.ndim(y) else float(out[0])


def mg1_waiting_slowdown_quantile(
    arrival_rate: float,
    dist: ServiceDistribution,
    q: float,
    n_quantiles: int = 200,
) -> float:
    """The ``q``-quantile of the waiting slowdown ``W/X`` (e.g. q = 0.95).

    Geometric bisection on :func:`mg1_waiting_slowdown_ccdf`; the analytic
    counterpart of the simulator's ``p95_slowdown``/``p99_slowdown``
    (which are response-based: ``p_q(S) = 1 + p_q(W/X)``).
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0,1), got {q}")
    target = 1.0 - q

    # P(W/X > 0) = P(W > 0) = rho.
    rho = utilisation(arrival_rate, dist)
    if target >= rho:
        return 0.0
    # One batched CCDF curve on a wide log grid of y, then interpolate.
    y_grid = np.logspace(-6.0, 9.0, 160)
    ccdf_vals = np.asarray(
        mg1_waiting_slowdown_ccdf(arrival_rate, dist, y_grid, n_quantiles)
    )
    if ccdf_vals[-1] > target:
        raise ValueError("slowdown quantile out of numeric range")
    return float(np.exp(np.interp(-target, -ccdf_vals, np.log(y_grid))))
