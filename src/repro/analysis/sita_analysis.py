"""Analytic evaluation of SITA policies — per-host M/G/1 on size slices.

Under a SITA policy with cutoffs ``c_1 < … < c_{h−1}``, host ``i`` receives
a thinned Poisson stream (rate ``λ·p_i`` with ``p_i = P(c_{i−1} < X ≤ c_i)``)
of jobs whose sizes follow the *conditional* distribution on that interval.
Each host is therefore an independent M/G/1 FCFS queue and Theorem 1
applies per host; mixing over the job classes gives the system-wide
metrics the paper reports:

* ``E[S] = Σ_i p_i · E[S_i]``
* ``E[S²] = Σ_i p_i · E[S_i²]``, so ``Var[S] = E[S²] − E[S]²``
* per-host utilisation ``ρ_i = λ·p_i·E[X_i]`` — the *load profile* that
  figure 5 plots, and whose feasibility (``ρ_i < 1`` for all i) bounds
  the cutoff search space.

This module is the engine behind figures 5, 8 and 9 and behind the
analytic cutoff searches in :mod:`repro.core.cutoffs`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..workloads.distributions import ServiceDistribution
from .mg1 import MG1Metrics, mg1_metrics, safe_inverse_moments

__all__ = ["SITAHost", "SITAAnalysis", "analyze_sita", "sita_host_loads"]


@dataclass(frozen=True)
class SITAHost:
    """One host's slice of the size axis and its M/G/1 metrics."""

    host: int
    lo: float
    hi: float
    #: fraction of *jobs* routed here.
    job_fraction: float
    #: fraction of total *work* routed here.
    load_fraction: float
    #: host utilisation ρ_i.
    utilisation: float
    #: per-host queue metrics (None when the slice is empty).
    mg1: MG1Metrics | None
    #: expected response slowdown of this size class (nominal sizes);
    #: NaN for an empty slice.
    class_mean_slowdown: float = math.nan


@dataclass(frozen=True)
class SITAAnalysis:
    """System-wide analytic metrics of a SITA policy."""

    cutoffs: tuple[float, ...]
    hosts: tuple[SITAHost, ...]
    mean_slowdown: float
    var_slowdown: float
    mean_waiting_slowdown: float
    mean_response: float
    mean_wait: float

    @property
    def feasible(self) -> bool:
        return all(h.utilisation < 1.0 for h in self.hosts)

    def class_mean_slowdowns(self) -> tuple[float, ...]:
        """Expected slowdown per size class (equal ⇔ SITA-U-fair)."""
        return tuple(h.class_mean_slowdown for h in self.hosts)


def _intervals(
    dist: ServiceDistribution, cutoffs: Sequence[float]
) -> list[tuple[float, float]]:
    edges = [0.0, *cutoffs, math.inf]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def sita_host_loads(
    arrival_rate: float, dist: ServiceDistribution, cutoffs: Sequence[float]
) -> np.ndarray:
    """Per-host utilisations ρ_i (cheap feasibility probe for searches)."""
    return np.array(
        [
            arrival_rate * dist.partial_moment(1.0, lo, hi)
            for lo, hi in _intervals(dist, cutoffs)
        ]
    )


def analyze_sita(
    arrival_rate: float,
    dist: ServiceDistribution,
    cutoffs: Sequence[float],
    host_speeds: Sequence[float] | None = None,
) -> SITAAnalysis:
    """Evaluate a SITA policy analytically.

    Parameters
    ----------
    arrival_rate:
        Rate λ of the *total* Poisson job stream.
    dist:
        Distribution of job sizes in the full stream.
    cutoffs:
        The ``h − 1`` increasing size cutoffs.
    host_speeds:
        Optional per-host speeds (extension: heterogeneous machines, e.g.
        a C90 next to a J90).  Host ``i`` serves its slice as an M/G/1 on
        the *scaled* distribution ``X_i / v_i``; per-job slowdown remains
        response over *nominal* size, so a job on a speed-2 host can have
        slowdown below 1.

    Raises
    ------
    ValueError
        If any host's utilisation is ≥ 1 (infeasible cutoffs).  Use
        :func:`sita_host_loads` first to probe feasibility without the
        exception.
    """
    c = np.asarray(cutoffs, dtype=float)
    if c.size and np.any(np.diff(c) <= 0):
        raise ValueError(f"cutoffs must be strictly increasing, got {c}")
    if host_speeds is None:
        speeds = np.ones(c.size + 1)
    else:
        speeds = np.asarray(host_speeds, dtype=float)
        if speeds.shape != (c.size + 1,):
            raise ValueError(
                f"host_speeds must have {c.size + 1} entries, got {speeds.shape}"
            )
        if np.any(speeds <= 0):
            raise ValueError("host speeds must be positive")
    hosts: list[SITAHost] = []
    mean_s = 0.0
    mean_s2 = 0.0
    mean_wslow = 0.0
    mean_resp = 0.0
    mean_wait = 0.0
    total_mean = dist.mean
    for i, (lo, hi) in enumerate(_intervals(dist, c)):
        p = dist.prob_interval(lo, hi)
        if p <= 0.0:
            hosts.append(
                SITAHost(
                    host=i, lo=lo, hi=hi, job_fraction=0.0,
                    load_fraction=0.0, utilisation=0.0, mg1=None,
                )
            )
            continue
        v = float(speeds[i])
        cond = dist.conditional(lo, hi)
        served = cond if v == 1.0 else cond.scaled(1.0 / v)
        lam_i = arrival_rate * p
        rho_i = lam_i * served.mean
        if rho_i >= 1.0:
            raise ValueError(
                f"infeasible cutoffs {c}: host {i} utilisation {rho_i:.4f} >= 1"
            )
        m = mg1_metrics(lam_i, served)
        # Slowdown uses the *nominal* size: S = (W + X/v)/X = W/X + 1/v.
        inv1, inv2 = safe_inverse_moments(cond)
        es_i = m.mean_wait * inv1 + 1.0 / v
        hosts.append(
            SITAHost(
                host=i,
                lo=lo,
                hi=hi,
                job_fraction=p,
                load_fraction=dist.partial_moment(1.0, lo, hi) / total_mean,
                utilisation=rho_i,
                mg1=m,
                class_mean_slowdown=es_i,
            )
        )
        es2 = (
            m.second_moment_wait * inv2
            + (2.0 / v) * m.mean_wait * inv1
            + 1.0 / v**2
        )
        mean_s += p * es_i
        mean_s2 += p * es2
        mean_wslow += p * (m.mean_wait * inv1)
        mean_resp += p * m.mean_response
        mean_wait += p * m.mean_wait
    var_s = (
        mean_s2 - mean_s**2
        if math.isfinite(mean_s2) and math.isfinite(mean_s)
        else math.inf
    )
    return SITAAnalysis(
        cutoffs=tuple(float(x) for x in c),
        hosts=tuple(hosts),
        mean_slowdown=mean_s,
        var_slowdown=var_s,
        mean_waiting_slowdown=mean_wslow,
        mean_response=mean_resp,
        mean_wait=mean_wait,
    )
