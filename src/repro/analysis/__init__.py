"""Queueing analysis substrate: M/G/1, M/M/h, M/G/h, G/G/1, SITA."""

from .gg1 import GG1Metrics, erlang_arrival_scv, gg1_metrics
from .mg1 import MG1Metrics, mg1_metrics, mg1_ps_mean_slowdown, utilisation
from .mgh import MGhMetrics, mgh_metrics
from .mmh import MMhMetrics, erlang_b, erlang_c, mmh_metrics
from .policies import (
    PolicyPrediction,
    arrival_rate_for_load,
    predict_grouped_sita,
    predict_lwl,
    predict_lwl_bursty,
    predict_random,
    predict_round_robin,
    predict_sita,
    predict_sita_bursty,
)
from .sita_analysis import SITAAnalysis, SITAHost, analyze_sita, sita_host_loads
from .transforms import LaplaceEvaluator, mg1_waiting_cdf, mg1_waiting_slowdown_ccdf

__all__ = [
    "GG1Metrics",
    "erlang_arrival_scv",
    "gg1_metrics",
    "MG1Metrics",
    "mg1_metrics",
    "mg1_ps_mean_slowdown",
    "utilisation",
    "MGhMetrics",
    "mgh_metrics",
    "MMhMetrics",
    "erlang_b",
    "erlang_c",
    "mmh_metrics",
    "PolicyPrediction",
    "arrival_rate_for_load",
    "predict_grouped_sita",
    "predict_lwl",
    "predict_lwl_bursty",
    "predict_random",
    "predict_round_robin",
    "predict_sita",
    "predict_sita_bursty",
    "SITAAnalysis",
    "SITAHost",
    "analyze_sita",
    "sita_host_loads",
    "LaplaceEvaluator",
    "mg1_waiting_cdf",
    "mg1_waiting_slowdown_ccdf",
]
