"""M/M/h analysis (Erlang-C) — building block for the M/G/h approximation.

For ``h`` identical exponential servers with total offered load
``a = λ/μ`` and per-server utilisation ``ρ = a/h < 1``:

* ``ErlangC(h, a)`` is the probability an arrival must queue;
* ``E[W] = ErlangC / (hμ − λ)``; ``E[Q] = λ E[W]`` (Little).

The Erlang-C probability is computed through the numerically stable
recurrence on the Erlang-B blocking probability
``B(0)=1; B(k) = a·B(k−1) / (k + a·B(k−1))``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["erlang_b", "erlang_c", "MMhMetrics", "mmh_metrics"]


def erlang_b(n_servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability for ``n_servers`` and load ``a``."""
    if n_servers < 1:
        raise ValueError(f"n_servers must be >= 1, got {n_servers}")
    if offered_load <= 0:
        raise ValueError(f"offered_load must be positive, got {offered_load}")
    b = 1.0
    for k in range(1, n_servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def erlang_c(n_servers: int, offered_load: float) -> float:
    """Erlang-C queueing probability (requires ``offered_load < n_servers``)."""
    if offered_load >= n_servers:
        raise ValueError(
            f"unstable system: offered load {offered_load} >= {n_servers} servers"
        )
    b = erlang_b(n_servers, offered_load)
    rho = offered_load / n_servers
    return b / (1.0 - rho * (1.0 - b))


@dataclass(frozen=True)
class MMhMetrics:
    """Steady-state metrics of an M/M/h FCFS queue."""

    n_servers: int
    utilisation: float
    prob_wait: float
    mean_wait: float
    mean_queue_length: float
    mean_response: float


def mmh_metrics(arrival_rate: float, mean_service: float, n_servers: int) -> MMhMetrics:
    """Evaluate the M/M/h queue at rate λ with mean service E[X]."""
    if arrival_rate <= 0 or mean_service <= 0:
        raise ValueError("arrival_rate and mean_service must be positive")
    a = arrival_rate * mean_service
    rho = a / n_servers
    if rho >= 1.0:
        raise ValueError(f"unstable system: utilisation {rho:.4f} >= 1")
    c = erlang_c(n_servers, a)
    mu = 1.0 / mean_service
    ew = c / (n_servers * mu - arrival_rate)
    return MMhMetrics(
        n_servers=n_servers,
        utilisation=rho,
        prob_wait=c,
        mean_wait=ew,
        mean_queue_length=arrival_rate * ew,
        mean_response=ew + mean_service,
    )
