"""Shared-computation SITA cutoff-search engine.

The paper's headline policies — SITA-U-opt and SITA-U-fair — are defined
by *searches* over the cutoff axis, and those searches dominate sweep
cost: every figure point re-derives cutoffs from scratch, and the
opt/fair pair walks the *same* candidate axis twice.  This module makes
both the simulation-based and the analytic searches share their interior
points instead of recomputing them:

* **Simulation pair** (:func:`sim_cutoff_pair`): one batched
  :class:`~repro.sim.fast.SitaScanKernel` pass scores every candidate for
  the opt metric *and* the fair gap — no per-candidate
  ``SimulationResult``/``Summary`` — and a golden-section refinement then
  sharpens each winner inside its grid bracket, reusing the kernel's
  partition memo (the objectives are step functions of the cutoff, so
  most refinement evaluations are cache hits).

* **Analytic pair** (:func:`analytic_cutoff_pair`): ``opt_cutoff`` and
  ``fair_cutoff`` both drive :func:`~repro.analysis.sita_analysis.analyze_sita`
  over a log-cutoff axis.  The truncated-distribution partial moments
  inside it depend only on ``(dist, cutoff)`` — not on load — so they are
  memoised in a bounded, explicitly-keyed :class:`MomentMemo` shared
  across the opt/fair pair, across loads, and across policies within a
  sweep.  :func:`analyze_sita_cached` rebuilds the full
  :class:`~repro.analysis.sita_analysis.SITAAnalysis` from the memoised
  moments with the exact floating-point operations of the direct path,
  so cached and direct analyses agree bit for bit.

The memo lives **per process**.  Under ``repro run --workers N`` each
worker therefore builds its own — still a win: a worker computes the
opt+fair pair for every sweep point it is handed (one shared axis per
pair), experiments that sweep loads over a fixed distribution hit the
cross-load cache inside each worker, and the memo holds only scalars so
duplicating it costs a few kilobytes, not a recomputation.  Sharing it
across processes would mean locking or serialising distribution objects
— more expensive than the arithmetic it saves.

``repro.core.cutoffs`` keeps the public entry points (``opt_cutoff``,
``fair_cutoff``, ``sim_opt_cutoff``, ``sim_fair_cutoff``) as thin
wrappers over this engine with unchanged signatures.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from ..analysis.mg1 import MG1Metrics, safe_inverse_moments
from ..analysis.sita_analysis import SITAAnalysis, SITAHost
from ..sim.contract import kernel_contract
from ..sim.fast import SitaScanKernel, SitaScanResult, simulate_fast
from ..workloads.distributions import Empirical, ServiceDistribution
from ..workloads.traces import Trace

__all__ = [
    "MomentMemo",
    "SimCutoffPair",
    "analytic_cutoff_pair",
    "analyze_sita_cached",
    "candidate_cutoffs",
    "clear_search_memo",
    "search_memo_stats",
    "sim_cutoff_pair",
    "sim_pair_reference",
]

#: Refinement tolerance on the log-size axis for the analytic searches
#: (matches the pre-engine ``minimize_scalar``/``brentq`` tolerances).
_XTOL = 1e-10

#: Refinement tolerance on the log-size axis for the *simulation*
#: searches.  The simulated objectives are step functions of the cutoff
#: (they only change when the cutoff crosses an observed size), so there
#: is nothing to resolve below the inter-size spacing; 1e-2 is ~40× finer
#: than a 40-point grid over four decades while keeping the refinement to
#: about ten evaluations per objective — some of them partition-memo hits.
_SIM_REFINE_TOL = 1e-2

_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


# ----------------------------------------------------------------------
# golden-section refinement (shared by the sim and analytic fallbacks)
# ----------------------------------------------------------------------


def _golden_min(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float,
    x0: float,
    f0: float,
) -> tuple[float, float]:
    """Golden-section minimisation of ``f`` on ``[lo, hi]``.

    Seeded with the incumbent ``(x0, f0)`` and returning the best point
    *evaluated* (strictly better than the incumbent, else the incumbent
    itself) — so a refinement can only improve on the grid argmin, never
    regress, and ties keep the grid value bit-identical.
    """
    best_x, best_f = x0, f0
    a, b = lo, hi
    c = b - _INVPHI * (b - a)
    d = a + _INVPHI * (b - a)
    fc, fd = f(c), f(d)
    if fc < best_f:
        best_x, best_f = c, fc
    if fd < best_f:
        best_x, best_f = d, fd
    while (b - a) > tol:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _INVPHI * (b - a)
            fc = f(c)
            if fc < best_f:
                best_x, best_f = c, fc
        else:
            a, c, fc = c, d, fd
            d = a + _INVPHI * (b - a)
            fd = f(d)
            if fd < best_f:
                best_x, best_f = d, fd
    return best_x, best_f


# ----------------------------------------------------------------------
# simulation-based pair search
# ----------------------------------------------------------------------


@kernel_contract(
    shapes={"return": ("m",)},
    dtypes={"return": "float64"},
    writes=(),
    contiguous=("return",),
)
def candidate_cutoffs(trace: Trace, n_candidates: int) -> np.ndarray:
    """Log-spaced candidate cutoffs spanning the observed sizes.

    Raises a clear ``ValueError`` for degenerate training traces instead
    of letting ``math.log`` blow up (non-positive minimum size) or
    silently producing a zero-width grid (all sizes equal).
    """
    if n_candidates < 2:
        raise ValueError(f"need at least 2 candidates, got {n_candidates}")
    s = trace.service_times
    lo, hi = float(np.min(s)), float(np.max(s))
    if not math.isfinite(lo) or lo <= 0.0:
        raise ValueError(
            f"training trace {trace.name!r} has a non-positive minimum "
            f"service time ({lo:g}); a log-spaced cutoff grid needs "
            "strictly positive sizes"
        )
    if lo * 1.001 >= hi * 0.999:
        raise ValueError(
            f"training trace {trace.name!r} has (nearly) identical service "
            f"times (min {lo:g}, max {hi:g}); the candidate cutoff grid "
            "would have zero width — no 2-host split can be searched"
        )
    return np.exp(np.linspace(math.log(lo * 1.001), math.log(hi * 0.999), n_candidates))


@dataclass(frozen=True)
class SimCutoffPair:
    """Result of one shared opt+fair simulation search."""

    #: refined opt cutoff (grid argmin when ``refine=False``).
    opt: float
    #: refined fair cutoff.
    fair: float
    #: grid argmin indices — bit-identical to the per-candidate loop's.
    opt_index: int
    fair_index: int
    candidates: np.ndarray
    #: metric value at ``opt`` / gap value at ``fair``.
    opt_metric: float
    fair_gap: float
    #: the full per-candidate scan (shared by both searches).
    scan: SitaScanResult


def sim_cutoff_pair(
    train: Trace,
    metric: str = "mean_slowdown",
    n_candidates: int = 40,
    warmup_fraction: float = 0.05,
    refine: bool = True,
) -> SimCutoffPair:
    """Run the opt and fair simulation searches off **one** batched scan.

    The scan scores every candidate for both objectives in a single pass
    (two subset Lindley recursions per distinct partition); the grid
    argmins are bit-identical to the historical per-candidate
    ``simulate_fast`` loops on the same grid.  With ``refine=True`` each
    winner is sharpened by golden section inside its grid bracket — the
    refinement shares the kernel's partition memo, so revisiting a flat
    step of the objective is free.
    """
    candidates = candidate_cutoffs(train, n_candidates)
    kernel = SitaScanKernel(train, metric=metric, warmup_fraction=warmup_fraction)
    scan = kernel.scan(candidates)

    scores = scan.values
    if not np.any(np.isfinite(scores)):
        raise ValueError("no candidate cutoff produced a finite metric")
    opt_index = int(np.argmin(scores))

    gaps = scan.gap
    if not np.any(np.isfinite(gaps)):
        raise ValueError("no candidate cutoff produced two non-empty classes")
    fair_index = int(np.argmin(gaps))

    opt_c, opt_f = float(candidates[opt_index]), float(scores[opt_index])
    fair_c, fair_f = float(candidates[fair_index]), float(gaps[fair_index])
    if refine:
        opt_c, opt_f = _refine_sim(
            kernel, candidates, opt_index, opt_c, opt_f,
            lambda row: row[0],
        )
        fair_c, fair_f = _refine_sim(
            kernel, candidates, fair_index, fair_c, fair_f,
            lambda row: row[3],
        )
    return SimCutoffPair(
        opt=opt_c,
        fair=fair_c,
        opt_index=opt_index,
        fair_index=fair_index,
        candidates=candidates,
        opt_metric=opt_f,
        fair_gap=fair_f,
        scan=scan,
    )


def _refine_sim(
    kernel: SitaScanKernel,
    candidates: np.ndarray,
    index: int,
    x0: float,
    f0: float,
    objective: Callable[[tuple], float],
) -> tuple[float, float]:
    """Golden-section sharpening of a grid winner inside its bracket."""
    lo = float(candidates[max(0, index - 1)])
    hi = float(candidates[min(candidates.size - 1, index + 1)])

    def f(log_c: float) -> float:
        return objective(kernel.evaluate(math.exp(log_c)))

    log_best, best_f = _golden_min(
        f, math.log(lo), math.log(hi), _SIM_REFINE_TOL, math.log(x0), f0
    )
    # The incumbent is tracked in log space; map back through the cutoff
    # only if refinement strictly improved, keeping the grid candidate
    # bit-identical otherwise (exp(log(x)) need not round-trip).
    if best_f < f0:
        return float(math.exp(log_best)), best_f
    return x0, f0


def sim_pair_reference(
    train: Trace,
    metric: str = "mean_slowdown",
    n_candidates: int = 40,
    warmup_fraction: float = 0.05,
) -> tuple[float, float]:
    """The pre-engine per-candidate search pair, kept as the reference.

    Two full ``simulate_fast`` passes (policy, Lindley, result, summary)
    per candidate — exactly the historical ``sim_opt_cutoff`` +
    ``sim_fair_cutoff`` loops.  Used by the scan-vs-loop equivalence
    tests and by ``repro bench`` to measure the ``search.sim_pair``
    speedup against the old path in the same run.
    """
    from .policies.sita import SITAPolicy

    candidates = candidate_cutoffs(train, n_candidates)
    scores = []
    for c in candidates:
        policy = SITAPolicy([c], name="sita-search")
        try:
            result = simulate_fast(train, policy, 2, rng=0)
        except ValueError:
            scores.append(math.inf)
            continue
        value = getattr(result.summary(warmup_fraction=warmup_fraction), metric)
        scores.append(value if math.isfinite(value) else math.inf)
    score_arr = np.array(scores)
    if not np.any(np.isfinite(score_arr)):
        raise ValueError("no candidate cutoff produced a finite metric")
    opt_c = float(candidates[int(np.nanargmin(score_arr))])

    best_c = None
    best_gap = math.inf
    for c in candidates:
        policy = SITAPolicy([c], name="sita-search")
        result = simulate_fast(train, policy, 2, rng=0)
        trimmed = result.trimmed(warmup_fraction)
        try:
            s_short, s_long = trimmed.class_mean_slowdowns(c)
        except ValueError:
            continue  # degenerate split
        gap = abs(math.log(s_short / s_long))
        if gap < best_gap:
            best_gap, best_c = gap, float(c)
    if best_c is None:
        raise ValueError("no candidate cutoff produced two non-empty classes")
    return opt_c, best_c


# ----------------------------------------------------------------------
# analytic moment memo
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _IntervalMoments:
    """Truncated-distribution moments of one size slice ``(lo, hi]``.

    Everything :func:`~repro.analysis.sita_analysis.analyze_sita` derives
    from the distribution for one host — and none of it depends on the
    arrival rate, which is why the memo can be shared across loads.
    """

    p: float
    #: unconditional partial first moment (load numerator).
    work: float
    mean: float
    m2: float
    m3: float
    inv1: float
    inv2: float


@dataclass(frozen=True)
class _CutoffMoments:
    """Both slices of a 2-host cutoff plus the parent mean."""

    dist_mean: float
    short: _IntervalMoments | None
    long: _IntervalMoments | None


def _cutoff_key(dist: ServiceDistribution, cutoff: float) -> float | int:
    """The memo key a cutoff reduces to for ``dist``.

    For :class:`~repro.workloads.distributions.Empirical` distributions
    every partial moment is a function of the cutoff's **size rank**
    only — ``searchsorted`` on the sorted sample, exactly the slicing
    ``partial_moment``/``conditional`` perform — so any two cutoffs
    falling between the same adjacent observed sizes share one memo row.
    That makes the 1e-10-resolution refinement steps of the analytic
    searches (which revisit the same step of the piecewise-constant
    moment functions dozens of times) memo hits instead of O(n) moment
    passes.  Continuous distributions key by the cutoff value itself.
    """
    if isinstance(dist, Empirical):
        return int(np.searchsorted(dist.values, cutoff, side="right"))
    return float(cutoff)


def _interval_moments(
    dist: ServiceDistribution, lo: float, hi: float
) -> _IntervalMoments | None:
    p = dist.prob_interval(lo, hi)
    if p <= 0.0:
        return None
    cond = dist.conditional(lo, hi)
    inv1, inv2 = safe_inverse_moments(cond)
    return _IntervalMoments(
        p=p,
        work=dist.partial_moment(1.0, lo, hi),
        mean=cond.mean,
        m2=cond.second_moment,
        m3=cond.third_moment,
        inv1=inv1,
        inv2=inv2,
    )


class MomentMemo:
    """Bounded two-level LRU memo of truncated-distribution moments.

    Keyed by distribution **identity** (the same convention as the
    experiment layer's trace cache — a distribution object is immutable
    for its lifetime, and value-hashing an ``Empirical`` would cost the
    O(n) pass the memo exists to avoid) × the cutoff's reduced key
    (:func:`_cutoff_key`: size rank for empirical samples, the value
    itself for continuous distributions).  Entries hold
    seven scalars per slice, so even a full memo is a few hundred
    kilobytes.  ``max_dists`` bounds how many distribution objects are
    kept alive by the memo's strong references; ``max_cutoffs`` bounds
    the per-distribution axis (a sweep's shared axis plus every
    refinement point fits comfortably).
    """

    def __init__(self, max_dists: int = 8, max_cutoffs: int = 4096) -> None:
        if max_dists < 1 or max_cutoffs < 1:
            raise ValueError("memo bounds must be >= 1")
        self.max_dists = max_dists
        self.max_cutoffs = max_cutoffs
        self._dists: OrderedDict[
            int,
            tuple[
                ServiceDistribution,
                float,
                OrderedDict[float | int, _CutoffMoments],
            ],
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, dist: ServiceDistribution, cutoff: float) -> _CutoffMoments:
        """Moments of both slices at ``cutoff``, computing on a miss."""
        key = id(dist)
        node = self._dists.get(key)
        if node is None:
            node = (dist, dist.mean, OrderedDict())
            self._dists[key] = node
            while len(self._dists) > self.max_dists:
                self._dists.popitem(last=False)
        else:
            self._dists.move_to_end(key)
        _, dist_mean, per_cutoff = node
        c = float(cutoff)
        ckey = _cutoff_key(dist, c)
        entry = per_cutoff.get(ckey)
        if entry is not None:
            per_cutoff.move_to_end(ckey)
            self.hits += 1
            return entry
        self.misses += 1
        entry = _CutoffMoments(
            dist_mean=dist_mean,
            short=_interval_moments(dist, 0.0, c),
            long=_interval_moments(dist, c, math.inf),
        )
        per_cutoff[ckey] = entry
        while len(per_cutoff) > self.max_cutoffs:
            per_cutoff.popitem(last=False)
        return entry

    def discard(self, dist: ServiceDistribution) -> bool:
        """Drop one distribution's slice from the memo, if present.

        The memo holds a strong reference to every distribution it has
        seen, so a caller that churns through short-lived distributions
        (the online dispatcher re-fits from a sliding window, building a
        fresh ``Empirical`` per re-fit) should release each retired one
        explicitly rather than waiting for LRU eviction to unpin it.
        Returns whether anything was dropped.
        """
        return self._dists.pop(id(dist), None) is not None

    def clear(self) -> None:
        self._dists.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "n_dists": len(self._dists),
            "n_cutoffs": sum(len(node[2]) for node in self._dists.values()),
        }


#: The process-wide memo used by the analytic searches by default.
_MOMENT_MEMO = MomentMemo()


def clear_search_memo() -> None:
    """Drop every memoised moment (and the distribution references)."""
    _MOMENT_MEMO.clear()


def search_memo_stats() -> dict:
    """Hit/miss counters and sizes of the process-wide memo."""
    return _MOMENT_MEMO.stats()


def analyze_sita_cached(
    arrival_rate: float,
    dist: ServiceDistribution,
    cutoff: float,
    host_speeds: Sequence[float] | None = None,
    memo: MomentMemo | None = None,
) -> SITAAnalysis:
    """Memoised 2-host :func:`~repro.analysis.sita_analysis.analyze_sita`.

    The truncated-distribution moments are looked up in (or inserted
    into) the memo; the per-load M/G/1 arithmetic is then replayed with
    the exact floating-point operations of the direct path, so the
    returned analysis — every field, including the nested
    :class:`~repro.analysis.mg1.MG1Metrics` — is bit-identical to
    ``analyze_sita(arrival_rate, dist, [cutoff], host_speeds)``,
    including its ``ValueError`` on infeasible cutoffs.
    """
    c = float(cutoff)
    c_arr = np.asarray([c], dtype=float)
    if host_speeds is None:
        speeds = np.ones(2)
    else:
        speeds = np.asarray(host_speeds, dtype=float)
        if speeds.shape != (2,):
            raise ValueError(
                f"host_speeds must have 2 entries, got {speeds.shape}"
            )
        if np.any(speeds <= 0):
            raise ValueError("host speeds must be positive")
    mm = (_MOMENT_MEMO if memo is None else memo).get(dist, c)

    hosts: list[SITAHost] = []
    mean_s = 0.0
    mean_s2 = 0.0
    mean_wslow = 0.0
    mean_resp = 0.0
    mean_wait = 0.0
    for i, (lo, hi, im) in enumerate(
        ((0.0, c, mm.short), (c, math.inf, mm.long))
    ):
        if im is None:
            hosts.append(
                SITAHost(
                    host=i, lo=lo, hi=hi, job_fraction=0.0,
                    load_fraction=0.0, utilisation=0.0, mg1=None,
                )
            )
            continue
        v = float(speeds[i])
        # Replicate analyze_sita's served distribution: for v != 1 it is
        # ScaledDistribution(cond, 1/v), whose moments are scale**j times
        # the conditional's — the same ops on the memoised scalars.
        if v == 1.0:
            served_mean, served_m2, served_m3 = im.mean, im.m2, im.m3
            s_inv1, s_inv2 = im.inv1, im.inv2
        else:
            scale = 1.0 / v
            served_mean = scale**1 * im.mean
            served_m2 = scale**2 * im.m2
            served_m3 = scale**3 * im.m3
            s_inv1 = scale**-1 * im.inv1 if math.isfinite(im.inv1) else math.inf
            s_inv2 = scale**-2 * im.inv2 if math.isfinite(im.inv2) else math.inf
        lam_i = arrival_rate * im.p
        rho_i = lam_i * served_mean
        if rho_i >= 1.0:
            raise ValueError(
                f"infeasible cutoffs {c_arr}: host {i} utilisation {rho_i:.4f} >= 1"
            )
        # mg1_metrics(lam_i, served), inlined on the memoised moments —
        # including utilisation()'s positivity check, which the direct
        # path hits first for a non-positive arrival rate.
        if lam_i <= 0:
            raise ValueError(f"arrival rate must be positive, got {lam_i}")
        ew = lam_i * served_m2 / (2.0 * (1.0 - rho_i))
        ew2 = 2.0 * ew**2 + lam_i * served_m3 / (3.0 * (1.0 - rho_i))
        mean_wslow_i = ew * s_inv1
        var_slow_i = (
            ew2 * s_inv2 - mean_wslow_i**2 if math.isfinite(s_inv2) else math.inf
        )
        m = MG1Metrics(
            arrival_rate=lam_i,
            utilisation=rho_i,
            mean_wait=ew,
            second_moment_wait=ew2,
            mean_response=ew + served_mean,
            mean_queue_length=lam_i * ew,
            mean_waiting_slowdown=mean_wslow_i,
            mean_slowdown=1.0 + mean_wslow_i,
            var_slowdown=var_slow_i,
        )
        # Slowdown uses the *nominal* size: S = (W + X/v)/X = W/X + 1/v.
        es_i = ew * im.inv1 + 1.0 / v
        hosts.append(
            SITAHost(
                host=i,
                lo=lo,
                hi=hi,
                job_fraction=im.p,
                load_fraction=im.work / mm.dist_mean,
                utilisation=rho_i,
                mg1=m,
                class_mean_slowdown=es_i,
            )
        )
        es2 = (
            ew2 * im.inv2
            + (2.0 / v) * ew * im.inv1
            + 1.0 / v**2
        )
        mean_s += im.p * es_i
        mean_s2 += im.p * es2
        mean_wslow += im.p * (ew * im.inv1)
        mean_resp += im.p * m.mean_response
        mean_wait += im.p * ew
    var_s = (
        mean_s2 - mean_s**2
        if math.isfinite(mean_s2) and math.isfinite(mean_s)
        else math.inf
    )
    return SITAAnalysis(
        cutoffs=(c,),
        hosts=tuple(hosts),
        mean_slowdown=mean_s,
        var_slowdown=var_s,
        mean_waiting_slowdown=mean_wslow,
        mean_response=mean_resp,
        mean_wait=mean_wait,
    )


# ----------------------------------------------------------------------
# analytic pair search
# ----------------------------------------------------------------------


def _finite_upper(dist: ServiceDistribution) -> float:
    u = dist.upper
    return u if math.isfinite(u) else dist.ppf(1.0 - 1e-12)


@kernel_contract(
    shapes={"return": ("m",)},
    dtypes={"return": "float64"},
    writes=(),
    contiguous=("return",),
)
def _shared_axis(dist: ServiceDistribution, n_grid: int) -> np.ndarray:
    """The load-independent log-cutoff axis every search point shares.

    Spanning the full support (rather than the per-load feasible range)
    is what lets the memo serve *every* load of a sweep: infeasible
    points simply score ``inf``, and the refinement step recovers the
    resolution a load-tailored grid would have had.
    """
    lo = max(dist.lower, dist.ppf(1e-9), 1e-300)
    hi = _finite_upper(dist)
    if not lo < hi:
        raise ValueError(
            f"distribution support [{lo:.4g}, {hi:.4g}] is too narrow for "
            "a cutoff search"
        )
    return np.exp(np.linspace(math.log(lo), math.log(hi), n_grid))


def analytic_cutoff_pair(
    load: float,
    dist: ServiceDistribution,
    want: Sequence[str] = ("opt", "fair"),
    metric: str = "mean_slowdown",
    n_grid: int = 80,
    host_speeds: Sequence[float] | None = None,
    memo: MomentMemo | None = None,
) -> dict[str, float]:
    """Derive any of the 2-host SITA-U cutoffs off one shared axis.

    Evaluates the memoised analysis once per axis point; the ``"opt"``
    argmin+refine and the ``"fair"`` sign-change bracket+``brentq`` then
    read the same evaluations.  Returns ``{target: cutoff}`` for each
    requested target, matching the historical ``opt_cutoff`` /
    ``fair_cutoff`` results to search tolerance.
    """
    if not want:
        raise ValueError("want must name at least one cutoff target")
    unknown = [t for t in want if t not in ("opt", "fair")]
    if unknown:
        raise ValueError(f"unknown cutoff target(s) {unknown!r}")
    if host_speeds is None and not 0.0 < load < 1.0:
        raise ValueError(f"system load must be in (0,1), got {load}")
    lam = 2.0 * load / dist.mean

    def evaluate(c: float) -> SITAAnalysis | None:
        try:
            return analyze_sita_cached(
                lam, dist, c, host_speeds=host_speeds, memo=memo
            )
        except ValueError:
            return None

    axis = _shared_axis(dist, n_grid)
    evals = [evaluate(float(c)) for c in axis]
    if not any(a is not None for a in evals):
        # The shared axis can straddle a feasibility window narrower than
        # its spacing; fall back to the load-tailored grid the pre-engine
        # searches used (raises the historical errors when truly empty).
        if host_speeds is not None:
            raise ValueError(f"no feasible cutoff on the grid at load {load}")
        from .cutoffs import feasible_cutoff_range

        c_min, c_max = feasible_cutoff_range(load, dist)
        axis = np.exp(np.linspace(math.log(c_min), math.log(c_max), n_grid))
        evals = [evaluate(float(c)) for c in axis]
        if not any(a is not None for a in evals):
            raise ValueError(f"no feasible cutoff on the grid at load {load}")

    out: dict[str, float] = {}
    for target in want:
        if target == "opt":
            out["opt"] = _opt_from_axis(axis, evals, evaluate, metric, load)
        else:
            out["fair"] = _fair_from_axis(axis, evals, evaluate, load)
    return out


def _opt_from_axis(
    axis: np.ndarray,
    evals: list[SITAAnalysis | None],
    evaluate: Callable[[float], SITAAnalysis | None],
    metric: str,
    load: float,
) -> float:
    values = np.array(
        [getattr(a, metric) if a is not None else math.inf for a in evals]
    )
    if not np.any(np.isfinite(values)):
        raise ValueError(f"no feasible cutoff on the grid at load {load}")
    best = int(np.nanargmin(values))
    lo = axis[max(0, best - 1)]
    hi = axis[min(axis.size - 1, best + 1)]

    def objective(log_c: float) -> float:
        a = evaluate(math.exp(log_c))
        return getattr(a, metric) if a is not None else math.inf

    res = optimize.minimize_scalar(
        objective,
        bounds=(math.log(lo), math.log(hi)),
        method="bounded",
        options={"xatol": _XTOL},
    )
    return float(math.exp(res.x))


def _fair_from_axis(
    axis: np.ndarray,
    evals: list[SITAAnalysis | None],
    evaluate: Callable[[float], SITAAnalysis | None],
    load: float,
) -> float:
    def gap_of(a: SITAAnalysis | None) -> float:
        if a is None:
            return math.nan
        s_short, s_long = a.class_mean_slowdowns()
        try:
            return math.log(s_short / s_long)
        except ValueError:
            return math.nan

    gaps = np.array([gap_of(a) for a in evals])
    finite = np.isfinite(gaps)
    if not np.any(finite):
        raise ValueError(f"no feasible fair cutoff at load {load}")

    def gap(log_c: float) -> float:
        return gap_of(evaluate(math.exp(log_c)))

    # The feasible set is an interval on the cutoff axis, so finite gap
    # values are contiguous grid points; the gap grows with the cutoff
    # (more load short ⇒ shorts slow down, longs speed up), giving at
    # most one sign change to bracket.
    idx = np.flatnonzero(finite)
    for i, j in zip(idx, idx[1:]):
        if j == i + 1 and gaps[i] == 0.0:
            return float(axis[i])
        if j == i + 1 and (gaps[i] < 0.0) and (gaps[j] >= 0.0):
            root = optimize.brentq(
                gap, math.log(axis[i]), math.log(axis[j]), xtol=_XTOL
            )
            return float(math.exp(root))
    # No equal-slowdown point inside the feasible range (extreme loads,
    # small training samples): return the fairest feasible cutoff, the
    # |gap| argmin sharpened inside its bracket.
    abs_gaps = np.where(finite, np.abs(gaps), math.inf)
    best = int(np.argmin(abs_gaps))
    lo = axis[max(0, best - 1)]
    hi = axis[min(axis.size - 1, best + 1)]

    def objective(log_c: float) -> float:
        g = gap(log_c)
        return abs(g) if math.isfinite(g) else math.inf

    x, fx = _golden_min(
        objective,
        math.log(lo),
        math.log(hi),
        _XTOL,
        math.log(float(axis[best])),
        float(abs_gaps[best]),
    )
    if fx < float(abs_gaps[best]):
        return float(math.exp(x))
    return float(axis[best])
