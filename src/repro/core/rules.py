"""The paper's rule of thumb: send load ρ/2 to the short-job host.

Section 4.4: *"if the system load is ρ, then the fraction of the load
which is assigned to Host 1 should be ρ/2"* — e.g. at ρ = 0.5 only a
quarter of the work goes to the short host.  The paper reports that
re-running the simulations with rule-of-thumb cutoffs instead of the
optimal ones changed results by less than 10 %, across all three
workloads.

This module turns the rule into cutoffs for any workload and provides the
goodness-of-fit measurement reproduced in figures 5, 11 and 13.
"""

from __future__ import annotations

import numpy as np

from ..workloads.distributions import ServiceDistribution
from .cutoffs import _solve_load_quantile

__all__ = [
    "rule_of_thumb_fraction",
    "rule_of_thumb_cutoff",
    "rule_of_thumb_fit",
]


def rule_of_thumb_fraction(load: float) -> float:
    """Target fraction of total load on Host 1 at system load ρ: ρ/2."""
    if not 0.0 < load < 1.0:
        raise ValueError(f"system load must be in (0,1), got {load}")
    return load / 2.0


def rule_of_thumb_cutoff(load: float, dist: ServiceDistribution) -> float:
    """The 2-host cutoff realising the ρ/2 load split on ``dist``.

    Solves ``E[X ; X ≤ c] = (ρ/2)·E[X]``.  Feasibility is automatic: the
    short host then runs at utilisation ``2ρ·(ρ/2) = ρ² < 1`` and the long
    host at ``2ρ·(1 − ρ/2) = ρ(2 − ρ) < 1`` for all ρ < 1.
    """
    return _solve_load_quantile(dist, rule_of_thumb_fraction(load))


def rule_of_thumb_fit(
    loads, fractions
) -> float:
    """Root-mean-square gap between observed load fractions and ρ/2.

    ``fractions[i]`` is the Host-1 load fraction an optimal/fair cutoff
    produced at ``loads[i]`` (what figure 5 plots); the return value
    quantifies how well the rule of thumb describes them.
    """
    loads = np.asarray(loads, dtype=float)
    fractions = np.asarray(fractions, dtype=float)
    if loads.shape != fractions.shape or loads.ndim != 1 or loads.size == 0:
        raise ValueError("loads and fractions must be equal-length 1-D")
    target = loads / 2.0
    return float(np.sqrt(np.mean((fractions - target) ** 2)))
