"""Fairness analysis: slowdown conditioned on job size.

The paper's definition (section 1.2): *"All jobs, long or short, should
experience the same expected slowdown."*  SITA-U-fair realises it with
two size classes; this module measures it — for any simulation result or
analytic SITA configuration — as a *slowdown-versus-size profile* plus
scalar fairness indices:

* :func:`slowdown_profile` — mean slowdown per size bucket (log-spaced or
  per-class), the empirical fairness curve;
* :func:`fairness_gap` — max/min ratio of per-bucket expected slowdowns
  (1.0 = perfectly fair; Shortest-Job-First-style policies score badly);
* :func:`class_fairness_gap` — the 2-class version SITA-U-fair drives
  to 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sim.metrics import SimulationResult

__all__ = [
    "SlowdownProfile",
    "slowdown_profile",
    "fairness_gap",
    "class_fairness_gap",
]


@dataclass(frozen=True)
class SlowdownProfile:
    """Mean slowdown per job-size bucket."""

    #: bucket edges on the size axis, length ``n_buckets + 1``.
    edges: np.ndarray
    #: mean slowdown per bucket (NaN for empty buckets).
    mean_slowdown: np.ndarray
    #: number of jobs per bucket.
    counts: np.ndarray

    @property
    def n_buckets(self) -> int:
        return self.mean_slowdown.size

    def gap(self) -> float:
        """Max/min ratio over non-empty buckets (1.0 = perfectly fair)."""
        vals = self.mean_slowdown[self.counts > 0]
        if vals.size == 0:
            raise ValueError("profile has no populated buckets")
        return float(np.max(vals) / np.min(vals))


def slowdown_profile(
    result: SimulationResult,
    n_buckets: int = 10,
    warmup_fraction: float = 0.0,
) -> SlowdownProfile:
    """Bucket jobs by size (log-spaced) and average slowdown per bucket."""
    if n_buckets < 2:
        raise ValueError(f"need at least 2 buckets, got {n_buckets}")
    r = result.trimmed(warmup_fraction)
    sizes = r.sizes
    slow = r.slowdowns
    lo, hi = float(np.min(sizes)), float(np.max(sizes))
    if lo == hi:
        raise ValueError("all jobs have the same size; no profile to build")
    edges = np.exp(np.linspace(math.log(lo), math.log(hi), n_buckets + 1))
    edges[0] = lo * (1.0 - 1e-12)
    edges[-1] = hi * (1.0 + 1e-12)
    idx = np.clip(np.searchsorted(edges, sizes, side="right") - 1, 0, n_buckets - 1)
    means = np.full(n_buckets, math.nan)
    counts = np.zeros(n_buckets, dtype=int)
    for b in range(n_buckets):
        mask = idx == b
        counts[b] = int(np.sum(mask))
        if counts[b]:
            means[b] = float(np.mean(slow[mask]))
    return SlowdownProfile(edges=edges, mean_slowdown=means, counts=counts)


def fairness_gap(
    result: SimulationResult,
    n_buckets: int = 10,
    warmup_fraction: float = 0.0,
    min_bucket_count: int = 10,
) -> float:
    """Max/min per-bucket expected slowdown (buckets below the count floor
    are ignored — a bucket of two unlucky jobs is noise, not bias)."""
    p = slowdown_profile(result, n_buckets, warmup_fraction)
    vals = p.mean_slowdown[p.counts >= min_bucket_count]
    if vals.size < 2:
        raise ValueError("too few populated buckets for a fairness gap")
    return float(np.max(vals) / np.min(vals))


def class_fairness_gap(
    result: SimulationResult, cutoff: float, warmup_fraction: float = 0.0
) -> float:
    """``E[S | short] / E[S | long]`` for the 2-class split at ``cutoff``.

    SITA-U-fair targets 1.0; SITA-E on heavy-tailed data sits far from it.
    """
    s_short, s_long = result.trimmed(warmup_fraction).class_mean_slowdowns(cutoff)
    return s_short / s_long
