"""Cutoff engines: where SITA-E, SITA-U-opt and SITA-U-fair come from.

A SITA policy is defined by its size cutoffs; the paper's contribution is
the observation that choosing them to *balance load* (SITA-E) is far from
optimal, and that both the slowdown-optimal and the fairness-optimal
cutoffs deliberately **underload the short-job host**.

This module implements all three cutoff rules, analytically (via the
M/G/1 machinery of :mod:`repro.analysis`, usable with any
:class:`~repro.workloads.distributions.ServiceDistribution`, including the
:class:`~repro.workloads.distributions.Empirical` distribution of a
training trace) and by direct simulation search (the paper derives its
cutoffs both ways and reports that the two agree — our tests check that
too):

* :func:`equal_load_cutoffs` — SITA-E, any number of hosts;
* :func:`opt_cutoff` / :func:`fair_cutoff` — the 2-host SITA-U cutoffs;
* :func:`opt_cutoffs_multi` / :func:`fair_cutoffs_multi` — the general
  ``h``-host searches the paper calls "computationally expensive" and
  sidesteps (we implement them anyway as an extension);
* :func:`sim_opt_cutoff` / :func:`sim_fair_cutoff` — simulation-based
  searches on a training trace, mirroring the paper's
  half-trace-fit / half-trace-evaluate protocol.

All searches run on a log-size axis (job sizes span 4–6 decades).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize

from ..analysis.sita_analysis import analyze_sita, sita_host_loads
from ..sim.fast import SCAN_METRICS, simulate_fast
from ..workloads.distributions import ServiceDistribution
from ..workloads.traces import Trace
from .policies.sita import SITAPolicy
from .search import analytic_cutoff_pair, candidate_cutoffs, sim_cutoff_pair

__all__ = [
    "equal_load_cutoffs",
    "feasible_cutoff_range",
    "opt_cutoff",
    "fair_cutoff",
    "opt_cutoffs_multi",
    "fair_cutoffs_multi",
    "optimal_group_split",
    "sim_opt_cutoff",
    "sim_fair_cutoff",
    "short_host_load_fraction",
]

#: Relative tolerance for bisection on the (log) size axis.
_XTOL = 1e-10


def _finite_upper(dist: ServiceDistribution) -> float:
    """A finite stand-in for the distribution's upper support bound."""
    u = dist.upper
    return u if math.isfinite(u) else dist.ppf(1.0 - 1e-12)


def _load_below(dist: ServiceDistribution, c: float) -> float:
    """Fraction of total work from jobs of size ≤ c."""
    return dist.partial_moment(1.0, 0.0, c) / dist.mean


def _solve_load_quantile(dist: ServiceDistribution, frac: float) -> float:
    """Size ``c`` with ``E[X; X ≤ c] = frac · E[X]`` (load quantile).

    For atomic distributions (empirical traces) the load-below curve is a
    step function and no exact root exists; the returned cutoff is the
    step edge whose load split is *closest* to the target — in particular
    never the degenerate side that puts all work in one class.
    """
    if not 0.0 < frac < 1.0:
        raise ValueError(f"load fraction must be in (0,1), got {frac}")
    lo = max(dist.lower, 1e-300)
    hi = _finite_upper(dist)
    f = lambda log_c: _load_below(dist, math.exp(log_c)) - frac

    def best_side(c: float) -> float:
        # Step-function aware: a root-find (or an endpoint affected by
        # exp/log rounding) may land on either side of a jump in the load
        # curve; pick the side whose realised load fraction is nearest the
        # target.  The nudge must exceed the solvers' relative error.
        candidates = [c * (1.0 - 1e-9), c, c * (1.0 + 1e-9)]
        return min(candidates, key=lambda x: abs(_load_below(dist, x) - frac))

    a, b = math.log(lo), math.log(hi)
    fa, fb = f(a), f(b)
    if fa >= 0.0:
        return best_side(lo)
    if fb <= 0.0:
        return best_side(hi)
    c = math.exp(optimize.brentq(f, a, b, xtol=_XTOL))
    return best_side(c)


def equal_load_cutoffs(dist: ServiceDistribution, n_hosts: int) -> np.ndarray:
    """SITA-E cutoffs: each of the ``h`` size intervals carries load 1/h.

    For heavy-tailed workloads this sends the overwhelming majority of
    *jobs* to the short host (98.7 % for the paper's C90 data with h=2)
    even though every host carries the same *work*.
    """
    if n_hosts < 2:
        raise ValueError(f"need at least 2 hosts for SITA, got {n_hosts}")
    cutoffs = [
        _solve_load_quantile(dist, i / n_hosts) for i in range(1, n_hosts)
    ]
    c = np.asarray(cutoffs)
    if np.any(np.diff(c) <= 0):
        raise ValueError(
            f"equal-load cutoffs are not strictly increasing ({c}); the "
            "distribution has too little resolution for this many hosts"
        )
    # Every interval must receive jobs — a cutoff at/below the minimum or
    # at the maximum silently idles a host (a point mass cannot be split).
    edges = [0.0, *c, math.inf]
    for lo, hi in zip(edges, edges[1:]):
        if dist.prob_interval(lo, hi) <= 0.0:
            raise ValueError(
                f"equal-load cutoffs {c} leave the interval ({lo:.4g}, "
                f"{hi:.4g}] empty; the distribution has too little "
                "resolution for this many hosts"
            )
    return c


def short_host_load_fraction(
    dist: ServiceDistribution, cutoff: float
) -> float:
    """Fraction of total load assigned to Host 1 by a 2-host cutoff.

    The quantity plotted in figure 5 (0.5 for SITA-E by construction;
    ≈ ρ/2 at the SITA-U cutoffs — the paper's rule of thumb).
    """
    return _load_below(dist, cutoff)


def feasible_cutoff_range(
    load: float, dist: ServiceDistribution, margin: float = 1e-6
) -> tuple[float, float]:
    """The interval of 2-host cutoffs keeping both hosts stable (ρ_i < 1).

    With λ = 2·ρ/E[X]: the short host's utilisation grows with the cutoff
    and the long host's shrinks, so feasibility is an interval.  ``margin``
    shaves the endpoints (utilisation ≤ 1 − margin) so downstream M/G/1
    evaluations stay finite.
    """
    if not 0.0 < load < 1.0:
        raise ValueError(f"system load must be in (0,1), got {load}")
    lam = 2.0 * load / dist.mean
    lo_bound = max(dist.lower, 1e-300)
    hi_bound = _finite_upper(dist)

    def rho_short(c: float) -> float:
        return lam * dist.partial_moment(1.0, 0.0, c)

    def rho_long(c: float) -> float:
        return lam * dist.partial_moment(1.0, c, dist.upper)

    # Largest cutoff with rho_short <= 1 - margin.
    if rho_short(hi_bound) < 1.0 - margin:
        c_max = hi_bound
    else:
        c_max = math.exp(
            optimize.brentq(
                lambda lc: rho_short(math.exp(lc)) - (1.0 - margin),
                math.log(lo_bound),
                math.log(hi_bound),
                xtol=_XTOL,
            )
        )
    # Smallest cutoff with rho_long <= 1 - margin.
    if rho_long(lo_bound) < 1.0 - margin:
        c_min = lo_bound
    else:
        c_min = math.exp(
            optimize.brentq(
                lambda lc: rho_long(math.exp(lc)) - (1.0 - margin),
                math.log(lo_bound),
                math.log(hi_bound),
                xtol=_XTOL,
            )
        )
    if c_min >= c_max:
        raise ValueError(
            f"no feasible 2-host cutoff at load {load} (range "
            f"[{c_min:.4g}, {c_max:.4g}] is empty)"
        )
    return c_min, c_max


def opt_cutoff(
    load: float,
    dist: ServiceDistribution,
    metric: str = "mean_slowdown",
    n_grid: int = 80,
    host_speeds=None,
) -> float:
    """SITA-U-opt: the 2-host cutoff minimising the analytic ``metric``.

    Coarse log-spaced grid followed by golden-section refinement around
    the best bracket.  ``metric`` may be any scalar field of
    :class:`~repro.analysis.sita_analysis.SITAAnalysis`
    (``"mean_slowdown"`` by default, per the paper's definition;
    ``"mean_response"`` gives the response-optimal variant).  With
    ``host_speeds`` the load is interpreted against total capacity
    λ = 2ρ/E[X] as usual, the per-host stability region shifts with the
    speeds, and infeasible grid points simply score ``inf``.

    Thin wrapper over :func:`repro.core.search.analytic_cutoff_pair`,
    which memoises the truncated-distribution moments across loads and
    across the opt/fair pair; call the pair function directly when both
    cutoffs are needed.
    """
    return analytic_cutoff_pair(
        load,
        dist,
        want=("opt",),
        metric=metric,
        n_grid=n_grid,
        host_speeds=host_speeds,
    )["opt"]


def fair_cutoff(
    load: float, dist: ServiceDistribution, host_speeds=None
) -> float:
    """SITA-U-fair: the 2-host cutoff equalising short/long mean slowdown.

    Solves ``E[S_short](c) = E[S_long](c)``; the gap's log-ratio changes
    sign across the feasible range, so a sign-change bracket plus
    ``brentq`` is robust, with a fairest-feasible grid argmin fallback at
    extreme loads where feasibility pins the cutoff.  ``host_speeds``
    extends the search to heterogeneous pairs.

    Thin wrapper over :func:`repro.core.search.analytic_cutoff_pair`
    (shared evaluation axis + moment memo with the opt search).
    """
    return analytic_cutoff_pair(
        load, dist, want=("fair",), host_speeds=host_speeds
    )["fair"]


# ----------------------------------------------------------------------
# general h (extension: the search the paper calls too expensive)
# ----------------------------------------------------------------------


def opt_cutoffs_multi(
    load: float,
    dist: ServiceDistribution,
    n_hosts: int,
    metric: str = "mean_slowdown",
) -> np.ndarray:
    """Slowdown-optimal cutoffs for ``h`` hosts (Nelder–Mead in log space).

    Parameterised by log-increments so the ordering constraint is built
    in; infeasible points (any ρ_i ≥ 1) are given an infinite objective.
    Initialised at the SITA-E cutoffs.
    """
    if n_hosts == 2:
        return np.array([opt_cutoff(load, dist, metric)])
    lam = n_hosts * load / dist.mean
    start = equal_load_cutoffs(dist, n_hosts)

    def decode(theta: np.ndarray) -> np.ndarray:
        # theta[0] is log c_1; subsequent entries are log spacing increments.
        logs = np.concatenate(([theta[0]], theta[0] + np.cumsum(np.exp(theta[1:]))))
        return np.exp(logs)

    def encode(cut: np.ndarray) -> np.ndarray:
        logs = np.log(cut)
        return np.concatenate(([logs[0]], np.log(np.diff(logs))))

    def objective(theta: np.ndarray) -> float:
        cut = decode(theta)
        if np.any(sita_host_loads(lam, dist, cut) >= 1.0):
            return math.inf
        try:
            return getattr(analyze_sita(lam, dist, cut), metric)
        except ValueError:
            return math.inf

    res = optimize.minimize(
        objective,
        encode(start),
        method="Nelder-Mead",
        options={"xatol": 1e-8, "fatol": 1e-10, "maxiter": 4000},
    )
    best = decode(res.x)
    if not math.isfinite(objective(res.x)):
        raise ValueError(f"multi-host opt search failed at load {load}")
    return best


def fair_cutoffs_multi(
    load: float, dist: ServiceDistribution, n_hosts: int
) -> np.ndarray:
    """Cutoffs equalising the expected slowdown of all ``h`` size classes.

    Solves the ``h − 1`` equations ``E[S_i] = E[S_h]`` with least-squares
    on log-cutoff increments, starting from SITA-E.
    """
    if n_hosts == 2:
        return np.array([fair_cutoff(load, dist)])
    lam = n_hosts * load / dist.mean
    start = equal_load_cutoffs(dist, n_hosts)

    def decode(theta: np.ndarray) -> np.ndarray:
        logs = np.concatenate(([theta[0]], theta[0] + np.cumsum(np.exp(theta[1:]))))
        return np.exp(logs)

    def encode(cut: np.ndarray) -> np.ndarray:
        logs = np.log(cut)
        return np.concatenate(([logs[0]], np.log(np.diff(logs))))

    def residuals(theta: np.ndarray) -> np.ndarray:
        cut = decode(theta)
        if np.any(sita_host_loads(lam, dist, cut) >= 1.0):
            return np.full(n_hosts - 1, 1e6)
        try:
            slows = analyze_sita(lam, dist, cut).class_mean_slowdowns()
        except ValueError:
            return np.full(n_hosts - 1, 1e6)
        s = np.asarray(slows)
        if np.any(~np.isfinite(s)):
            return np.full(n_hosts - 1, 1e6)
        return np.log(s[:-1] / s[-1])

    # Derivative-free: empirical distributions make the residuals a step
    # function of the cutoffs (flat between observed sizes), which starves
    # gradient-based least squares.  Nelder–Mead on the squared norm works
    # on smooth and empirical distributions alike.
    def objective(theta: np.ndarray) -> float:
        r = residuals(theta)
        return float(np.dot(r, r))

    res = optimize.minimize(
        objective,
        encode(start),
        method="Nelder-Mead",
        options={"xatol": 1e-9, "fatol": 1e-12, "maxiter": 6000},
    )
    cut = decode(res.x)
    # Tolerance in log-slowdown units.  Empirical distributions cannot do
    # better than the granularity of the observed sizes — the longest-job
    # class may hold only tens of jobs, so its mean slowdown moves in
    # discrete jumps; 0.25 (≈ ±28 %) accepts the best achievable
    # equalisation while still rejecting outright failures.
    if np.max(np.abs(residuals(res.x))) > 0.25:
        raise ValueError(f"multi-host fair search did not converge at load {load}")
    return cut


def optimal_group_split(
    load: float, dist: ServiceDistribution, n_hosts: int, cutoff: float
) -> int:
    """Best short-group size for section-5 grouped SITA.

    Evaluates the analytic grouped model
    (:func:`repro.analysis.policies.predict_grouped_sita`) for every
    feasible ``n_short`` and returns the argmin of mean slowdown.  Naive
    load-proportional rounding can saturate a group at small ``h`` (e.g.
    4 hosts with a 0.35 load share rounds to one short host at
    utilisation ≈ 0.98); this search avoids that.
    """
    from ..analysis.policies import predict_grouped_sita

    if n_hosts < 2:
        raise ValueError(f"grouped SITA needs >= 2 hosts, got {n_hosts}")
    best_n = None
    best_val = math.inf
    for n_short in range(1, n_hosts):
        try:
            pred = predict_grouped_sita(load, dist, n_hosts, cutoff, n_short)
        except ValueError:
            continue  # one of the groups would be unstable
        if pred.mean_slowdown < best_val:
            best_val = pred.mean_slowdown
            best_n = n_short
    if best_n is None:
        raise ValueError(
            f"no stable group split for cutoff {cutoff:.4g} at load {load} "
            f"on {n_hosts} hosts"
        )
    return best_n


# ----------------------------------------------------------------------
# simulation-based searches (paper: "experimental cutoffs")
# ----------------------------------------------------------------------


#: Historical private alias — the guarded implementation lives in
#: :func:`repro.core.search.candidate_cutoffs`.
_candidate_cutoffs = candidate_cutoffs


def _sim_sita_metric(
    trace: Trace, cutoff: float, metric: str, warmup: float
) -> float:
    policy = SITAPolicy([cutoff], name="sita-search")
    try:
        result = simulate_fast(trace, policy, 2, rng=0)
    except ValueError:
        return math.inf
    summ = result.summary(warmup_fraction=warmup)
    value = getattr(summ, metric)
    return value if math.isfinite(value) else math.inf


def sim_opt_cutoff(
    train: Trace,
    metric: str = "mean_slowdown",
    n_candidates: int = 40,
    warmup_fraction: float = 0.05,
) -> float:
    """Simulation-searched SITA-U-opt cutoff on a training trace.

    Evaluates a log-spaced candidate grid by direct (fast) simulation and
    returns the argmin — the paper's "experimental cutoff" procedure.
    Degenerate cutoffs (all jobs on one host) simply score badly and lose.

    Thin wrapper over :func:`repro.core.search.sim_cutoff_pair`'s batched
    scan (grid argmin is bit-identical to the historical per-candidate
    ``simulate_fast`` loop); call the pair function directly when both
    the opt and fair cutoffs are needed — it derives them from one scan.
    """
    if metric in SCAN_METRICS:
        return sim_cutoff_pair(
            train,
            metric=metric,
            n_candidates=n_candidates,
            warmup_fraction=warmup_fraction,
            refine=False,
        ).opt
    # Metrics outside the scan kernel (e.g. tail percentiles) take the
    # historical per-candidate summary loop.
    candidates = _candidate_cutoffs(train, n_candidates)
    scores = np.array(
        [_sim_sita_metric(train, c, metric, warmup_fraction) for c in candidates]
    )
    if not np.any(np.isfinite(scores)):
        raise ValueError("no candidate cutoff produced a finite metric")
    return float(candidates[int(np.nanargmin(scores))])


def sim_fair_cutoff(
    train: Trace,
    n_candidates: int = 40,
    warmup_fraction: float = 0.05,
) -> float:
    """Simulation-searched SITA-U-fair cutoff on a training trace.

    Scores each candidate by the absolute log-ratio of short/long mean
    slowdowns and returns the most balanced one.

    Thin wrapper over :func:`repro.core.search.sim_cutoff_pair` (same
    batched scan as :func:`sim_opt_cutoff`; grid argmin bit-identical to
    the historical loop).
    """
    return sim_cutoff_pair(
        train,
        n_candidates=n_candidates,
        warmup_fraction=warmup_fraction,
        refine=False,
    ).fair
