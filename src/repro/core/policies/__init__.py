"""Task assignment policies (the paper's section 1.2 plus extensions)."""

from .base import Policy, StatePolicy, StaticPolicy
from .estimated import EstimatedLWLPolicy
from .classic import (
    CentralQueuePolicy,
    LeastWorkLeftPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ShortestQueuePolicy,
)
from .sita import GroupedSITAPolicy, SITAPolicy, validate_cutoffs
from .tags import TAGSPolicy

__all__ = [
    "EstimatedLWLPolicy",
    "Policy",
    "StatePolicy",
    "StaticPolicy",
    "CentralQueuePolicy",
    "LeastWorkLeftPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "ShortestQueuePolicy",
    "GroupedSITAPolicy",
    "SITAPolicy",
    "validate_cutoffs",
    "TAGSPolicy",
]
