"""TAGS — Task Assignment by Guessing Size (extension).

The paper's ref [10] (Harchol-Balter, ICDCS 2000) proposes a
load-unbalancing policy for the case where job durations are *unknown*:
every job starts on host 1; host ``i`` kills any job whose service there
exceeds cutoff ``s_i``, and the job restarts **from scratch** on host
``i+1``.  Small jobs finish on the first host; elephants percolate to the
last one, paying for the wasted partial runs.  TAGS achieves SITA-like
variance reduction without size estimates, at the cost of redundant work.

The dispatch mechanics live in the event-driven server (`kind == "tags"`
installs per-host limits and an eviction handler); this class only carries
the cutoffs.  We include TAGS as the natural ablation partner for SITA-U:
how much of the unbalancing win survives when sizes are unknown?
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Policy
from .sita import validate_cutoffs

__all__ = ["TAGSPolicy"]


class TAGSPolicy(Policy):
    """Task Assignment by Guessing Size with ``h − 1`` kill cutoffs."""

    kind = "tags"
    name = "tags"

    def __init__(self, cutoffs: Sequence[float], name: str = "tags") -> None:
        self.cutoffs = validate_cutoffs(cutoffs)
        if self.cutoffs.size < 1:
            raise ValueError("TAGS needs at least one cutoff (two hosts)")
        self.name = name

    def reset(self, n_hosts: int, rng: np.random.Generator) -> None:
        super().reset(n_hosts, rng)
        if self.cutoffs.size != n_hosts - 1:
            raise ValueError(
                f"tags: {self.cutoffs.size} cutoffs cannot drive {n_hosts} "
                f"hosts (need {n_hosts - 1})"
            )
