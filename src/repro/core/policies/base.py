"""The task-assignment policy protocol.

A *task assignment policy* is the rule the dispatcher uses to route each
arriving job to one of the ``h`` hosts (paper section 1.2).  Policies come
in four kinds, advertised through the :attr:`Policy.kind` class attribute:

``"static"``
    The choice depends only on the job (its size estimate) and internal
    policy state — Random, Round-Robin, SITA-*.  Static policies also
    implement :meth:`StaticPolicy.assign_batch`, a vectorised assignment
    of a whole trace at once, which is what lets the fast simulator run
    load sweeps with pure NumPy.
``"state"``
    The choice inspects the current host states (queue lengths or
    remaining work) — Shortest-Queue, Least-Work-Left, grouped SITA.
``"central"``
    No per-arrival choice at all: jobs wait in a FCFS queue at the
    dispatcher and idle hosts pull (Central-Queue, provably equivalent to
    Least-Work-Left).
``"tags"``
    TAGS mechanics (host ``i`` kills jobs exceeding cutoff ``i``; the job
    restarts on host ``i+1``) — the unknown-size extension.

Policies are cheap, reusable objects; :meth:`Policy.reset` re-initialises
any internal state for a fresh run.  Simulators duck-type against this
protocol, so custom user policies only need to match the signatures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.jobs import Job
    from ...sim.server import SystemState

__all__ = ["Policy", "StaticPolicy", "StatePolicy"]


class Policy(ABC):
    """Base class for all task assignment policies."""

    #: dispatch discipline; see module docstring.
    kind: ClassVar[str]
    #: short label used in reports and plots.
    name: str = "policy"
    #: optional tag the fast simulator uses to pick a specialised kernel
    #: ("lwl", "sq", "grouped"); None means the generic path.
    fast_hint: ClassVar[str | None] = None

    def reset(self, n_hosts: int, rng: np.random.Generator) -> None:
        """Prepare for a fresh run on ``n_hosts`` hosts.

        Subclasses overriding this must call ``super().reset(...)``.
        """
        if n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        self.n_hosts = n_hosts
        self.rng = rng

    def choose_host(self, job: "Job", state: "SystemState") -> int:
        """Route one job (kinds ``static`` and ``state``)."""
        raise NotImplementedError(
            f"{type(self).__name__} (kind={self.kind!r}) does not dispatch per-job"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class StaticPolicy(Policy):
    """A policy whose choices ignore host state (vectorisable)."""

    kind = "static"

    @abstractmethod
    def assign_batch(
        self, sizes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Assign every job of a trace at once.

        Parameters
        ----------
        sizes:
            Per-job size *estimates* in arrival order.
        rng:
            Generator for any randomness (so batch assignment is exactly
            as reproducible as per-job assignment).

        Returns
        -------
        numpy.ndarray
            Integer host index per job.
        """


class StatePolicy(Policy):
    """A policy that inspects host state on every arrival."""

    kind = "state"
