"""The task-assignment policy protocol.

A *task assignment policy* is the rule the dispatcher uses to route each
arriving job to one of the ``h`` hosts (paper section 1.2).  Policies come
in four kinds, advertised through the :attr:`Policy.kind` class attribute:

``"static"``
    The choice depends only on the job (its size estimate) and internal
    policy state — Random, Round-Robin, SITA-*.  Static policies also
    implement :meth:`StaticPolicy.assign_batch`, a vectorised assignment
    of a whole trace at once, which is what lets the fast simulator run
    load sweeps with pure NumPy.
``"state"``
    The choice inspects the current host states (queue lengths or
    remaining work) — Shortest-Queue, Least-Work-Left, grouped SITA.
``"central"``
    No per-arrival choice at all: jobs wait in a FCFS queue at the
    dispatcher and idle hosts pull (Central-Queue, provably equivalent to
    Least-Work-Left).
``"tags"``
    TAGS mechanics (host ``i`` kills jobs exceeding cutoff ``i``; the job
    restarts on host ``i+1``) — the unknown-size extension.

Policies are cheap, reusable objects; :meth:`Policy.reset` re-initialises
any internal state for a fresh run.  Simulators duck-type against this
protocol, so custom user policies only need to match the signatures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.jobs import Job
    from ...sim.server import SystemState

__all__ = ["Policy", "StaticPolicy", "StatePolicy", "nearest_live_host"]


def nearest_live_host(choice: int, up: np.ndarray) -> int:
    """Closest live host to ``choice`` by index distance (ties → lower index).

    The default fault-tolerant re-route: a SITA policy whose designated
    host is down *spills its size interval* to the adjacent live host,
    preserving as much of the size-segregation structure as possible.
    """
    live = np.flatnonzero(up)
    if live.size == 0:
        raise ValueError("no live host to dispatch to")
    return int(live[np.argmin(np.abs(live - choice))])


class Policy(ABC):
    """Base class for all task assignment policies."""

    #: dispatch discipline; see module docstring.
    kind: ClassVar[str]
    #: short label used in reports and plots.
    name: str = "policy"
    #: optional tag the fast simulator uses to pick a specialised kernel
    #: ("lwl", "sq", "grouped"); None means the generic path.
    fast_hint: ClassVar[str | None] = None

    def reset(self, n_hosts: int, rng: np.random.Generator) -> None:
        """Prepare for a fresh run on ``n_hosts`` hosts.

        Subclasses overriding this must call ``super().reset(...)``.
        """
        if n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        self.n_hosts = n_hosts
        self.rng = rng

    def choose_host(self, job: "Job", state: "SystemState") -> int:
        """Route one job (kinds ``static`` and ``state``)."""
        raise NotImplementedError(
            f"{type(self).__name__} (kind={self.kind!r}) does not dispatch per-job"
        )

    def choose_live_host(
        self, job: "Job", state: "SystemState", up: np.ndarray
    ) -> int:
        """Route one job when some hosts may be down (fault injection).

        ``up`` is a boolean mask over host indices with at least one
        ``True``; the returned index must be live.  The default makes the
        normal choice and, if that host is down, spills to the nearest
        live one — the documented behaviour for SITA variants.
        State-dependent policies override this to re-run their argmin
        over live hosts only.  When every host is up this MUST reduce to
        :meth:`choose_host` exactly (same RNG draws included), so a
        failure rate of zero is bit-identical to no fault model at all.
        """
        choice = self.choose_host(job, state)
        if up[choice]:
            return choice
        return nearest_live_host(choice, up)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class StaticPolicy(Policy):
    """A policy whose choices ignore host state (vectorisable)."""

    kind = "static"

    @abstractmethod
    def assign_batch(
        self, sizes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Assign every job of a trace at once.

        Parameters
        ----------
        sizes:
            Per-job size *estimates* in arrival order.
        rng:
            Generator for any randomness (so batch assignment is exactly
            as reproducible as per-job assignment).

        Returns
        -------
        numpy.ndarray
            Integer host index per job.
        """


class StatePolicy(Policy):
    """A policy that inspects host state on every arrival."""

    kind = "state"
