"""Size-Interval Task Assignment (SITA) policies.

A SITA policy partitions the job-size axis with ``h − 1`` cutoffs
``c_1 < c_2 < … < c_{h−1}``: jobs of (estimated) size in
``(c_{i−1}, c_i]`` go to host ``i``.  The *variance-reduction* effect —
each host sees only a narrow slice of the size distribution — is why SITA
dominates the load-balancing policies under heavy-tailed workloads
(paper section 3.3).

Where the cutoffs come from defines the variant:

* **SITA-E** — cutoffs equalise the *load* carried by each interval
  (:func:`repro.core.cutoffs.equal_load_cutoffs`);
* **SITA-U-opt** — cutoff chosen to *minimise mean slowdown*, which
  deliberately underloads the short-job host
  (:func:`repro.core.cutoffs.opt_cutoff`);
* **SITA-U-fair** — cutoff chosen so short and long jobs see the *same
  expected slowdown* (:func:`repro.core.cutoffs.fair_cutoff`).

This module only implements the dispatch mechanics; the
:class:`SITAPolicy` takes explicit cutoffs so the policy can be driven by
either the analytic or the simulation-based cutoff engines (the paper uses
both and finds they agree).

:class:`GroupedSITAPolicy` is the paper's section-5 modification for large
host counts: hosts are split into a short group and a long group using the
single 2-host cutoff, and jobs are scheduled *within* their group by
Least-Work-Left.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .base import StatePolicy, StaticPolicy, nearest_live_host

__all__ = ["SITAPolicy", "GroupedSITAPolicy", "validate_cutoffs"]


def validate_cutoffs(cutoffs: Sequence[float]) -> np.ndarray:
    """Check cutoffs are positive, finite and strictly increasing."""
    c = np.asarray(cutoffs, dtype=float)
    if c.ndim != 1:
        raise ValueError("cutoffs must be one-dimensional")
    if c.size and (np.any(c <= 0) or not np.all(np.isfinite(c))):
        raise ValueError(f"cutoffs must be positive and finite, got {c}")
    if np.any(np.diff(c) <= 0):
        raise ValueError(f"cutoffs must be strictly increasing, got {c}")
    return c


class SITAPolicy(StaticPolicy):
    """Dispatch by size interval: host ``i`` serves sizes in ``(c_{i-1}, c_i]``.

    Parameters
    ----------
    cutoffs:
        The ``h − 1`` interval boundaries.  Host 0 gets sizes ``<= c_1``
        (the shorts), the last host gets sizes ``> c_{h−1}`` (the longs).
    name:
        Label, e.g. ``"sita-e"`` or ``"sita-u-fair"``.
    """

    def __init__(self, cutoffs: Sequence[float], name: str = "sita") -> None:
        self.cutoffs = validate_cutoffs(cutoffs)
        self.name = name

    def reset(self, n_hosts: int, rng: np.random.Generator) -> None:
        super().reset(n_hosts, rng)
        if self.cutoffs.size != n_hosts - 1:
            raise ValueError(
                f"{self.name}: {self.cutoffs.size} cutoffs cannot drive "
                f"{n_hosts} hosts (need {n_hosts - 1})"
            )

    def host_for_size(self, size: float) -> int:
        """Host index for a job of (estimated) ``size``."""
        return int(np.searchsorted(self.cutoffs, size, side="left"))

    def choose_host(self, job, state) -> int:
        return self.host_for_size(job.size_estimate)

    def assign_batch(self, sizes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.searchsorted(self.cutoffs, sizes, side="left")


class GroupedSITAPolicy(StatePolicy):
    """Section-5 SITA for many hosts: 2 size groups, Least-Work-Left inside.

    Parameters
    ----------
    cutoff:
        The single 2-host size cutoff separating shorts from longs.
    n_short_hosts:
        How many of the hosts serve the short group; the remainder serve
        the long group.  The paper splits hosts evenly; cutoff engines may
        choose other splits.
    name:
        Label, e.g. ``"sita-e+lwl"``.
    """

    fast_hint = "grouped"

    def __init__(
        self, cutoff: float, n_short_hosts: int, name: str = "grouped-sita"
    ) -> None:
        if not (cutoff > 0 and math.isfinite(cutoff)):
            raise ValueError(f"cutoff must be positive and finite, got {cutoff}")
        if n_short_hosts < 1:
            raise ValueError(f"n_short_hosts must be >= 1, got {n_short_hosts}")
        self.cutoff = float(cutoff)
        self.n_short_hosts = int(n_short_hosts)
        self.name = name

    def reset(self, n_hosts: int, rng: np.random.Generator) -> None:
        super().reset(n_hosts, rng)
        if self.n_short_hosts >= n_hosts:
            raise ValueError(
                f"{self.name}: n_short_hosts={self.n_short_hosts} leaves no "
                f"long host out of {n_hosts}"
            )

    def group_slice(self, short: bool) -> slice:
        """Host-index slice of the short (or long) group."""
        if short:
            return slice(0, self.n_short_hosts)
        return slice(self.n_short_hosts, self.n_hosts)

    def choose_host(self, job, state) -> int:
        grp = self.group_slice(job.size_estimate <= self.cutoff)
        work = state.work_left()[grp]
        return grp.start + int(np.argmin(work))

    def choose_live_host(self, job, state, up) -> int:
        # Least-Work-Left among the *live* hosts of the job's size group;
        # if the whole group is down, spill to the nearest live host
        # outside it (the plain-SITA spill rule).
        grp = self.group_slice(job.size_estimate <= self.cutoff)
        work = state.work_left()[grp]
        group_up = up[grp]
        if group_up.any():
            return grp.start + int(np.argmin(np.where(group_up, work, np.inf)))
        return nearest_live_host(grp.start + int(np.argmin(work)), up)
