"""Least-Work-Left as practised: summing *user estimates* (paper §1.2).

The paper observes that in many distributed servers "task assignment is
done by the user ... A user then can compute the work left at a host by
summing the running time estimates of the jobs queued at the hosts."
That is not the idealised Least-Work-Left (which knows true remaining
work): it routes on an *estimated* per-host backlog that drifts from
reality as estimates err.

:class:`EstimatedLWLPolicy` models this: the dispatcher maintains its own
believed virtual completion time per host, updated only from size
*estimates*, and routes each job to the host with the least believed work
left.  With exact estimates it coincides with
:class:`~repro.core.policies.LeastWorkLeftPolicy` (asserted in the
tests); with noisy estimates it quantifies how much the practitioners'
version loses — the missing column of the paper's section-7 discussion.
"""

from __future__ import annotations

import numpy as np

from .base import StatePolicy

__all__ = ["EstimatedLWLPolicy"]


class EstimatedLWLPolicy(StatePolicy):
    """LWL driven by size estimates instead of true remaining work.

    The believed backlog of host ``i`` follows its own Lindley-style
    recursion: on sending a job with estimate ``ŝ`` at time ``t``,
    ``V̂_i ← max(V̂_i, t) + ŝ``; the routing key is ``max(0, V̂_i − t)``.
    The *actual* waiting times still follow the true sizes — only the
    decisions use estimates.
    """

    name = "estimated-lwl"
    fast_hint = "lwl-est"

    def reset(self, n_hosts: int, rng: np.random.Generator) -> None:
        super().reset(n_hosts, rng)
        self._believed = np.zeros(n_hosts)

    def believed_work_left(self, now: float) -> np.ndarray:
        """The dispatcher's current picture of per-host backlog."""
        return np.maximum(0.0, self._believed - now)

    def choose_host(self, job, state) -> int:
        now = state.now
        work = self.believed_work_left(now)
        host = int(np.argmin(work))
        self._believed[host] = max(self._believed[host], now) + job.size_estimate
        return host
