"""The classical load-balancing policies of paper section 1.2.

* :class:`RandomPolicy` — Bernoulli splitting, equalises the *expected*
  number of jobs per host;
* :class:`RoundRobinPolicy` — cyclic assignment (job ``i`` to host
  ``i mod h``), same means with slightly less arrival variability;
* :class:`ShortestQueuePolicy` — fewest jobs in system;
* :class:`LeastWorkLeftPolicy` — least remaining work (the closest thing
  to instantaneous load balance);
* :class:`CentralQueuePolicy` — FCFS queue at the dispatcher, hosts pull
  when idle; provably equivalent to Least-Work-Left (section 3.1), which
  the test suite checks empirically.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, StatePolicy, StaticPolicy

__all__ = [
    "RandomPolicy",
    "RoundRobinPolicy",
    "ShortestQueuePolicy",
    "LeastWorkLeftPolicy",
    "CentralQueuePolicy",
]


class RandomPolicy(StaticPolicy):
    """Send each job to a uniformly random host."""

    name = "random"

    def choose_host(self, job, state) -> int:
        return int(self.rng.integers(self.n_hosts))

    def choose_live_host(self, job, state, up) -> int:
        # Uniform over the live hosts.  With every host up this draws
        # integers(n_hosts) and indexes the identity — bit-identical to
        # choose_host, as the protocol requires.
        live = np.flatnonzero(up)
        return int(live[self.rng.integers(live.size)])

    def assign_batch(self, sizes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(self.n_hosts, size=sizes.size)


class RoundRobinPolicy(StaticPolicy):
    """Cyclic assignment: the ``i``-th arrival goes to host ``i mod h``."""

    name = "round-robin"

    def reset(self, n_hosts: int, rng: np.random.Generator) -> None:
        super().reset(n_hosts, rng)
        self._next = 0

    def choose_host(self, job, state) -> int:
        host = self._next
        self._next = (self._next + 1) % self.n_hosts
        return host

    def choose_live_host(self, job, state, up) -> int:
        # Keep cycling, skipping down hosts; the pointer still advances
        # past them so the rotation resumes cleanly after repair.
        for _ in range(self.n_hosts):
            host = self._next
            self._next = (self._next + 1) % self.n_hosts
            if up[host]:
                return host
        raise ValueError("no live host to dispatch to")

    def assign_batch(self, sizes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.arange(sizes.size) % self.n_hosts


class ShortestQueuePolicy(StatePolicy):
    """Dispatch to the host with the fewest jobs in system (ties → lowest id)."""

    name = "shortest-queue"
    fast_hint = "sq"

    def choose_host(self, job, state) -> int:
        return int(np.argmin(state.queue_lengths()))

    def choose_live_host(self, job, state, up) -> int:
        lengths = np.where(up, state.queue_lengths(), np.inf)
        return int(np.argmin(lengths))


class LeastWorkLeftPolicy(StatePolicy):
    """Dispatch to the host with the least remaining work (ties → lowest id).

    With FCFS run-to-completion hosts this is exactly the M/G/h central
    queue in disguise; the fast simulator exploits the equivalence.
    """

    name = "least-work-left"
    fast_hint = "lwl"

    def choose_host(self, job, state) -> int:
        return int(np.argmin(state.work_left()))

    def choose_live_host(self, job, state, up) -> int:
        work = np.where(up, state.work_left(), np.inf)
        return int(np.argmin(work))


class CentralQueuePolicy(Policy):
    """Hold jobs at the dispatcher; an idle host pulls the next one.

    ``discipline`` selects which queued job a freed host takes:

    * ``"fcfs"`` — first-come-first-served: the classical Central-Queue,
      provably equivalent to Least-Work-Left;
    * ``"sjf"`` — shortest (estimated) job first: the "favor short jobs"
      rule the paper's section 8 discusses — excellent mean slowdown but
      *biased*: long jobs can starve, which is exactly the problem
      SITA-U-fair solves without the bias (see the ``ablate_sjf``
      experiment).
    """

    kind = "central"

    def __init__(self, discipline: str = "fcfs") -> None:
        if discipline not in ("fcfs", "sjf"):
            raise ValueError(f"unknown discipline {discipline!r}")
        self.discipline = discipline
        self.name = "central-queue" if discipline == "fcfs" else "central-sjf"
