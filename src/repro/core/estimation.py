"""Size-estimate error models (paper section 7, "Limitations").

SITA dispatching needs to know whether a job is short or long.  The paper
argues this is a mild requirement — users only have to classify against
*one* cutoff, and misclassified small jobs mostly hurt themselves — and
points to runtime prediction from historical data as an alternative.
This module makes both arguments testable:

* :func:`multiplicative_noise` — user estimates off by a lognormal factor
  (the standard model for human runtime estimates);
* :func:`misclassify` — flip a job's short/long classification with some
  probability, directly modelling the paper's one-bit user question;
* :class:`HistoryPredictor` — a tiny "machine learning" predictor in the
  spirit of the paper's refs [9, 16]: predicts each job's runtime as the
  running mean of previous runtimes of its user/class, so experiments can
  ask how a realistic predictor-driven SITA behaves.

Each function produces a ``size_estimates`` array accepted by
:func:`repro.sim.runner.simulate`.
"""

from __future__ import annotations

import numpy as np

from ..workloads.distributions import _as_rng

__all__ = ["multiplicative_noise", "misclassify", "HistoryPredictor"]


def multiplicative_noise(
    sizes: np.ndarray,
    error_factor: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Estimates ``s · ε`` with ``ln ε ~ N(0, ln²(error_factor))``.

    ``error_factor = 2`` means a typical (one-sigma) estimate is off by a
    factor of two in either direction; ``1`` returns exact estimates.
    """
    s = np.asarray(sizes, dtype=float)
    if error_factor < 1.0:
        raise ValueError(f"error_factor must be >= 1, got {error_factor}")
    if error_factor == 1.0:
        return s.copy()
    rng = _as_rng(rng)
    sigma = np.log(error_factor)
    return s * np.exp(rng.normal(0.0, sigma, size=s.size))


def misclassify(
    sizes: np.ndarray,
    cutoff: float,
    flip_probability: float,
    rng: np.random.Generator | int | None = None,
    direction: str = "both",
) -> np.ndarray:
    """Estimates that land on the wrong side of ``cutoff`` w.p. ``p``.

    Models the paper's one-bit user question ("is your job short or long?")
    answered incorrectly with probability ``flip_probability``.  Estimates
    are synthesised as ``cutoff/2`` (claimed short) or ``2·cutoff``
    (claimed long) — only the side of the cutoff matters to SITA.

    ``direction`` selects which errors can happen, because their costs are
    wildly asymmetric (the ``ablate_estimates`` experiment quantifies it):

    * ``"short-to-long"`` — short jobs claimed long.  This is the error
      the paper's §7 argument covers: the misclassified job mostly hurts
      itself ("their size is small compared to that of the other jobs on
      that machine").
    * ``"long-to-short"`` — long jobs claimed short: an elephant lands on
      the short host and tramples the 97 % of jobs living there.  The
      paper does not discuss this direction; it is the one that matters.
    * ``"both"`` — symmetric flips.
    """
    s = np.asarray(sizes, dtype=float)
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError(f"flip_probability must be in [0,1], got {flip_probability}")
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    if direction not in ("both", "short-to-long", "long-to-short"):
        raise ValueError(f"unknown direction {direction!r}")
    rng = _as_rng(rng)
    truly_short = s <= cutoff
    flip = rng.random(s.size) < flip_probability
    if direction == "short-to-long":
        flip &= truly_short
    elif direction == "long-to-short":
        flip &= ~truly_short
    claimed_short = truly_short ^ flip
    return np.where(claimed_short, cutoff / 2.0, cutoff * 2.0)


class HistoryPredictor:
    """Predict runtimes as the running mean of a job's class history.

    The paper's refs [9, 16] show MPP runtimes are predictable from
    historical runs of "similar" jobs.  Here similarity is an integer
    class label (user id, executable, queue — caller's choice); the
    predictor returns, for each job in submission order, the mean runtime
    of *earlier* jobs in the same class, falling back to the global
    running mean for a class's first job (and to ``prior`` for the very
    first job overall).
    """

    def __init__(self, prior: float = 1.0) -> None:
        if prior <= 0:
            raise ValueError(f"prior must be positive, got {prior}")
        self.prior = float(prior)

    def predict(self, sizes: np.ndarray, classes: np.ndarray) -> np.ndarray:
        """Online (leak-free) per-class running-mean predictions."""
        s = np.asarray(sizes, dtype=float)
        c = np.asarray(classes)
        if s.shape != c.shape or s.ndim != 1:
            raise ValueError("sizes and classes must be equal-length 1-D")
        sums: dict = {}
        counts: dict = {}
        global_sum = 0.0
        global_n = 0
        out = np.empty(s.size)
        for i in range(s.size):
            key = c[i]
            if counts.get(key, 0) > 0:
                out[i] = sums[key] / counts[key]
            elif global_n > 0:
                out[i] = global_sum / global_n
            else:
                out[i] = self.prior
            sums[key] = sums.get(key, 0.0) + s[i]
            counts[key] = counts.get(key, 0) + 1
            global_sum += s[i]
            global_n += 1
        return out
