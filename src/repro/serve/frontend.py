"""Asyncio newline-JSON front end over a :class:`DispatchServer`.

The core is synchronous and single-threaded by design (determinism);
this module is the *only* place concurrency exists.  The concurrency
discipline, which the ``SIM211`` lint rule enforces mechanically:

* every touch of shared mutable state — the core and the connection
  counter — happens inside ``async with self._lock``;
* the core's methods are plain synchronous calls, so no ``await`` can
  interleave another connection's request into a half-applied mutation;
* per-connection objects (reader, writer, parsed message) are owned by
  one coroutine and need no lock.

Requests across connections therefore serialize at the lock in arrival
order, which is exactly the semantics of one operator feeding the core.
"""

from __future__ import annotations

import asyncio
import contextlib
from pathlib import Path

from .protocol import KNOWN_OPS, MAX_LINE, ProtocolError, decode_line, encode
from .server import DispatchServer, OnlineDispatchError

__all__ = ["ServeFrontend"]


class ServeFrontend:
    """Serve a dispatch core over a Unix or TCP socket.

    The core is a :class:`DispatchServer` or anything duck-typing its
    driving surface — notably the sharded coordinator
    (:class:`repro.serve.shard.ShardedDispatchServer`), which makes the
    socket front end multi-process without a line of transport code
    here: the lock discipline is identical because the coordinator is
    just as synchronous as the single-process core.
    """

    def __init__(self, core: DispatchServer, max_batch: int = 4096) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._core = core
        #: largest ``submit_batch`` request accepted over the wire; a
        #: bound on per-request work under the lock, not on throughput
        #: (clients chunk larger streams).
        self.max_batch = int(max_batch)
        self._lock = asyncio.Lock()
        self._server: asyncio.AbstractServer | None = None
        self.connections = 0
        self.requests = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start_unix(self, path: str | Path) -> None:
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(path), limit=MAX_LINE
        )

    async def start_tcp(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port, limit=MAX_LINE
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start_unix/start_tcp first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        # Swap-then-await: the shared reference is cleared before any
        # suspension point, so a concurrent close() cannot double-close.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        async with self._lock:
            self.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    # Event-loop shutdown while idle on this connection.
                    # Returning (instead of re-raising) keeps the streams
                    # machinery from logging a spurious traceback when it
                    # polls task.exception() in its connection callback.
                    break
                except (ValueError, ConnectionError):
                    # over-long line (LimitOverrunError is a ValueError)
                    # or peer reset: this connection is unrecoverable.
                    break
                if not line:
                    break
                try:
                    msg = decode_line(line)
                except ProtocolError as exc:
                    reply = {"ok": False, "error": str(exc)}
                else:
                    async with self._lock:
                        self.requests += 1
                        reply = self._apply(msg)
                writer.write(encode(reply))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            async with self._lock:
                self.connections -= 1
            writer.close()
            # CancelledError is a BaseException, so suppress(Exception)
            # alone would let an event-loop-shutdown cancellation escape
            # from this final await and the streams machinery would log a
            # spurious traceback — same rationale as the readline catch.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    def _apply(self, msg: dict) -> dict:
        """Route one request into the core.

        Synchronous on purpose: the caller holds the lock, and with no
        ``await`` inside, the mutation is atomic with respect to every
        other connection.
        """
        op = msg["op"]
        try:
            if op == "submit":
                size = msg.get("size")
                if not isinstance(size, (int, float)):
                    raise ProtocolError("submit requires a numeric 'size'")
                arrival = msg.get("arrival", self._core.now)
                if not isinstance(arrival, (int, float)):
                    raise ProtocolError("'arrival' must be numeric")
                estimate = msg.get("size_estimate")
                if estimate is not None and not isinstance(estimate, (int, float)):
                    raise ProtocolError("'size_estimate' must be numeric")
                record = self._core.submit(
                    float(size), float(arrival), size_estimate=estimate
                )
                return {"ok": True, **record}
            if op == "submit_batch":
                jobs = msg.get("jobs")
                if not isinstance(jobs, list) or not jobs:
                    raise ProtocolError(
                        "submit_batch requires a non-empty 'jobs' list of "
                        "[arrival, size] or [arrival, size, estimate] rows"
                    )
                if len(jobs) > self.max_batch:
                    raise ProtocolError(
                        f"batch of {len(jobs)} exceeds max_batch "
                        f"{self.max_batch}"
                    )
                arrivals: list[float] = []
                sizes: list[float] = []
                estimates: list[float] = []
                for row in jobs:
                    if (
                        not isinstance(row, list)
                        or len(row) not in (2, 3)
                        or not all(isinstance(x, (int, float)) for x in row)
                    ):
                        raise ProtocolError(
                            "each job must be [arrival, size] or "
                            "[arrival, size, estimate] with numeric entries"
                        )
                    arrivals.append(float(row[0]))
                    sizes.append(float(row[1]))
                    estimates.append(float(row[2] if len(row) == 3 else row[1]))
                records = self._core.submit_batch(
                    arrivals, sizes, estimates, collect=True
                )
                return {"ok": True, "results": records}
            if op == "status":
                return {"ok": True, "status": self._core.status()}
            if op == "shards":
                status = self._core.status()
                sharding = status.get("sharding")
                if sharding is None:
                    return {
                        "ok": False,
                        "error": "this server is not sharded (run with "
                        "--shards N)",
                    }
                return {
                    "ok": True,
                    "sharding": sharding,
                    "shards": status.get("shards"),
                }
            if op == "drain":
                self._core.drain()
                return {"ok": True, "counters": self._core.counters()}
            return {
                "ok": False,
                "error": f"unknown op {op!r} (known: {', '.join(KNOWN_OPS)})",
            }
        except (ProtocolError, ValueError, OnlineDispatchError) as exc:
            return {"ok": False, "error": str(exc)}
