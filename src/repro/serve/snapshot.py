"""Crash-safe server snapshots: atomic writes, deterministic resume.

The dispatcher periodically persists its accounting to a single JSON
file using the same discipline as the experiment checkpoint store
(:class:`repro.experiments.base.Checkpoint`): write to a ``.tmp``
sibling, flush, ``fsync``, then ``os.replace`` — a reader (including a
resumed server after SIGKILL) only ever observes a complete file.

Resume is **replay-based**: the snapshot records the *stream position*
(how many jobs had been offered) plus the counters at that point, not
the event calendar.  Because the driver's job stream and every internal
draw come from spawned :class:`numpy.random.SeedSequence` children, a
fresh server replaying the same prefix reconstructs the interrupted
server's state bit-identically; the stored counters then serve as an
audit — a mismatch means nondeterminism, and the resume refuses to
continue rather than silently diverging.

``REPRO_SERVE_KILL_AFTER=N`` (mirroring ``REPRO_CHECKPOINT_KILL_AFTER``)
SIGKILLs the process after the N-th snapshot write — the CI soak job
uses it to prove the crash-recovery path on a real kill, not a mock.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from pathlib import Path
from typing import Any

__all__ = ["SnapshotStore", "serve_signature"]

SNAPSHOT_VERSION = 1


def serve_signature(config_description: str) -> str:
    """Stable digest of a server configuration.

    A snapshot written under one configuration must never seed a resume
    under another — same guard as the checkpoint store's
    ``config_signature``.
    """
    return hashlib.blake2s(config_description.encode(), digest_size=12).hexdigest()


class SnapshotStore:
    """Atomic single-file snapshot store for the online dispatcher."""

    def __init__(self, path: str | Path, signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self.writes = 0

    def save(self, payload: dict[str, Any]) -> None:
        """Atomically persist ``payload`` (tmp + fsync + ``os.replace``)."""
        doc = {
            "version": SNAPSHOT_VERSION,
            "signature": self.signature,
            **payload,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        with open(tmp, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.writes += 1
        kill_after = os.environ.get("REPRO_SERVE_KILL_AFTER")
        if kill_after and self.writes >= int(kill_after):
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    def load(self) -> dict[str, Any] | None:
        """The last complete snapshot, or ``None``.

        ``None`` covers missing, unreadable, corrupt, wrong-version and
        **stale** (signature mismatch) files — a resume from any of those
        must start from scratch, exactly like the checkpoint store.
        """
        try:
            with open(self.path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("version") != SNAPSHOT_VERSION:
            return None
        if doc.get("signature") != self.signature:
            return None
        return doc
