"""The fault-tolerant online dispatcher.

This module turns the batch simulator into a long-lived *server*: jobs
are offered one at a time (by the in-process driver or the newline-JSON
front end), each one is admitted or shed, routed through the existing
policy objects, and accounted for — while hosts crash and repair
underneath, per the same :mod:`repro.sim.faults` semantics the batch
experiments use as their failure model.

Architecture
------------

``DispatchServer`` is the deterministic core.  It embeds the
event-driven :class:`~repro.sim.server.DistributedServer` (hosts, FCFS
queues, crash/repair semantics, strict-mode invariants) and layers the
robustness machinery on top:

* **admission** — token-bucket intake plus a deferred-queue hard cap;
  over-rate or over-backlog arrivals are shed with an explicit
  ``rejected`` outcome (:mod:`repro.serve.admission`);
* **health** — per-host circuit breakers driven by heartbeat probes and
  handoff outcomes; dispatch masks on the breaker *belief*, never the
  true host state (:mod:`repro.serve.health`);
* **retry** — a handoff to a host that turns out to be down is retried
  with jittered exponential backoff, the jitter drawn from a dedicated
  spawned :class:`~numpy.random.SeedSequence` child so fault-free runs
  never touch the stream;
* **degraded-mode cutoffs** — SITA cutoffs re-fit online from a sliding
  window, falling back to last-known-good on any validation failure
  (:mod:`repro.serve.refit`);
* **snapshots** — the accounting is periodically persisted with atomic
  writes, and ``resume_from`` replays the stream prefix to reconstruct
  state bit-identically after SIGKILL (:mod:`repro.serve.snapshot`).

Everything advances on the *virtual* clock of the embedded event engine
— arrival epochs are supplied by the caller — so a served stream is a
deterministic, replayable function of its seeds.  Wall-clock enters only
through the per-decision latency reservoir, which is observability, not
state.

The accounting invariant, checked in :meth:`DispatchServer.status` and
asserted by the soak test::

    accepted == completed + rejected + lost + in_flight

with ``in_flight == 0`` after :meth:`~DispatchServer.drain`.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable, Sequence

import numpy as np

from ..core.policies import GroupedSITAPolicy, SITAPolicy
from ..core.policies.sita import validate_cutoffs
from ..sim.faults import FaultModel
from ..sim.jobs import Job
from ..sim.metrics import jain_fairness_index
from ..sim.server import DistributedServer
from .admission import AdmissionController
from .fastpath import FastPathState, fast_path_mode
from .health import HealthMonitor
from .refit import CutoffManager
from .snapshot import SnapshotStore

__all__ = ["DispatchServer", "OnlineDispatchError"]


class OnlineDispatchError(RuntimeError):
    """The dispatcher cannot make progress or failed a resume audit."""


class _OnlineServer(DistributedServer):
    """The embedded server with belief-masked dispatch and retry/backoff.

    The parent routes on the *true* up mask; this subclass routes on the
    health monitor's breaker belief, pays for stale beliefs with failed
    handoffs (observed by the breakers), parks failed jobs in backoff
    timers, and sheds on overflow — extending the parent's conservation
    accounting with the two new places a job can legally be.
    """

    def __init__(
        self,
        n_hosts: int,
        policy,
        *,
        rng,
        host_speeds,
        strict,
        faults,
        health: HealthMonitor,
        max_deferred: int,
        max_retries: int,
        give_up_after: int,
        backoff_base: float,
        backoff_mult: float,
        jitter_rng: np.random.Generator,
        on_shed,
        on_crash,
    ) -> None:
        super().__init__(
            n_hosts,
            policy,
            rng=rng,
            host_speeds=host_speeds,
            strict=strict,
            faults=faults,
        )
        self._health = health
        self.max_deferred = int(max_deferred)
        self.max_retries = int(max_retries)
        self.give_up_after = int(give_up_after)
        self.backoff_base = float(backoff_base)
        self.backoff_mult = float(backoff_mult)
        self._jitter_rng = jitter_rng
        self._on_shed = on_shed
        self._on_crash = on_crash
        #: jobs parked in a backoff timer, by job index.
        self._parked: dict[int, Job] = {}
        self._attempts: dict[int, int] = {}
        #: jobs shed after admission (deferred-queue overflow).
        self._shed_jobs: list[Job] = []
        self.n_retries = 0
        self.n_handoff_failures = 0
        self.n_given_up = 0

    # -- dispatch ------------------------------------------------------

    def _dispatch(self, job: Job) -> None:
        now = self.sim.now
        if job.interruptions > self.give_up_after:
            # Under "redispatch" semantics a job larger than the typical
            # up-period loses its progress at every crash and can
            # *never* complete; an unbounded retry loop would spin the
            # clock forever.  Give up explicitly: the job becomes a
            # "lost" outcome, visible in the counters.
            job.lost = True
            self._lost.append(job)
            self._attempts.pop(job.index, None)
            self.n_given_up += 1
            return
        up = self._health.up_mask(now)
        if not up.any():
            self._defer_or_shed(job)
            return
        host_idx = int(self.policy.choose_live_host(job, self.state, up))
        if not 0 <= host_idx < len(self.hosts) or not up[host_idx]:
            raise ValueError(
                f"policy returned invalid or masked host {host_idx} "
                f"for job {job.index}"
            )
        host = self.hosts[host_idx]
        if host.up:
            self._attempts.pop(job.index, None)
            self._health.probe(host_idx, True, now)
            host.submit(job)
            return
        # The breaker believed this host live but the handoff failed —
        # the belief was stale.  Feed the failure back and retry with
        # jittered exponential backoff.
        self.n_handoff_failures += 1
        self._health.probe(host_idx, False, now)
        attempts = self._attempts.get(job.index, 0) + 1
        self._attempts[job.index] = attempts
        if attempts > self.max_retries:
            self._attempts.pop(job.index, None)
            self._defer_or_shed(job)
            return
        self.n_retries += 1
        delay = self.backoff_base * self.backoff_mult ** (attempts - 1)
        delay *= 1.0 + float(self._jitter_rng.random())
        self._parked[job.index] = job
        self.sim.schedule_after(delay, self._retry, job)

    def _retry(self, job: Job) -> None:
        if self._parked.pop(job.index, None) is None:  # pragma: no cover
            return
        self._dispatch(job)

    def _defer_or_shed(self, job: Job) -> None:
        if len(self._deferred) < self.max_deferred:
            self._deferred.append(job)
        else:
            self._shed_jobs.append(job)
            if self._on_shed is not None:
                self._on_shed(job)

    def _flush_deferred(self) -> None:
        """One bounded pass over the deferred queue, FCFS.

        ``_dispatch`` may legally push a popped job back (mask emptied,
        retries exhausted), so the pass is bounded by the queue's length
        at entry instead of looping until empty.
        """
        for _ in range(len(self._deferred)):
            if not self._health.up_mask(self.sim.now).any():
                return
            self._dispatch(self._deferred.popleft())

    # -- fault plumbing ------------------------------------------------

    def crash_host(self, host_id: int) -> None:
        super().crash_host(host_id)
        # Detection is *not* instant — the breakers learn from failed
        # handoffs and the next heartbeat, never from this event.
        if self._on_crash is not None:
            self._on_crash(host_id)

    def repair_host(self, host_id: int) -> None:
        self.hosts[host_id].repair()
        # A repaired host announces itself: one successful probe.  An
        # open breaker still waits out its cooldown before trusting it.
        self._health.probe(host_id, True, self.sim.now)
        self._flush_deferred()

    # -- accounting ----------------------------------------------------

    def _dispatcher_held(self) -> dict[str, int]:
        held = super()._dispatcher_held()
        held["parked"] = len(self._parked)
        held["shed"] = len(self._shed_jobs)
        return held


class DispatchServer:
    """Deterministic online dispatcher core.

    Parameters
    ----------
    n_hosts, policy, host_speeds:
        As for :class:`~repro.sim.server.DistributedServer`; only
        immediate-dispatch policies (``kind`` of ``"static"`` or
        ``"state"``) are servable.
    seed:
        Root of the server's RNG tree — an integer, or a
        :class:`~numpy.random.SeedSequence` so a coordinator (the
        sharded engine) can hand each shard a spawned child instead of
        a re-rooted integer.  Spawned grandchildren feed the policy and
        the retry jitter; the fault schedule has its own root inside
        ``faults`` (exactly the batch discipline).
    faults:
        Optional :class:`~repro.sim.faults.FaultModel`; its injector is
        attached immediately, so crashes interleave with the stream.
    admission:
        Intake policy; defaults to an unlimited bucket with a 1024-job
        deferred cap.
    health:
        Breaker configuration; hosts are registered here automatically.
    cutoff_manager:
        Optional degraded-mode re-fit manager.  Requires a single-cutoff
        policy (2-host :class:`SITAPolicy` or any
        :class:`GroupedSITAPolicy`).
    heartbeat_interval:
        Simulated seconds between probe rounds.
    max_retries, give_up_after:
        Failed-handoff retries per dispatch attempt, and the budget of
        service-interrupting crashes after which a job is abandoned as
        an explicit ``lost`` outcome — under ``"redispatch"`` semantics
        a job longer than the typical up-period would otherwise never
        complete and the drain could never terminate.
    snapshot_store, snapshot_every:
        Crash-safe accounting; a snapshot is written every
        ``snapshot_every``-th offered job and once more on drain.
    fast_path:
        Allow the fault-free fast path (:mod:`repro.serve.fastpath`) to
        engage.  It engages at construction when no fault model is
        attached and the policy has a fast-path mode, and *disengages
        permanently* — handing the exact engine state over — the moment
        any breaker records failure evidence.  Decisions, counters and
        per-job fields are bit-identical either way; set ``False`` to
        force the event path (the bit-identity suite does exactly that).
    """

    def __init__(
        self,
        n_hosts: int,
        policy,
        *,
        seed: int | np.random.SeedSequence = 0,
        host_speeds: Sequence[float] | None = None,
        strict: bool | None = None,
        faults: FaultModel | None = None,
        admission: AdmissionController | None = None,
        health: HealthMonitor | None = None,
        cutoff_manager: CutoffManager | None = None,
        heartbeat_interval: float = 5.0,
        max_retries: int = 3,
        give_up_after: int = 16,
        backoff_base: float = 0.25,
        backoff_mult: float = 2.0,
        snapshot_store: SnapshotStore | None = None,
        snapshot_every: int = 1000,
        fast_path: bool = True,
    ) -> None:
        kind = getattr(policy, "kind", None)
        if kind not in ("static", "state"):
            raise ValueError(
                f"the online dispatcher serves immediate-dispatch policies "
                f"only (kind 'static' or 'state'), got {kind!r}"
            )
        if not heartbeat_interval > 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if cutoff_manager is not None:
            self._check_refittable(policy)
        self.heartbeat_interval = float(heartbeat_interval)
        self.admission = admission if admission is not None else AdmissionController()
        self.health = health if health is not None else HealthMonitor()
        for i in range(n_hosts):
            self.health.register_host(i)
        self.cutoff_manager = cutoff_manager
        self.snapshot_store = snapshot_store
        self.snapshot_every = int(snapshot_every)
        root_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        policy_seq, jitter_seq = root_seq.spawn(2)
        self._inner = _OnlineServer(
            n_hosts,
            policy,
            rng=np.random.default_rng(policy_seq),
            host_speeds=host_speeds,
            strict=strict,
            faults=faults,
            health=self.health,
            max_deferred=self.admission.max_deferred,
            max_retries=max_retries,
            give_up_after=give_up_after,
            backoff_base=backoff_base,
            backoff_mult=backoff_mult,
            jitter_rng=np.random.default_rng(jitter_seq),
            on_shed=self._on_shed,
            on_crash=self._on_crash,
        )
        self.policy = policy
        self.n_accepted = 0
        self.n_rejected_intake = 0
        self._next_index = 0
        self._replaying = False
        #: per-call (nanoseconds, decisions) pairs for the two stages the
        #: latency histogram keeps apart: intake (validation + engine
        #: advance + admission) and decision (routing + commit).
        self._intake_ns: list[tuple[int, int]] = []
        self._decision_ns: list[tuple[int, int]] = []
        self._route_ns = 0
        self._commit_ns = 0
        self._deferred_peak = 0
        if self._inner.fault_injector is not None:
            self._inner.fault_injector.attach(self._inner)
        self._fastpath: FastPathState | None = None
        mode = fast_path_mode(policy) if fast_path else None
        if mode is not None and self._inner.fault_injector is None:
            self._fastpath = FastPathState(
                n_hosts,
                [h.speed for h in self._inner.hosts],
                mode,
                policy,
            )
        self._fastpath_stats = {
            "engaged": self._fastpath is not None,
            "mode": mode if self._fastpath is not None else None,
            "handovers": 0,
            "decisions": 0,
        }
        if self._fastpath is None:
            # Engaged servers suspend the heartbeat chain: with no fault
            # model and pristine breakers every probe is a success that
            # cannot change routing state.  ``_handover`` resumes the
            # chain at the exact epoch the engine path would be on.
            self._inner.sim.schedule_after(
                self.heartbeat_interval, self._heartbeat
            )

    @staticmethod
    def _check_refittable(policy) -> None:
        single = isinstance(policy, GroupedSITAPolicy) or (
            isinstance(policy, SITAPolicy) and policy.cutoffs.size == 1
        )
        if not single:
            raise ValueError(
                "online cutoff re-fit needs a single-cutoff policy "
                "(2-host SITAPolicy or GroupedSITAPolicy), got "
                f"{getattr(policy, 'name', type(policy).__name__)!r}"
            )

    # ------------------------------------------------------------------
    # internal hooks
    # ------------------------------------------------------------------

    def _on_shed(self, job: Job) -> None:
        # Deferred-queue overflow: accounting only; the job object stays
        # on the inner server's shed list for conservation.
        pass

    def _on_crash(self, host_id: int) -> None:
        if self.cutoff_manager is not None:
            self.cutoff_manager.mark_contaminated()

    def _heartbeat(self) -> None:
        now = self._inner.sim.now
        for i, host in enumerate(self._inner.hosts):
            self.health.probe(i, host.up, now)
        self._inner._flush_deferred()
        self._inner.sim.schedule_after(self.heartbeat_interval, self._heartbeat)

    def _apply_cutoff(self, cutoff: float) -> None:
        policy = self.policy
        if isinstance(policy, GroupedSITAPolicy):
            policy.cutoff = float(cutoff)
        else:
            policy.cutoffs = validate_cutoffs([cutoff])

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._inner.sim.now

    def submit(
        self,
        size: float,
        arrival: float,
        size_estimate: float | None = None,
    ) -> dict:
        """Offer one job to the server; returns the decision record.

        ``arrival`` is the job's virtual-time epoch and must be
        non-decreasing across calls; the embedded engine is advanced to
        it first, so crashes, repairs, heartbeats and retries that were
        due interleave exactly as they would in a batch run.
        """
        t0 = time.perf_counter_ns()
        if not (size > 0 and math.isfinite(size)):
            raise ValueError(f"job size must be positive and finite, got {size}")
        now = float(arrival)
        sim = self._inner.sim
        if now < sim.now:
            raise ValueError(
                f"arrivals must be non-decreasing: got {now} at server "
                f"time {sim.now}"
            )
        fp = self._fastpath
        if fp is not None and not self.health.pristine():
            self._handover()
            fp = None
        sim.run(until=now)
        self.n_accepted += 1
        decision = self.admission.admit(now, len(self._inner._deferred))
        t1 = time.perf_counter_ns()
        if decision != "admit":
            self.n_rejected_intake += 1
            record = {"outcome": "rejected", "reason": decision, "host": None}
        elif fp is not None:
            mgr = self.cutoff_manager
            if mgr is not None and mgr.observe(float(size), now):
                if mgr.refit():
                    self._apply_cutoff(mgr.cutoff)
            self._next_index += 1
            host = fp.route_one(
                now,
                float(size),
                float(size if size_estimate is None else size_estimate),
            )
            record = {"outcome": "admitted", "reason": "admit", "host": host}
        else:
            job = Job(
                index=self._next_index,
                arrival_time=now,
                size=float(size),
                size_estimate=float(size if size_estimate is None else size_estimate),
            )
            self._next_index += 1
            mgr = self.cutoff_manager
            if mgr is not None and mgr.observe(job.size, now):
                if mgr.refit():
                    self._apply_cutoff(mgr.cutoff)
            sim.schedule(now, self._inner._handle_arrival, job)
            sim.run(until=now)
            record = {
                "outcome": "admitted",
                "reason": "admit",
                "host": job.assigned_host,
            }
        t2 = time.perf_counter_ns()
        self._intake_ns.append((t1 - t0, 1))
        self._decision_ns.append((t2 - t1, 1))
        self._route_ns += t2 - t1
        self._deferred_peak = max(self._deferred_peak, len(self._inner._deferred))
        if (
            self.snapshot_store is not None
            and not self._replaying
            and self.snapshot_every > 0
            and self.n_accepted % self.snapshot_every == 0
        ):
            self._write_snapshot()
        return record

    def submit_batch(
        self,
        arrivals: Sequence[float] | np.ndarray,
        sizes: Sequence[float] | np.ndarray,
        size_estimates: Sequence[float] | np.ndarray | None = None,
        collect: bool = False,
    ) -> list[dict] | int:
        """Offer a whole arrival batch at once (vectorized intake).

        Outcome-equivalent to calling :meth:`submit` once per job in
        order — the bit-identity and batch-invariance tests assert it —
        but the fault-free fast path admits and routes the batch through
        one kernel call instead of ``n`` Python round-trips.  When the
        batch cannot be bulk-processed exactly (engine path, finite-rate
        admission, online re-fit windows), it transparently degrades to
        the scalar loop.

        Validation is **atomic**: the batch is checked up front and the
        first offending job raises the exception :meth:`submit` would
        have raised, with *no* state change — whereas the scalar loop
        would have processed the jobs preceding the offender.  That is
        the one deliberate semantic difference, and it only exists on
        erroneous input.

        Returns the number of jobs offered, or the per-job decision
        records (in offer order) when ``collect=True``.
        """
        t0 = time.perf_counter_ns()
        t = np.ascontiguousarray(arrivals, dtype=np.float64)
        s = np.ascontiguousarray(sizes, dtype=np.float64)
        if t.ndim != 1 or s.shape != t.shape:
            raise ValueError(
                f"arrivals and sizes must be 1-D of equal length, got "
                f"shapes {t.shape} and {s.shape}"
            )
        if size_estimates is None:
            e = s
        else:
            e = np.ascontiguousarray(size_estimates, dtype=np.float64)
            if e.shape != t.shape:
                raise ValueError(
                    f"size_estimates must match arrivals, got shapes "
                    f"{e.shape} and {t.shape}"
                )
        n = int(t.shape[0])
        if n == 0:
            return [] if collect else 0
        bad = ~(np.isfinite(s) & (s > 0))
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"job size must be positive and finite, got {s[k]}"
            )
        sim = self._inner.sim
        if float(t[0]) < sim.now:
            raise ValueError(
                f"arrivals must be non-decreasing: got {float(t[0])} at "
                f"server time {sim.now}"
            )
        unordered = np.flatnonzero(np.diff(t) < 0)
        if unordered.size:
            k = int(unordered[0])
            raise ValueError(
                f"arrivals must be non-decreasing: got {float(t[k + 1])} "
                f"at server time {float(t[k])}"
            )
        fp = self._fastpath
        if fp is not None and not self.health.pristine():
            self._handover()
            fp = None
        if (
            fp is None
            or self.cutoff_manager is not None
            or not self.admission.unlimited()
        ):
            # Per-job admission state, re-fit windows or engine
            # interleavings are in play: the scalar loop is the
            # semantics, so use it.
            if collect:
                return [
                    self.submit(float(s[j]), float(t[j]), float(e[j]))
                    for j in range(n)
                ]
            for j in range(n):
                self.submit(float(s[j]), float(t[j]), float(e[j]))
            return n
        t1 = time.perf_counter_ns()
        self._intake_ns.append((t1 - t0, n))
        store = self.snapshot_store
        if store is not None and (self._replaying or self.snapshot_every <= 0):
            store = None
        route_ns = 0
        pos = 0
        while pos < n:
            end = n
            if store is not None:
                # Stop each chunk on the snapshot cadence so resume sees
                # the same every-k-offers checkpoints as the scalar path.
                boundary = (
                    self.n_accepted // self.snapshot_every + 1
                ) * self.snapshot_every
                end = min(n, pos + (boundary - self.n_accepted))
            chunk = end - pos
            self.admission.admit_batch(chunk)
            self.n_accepted += chunk
            self._next_index += chunk
            r0 = time.perf_counter_ns()
            fp.route_batch(t[pos:end], s[pos:end], e[pos:end])
            route_ns += time.perf_counter_ns() - r0
            sim.run(until=float(t[end - 1]))
            if store is not None and self.n_accepted % self.snapshot_every == 0:
                self._write_snapshot()
            pos = end
        t2 = time.perf_counter_ns()
        self._decision_ns.append((t2 - t1, n))
        self._route_ns += route_ns
        self._commit_ns += (t2 - t1) - route_ns
        if collect:
            return [
                {"outcome": "admitted", "reason": "admit", "host": int(h)}
                for h in fp._host[fp.m - n : fp.m].tolist()
            ]
        return n

    def _handover(self) -> None:
        """Disengage the fast path, reconstructing engine state exactly.

        Called the moment any breaker holds failure evidence (and by
        ``drain`` when that happens last-minute).  The columnar records
        become real jobs/queues/events at the current instant, and the
        heartbeat chain resumes at the epoch the engine path would be
        on: beats fire at cumulative sums ``hb, hb+hb, …`` (the
        ``schedule_after`` accumulation from 0.0), so the next one is
        the first such partial sum strictly after ``now`` — computed by
        the same repeated addition for bit-identical epochs.  One-way:
        the server never re-engages.
        """
        fp = self._fastpath
        assert fp is not None
        self._fastpath = None
        inner = self._inner
        now = inner.sim.now
        fp.hand_over(inner, now)
        beat = self.heartbeat_interval
        while beat <= now:
            beat += self.heartbeat_interval
        inner.sim.schedule(beat, self._heartbeat)
        self._fastpath_stats["engaged"] = False
        self._fastpath_stats["handovers"] += 1
        self._fastpath_stats["decisions"] = fp.m

    def drain(self, max_stalls: int = 256) -> None:
        """Advance virtual time until no admitted job is in flight.

        Each chunk's horizon is sized from the *remaining work* (host
        backlogs plus deferred/parked job sizes), so a heavy-tailed job
        mid-service is drained in a handful of chunks rather than by
        fixed-step crawling.  Progress is still bounded: ``max_stalls``
        consecutive chunks completing nothing raises a diagnosable
        :class:`OnlineDispatchError` (a fault model whose repairs cannot
        keep up with the retry churn) instead of spinning forever.
        """
        fp = self._fastpath
        if fp is not None:
            if not self.health.pristine():
                self._handover()
            else:
                sim = self._inner.sim
                horizon = fp.max_completion()
                if horizon > sim.now:
                    # The calendar is empty while engaged, so this is an
                    # O(1) clock advance past the last completion epoch.
                    sim.run(until=horizon)
                fp.materialize_completed(self._inner, sim.now)
                if self.snapshot_store is not None and not self._replaying:
                    self._write_snapshot()
                return
        inner = self._inner
        sim = inner.sim
        stalls = 0
        while self.in_flight > 0:
            done_before = self.n_completed + self.n_lost
            pending = float(np.sum(inner.state.work_left()))
            pending += sum(j.size for j in inner._deferred)
            pending += sum(j.size for j in inner._parked.values())
            step = max(2.0 * pending, 4.0 * self.heartbeat_interval)
            if inner.fault_injector is not None:
                step = max(step, 2.0 * inner.fault_injector.model.mttr)
            sim.run(until=sim.now + step)
            if self.n_completed + self.n_lost == done_before:
                stalls += 1
                if stalls >= max_stalls:
                    injector = inner.fault_injector
                    hint = (
                        f" (availability {injector.model.availability:.3f})"
                        if injector is not None
                        else ""
                    )
                    raise OnlineDispatchError(
                        f"{self.in_flight} jobs still in flight after "
                        f"{max_stalls} stalled drain chunks — the fault "
                        f"model may be too aggressive to make progress{hint}"
                    )
            else:
                stalls = 0
        if self.snapshot_store is not None and not self._replaying:
            self._write_snapshot()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    @property
    def n_completed(self) -> int:
        fp = self._fastpath
        if fp is not None:
            # Completions are implicit while engaged: a record is done
            # once the clock passes its completion epoch.
            return fp.completed_count(self._inner.sim.now)
        return len(self._inner._completed)

    @property
    def n_lost(self) -> int:
        return len(self._inner._lost)

    @property
    def n_rejected(self) -> int:
        """All sheds: at intake plus deferred-queue overflow."""
        return self.n_rejected_intake + len(self._inner._shed_jobs)

    @property
    def in_flight(self) -> int:
        return self.n_accepted - self.n_rejected - self.n_completed - self.n_lost

    def counters(self) -> dict:
        """The deterministic accounting (snapshot payload, audit unit)."""
        inner = self._inner
        injector = inner.fault_injector
        return {
            "accepted": self.n_accepted,
            "rejected": self.n_rejected,
            "rejected_intake": self.n_rejected_intake,
            "rejected_overflow": len(inner._shed_jobs),
            "completed": self.n_completed,
            "lost": self.n_lost,
            "in_flight": self.in_flight,
            "retries": inner.n_retries,
            "handoff_failures": inner.n_handoff_failures,
            "given_up": inner.n_given_up,
            "deferred": len(inner._deferred),
            "parked": len(inner._parked),
            "deferred_peak": self._deferred_peak,
            "crashes": 0 if injector is None else injector.total_crashes,
        }

    def load_summary(self) -> dict:
        """In-flight count plus remaining-work backlog, in service time.

        This is what a load-aware shard router samples: the host-level
        virtual completion horizon (fast path) or the engine's
        ``work_left`` plus deferred/parked sizes (event path).  Belief
        food, not accounting — nothing here enters the counters.
        """
        now = self.now
        fp = self._fastpath
        if fp is not None:
            backlog = float(np.maximum(fp.v - now, 0.0).sum())
        else:
            inner = self._inner
            backlog = float(np.sum(inner.state.work_left()))
            backlog += sum(j.size for j in inner._deferred)
            backlog += sum(j.size for j in inner._parked.values())
        return {"in_flight": int(self.in_flight), "backlog": backlog}

    def job_table(self) -> dict[str, np.ndarray]:
        """Columnar per-job outcomes, keyed by local submission index.

        Meant for post-drain merging by the sharded coordinator: while
        the fast path is engaged the columns are the record arrays
        themselves (every routed job, all of them complete after a
        fault-free drain); on the event path they cover the completed
        jobs, sorted back into submission order.  ``index`` is the local
        ``Job.index`` — the coordinator owns the local→global mapping.
        Hosts are local ids; the coordinator re-bases them.
        """
        fp = self._fastpath
        if fp is not None:
            m = fp.m
            return {
                "index": np.arange(m, dtype=np.int64),
                "arrival": fp._arrival[:m].copy(),
                "size": fp._size[:m].copy(),
                "host": fp._host[:m].copy(),
                "start": fp._start[:m].copy(),
                "completion": fp._comp[:m].copy(),
            }
        jobs = sorted(self._inner._completed, key=lambda j: j.index)
        return {
            "index": np.array([j.index for j in jobs], dtype=np.int64),
            "arrival": np.array([j.arrival_time for j in jobs], dtype=np.float64),
            "size": np.array([j.size for j in jobs], dtype=np.float64),
            "host": np.array([j.assigned_host for j in jobs], dtype=np.int64),
            "start": np.array([j.start_time for j in jobs], dtype=np.float64),
            "completion": np.array(
                [j.completion_time for j in jobs], dtype=np.float64
            ),
        }

    def latency_pairs(self) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """The raw ``(nanoseconds, decisions)`` stage pairs, for merging."""
        return list(self._intake_ns), list(self._decision_ns)

    def latency_summary(self) -> dict:
        """Wall-clock decision latency (observability, not state).

        The percentiles cover the **decision** stage only — routing plus
        commit — so they no longer conflate admission-queue wait with
        routing cost; the intake stage (validation, engine advance,
        token-bucket decision) is reported separately under ``"intake"``.
        ``decisions_per_s`` still divides by the *total* wall time of
        both stages, keeping the throughput figure comparable across
        releases.  Batched decisions contribute their per-job mean.
        """
        if not self._decision_ns:
            return {"decisions": 0}
        d_ns = np.array([pair[0] for pair in self._decision_ns], dtype=float)
        counts = np.array([pair[1] for pair in self._decision_ns])
        i_total = float(sum(pair[0] for pair in self._intake_ns))
        d_total = float(d_ns.sum())
        n = int(counts.sum())
        per_job = np.repeat(d_ns / counts, counts)
        return {
            "decisions": n,
            "decisions_per_s": float(n / ((i_total + d_total) / 1e9)),
            "mean_us": float(per_job.mean() / 1e3),
            "p50_us": float(np.percentile(per_job, 50) / 1e3),
            "p95_us": float(np.percentile(per_job, 95) / 1e3),
            "p99_us": float(np.percentile(per_job, 99) / 1e3),
            "intake": {
                "total_ms": i_total / 1e6,
                "mean_us": i_total / n / 1e3,
            },
            "stages": {
                "intake_ms": i_total / 1e6,
                "route_ms": self._route_ns / 1e6,
                "commit_ms": self._commit_ns / 1e6,
            },
        }

    def fast_path_status(self) -> dict:
        """Fast-path engagement state (observability, not accounting)."""
        fp = self._fastpath
        st = dict(self._fastpath_stats)
        st["engaged"] = fp is not None
        if fp is not None:
            st["decisions"] = fp.m
        return st

    def status(self) -> dict:
        """Full observability document (counters, breakers, cutoffs…)."""
        now = self.now
        counters = self.counters()
        holds = counters["accepted"] == (
            counters["completed"]
            + counters["rejected"]
            + counters["lost"]
            + counters["in_flight"]
        )
        fp = self._fastpath
        if fp is not None:
            # Materialisation is lazy while engaged; the columnar records
            # yield the same (completion - arrival) / size slowdowns in
            # the same completion order.
            slowdowns = fp.slowdowns(now)
        else:
            completed = self._inner._completed
            slowdowns = (
                np.array([j.slowdown for j in completed]) if completed else None
            )
        injector = self._inner.fault_injector
        return {
            "clock": now,
            "counters": counters,
            "invariant": {"accepted = completed + rejected + lost + in_flight": holds},
            "admission": self.admission.status(),
            "breakers": self.health.status(now),
            "cutoffs": None
            if self.cutoff_manager is None
            else self.cutoff_manager.status(),
            "faults": None if injector is None else injector.schedule_status(),
            "jain_slowdown": None
            if slowdowns is None
            else jain_fairness_index(slowdowns),
            "latency": self.latency_summary(),
            "fast_path": self.fast_path_status(),
        }

    # ------------------------------------------------------------------
    # snapshots / resume
    # ------------------------------------------------------------------

    def _write_snapshot(self) -> None:
        assert self.snapshot_store is not None
        self.snapshot_store.save(
            {
                "accepted": self.n_accepted,
                "clock": self.now,
                "counters": self.counters(),
                "breakers": self.health.states(self.now),
                # Engagement is a pure function of the replayed stream,
                # so resume needs no fast-path state — recorded for
                # observability and post-crash debugging only.
                "fast_path": self._fastpath is not None,
            }
        )

    def _submit_many(
        self, jobs: Sequence[tuple[float, float]], batch_size: int
    ) -> None:
        if batch_size <= 1:
            for arrival, size in jobs:
                self.submit(size, arrival)
            return
        for i in range(0, len(jobs), batch_size):
            chunk = jobs[i : i + batch_size]
            self.submit_batch(
                [a for a, _ in chunk], [s for _, s in chunk]
            )

    def run_stream(
        self,
        jobs: Iterable[tuple[float, float]],
        resume: bool = False,
        batch_size: int = 1,
    ) -> dict:
        """Drive a full ``(arrival, size)`` stream and drain.

        With ``resume=True`` and a valid snapshot, the recorded prefix is
        replayed first (snapshot writes suppressed) and the reconstructed
        counters are audited against the stored ones — a mismatch means
        the stream or the server is nondeterministic, and the resume
        refuses to continue.

        ``batch_size > 1`` feeds the stream through
        :meth:`submit_batch` in chunks of that size; the decisions and
        counters are identical for every batch size (asserted by the
        batch-invariance test), only the wall-clock throughput changes.
        The replay prefix is batched the same way, so a resumed run
        retraces the original snapshot cadence exactly.
        """
        jobs = list(jobs)
        start = 0
        if resume:
            if self.snapshot_store is None:
                raise ValueError("resume requires a snapshot store")
            doc = self.snapshot_store.load()
            if doc is not None:
                start = int(doc["accepted"])
                if start > len(jobs):
                    raise OnlineDispatchError(
                        f"snapshot records {start} offered jobs but the "
                        f"stream has only {len(jobs)}"
                    )
                self._replaying = True
                try:
                    self._submit_many(jobs[:start], batch_size)
                finally:
                    self._replaying = False
                got = self.counters()
                if got != doc["counters"]:
                    diff = {
                        k: (got.get(k), doc["counters"].get(k))
                        for k in sorted(set(got) | set(doc["counters"]))
                        if got.get(k) != doc["counters"].get(k)
                    }
                    raise OnlineDispatchError(
                        "resume audit failed: deterministic replay of "
                        f"{start} jobs disagrees with the snapshot on {diff}"
                    )
        self._submit_many(jobs[start:], batch_size)
        self.drain()
        return self.status()
