"""The fault-free dispatch fast path: columnar host state, no events.

When a :class:`~repro.serve.server.DispatchServer` has no fault model
and every circuit breaker is pristine, nothing nondeterministic can
happen between arrivals: no crash, no repair, no retry timer, and every
heartbeat probe is a success that cannot change any breaker's routing
state.  The event engine then degenerates to bookkeeping — each arrival
schedules exactly one event chain whose timing is a closed-form
function of the per-host *virtual completion time* ``V`` (``start =
max(V, t)``, ``V' = start + size/speed``; see
:mod:`repro.sim.host`).

:class:`FastPathState` exploits that: admitted jobs are appended to
columnar record arrays (arrival, size, estimate, host, start,
completion) and the per-host state advances through the
:func:`~repro.sim.fast.serve_dispatch_batch` kernel — O(1) scalar
updates per decision, batched over the intake — while the embedded
engine's calendar stays empty (advancing its clock over an empty
calendar is O(1)).  Every float expression replicates the engine path
op for op, so starts, completions, waits and host picks are
**bit-identical** to the event path; the hypothesis suite in
``tests/serve/test_fastpath.py`` asserts this.

The fast path is *exact* but *narrow*.  It refuses to engage (or hands
over, see below) whenever anything it cannot model appears:

* a fault model (crash/repair events interleave with the stream);
* a policy outside Least-Work-Left / Shortest-Queue / SITA / Random /
  Round-Robin (e.g. :class:`~repro.core.policies.GroupedSITAPolicy`'s
  group-wise spill reads live-host state);
* any breaker failure evidence at all
  (:meth:`~repro.serve.health.HealthMonitor.pristine` turns false) —
  from that instant breaker timing interacts with heartbeats, so
  :meth:`FastPathState.hand_over` reconstructs the exact engine state
  (host queues, the in-service job and its completion event, FCFS
  sequence stamps, busy-time accounting, the heartbeat chain) at the
  current instant and the server continues on the event path.

One observable difference is accepted and documented: heartbeats are
suspended while engaged, so breaker *success-observation counts* (the
``observations.ok`` field of ``status()["breakers"]``) stay at zero —
they are observability, not routing state, and cannot influence any
decision while every breaker is pristine.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.policies import (
    GroupedSITAPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SITAPolicy,
)
from ..sim.fast import SERVE_DISPATCH_MODES, serve_dispatch_batch
from ..sim.jobs import Job

__all__ = ["FastPathState", "fast_path_mode"]

#: placeholder for the kernel's unused ``cutoffs`` argument.
_NO_CUTOFFS = np.empty(0, dtype=np.float64)


def fast_path_mode(policy) -> str | None:
    """The fast-path routing mode for ``policy``, or ``None``.

    ``"lwl"`` and ``"sita"`` route inside the kernel; ``"seq"``
    (Random/Round-Robin) draws hosts one at a time in Python so the
    policy's RNG or rotation pointer advances exactly as on the engine
    path, then commits through the kernel; ``"sq"`` (Shortest-Queue)
    tracks per-host in-system counts with completion-time deques in
    Python.  Anything else — notably :class:`GroupedSITAPolicy`, whose
    spill rule reads the live-host mask — stays on the event path.
    """
    if isinstance(policy, GroupedSITAPolicy):
        return None
    if isinstance(policy, SITAPolicy):
        return "sita"
    if isinstance(policy, (RandomPolicy, RoundRobinPolicy)):
        return "seq"
    hint = getattr(policy, "fast_hint", None)
    if hint in ("lwl", "sq"):
        return hint
    return None


class FastPathState:
    """Columnar record of every decision made while the path is engaged.

    Record ``k`` is the ``k``-th *admitted* job (its engine-path
    ``Job.index``).  Completed records are materialised into real
    :class:`~repro.sim.jobs.Job` objects lazily — on drain, handover or
    a status call — with every field the event path would have set.
    """

    def __init__(self, n_hosts: int, host_speeds, mode: str, policy) -> None:
        if mode not in ("lwl", "sita", "seq", "sq"):
            raise ValueError(f"unknown fast-path mode {mode!r}")
        self.mode = mode
        self.policy = policy
        self.n_hosts = int(n_hosts)
        self.speeds = np.ascontiguousarray(host_speeds, dtype=np.float64)
        self._speeds_list = self.speeds.tolist()
        #: per-host virtual completion times (the whole host state).
        self.v = np.zeros(self.n_hosts, dtype=np.float64)
        cap = 1024
        self._arrival = np.empty(cap, dtype=np.float64)
        self._size = np.empty(cap, dtype=np.float64)
        self._est = np.empty(cap, dtype=np.float64)
        self._host = np.empty(cap, dtype=np.int64)
        self._start = np.empty(cap, dtype=np.float64)
        self._comp = np.empty(cap, dtype=np.float64)
        #: records routed so far (== next engine Job.index).
        self.m = 0
        #: prefix of records already materialised as Job objects.
        self.mat = 0
        #: next per-host FCFS sequence stamp (Job.host_seq continuity).
        self._hseq_next = [0] * self.n_hosts
        #: "sq" only: per-host completion epochs of in-system jobs.
        self._in_system = (
            [deque() for _ in range(self.n_hosts)] if mode == "sq" else None
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _ensure(self, need: int) -> None:
        cap = self._arrival.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        m = self.m
        for name in ("_arrival", "_size", "_est", "_start", "_comp"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=np.float64)
            new[:m] = old[:m]
            setattr(self, name, new)
        old_h = self._host
        new_h = np.empty(cap, dtype=np.int64)
        new_h[:m] = old_h[:m]
        self._host = new_h

    def route_one(self, t: float, s: float, est: float) -> int:
        """Route a single admitted job; returns the chosen host."""
        m = self.m
        self._ensure(m + 1)
        mode = self.mode
        v = self.v
        if mode == "lwl":
            best = 0
            best_key = v[0] - t
            if best_key < 0.0:
                best_key = 0.0
            for i in range(1, self.n_hosts):
                key = v[i] - t
                if key < 0.0:
                    key = 0.0
                if key < best_key:
                    best = i
                    best_key = key
            best = int(best)
        elif mode == "sita":
            # The policy's own expression, on its *current* cutoffs —
            # degraded-mode re-fit may retune them between any two jobs.
            best = int(
                np.searchsorted(self.policy.cutoffs, est, side="left")
            )
        elif mode == "seq":
            # Random/Round-Robin ignore both arguments; calling through
            # the policy keeps its RNG / rotation pointer exact.
            best = int(self.policy.choose_host(None, None))
        else:  # sq
            best = 0
            best_len = -1
            for i in range(self.n_hosts):
                qi = self._in_system[i]
                while qi and qi[0] <= t:
                    qi.popleft()
                li = len(qi)
                if best_len < 0 or li < best_len:
                    best = i
                    best_len = li
        vb = float(v[best])
        start = t if vb < t else vb
        comp = start + s / self._speeds_list[best]
        v[best] = comp
        self._arrival[m] = t
        self._size[m] = s
        self._est[m] = est
        self._host[m] = best
        self._start[m] = start
        self._comp[m] = comp
        if mode == "sq":
            self._in_system[best].append(comp)
        self.m = m + 1
        return best

    def route_batch(
        self, t: np.ndarray, s: np.ndarray, est: np.ndarray
    ) -> np.ndarray:
        """Route a whole admitted batch; returns the chosen hosts."""
        n = t.shape[0]
        a = self.m
        self._ensure(a + n)
        if self.mode == "sq":
            # In-system counts change job by job; stays in Python.
            t_l, s_l, e_l = t.tolist(), s.tolist(), est.tolist()
            for j in range(n):
                self.route_one(t_l[j], s_l[j], e_l[j])
            return self._host[a : a + n]
        self._arrival[a : a + n] = t
        self._size[a : a + n] = s
        self._est[a : a + n] = est
        hosts = self._host[a : a + n]
        starts = self._start[a : a + n]
        cutoffs = _NO_CUTOFFS
        if self.mode == "seq":
            ch = self.policy.choose_host
            hosts[:] = [ch(None, None) for _ in range(n)]
            mode_id = SERVE_DISPATCH_MODES["fixed"]
        elif self.mode == "sita":
            cutoffs = np.ascontiguousarray(
                self.policy.cutoffs, dtype=np.float64
            )
            mode_id = SERVE_DISPATCH_MODES["sita"]
        else:
            mode_id = SERVE_DISPATCH_MODES["lwl"]
        serve_dispatch_batch(
            t, s, est, self.speeds, cutoffs, self.v, hosts, starts, mode_id
        )
        # Same elementwise float ops as the scalar path: start + s/speed.
        self._comp[a : a + n] = starts + s / self.speeds[hosts]
        self.m = a + n
        return hosts

    # ------------------------------------------------------------------
    # lazy accounting
    # ------------------------------------------------------------------

    def completed_count(self, now: float) -> int:
        """Records whose completion epoch has been reached by ``now``."""
        m = self.m
        if m == 0:
            return 0
        return int(np.count_nonzero(self._comp[:m] <= now))

    def slowdowns(self, now: float) -> np.ndarray | None:
        """Per-job slowdowns of completed records, in completion order.

        ``(completion - arrival) / size`` — exactly
        :attr:`Job.slowdown <repro.sim.jobs.Job.slowdown>`; completion
        ties keep submission order (stable sort), matching the event
        calendar's insertion-order tie-break.
        """
        m = self.m
        if m == 0:
            return None
        mask = self._comp[:m] <= now
        if not mask.any():
            return None
        c = self._comp[:m][mask]
        a = self._arrival[:m][mask]
        s = self._size[:m][mask]
        order = np.argsort(c, kind="stable")
        return (c[order] - a[order]) / s[order]

    def max_completion(self) -> float:
        """Latest completion epoch on record (0.0 with no records)."""
        return float(self.v.max()) if self.m else 0.0

    def _make_job(self, k: int, hseq: int) -> Job:
        h = int(self._host[k])
        job = Job(
            index=k,
            arrival_time=float(self._arrival[k]),
            size=float(self._size[k]),
            size_estimate=float(self._est[k]),
        )
        job.assigned_host = h
        job.host_seq = hseq
        return job

    def materialize_completed(self, inner, now: float) -> None:
        """Turn every record completed by ``now`` into a real ``Job``.

        Jobs are appended to ``inner._completed`` in completion order
        (ties by submission, the calendar's tie-break) with every field
        the event path sets at ``_finish``.  ``host_seq`` stamps stay
        per-host sequential because a FCFS host completes its jobs in
        submission order.
        """
        m = self.m
        if self.mat == m:
            return
        sel = np.flatnonzero(self._comp[self.mat : m] <= now) + self.mat
        if sel.size:
            order = sel[np.argsort(self._comp[sel], kind="stable")]
            completed = inner._completed
            sp = self._speeds_list
            nxt = self._hseq_next
            for k in order.tolist():
                h = int(self._host[k])
                job = self._make_job(k, nxt[h])
                nxt[h] += 1
                job.start_time = float(self._start[k])
                job.completion_time = float(self._comp[k])
                if sp[h] != 1.0:
                    job.processing_time = float(self._size[k]) / sp[h]
                completed.append(job)
            if sel.size == m - self.mat:
                self.mat = m

    # ------------------------------------------------------------------
    # handover to the event path
    # ------------------------------------------------------------------

    def hand_over(self, inner, now: float) -> None:
        """Reconstruct the exact event-engine state at instant ``now``.

        Completed records become ``_completed`` Jobs; per host, the
        first still-pending record (which provably began service at
        ``start <= now``) becomes the running job with its completion
        event re-scheduled at the recorded epoch, and the rest re-enter
        the FCFS queue in submission order.  Host accounting
        (``busy_time``, ``jobs_completed``, ``_submit_seq``,
        ``_virtual_completion``) and the server's ``_n_arrived`` are
        rebuilt to the values the event path would hold, so the strict
        invariant sweep and any later crash/drain behave identically.
        The caller discards this object afterwards — the fast path is
        one-way.
        """
        self.materialize_completed(inner, now)
        m = self.m
        pend = np.flatnonzero(self._comp[self.mat : m] > now) + self.mat
        pend_set = set(pend.tolist())
        n_hosts = self.n_hosts
        by_host: list[list[int]] = [[] for _ in range(n_hosts)]
        for k in pend.tolist():
            by_host[int(self._host[k])].append(k)
        host_col = self._host[:m].tolist()
        size_col = self._size[:m].tolist()
        sp = self._speeds_list
        busy = [0.0] * n_hosts
        done_count = [0] * n_hosts
        total = [0] * n_hosts
        for k in range(m):
            h = host_col[k]
            total[h] += 1
            if k not in pend_set:
                # The engine adds one `size/speed` service term per
                # completion, in completion order == per-host
                # submission order: identical float accumulation.
                busy[h] += size_col[k] / sp[h]
                done_count[h] += 1
        sim = inner.sim
        nxt = self._hseq_next
        for i, host in enumerate(inner.hosts):
            host._virtual_completion = float(self.v[i])
            host._submit_seq = total[i]
            host.jobs_completed = done_count[i]
            host.busy_time = busy[i]
            running_set = False
            for k in by_host[i]:
                job = self._make_job(k, nxt[i])
                nxt[i] += 1
                start = float(self._start[k])
                if not running_set and start <= now:
                    job.start_time = start
                    host.running = job
                    host._running_done = 0.0
                    host._leg_start = start
                    leg = float(self._size[k]) / sp[i]
                    host._finish_handle = sim.schedule(
                        float(self._comp[k]), host._finish, job, leg
                    )
                    running_set = True
                else:
                    host.queue.append(job)
        inner._n_arrived = m
