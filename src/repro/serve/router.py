"""Shard routing: which worker process owns which job.

The sharded dispatch engine (:mod:`repro.serve.shard`) partitions the
host fleet into contiguous slices, one per worker process, and asks a
:class:`ShardRouter` to map every intake batch onto those slices.  Three
routers cover the policy families the online dispatcher serves:

:class:`SitaShardRouter`
    The SITA family's size-interval partition *is* a shard key: each
    shard owns a contiguous run of size intervals (and their hosts), and
    routing is one ``searchsorted`` on the boundary cutoffs — exactly
    the expression the unsharded fast path evaluates, which is what
    makes SITA-sharded runs bit-identical to a single
    :class:`~repro.serve.server.DispatchServer` (the merge proof lives
    in :mod:`repro.serve.shard`).

:class:`HashShardRouter`
    Consistent hashing over the global job index for the balancing
    policies (LWL / SQ / Random / RR run *within* each shard's host
    subset).  The ring is a pure function of the shard count — no RNG —
    so replays and ``--resume`` re-route identically, and removing a
    shard only remaps that shard's keys (the classic ring property).

:class:`PowerOfDRouter`
    Sampling-based load-aware routing in the spirit of power-of-d
    choices (Gardner et al., "Scalable Load Balancing in the Presence of
    Heterogeneous Servers"): per intake batch, poll ``d`` sampled shard
    load summaries and send the batch to the least loaded.  The sample
    RNG is a spawned :class:`~numpy.random.SeedSequence` child and the
    summaries are consumed strictly in shard order, so the choice
    sequence is a deterministic function of the seed and the stream.

Every router is deterministic under replay by construction; that is the
contract ``--resume``'s audit depends on.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "HashShardRouter",
    "PowerOfDRouter",
    "ROUTER_NAMES",
    "ShardRouter",
    "SitaShardRouter",
    "partition_hosts",
]

ROUTER_NAMES = ("sita", "hash", "pow2")


def partition_hosts(n_hosts: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, as-even-as-possible ``(base, count)`` host slices.

    The first ``n_hosts % n_shards`` shards get one extra host
    (``numpy.array_split`` order), every shard gets at least one.
    """
    if n_shards < 1:
        raise ValueError(f"need at least 1 shard, got {n_shards}")
    if n_hosts < n_shards:
        raise ValueError(
            f"{n_shards} shards cannot partition {n_hosts} hosts "
            f"(every shard needs at least one host)"
        )
    base, extra = divmod(n_hosts, n_shards)
    slices: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        count = base + (1 if i < extra else 0)
        slices.append((start, count))
        start += count
    return slices


class ShardRouter:
    """Maps intake batches to shard ids; fed load summaries after acks.

    Subclasses implement :meth:`route_batch`.  :meth:`observe` is called
    once per shard per coordinator batch, in shard order, with the
    shard's ack summary — stateless routers ignore it.
    """

    name = "base"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least 1 shard, got {n_shards}")
        self.n_shards = int(n_shards)

    def route_batch(
        self,
        first_index: int,
        arrivals: np.ndarray,
        sizes: np.ndarray,
        estimates: np.ndarray,
    ) -> np.ndarray:
        """Shard id for every job of the batch (``first_index`` global)."""
        raise NotImplementedError

    def observe(self, shard_id: int, summary: dict) -> None:
        """Ingest one shard's post-batch load summary (default: ignore)."""


class SitaShardRouter(ShardRouter):
    """Per-size-class routing: shard ``j`` owns a run of SITA intervals.

    ``boundaries`` are the cutoffs *between* shards — the subset of the
    policy's cutoffs sitting at the host-partition split points — so the
    route is ``searchsorted(boundaries, estimate, side="left")``, the
    exact expression :meth:`SITAPolicy.host_for_size
    <repro.core.policies.sita.SITAPolicy.host_for_size>` evaluates on
    the full cutoff vector.  :func:`split_cutoffs` derives both the
    boundaries and each shard's interior cutoff slice from one
    partition, guaranteeing the two-level ``searchsorted`` composes to
    the global one (asserted by the bit-identity suite).
    """

    name = "sita"

    def __init__(self, n_shards: int, boundaries: np.ndarray) -> None:
        super().__init__(n_shards)
        self.boundaries = np.ascontiguousarray(boundaries, dtype=np.float64)
        if self.boundaries.size != n_shards - 1:
            raise ValueError(
                f"{n_shards} shards need {n_shards - 1} boundary cutoffs, "
                f"got {self.boundaries.size}"
            )
        if np.any(np.diff(self.boundaries) <= 0):
            raise ValueError("shard boundaries must be strictly increasing")

    def route_batch(self, first_index, arrivals, sizes, estimates):
        return np.searchsorted(self.boundaries, estimates, side="left")


def split_cutoffs(
    cutoffs: np.ndarray, slices: list[tuple[int, int]]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """``(shard boundaries, per-shard interior cutoffs)`` for a partition.

    With hosts ``base..base+count`` in shard ``j``, the global route
    ``g = searchsorted(cutoffs, e)`` decomposes as ``g = base_j +
    searchsorted(interior_j, e)`` for every ``e`` landing in shard ``j``
    — the interior slice ``cutoffs[base : base+count-1]`` preserves all
    comparisons the global vector makes inside the shard's size range.
    """
    c = np.ascontiguousarray(cutoffs, dtype=np.float64)
    n_hosts = c.size + 1
    if sum(count for _, count in slices) != n_hosts:
        raise ValueError(
            f"partition covers {sum(ct for _, ct in slices)} hosts but the "
            f"cutoff vector drives {n_hosts}"
        )
    boundaries = np.array(
        [c[base - 1] for base, _ in slices[1:]], dtype=np.float64
    )
    interiors = [c[base : base + count - 1].copy() for base, count in slices]
    return boundaries, interiors


class HashShardRouter(ShardRouter):
    """Consistent-hash ring over the global job index.

    ``replicas`` virtual points per shard are placed on a 64-bit ring by
    ``blake2s``; a job's key hashes to a point and the clockwise
    successor's shard takes it.  Entirely seedless and stateless: the
    same index always routes to the same shard (replay, resume and the
    audit depend on exactly that), and shard churn only remaps the keys
    of the affected shard.
    """

    name = "hash"

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        super().__init__(n_shards)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for rep in range(replicas):
                digest = hashlib.blake2s(
                    f"shard:{shard}:{rep}".encode(), digest_size=8
                ).digest()
                points.append((int.from_bytes(digest, "big"), shard))
        points.sort()
        self._ring_keys = np.array([p[0] for p in points], dtype=np.uint64)
        self._ring_shards = np.array([p[1] for p in points], dtype=np.int64)

    def _key_points(self, first_index: int, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.uint64)
        for k in range(n):
            digest = hashlib.blake2s(
                f"job:{first_index + k}".encode(), digest_size=8
            ).digest()
            out[k] = int.from_bytes(digest, "big")
        return out

    def route_batch(self, first_index, arrivals, sizes, estimates):
        points = self._key_points(first_index, arrivals.shape[0])
        # clockwise successor on the ring; wrap past the last point.
        pos = np.searchsorted(self._ring_keys, points, side="left")
        pos[pos == self._ring_keys.size] = 0
        return self._ring_shards[pos]


class PowerOfDRouter(ShardRouter):
    """Power-of-``d`` sampling over shard load summaries, per batch.

    The whole intake batch goes to the least-loaded of ``d`` sampled
    shards (ties to the lowest shard id); load is the shard's backlog
    of unfinished work as of its last ack, so the router runs on
    *reported* state, one batch stale at most — the same belief-not-
    clairvoyance discipline as the breaker layer.
    """

    name = "pow2"

    def __init__(
        self,
        n_shards: int,
        seed_seq: np.random.SeedSequence,
        d: int = 2,
    ) -> None:
        super().__init__(n_shards)
        if not 1 <= d:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = min(int(d), self.n_shards)
        self._rng = np.random.default_rng(seed_seq)
        self._backlog = np.zeros(self.n_shards, dtype=np.float64)

    def route_batch(self, first_index, arrivals, sizes, estimates):
        if self.n_shards == 1:
            return np.zeros(arrivals.shape[0], dtype=np.int64)
        sample = np.sort(
            self._rng.choice(self.n_shards, size=self.d, replace=False)
        )
        best = sample[int(np.argmin(self._backlog[sample]))]
        out = np.full(arrivals.shape[0], int(best), dtype=np.int64)
        # Account the batch against the chosen shard immediately so the
        # very next batch does not see a stale zero for it.
        self._backlog[best] += float(sizes.sum())
        return out

    def observe(self, shard_id: int, summary: dict) -> None:
        self._backlog[shard_id] = float(summary.get("backlog", 0.0))
