"""The sharded dispatch engine: N worker processes, one deterministic merge.

PR 9's fast path made the single-process dispatcher cheap per decision
(~1.3M decisions/s on this box), which moves the bottleneck to the
process itself.  This module shards the *host fleet*: the coordinator
(:class:`ShardedDispatchServer`) partitions the hosts into contiguous
slices, runs one full :class:`~repro.serve.server.DispatchServer` per
slice in a worker process (fast path engaged per shard), and routes
every intake batch to shards through a pluggable
:class:`~repro.serve.router.ShardRouter`.

Transport reuses the parallel-sweep patterns from
:mod:`repro.experiments.parallel`: each shard gets a shared-memory
columnar ring (:class:`ShardRing`) the coordinator writes batch columns
into, with a transparent inline-pickle fallback when ``/dev/shm`` is
unusable or a batch outgrows the ring.  Control flows over a per-shard
duplex pipe; the coordinator posts to every shard first and then
collects acknowledgements **strictly in shard order** — the same
ordered-consumption discipline our SIM106 lint rule enforces for the
sweep executor — so merged state never depends on OS scheduling.

Determinism contract
--------------------

* Seeds fan out as :meth:`numpy.random.SeedSequence.spawn` children,
  one per shard (each shard spawns grandchildren for policy and jitter
  exactly like an unsharded server); fault schedules get their own
  spawned tree rooted at the fault seed.
* For the SITA family, sharding is *exact*: per-host virtual completion
  clocks evolve only from the subsequence of jobs assigned to that host,
  and :class:`~repro.serve.router.SitaShardRouter` composes with each
  shard's interior cutoffs to reproduce the global ``searchsorted``
  index arithmetic — so a fault-free SITA-sharded run merges to per-job
  starts, completions, hosts, counters and Jain index **bit-identical**
  to the unsharded server on the same seed (hypothesis-tested across
  shard counts and batch sizes; ``repro audit --sharded`` cross-checks
  it on every audit run).
* Snapshots are two-level: every shard writes its own atomic snapshot
  file, then the coordinator writes an atomic ``manifest.json`` naming
  the sequence number and embedding every shard's counters.  ``--resume``
  restores by replaying the manifest's stream prefix through the same
  router (bit-identical routing) and auditing each shard's replayed
  counters against the embedded ones; a missing, foreign or stale shard
  snapshot is refused with a diagnosable error instead of silently
  diverging.  The legal crash window — shards at sequence ``k+1``,
  manifest still at ``k`` — is accepted; the manifest is authoritative.

The merged :meth:`~ShardedDispatchServer.status` document preserves the
global accounting invariant ``accepted == completed + rejected + lost +
in_flight`` (sums of per-shard invariants that each hold), and its
``jain_slowdown`` is computed from globally reconstructed
submission-order arrays with the exact expression the fast path uses —
order-sensitive float reductions included.
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing as mp
import os
import signal
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..core.policies import SITAPolicy
from ..experiments.parallel import _attach_untracked
from ..sim.faults import FaultModel
from ..sim.metrics import jain_fairness_index
from .router import (
    HashShardRouter,
    PowerOfDRouter,
    ShardRouter,
    SitaShardRouter,
    partition_hosts,
    split_cutoffs,
)
from .server import DispatchServer, OnlineDispatchError
from .snapshot import SnapshotStore, serve_signature

__all__ = [
    "ShardRing",
    "ShardSpec",
    "ShardedDispatchServer",
    "build_router",
]

#: default ring capacity, in jobs; batches above it fall back to pickling.
RING_CAPACITY = 1 << 16


# ----------------------------------------------------------------------
# shared-memory batch transport
# ----------------------------------------------------------------------


class ShardRing:
    """Columnar one-batch buffer from the coordinator to one shard.

    Three float64 columns (arrival, size, estimate) of fixed capacity,
    one outstanding batch at a time: the coordinator writes then posts
    ``("batch", n, …)``; the worker copies the first ``n`` rows out
    before acknowledging, so the next write cannot race it.  The parent
    owns the segment's lifetime (create/unlink); workers attach without
    resource-tracker bookkeeping via the same bpo-39959 workaround the
    sweep executor uses.
    """

    COLUMNS = 3

    def __init__(self, capacity: int = RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.shm = shared_memory.SharedMemory(
            create=True, size=self.COLUMNS * 8 * self.capacity
        )
        self.name = self.shm.name
        self._map_views()

    def _map_views(self) -> None:
        n = self.capacity
        buf = self.shm.buf
        self.arrival = np.ndarray(n, dtype=np.float64, buffer=buf)
        self.size = np.ndarray(n, dtype=np.float64, buffer=buf, offset=8 * n)
        self.est = np.ndarray(n, dtype=np.float64, buffer=buf, offset=16 * n)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShardRing":
        ring = cls.__new__(cls)
        ring.capacity = int(capacity)
        ring.shm = _attach_untracked(name)
        ring.name = name
        ring._map_views()
        return ring

    def write(self, t: np.ndarray, s: np.ndarray, e: np.ndarray) -> int:
        n = int(t.shape[0])
        self.arrival[:n] = t
        self.size[:n] = s
        self.est[:n] = e
        return n

    def read(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Copies: the coordinator reuses the buffer for the next batch.
        return (
            self.arrival[:n].copy(),
            self.size[:n].copy(),
            self.est[:n].copy(),
        )

    def close(self) -> None:
        self.arrival = self.size = self.est = None
        self.shm.close()

    def unlink(self) -> None:
        self.shm.unlink()


# ----------------------------------------------------------------------
# shard worker
# ----------------------------------------------------------------------


@dataclass
class ShardSpec:
    """Everything a worker needs to build its slice of the fleet.

    Picklable by construction (spawn-start workers re-import the world);
    ``seed`` is a spawned :class:`~numpy.random.SeedSequence` child, never
    a re-rooted integer — that is the SIM212 discipline.
    """

    shard_id: int
    n_shards: int
    n_hosts: int
    host_base: int
    policy: object
    seed: np.random.SeedSequence
    strict: bool | None
    faults: FaultModel | None
    host_speeds: tuple[float, ...] | None
    heartbeat_interval: float
    snapshot_path: str | None
    signature: str
    fast_path: bool = True


def _build_shard_server(spec: ShardSpec) -> DispatchServer:
    return DispatchServer(
        spec.n_hosts,
        spec.policy,
        seed=spec.seed,
        host_speeds=spec.host_speeds,
        strict=spec.strict,
        faults=spec.faults,
        heartbeat_interval=spec.heartbeat_interval,
        fast_path=spec.fast_path,
    )


class ShardHarness:
    """One shard's message handler — the same object drives both
    transports (in a worker process, or inline for tests and audits)."""

    def __init__(self, spec: ShardSpec, ring: ShardRing | None = None) -> None:
        self.spec = spec
        self.ring = ring
        self.server = _build_shard_server(spec)
        self.live_batches = 0
        self._store: SnapshotStore | None = None
        if spec.snapshot_path is not None:
            self._store = SnapshotStore(spec.snapshot_path, spec.signature)

    def handle(self, msg: tuple) -> dict | None:
        op = msg[0]
        if op == "batch":
            _, n, replaying, collect = msg
            assert self.ring is not None
            t, s, e = self.ring.read(n)
            return self._batch(t, s, e, replaying, collect)
        if op == "batch_inline":
            _, (t, s, e), replaying, collect = msg
            return self._batch(t, s, e, replaying, collect)
        if op == "snapshot":
            return self._snapshot(msg[1])
        if op == "status":
            return self.server.status()
        if op == "drain":
            return self._drain()
        if op == "stop":
            return None
        raise ValueError(f"unknown shard op {op!r}")

    def _batch(self, t, s, e, replaying: bool, collect: bool) -> dict:
        server = self.server
        if collect:
            records = server.submit_batch(t, s, e, collect=True)
        else:
            server.submit_batch(t, s, e)
            records = None
        if not replaying:
            self.live_batches += 1
        return {"records": records, "load": server.load_summary()}

    def _snapshot(self, seq: int) -> dict:
        if self._store is None:
            raise OnlineDispatchError(
                f"shard {self.spec.shard_id} has no snapshot path"
            )
        counters = self.server.counters()
        self._store.save(
            {
                "seq": int(seq),
                "shard": self.spec.shard_id,
                "accepted": self.server.n_accepted,
                "clock": self.server.now,
                "counters": counters,
            }
        )
        return {"seq": int(seq), "counters": counters}

    def _drain(self) -> dict:
        server = self.server
        server.drain()
        intake_pairs, decision_pairs = server.latency_pairs()
        table = server.job_table()
        return {
            "counters": server.counters(),
            "clock": server.now,
            "status": server.status(),
            "job_table": table,
            "latency_pairs": (intake_pairs, decision_pairs),
        }


def _shard_worker(
    spec: ShardSpec, conn, ring_name: str | None, ring_capacity: int
) -> None:
    # The coordinator-kill drill must not fell workers: their snapshot
    # writes would otherwise trip the same env hook the manifest uses.
    os.environ.pop("REPRO_SERVE_KILL_AFTER", None)
    kill_after = int(os.environ.get("REPRO_SHARD_KILL_AFTER", "0") or 0)
    kill_id = int(os.environ.get("REPRO_SHARD_KILL_ID", "-1") or -1)
    ring = (
        ShardRing.attach(ring_name, ring_capacity)
        if ring_name is not None
        else None
    )
    harness = ShardHarness(spec, ring=ring)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # coordinator is gone; die quietly
            if msg[0] == "stop":
                conn.send({"ok": True, "value": None})
                break
            try:
                reply = harness.handle(msg)
            except Exception as exc:  # noqa: BLE001 - forwarded verbatim
                conn.send(
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                )
            else:
                conn.send({"ok": True, "value": reply})
            if (
                kill_after
                and spec.shard_id == kill_id
                and harness.live_batches >= kill_after
            ):
                # The shard-worker kill drill: die *after* acking, so the
                # coordinator discovers the death on its next post.
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
    finally:
        if ring is not None:
            ring.close()
        conn.close()


# ----------------------------------------------------------------------
# coordinator-side shard handles
# ----------------------------------------------------------------------


class _InlineShard:
    """In-process shard (tests, audits): post computes immediately."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.harness = ShardHarness(spec)
        self._pending: dict | None = None

    def post(self, msg: tuple) -> None:
        if msg[0] == "batch":
            _, arrays, replaying, collect = msg
            msg = ("batch_inline", arrays, replaying, collect)
        self._pending = self.harness.handle(msg)

    def collect(self) -> dict | None:
        pending, self._pending = self._pending, None
        return pending

    def close(self) -> None:
        self._pending = None


class _ProcShard:
    """Worker-process shard: ring + pipe, death surfaces as a refusal."""

    def __init__(self, spec: ShardSpec, ctx, ring_capacity: int) -> None:
        self.spec = spec
        try:
            self.ring: ShardRing | None = ShardRing(ring_capacity)
        except OSError:  # no usable /dev/shm: everything goes inline
            self.ring = None
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(
                spec,
                child_conn,
                None if self.ring is None else self.ring.name,
                ring_capacity,
            ),
            daemon=True,
        )
        self.proc.start()
        # The child owns its pickled copy; closing ours makes worker-side
        # recv() hit EOF the instant the coordinator dies (spawn start
        # method: the child holds no stray duplicate of our end).
        child_conn.close()

    def post(self, msg: tuple) -> None:
        if msg[0] == "batch":
            _, (t, s, e), replaying, collect = msg
            n = int(t.shape[0])
            if self.ring is not None and n <= self.ring.capacity:
                self.ring.write(t, s, e)
                msg = ("batch", n, replaying, collect)
            else:
                msg = ("batch_inline", (t, s, e), replaying, collect)
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise OnlineDispatchError(
                f"shard {self.spec.shard_id} worker died "
                f"({self._exit_reason()}): cannot post {msg[0]!r}"
            ) from exc

    def collect(self) -> dict | None:
        try:
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise OnlineDispatchError(
                f"shard {self.spec.shard_id} worker died "
                f"({self._exit_reason()}) before acknowledging"
            ) from exc
        if not reply["ok"]:
            raise OnlineDispatchError(
                f"shard {self.spec.shard_id}: {reply['error']}"
            )
        return reply["value"]

    def _exit_reason(self) -> str:
        # Reap first; the pipe EOF usually beats the SIGCHLD bookkeeping.
        self.proc.join(timeout=1.0)
        code = self.proc.exitcode
        if code is None:
            return "still terminating"
        if code < 0:
            return f"killed by signal {-code}"
        return f"exitcode {code}"

    def close(self) -> None:
        try:
            if self.proc.is_alive():
                self.post(("stop",))
                self.collect()
        except OnlineDispatchError:
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(timeout=5.0)
        self.conn.close()
        if self.ring is not None:
            self.ring.close()
            self.ring.unlink()
            self.ring = None


# ----------------------------------------------------------------------
# router / spec assembly
# ----------------------------------------------------------------------


def build_router(
    name: str,
    n_shards: int,
    policy,
    slices: list[tuple[int, int]],
    seed_seq: np.random.SeedSequence,
) -> ShardRouter:
    """Assemble the named router for a host partition.

    ``seed_seq`` must already be a spawned child dedicated to routing —
    the coordinator owns the tree.
    """
    if name == "sita":
        if not isinstance(policy, SITAPolicy):
            raise ValueError(
                "the 'sita' router shards by size class and needs a "
                f"SITAPolicy, got {getattr(policy, 'name', type(policy).__name__)!r}"
            )
        boundaries, _ = split_cutoffs(policy.cutoffs, slices)
        return SitaShardRouter(n_shards, boundaries)
    if name == "hash":
        return HashShardRouter(n_shards)
    if name == "pow2":
        return PowerOfDRouter(n_shards, seed_seq)
    raise ValueError(f"unknown shard router {name!r}")


def _shard_policies(policy, router_name: str, slices) -> list:
    if router_name == "sita":
        _, interiors = split_cutoffs(policy.cutoffs, slices)
        return [
            SITAPolicy(interiors[i], name=f"{policy.name}@shard{i}")
            for i in range(len(slices))
        ]
    # Balancing policies run independently inside each shard's subset;
    # each shard owns a private copy so rotation pointers and RNG state
    # never alias across processes.
    return [copy.deepcopy(policy) for _ in slices]


def _shard_faults(
    faults: FaultModel | None, slices
) -> list[FaultModel | None]:
    if faults is None:
        return [None for _ in slices]
    if faults.hosts is not None:
        raise ValueError(
            "per-host fault targeting (FaultModel.hosts) is not supported "
            "with sharding — shards renumber hosts locally"
        )
    children = np.random.SeedSequence(faults.seed).spawn(len(slices))
    return [
        dataclasses.replace(
            faults, seed=int(child.generate_state(1, np.uint32)[0])
        )
        for child in children
    ]


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------


class ShardedDispatchServer:
    """Multi-process dispatcher with a deterministic merge.

    Duck-types the :class:`~repro.serve.server.DispatchServer` surface
    the front ends use (``submit``, ``submit_batch``, ``status``,
    ``drain``, ``run_stream``, ``counters``, ``now``), so both the CLI
    driver and the socket front end run sharded unchanged.

    Parameters
    ----------
    n_shards, router:
        Worker-process count and routing family (``"sita"``, ``"hash"``
        or ``"pow2"``); hosts are partitioned contiguously, as evenly as
        possible.
    transport:
        ``"process"`` (real workers over ring + pipe — the production
        and soak configuration) or ``"inline"`` (shard harnesses in this
        process — the fast path for hypothesis tests and audits; the
        merge code is identical).
    snapshot_dir, snapshot_every, signature:
        Two-level crash-safety: per-shard snapshot files plus the
        coordinator manifest, written every ``snapshot_every``-th
        *globally offered* job on atomic boundaries (mirroring the
        unsharded snapshot cadence).  ``signature`` is the configuration
        description digested into every file's signature guard.
    """

    def __init__(
        self,
        n_hosts: int,
        policy,
        *,
        n_shards: int,
        router: str = "sita",
        seed: int = 0,
        host_speeds: Sequence[float] | None = None,
        strict: bool | None = None,
        faults: FaultModel | None = None,
        heartbeat_interval: float = 5.0,
        snapshot_dir: str | Path | None = None,
        snapshot_every: int = 1000,
        signature: str = "sharded-serve",
        transport: str = "process",
        ring_capacity: int = RING_CAPACITY,
        fast_path: bool = True,
    ) -> None:
        if transport not in ("process", "inline"):
            raise ValueError(f"unknown transport {transport!r}")
        self.n_hosts = int(n_hosts)
        self.n_shards = int(n_shards)
        self.policy = policy
        self.transport = transport
        self.snapshot_every = int(snapshot_every)
        self._slices = partition_hosts(n_hosts, n_shards)
        root = np.random.SeedSequence(seed)
        router_seq, *shard_seqs = root.spawn(n_shards + 1)
        self._router = build_router(
            router, n_shards, policy, self._slices, router_seq
        )
        policies = _shard_policies(policy, router, self._slices)
        shard_faults = _shard_faults(faults, self._slices)
        self._desc = (
            f"{signature}:shards={n_shards}:router={router}:"
            f"hosts={n_hosts}:seed={seed}"
        )
        self._manifest: SnapshotStore | None = None
        self._shard_paths: list[Path] = []
        snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        if snapshot_dir is not None:
            self._manifest = SnapshotStore(
                snapshot_dir / "manifest.json",
                serve_signature(f"{self._desc}:manifest"),
            )
            self._shard_paths = [
                snapshot_dir / f"shard-{i}.json" for i in range(n_shards)
            ]
        specs = []
        for i, (base, count) in enumerate(self._slices):
            speeds = None
            if host_speeds is not None:
                speeds = tuple(float(x) for x in host_speeds[base : base + count])
            specs.append(
                ShardSpec(
                    shard_id=i,
                    n_shards=n_shards,
                    n_hosts=count,
                    host_base=base,
                    policy=policies[i],
                    seed=shard_seqs[i],
                    strict=strict,
                    faults=shard_faults[i],
                    host_speeds=speeds,
                    heartbeat_interval=float(heartbeat_interval),
                    snapshot_path=(
                        None
                        if snapshot_dir is None
                        else str(self._shard_paths[i])
                    ),
                    signature=serve_signature(f"{self._desc}:shard{i}"),
                    fast_path=fast_path,
                )
            )
        self.specs = specs
        if transport == "process":
            ctx = mp.get_context("spawn")
            self._shards: list = [
                _ProcShard(spec, ctx, ring_capacity) for spec in specs
            ]
        else:
            self._shards = [_InlineShard(spec) for spec in specs]
        #: global-index arrays per shard, in post order (the merge map).
        self._assigned: list[list[np.ndarray]] = [[] for _ in specs]
        self._offered = 0
        self._clock = 0.0
        self._replaying = False
        self._snap_seq = 0
        self._wall_ns = 0
        self._merge_ns = 0
        self._final: dict | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock

    def submit(
        self,
        size: float,
        arrival: float,
        size_estimate: float | None = None,
    ) -> dict:
        """Offer one job; returns the decision record with a global host."""
        records = self.submit_batch(
            [arrival],
            [size],
            None if size_estimate is None else [size_estimate],
            collect=True,
        )
        return records[0]

    def submit_batch(
        self,
        arrivals: Sequence[float] | np.ndarray,
        sizes: Sequence[float] | np.ndarray,
        size_estimates: Sequence[float] | np.ndarray | None = None,
        collect: bool = False,
    ) -> list[dict] | int:
        """Validate, route, fan out, and collect — in submission order.

        Validation is atomic with the exact error text of
        :meth:`DispatchServer.submit_batch`; per-shard sub-batches are
        subsequences of a non-decreasing stream, so each shard's own
        validation never fires after ours passes.
        """
        t0 = time.perf_counter_ns()
        self._check_open()
        t = np.ascontiguousarray(arrivals, dtype=np.float64)
        s = np.ascontiguousarray(sizes, dtype=np.float64)
        if t.ndim != 1 or s.shape != t.shape:
            raise ValueError(
                f"arrivals and sizes must be 1-D of equal length, got "
                f"shapes {t.shape} and {s.shape}"
            )
        if size_estimates is None:
            e = s
        else:
            e = np.ascontiguousarray(size_estimates, dtype=np.float64)
            if e.shape != t.shape:
                raise ValueError(
                    f"size_estimates must match arrivals, got shapes "
                    f"{e.shape} and {t.shape}"
                )
        n = int(t.shape[0])
        if n == 0:
            return [] if collect else 0
        bad = ~(np.isfinite(s) & (s > 0))
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"job size must be positive and finite, got {s[k]}"
            )
        if float(t[0]) < self._clock:
            raise ValueError(
                f"arrivals must be non-decreasing: got {float(t[0])} at "
                f"server time {self._clock}"
            )
        unordered = np.flatnonzero(np.diff(t) < 0)
        if unordered.size:
            k = int(unordered[0])
            raise ValueError(
                f"arrivals must be non-decreasing: got {float(t[k + 1])} "
                f"at server time {float(t[k])}"
            )
        self._final = None
        records: list[dict] | None = [] if collect else None
        snapshotting = (
            self._manifest is not None
            and not self._replaying
            and self.snapshot_every > 0
        )
        pos = 0
        while pos < n:
            end = n
            if snapshotting:
                # Chunk on global snapshot boundaries, exactly like the
                # unsharded batch path chunks on its cadence.
                boundary = (
                    self._offered // self.snapshot_every + 1
                ) * self.snapshot_every
                end = min(n, pos + (boundary - self._offered))
            self._dispatch_chunk(
                t[pos:end], s[pos:end], e[pos:end], collect, records
            )
            if snapshotting and self._offered % self.snapshot_every == 0:
                self._snapshot_round()
            pos = end
        self._wall_ns += time.perf_counter_ns() - t0
        if collect:
            assert records is not None
            return records
        return n

    def _dispatch_chunk(
        self,
        t: np.ndarray,
        s: np.ndarray,
        e: np.ndarray,
        collect: bool,
        records: list[dict] | None,
    ) -> None:
        first = self._offered
        route = self._router.route_batch(first, t, s, e)
        selections: list[np.ndarray] = []
        for j, shard in enumerate(self._shards):
            sel = np.flatnonzero(route == j)
            selections.append(sel)
            if sel.size:
                self._assigned[j].append(sel.astype(np.int64) + first)
                shard.post(
                    (
                        "batch",
                        (t[sel], s[sel], e[sel]),
                        self._replaying,
                        collect,
                    )
                )
        # Strictly ordered collection (the SIM106 discipline): shard j's
        # ack — and its router feedback — is consumed before j+1's,
        # every round, so router state never depends on scheduling.
        per_shard_records: dict[int, Iterable[dict]] = {}
        for j, shard in enumerate(self._shards):
            if selections[j].size:
                ack = shard.collect()
                self._router.observe(j, ack["load"])
                if collect:
                    per_shard_records[j] = iter(ack["records"])
        self._offered = first + int(t.shape[0])
        self._clock = max(self._clock, float(t[-1]))
        if collect:
            assert records is not None
            for j in route.tolist():
                rec = next(per_shard_records[j])  # type: ignore[arg-type]
                if rec.get("host") is not None:
                    rec = {**rec, "host": rec["host"] + self._slices[j][0]}
                records.append(rec)

    # ------------------------------------------------------------------
    # snapshots / resume
    # ------------------------------------------------------------------

    def _snapshot_round(self) -> None:
        """All shards snapshot, then the manifest commits the boundary.

        Ordering is the crash-safety argument: shard files land first,
        the manifest last, every write atomic — so a manifest at ``k``
        guarantees every shard file is at ``k`` or (crash inside the
        next round) ``k+1``, never behind.
        """
        assert self._manifest is not None
        seq = self._snap_seq + 1
        for shard in self._shards:
            shard.post(("snapshot", seq))
        shard_counters = []
        for shard in self._shards:
            ack = shard.collect()
            shard_counters.append(ack["counters"])
        self._snap_seq = seq
        self._manifest.save(
            {
                "seq": seq,
                "offered": self._offered,
                "clock": self._clock,
                "n_shards": self.n_shards,
                "router": self._router.name,
                # Post-drain counters differ from replay-only counters
                # (nothing is in flight any more); the flag tells resume
                # to re-drain before auditing.
                "drained": self._final is not None,
                "shards": shard_counters,
            }
        )

    def _validate_shard_snapshots(self, manifest: dict) -> None:
        seq = int(manifest["seq"])
        for i, path in enumerate(self._shard_paths):
            store = SnapshotStore(
                path, serve_signature(f"{self._desc}:shard{i}")
            )
            doc = store.load()
            if doc is None:
                raise OnlineDispatchError(
                    f"resume refused: shard {i} snapshot {path} is missing, "
                    f"unreadable, or from a different configuration — the "
                    f"manifest (seq {seq}) cannot restore a consistent "
                    f"boundary without it"
                )
            got = int(doc["seq"])
            if got < seq:
                raise OnlineDispatchError(
                    f"resume refused: shard {i} snapshot {path} is stale "
                    f"(seq {got} < manifest seq {seq}) — the shard file "
                    f"predates the manifest's boundary"
                )
            if got > seq + 1:
                raise OnlineDispatchError(
                    f"resume refused: shard {i} snapshot {path} is ahead "
                    f"(seq {got} > manifest seq {seq} + 1) — the manifest "
                    f"is not the latest run's"
                )

    def _audit_resume(self, manifest: dict) -> None:
        for shard in self._shards:
            shard.post(("status",))
        for i, shard in enumerate(self._shards):
            got = shard.collect()["counters"]
            want = manifest["shards"][i]
            if got != want:
                diff = {
                    k: (got.get(k), want.get(k))
                    for k in sorted(set(got) | set(want))
                    if got.get(k) != want.get(k)
                }
                raise OnlineDispatchError(
                    f"resume audit failed: deterministic replay of "
                    f"{manifest['offered']} jobs disagrees with the "
                    f"manifest on shard {i}: {diff}"
                )

    # ------------------------------------------------------------------
    # drain / merge
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Drain every shard and build the merged final report."""
        t0 = time.perf_counter_ns()
        self._check_open()
        for shard in self._shards:
            shard.post(("drain",))
        reports = [shard.collect() for shard in self._shards]
        m0 = time.perf_counter_ns()
        self._final = self._merge(reports)
        self._merge_ns += time.perf_counter_ns() - m0
        self._wall_ns += time.perf_counter_ns() - t0
        self._clock = float(self._final["clock"])
        if (
            self._manifest is not None
            and not self._replaying
            and self.snapshot_every > 0
        ):
            self._snapshot_round()

    def _merge(self, reports: list[dict]) -> dict:
        n = self._offered
        arrival = np.empty(n, dtype=np.float64)
        size = np.empty(n, dtype=np.float64)
        start = np.empty(n, dtype=np.float64)
        comp = np.empty(n, dtype=np.float64)
        host = np.full(n, -1, dtype=np.int64)
        filled = np.zeros(n, dtype=bool)
        counters: dict[str, int] = {}
        clock = 0.0
        intake_pairs: list[tuple[int, int]] = []
        decision_pairs: list[tuple[int, int]] = []
        per_shard = []
        for j, rep in enumerate(reports):
            base = self._slices[j][0]
            gmap = (
                np.concatenate(self._assigned[j])
                if self._assigned[j]
                else np.empty(0, dtype=np.int64)
            )
            table = rep["job_table"]
            g = gmap[table["index"]]
            arrival[g] = table["arrival"]
            size[g] = table["size"]
            start[g] = table["start"]
            comp[g] = table["completion"]
            host[g] = table["host"] + base
            filled[g] = True
            for key, value in rep["counters"].items():
                if key == "deferred_peak":
                    counters[key] = max(counters.get(key, 0), value)
                else:
                    counters[key] = counters.get(key, 0) + value
            clock = max(clock, float(rep["clock"]))
            i_pairs, d_pairs = rep["latency_pairs"]
            intake_pairs.extend(i_pairs)
            decision_pairs.extend(d_pairs)
            shard_status = rep["status"]
            per_shard.append(
                {
                    "shard": j,
                    "hosts": list(self._slices[j]),
                    "counters": rep["counters"],
                    "clock": rep["clock"],
                    "jain_slowdown": shard_status["jain_slowdown"],
                    "fast_path": shard_status["fast_path"],
                    "breakers": shard_status["breakers"],
                    "faults": shard_status["faults"],
                    "latency": shard_status["latency"],
                }
            )
        holds = counters.get("accepted", 0) == (
            counters.get("completed", 0)
            + counters.get("rejected", 0)
            + counters.get("lost", 0)
            + counters.get("in_flight", 0)
        )
        # Global Jain index from the reconstructed submission-order
        # arrays, with the fast path's exact expression — mask, stable
        # completion-order sort, then the same order-sensitive float
        # reductions — so SITA-sharded merges are bitwise equal to the
        # unsharded status() value.
        mask = filled & (comp <= clock)
        jain = None
        if mask.any():
            c = comp[mask]
            a = arrival[mask]
            sz = size[mask]
            order = np.argsort(c, kind="stable")
            jain = jain_fairness_index((c[order] - a[order]) / sz[order])
        return {
            "clock": clock,
            "counters": counters,
            "invariant": {
                "accepted = completed + rejected + lost + in_flight": holds
            },
            "jain_slowdown": jain,
            "latency": self._merged_latency(
                intake_pairs, decision_pairs, per_shard
            ),
            "fast_path": {
                "engaged_shards": sum(
                    1 for p in per_shard if p["fast_path"]["engaged"]
                ),
                "n_shards": self.n_shards,
            },
            "sharding": {
                "n_shards": self.n_shards,
                "router": self._router.name,
                "transport": self.transport,
                "partition": [list(sl) for sl in self._slices],
            },
            "shards": per_shard,
            "job_table": {
                "arrival": arrival,
                "size": size,
                "start": start,
                "completion": comp,
                "host": host,
                "filled": filled,
            },
        }

    def _merged_latency(
        self,
        intake_pairs: list[tuple[int, int]],
        decision_pairs: list[tuple[int, int]],
        per_shard: list[dict],
    ) -> dict:
        if not decision_pairs:
            return {"decisions": 0}
        d_ns = np.array([p[0] for p in decision_pairs], dtype=float)
        counts = np.array([p[1] for p in decision_pairs])
        i_total = float(sum(p[0] for p in intake_pairs))
        d_total = float(d_ns.sum())
        n = int(counts.sum())
        per_job = np.repeat(d_ns / counts, counts)
        wall_s = self._wall_ns / 1e9
        shard_rates = [
            (p["latency"].get("decisions_per_s") or 0.0)
            for p in per_shard
        ]
        return {
            "decisions": n,
            # Sum of per-shard decision rates: the fleet's dispatch
            # *capacity*.  On a multi-core box it is also roughly the
            # wall rate; on a starved box the shards time-slice and the
            # honest wall rate below is the one to watch.
            "aggregate_decisions_per_s": float(sum(shard_rates)),
            "wall_decisions_per_s": (
                float(n / wall_s) if wall_s > 0 else None
            ),
            "mean_us": float(per_job.mean() / 1e3),
            "p50_us": float(np.percentile(per_job, 50) / 1e3),
            "p95_us": float(np.percentile(per_job, 95) / 1e3),
            "p99_us": float(np.percentile(per_job, 99) / 1e3),
            "stages": {
                "intake_ms": i_total / 1e6,
                "route_ms": d_total / 1e6,
                "merge_ms": self._merge_ns / 1e6,
                "wall_ms": self._wall_ns / 1e6,
            },
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def counters(self) -> dict:
        if self._final is not None:
            return dict(self._final["counters"])
        counters: dict[str, int] = {}
        for shard in self._shards:
            shard.post(("status",))
        for shard in self._shards:
            status = shard.collect()
            for key, value in status["counters"].items():
                if key == "deferred_peak":
                    counters[key] = max(counters.get(key, 0), value)
                else:
                    counters[key] = counters.get(key, 0) + value
        return counters

    def status(self) -> dict:
        """The merged observability document.

        After :meth:`drain` this is the final report (where the
        bit-identity guarantees apply, minus the raw ``job_table``
        arrays, which are not JSON); mid-run it is a live light merge
        with ``jain_slowdown: None`` — computing the global index
        mid-run would require shipping every job table on every poll.
        """
        if self._final is not None:
            doc = {
                k: v for k, v in self._final.items() if k != "job_table"
            }
            return doc
        for shard in self._shards:
            shard.post(("status",))
        statuses = [shard.collect() for shard in self._shards]
        counters: dict[str, int] = {}
        for status in statuses:
            for key, value in status["counters"].items():
                if key == "deferred_peak":
                    counters[key] = max(counters.get(key, 0), value)
                else:
                    counters[key] = counters.get(key, 0) + value
        holds = counters.get("accepted", 0) == (
            counters.get("completed", 0)
            + counters.get("rejected", 0)
            + counters.get("lost", 0)
            + counters.get("in_flight", 0)
        )
        return {
            "clock": self._clock,
            "counters": counters,
            "invariant": {
                "accepted = completed + rejected + lost + in_flight": holds
            },
            "jain_slowdown": None,
            "sharding": {
                "n_shards": self.n_shards,
                "router": self._router.name,
                "transport": self.transport,
                "partition": [list(sl) for sl in self._slices],
            },
            "shards": [
                {
                    "shard": j,
                    "counters": statuses[j]["counters"],
                    "clock": statuses[j]["clock"],
                    "fast_path": statuses[j]["fast_path"],
                }
                for j in range(self.n_shards)
            ],
        }

    def merged_job_table(self) -> dict[str, np.ndarray]:
        """The globally reconstructed per-job arrays (post-drain only)."""
        if self._final is None:
            raise OnlineDispatchError(
                "merged job table is only available after drain()"
            )
        return self._final["job_table"]

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def _submit_many(
        self, jobs: Sequence[tuple[float, float]], batch_size: int
    ) -> None:
        step = max(1, int(batch_size))
        for i in range(0, len(jobs), step):
            chunk = jobs[i : i + step]
            self.submit_batch([a for a, _ in chunk], [s for _, s in chunk])

    def run_stream(
        self,
        jobs: Iterable[tuple[float, float]],
        resume: bool = False,
        batch_size: int = 1,
    ) -> dict:
        """Drive a full ``(arrival, size)`` stream, drain, merge.

        The sharded twin of :meth:`DispatchServer.run_stream`: with
        ``resume=True`` the manifest names the restore boundary, every
        shard snapshot is validated against it, the stream prefix is
        replayed through the same deterministic router, and each shard's
        replayed counters are audited against the manifest's embedded
        copies before any new job is offered.
        """
        jobs = list(jobs)
        start = 0
        if resume:
            if self._manifest is None:
                raise ValueError("resume requires a snapshot directory")
            manifest = self._manifest.load()
            if manifest is not None:
                self._validate_shard_snapshots(manifest)
                start = int(manifest["offered"])
                if start > len(jobs):
                    raise OnlineDispatchError(
                        f"manifest records {start} offered jobs but the "
                        f"stream has only {len(jobs)}"
                    )
                self._replaying = True
                try:
                    self._submit_many(jobs[:start], batch_size)
                    if manifest.get("drained"):
                        # The boundary was written after a drain, so the
                        # embedded counters are post-drain; replay the
                        # drain too before auditing (snapshot writes stay
                        # suppressed by the replay flag).
                        self.drain()
                finally:
                    self._replaying = False
                self._audit_resume(manifest)
                self._snap_seq = int(manifest["seq"])
        self._submit_many(jobs[start:], batch_size)
        self.drain()
        return self.status()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise OnlineDispatchError("the sharded server has been closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedDispatchServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
