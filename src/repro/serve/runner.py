"""``repro serve`` — build and drive the online dispatcher from the CLI.

Two front ends over the same deterministic core:

* **driver mode** (default): generate a seeded job stream from a catalog
  workload and feed it through :meth:`DispatchServer.run_stream`,
  printing the final status document as JSON.  This is the reproducible
  configuration — it supports ``--snapshot``/``--resume`` and is what
  the CI soak job kills and resumes.
* **socket mode** (``--socket PATH`` or ``--tcp HOST:PORT``): expose the
  newline-JSON protocol and serve until interrupted.  Socket streams are
  not replayable (the snapshot audit needs the exact prefix back), so
  ``--resume`` is rejected there.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from .admission import AdmissionController
from .health import HealthMonitor
from .refit import CutoffManager
from .server import DispatchServer, OnlineDispatchError
from .snapshot import SnapshotStore, serve_signature

__all__ = ["add_serve_arguments", "build_server", "run_from_args"]

POLICIES = ("lwl", "sq", "random", "rr", "sita")


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    from ..workloads.catalog import WORKLOAD_NAMES

    parser.add_argument("workload", choices=WORKLOAD_NAMES)
    parser.add_argument("--policy", choices=POLICIES, default="sita")
    parser.add_argument("--load", type=float, default=0.7, help="system load")
    parser.add_argument("--hosts", type=int, default=2, help="number of hosts")
    parser.add_argument("--jobs", type=int, default=10_000, help="stream length")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--batch-size", type=int, default=256, metavar="N",
        help=(
            "feed the driver stream through submit_batch in chunks of N "
            "(1 = scalar submits; decisions are identical either way)"
        ),
    )

    shard = parser.add_argument_group("sharding")
    shard.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help=(
            "partition the hosts across N worker processes (0 = the "
            "single-process server); SITA-sharded fault-free runs merge "
            "bit-identically to --shards 0"
        ),
    )
    shard.add_argument(
        "--router", choices=("sita", "hash", "pow2"), default="sita",
        help=(
            "shard routing family: per-size-class (sita, needs --policy "
            "sita), consistent-hash over job indices, or power-of-d "
            "sampling of shard load summaries"
        ),
    )

    fault = parser.add_argument_group("fault model")
    fault.add_argument(
        "--mtbf", type=float, default=math.inf,
        help="mean time between failures (inf = no faults)",
    )
    fault.add_argument("--mttr", type=float, default=100.0, help="mean repair time")
    fault.add_argument(
        "--fault-semantics", choices=("lost", "redispatch", "resume"),
        default="redispatch",
    )
    fault.add_argument("--fault-seed", type=int, default=1)

    robust = parser.add_argument_group("robustness")
    robust.add_argument(
        "--rate", type=float, default=math.inf,
        help="admission token rate per simulated second (inf = unlimited)",
    )
    robust.add_argument("--burst", type=float, default=32.0, help="token burst")
    robust.add_argument(
        "--max-deferred", type=int, default=1024,
        help="deferred-queue hard cap (overflow sheds)",
    )
    robust.add_argument(
        "--refit", action="store_true",
        help="re-fit the SITA cutoff online from a sliding window",
    )
    robust.add_argument("--refit-window", type=int, default=2048)
    robust.add_argument("--refit-every", type=int, default=512)
    robust.add_argument(
        "--heartbeat", type=float, default=None,
        help=(
            "breaker probe interval, simulated seconds (default: mttr "
            "with faults enabled, 10x the mean service time otherwise)"
        ),
    )

    snap = parser.add_argument_group("snapshots")
    snap.add_argument("--snapshot", default=None, metavar="PATH")
    snap.add_argument("--snapshot-every", type=int, default=1000, metavar="N")
    snap.add_argument(
        "--resume", action="store_true",
        help="replay the snapshotted prefix and continue (driver mode only)",
    )

    net = parser.add_argument_group("socket front end")
    net.add_argument("--socket", default=None, metavar="PATH", help="Unix socket")
    net.add_argument("--tcp", default=None, metavar="HOST:PORT")


def _build_policy(name: str, workload, load: float, n_hosts: int):
    from ..core.policies import (
        LeastWorkLeftPolicy,
        RandomPolicy,
        RoundRobinPolicy,
        ShortestQueuePolicy,
        SITAPolicy,
    )

    if name == "lwl":
        return LeastWorkLeftPolicy()
    if name == "sq":
        return ShortestQueuePolicy()
    if name == "random":
        return RandomPolicy()
    if name == "rr":
        return RoundRobinPolicy()
    dist = workload.service_dist
    if n_hosts == 2:
        from ..core.search import analytic_cutoff_pair

        cutoff = analytic_cutoff_pair(load, dist, want=("opt",))["opt"]
        return SITAPolicy([cutoff], name="sita-u-opt")
    from ..core.cutoffs import equal_load_cutoffs

    return SITAPolicy(equal_load_cutoffs(dist, n_hosts), name="sita-e")


def build_server(args: argparse.Namespace) -> DispatchServer:
    """Assemble a :class:`DispatchServer` (or its sharded twin) from
    parsed CLI arguments."""
    from ..sim.faults import FaultModel
    from ..workloads.catalog import get_workload

    workload = get_workload(args.workload)
    policy = _build_policy(args.policy, workload, args.load, args.hosts)
    faults = None
    if math.isfinite(args.mtbf):
        faults = FaultModel(
            mtbf=args.mtbf,
            mttr=args.mttr,
            semantics=args.fault_semantics,
            seed=args.fault_seed,
        )
    if getattr(args, "shards", 0) > 0:
        return _build_sharded(args, workload, policy, faults)
    manager = None
    if args.refit:
        cutoff = getattr(policy, "cutoffs", None)
        if cutoff is None or cutoff.size != 1:
            raise SystemExit(
                "error: --refit needs a single-cutoff SITA policy "
                "(--policy sita with --hosts 2)"
            )
        manager = CutoffManager(
            float(cutoff[0]),
            n_hosts=args.hosts,
            window=args.refit_window,
            refit_every=args.refit_every,
        )
    store = None
    if args.snapshot:
        description = (
            f"serve:{args.workload}:{args.policy}:load={args.load!r}:"
            f"h={args.hosts}:jobs={args.jobs}:seed={args.seed}:"
            f"faults={faults.describe() if faults else 'none'}:"
            f"rate={args.rate!r}:burst={args.burst!r}:"
            f"cap={args.max_deferred}:refit={bool(manager)}"
        )
        store = SnapshotStore(args.snapshot, serve_signature(description))
    # Probe cadence and breaker cooldown must live on the workload's
    # time scale (C90 jobs run for thousands of simulated seconds): probe
    # about once per repair period so crashes of idle hosts are noticed
    # within one outage, and hold a tripped breaker open for half of one.
    if args.heartbeat is not None:
        heartbeat = args.heartbeat
    elif faults is not None:
        heartbeat = faults.mttr
    else:
        heartbeat = 10.0 * workload.service_dist.mean
    cooldown = faults.mttr / 2.0 if faults is not None else heartbeat
    return DispatchServer(
        args.hosts,
        policy,
        seed=args.seed,
        faults=faults,
        admission=AdmissionController(
            rate=args.rate, burst=args.burst, max_deferred=args.max_deferred
        ),
        health=HealthMonitor(cooldown=cooldown),
        cutoff_manager=manager,
        heartbeat_interval=heartbeat,
        snapshot_store=store,
        snapshot_every=args.snapshot_every,
    )


def _build_sharded(args, workload, policy, faults):
    """Assemble the multi-process coordinator (``--shards N``)."""
    from .shard import ShardedDispatchServer

    if args.refit:
        raise SystemExit(
            "error: --refit is not supported with --shards (online cutoff "
            "re-fit would retune each shard's interior cutoffs "
            "independently of the routing boundaries)"
        )
    if math.isfinite(args.rate):
        raise SystemExit(
            "error: a finite --rate is not supported with --shards (the "
            "token bucket is global admission state; per-shard buckets "
            "would admit a different stream than --shards 0)"
        )
    if args.heartbeat is not None:
        heartbeat = args.heartbeat
    elif faults is not None:
        heartbeat = faults.mttr
    else:
        heartbeat = 10.0 * workload.service_dist.mean
    description = (
        f"serve:{args.workload}:{args.policy}:load={args.load!r}:"
        f"h={args.hosts}:jobs={args.jobs}:seed={args.seed}:"
        f"faults={faults.describe() if faults else 'none'}"
    )
    try:
        return ShardedDispatchServer(
            args.hosts,
            policy,
            n_shards=args.shards,
            router=args.router,
            seed=args.seed,
            faults=faults,
            heartbeat_interval=heartbeat,
            snapshot_dir=args.snapshot,
            snapshot_every=args.snapshot_every,
            signature=description,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _make_stream(args: argparse.Namespace) -> list[tuple[float, float]]:
    """The seeded ``(arrival, size)`` stream — a deterministic function of
    the config, which is what makes ``--resume``'s replay audit possible."""
    from ..workloads.catalog import get_workload

    trace = get_workload(args.workload).make_trace(
        load=args.load, n_hosts=args.hosts, n_jobs=args.jobs, rng=args.seed
    )
    t0 = float(trace.arrival_times[0])
    return [
        (float(t) - t0, float(s))
        for t, s in zip(trace.arrival_times, trace.service_times)
    ]


def _run_socket(core: DispatchServer, args: argparse.Namespace) -> int:
    import asyncio

    from .frontend import ServeFrontend

    async def _main() -> None:
        frontend = ServeFrontend(core)
        if args.socket:
            await frontend.start_unix(args.socket)
            where = args.socket
        else:
            host, _, port = args.tcp.rpartition(":")
            await frontend.start_tcp(host or "127.0.0.1", int(port))
            where = args.tcp
        print(f"serving {args.policy} on {where} (ctrl-C to stop)", file=sys.stderr)
        try:
            await frontend.serve_forever()
        finally:
            await frontend.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print(json.dumps(core.status(), indent=2, sort_keys=True))
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    if args.socket and args.tcp:
        print("error: --socket and --tcp are mutually exclusive", file=sys.stderr)
        return 2
    if args.resume and not args.snapshot:
        print("error: --resume requires --snapshot PATH", file=sys.stderr)
        return 2
    if args.resume and (args.socket or args.tcp):
        print(
            "error: --resume works in driver mode only (a socket stream "
            "cannot be replayed for the snapshot audit)",
            file=sys.stderr,
        )
        return 2
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    core = build_server(args)
    try:
        if args.socket or args.tcp:
            return _run_socket(core, args)
        try:
            status = core.run_stream(
                _make_stream(args), resume=args.resume, batch_size=args.batch_size
            )
        except OnlineDispatchError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(status, indent=2, sort_keys=True))
        holds = all(status["invariant"].values())
        return 0 if holds else 1
    finally:
        closer = getattr(core, "close", None)
        if closer is not None:
            closer()
