"""Per-host health: heartbeat-driven circuit breakers.

The online dispatcher never consults a host's *true* up/down state when
routing — that would be clairvoyant.  It consults its **belief**, built
from two observation channels: periodic heartbeat probes and the
success/failure of actual dispatch handoffs.  The belief is materialised
as one circuit breaker per host, with the classical three states:

``closed``
    The host looks healthy; dispatch flows freely.  ``failure_threshold``
    *consecutive* failed observations trip the breaker.
``open``
    The host is presumed dead; it is masked out of the dispatch set (the
    policy's ``choose_live_host`` never sees it) so no job burns a
    retry on it.  After ``cooldown`` simulated seconds the breaker
    relaxes to half-open.
``half_open``
    Trial mode: the host re-enters the dispatch set, and the *next*
    observation decides — success closes the breaker, failure re-opens
    it (restarting the cooldown).

Everything is a pure function of the observation sequence and the clock
passed in by the caller, so the layer is deterministic under the event
engine's virtual time and trivially unit-testable.

The dispatch mask is cached: as a function of time it is piecewise
constant, changing only when an observation moves a breaker's routing
state or when the clock crosses an open breaker's cooldown expiry, so
:meth:`HealthMonitor.up_mask` rebuilds the array only at those points
and hands out one read-only ndarray in between (the dispatcher calls it
per decision).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["BREAKER_STATES", "CircuitBreaker", "HealthMonitor"]

#: the three breaker states, in the order they are usually drawn.
BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """One host's breaker: consecutive-failure trip, timed half-open."""

    __slots__ = (
        "failure_threshold",
        "cooldown",
        "failures",
        "opened_at",
        "n_trips",
        "n_failures",
        "n_successes",
    )

    def __init__(self, failure_threshold: int = 2, cooldown: float = 20.0) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if not cooldown > 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = float(cooldown)
        #: consecutive failed observations since the last success.
        self.failures = 0
        #: simulated time the breaker last tripped (None = not open).
        self.opened_at: float | None = None
        self.n_trips = 0
        self.n_failures = 0
        self.n_successes = 0

    def state(self, now: float) -> str:
        """Current state as one of :data:`BREAKER_STATES`."""
        if self.opened_at is None:
            return "closed"
        if now - self.opened_at >= self.cooldown:
            return "half_open"
        return "open"

    def allows(self, now: float) -> bool:
        """Whether dispatch may target this host right now."""
        return self.state(now) != "open"

    def record_success(self, now: float) -> None:
        """A heartbeat probe or handoff succeeded."""
        self.n_successes += 1
        if self.state(now) == "open":
            # Classical breaker discipline: while open, nothing is being
            # sent, so a stray "success" carries no information — ignore
            # it rather than letting it silently half-close the breaker.
            return
        self.failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        """A heartbeat probe or handoff failed."""
        self.n_failures += 1
        state = self.state(now)
        if state == "open":
            return
        if state == "half_open":
            # The trial failed: re-open and restart the cooldown.
            self.opened_at = now
            self.n_trips += 1
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self.opened_at = now
            self.n_trips += 1


class HealthMonitor:
    """The dispatcher's belief about every registered host.

    Hosts must be registered explicitly (``register_host``); probing or
    masking an unregistered id is a programming error and raises — this
    is the registration boundary the fault layer validates against (see
    :meth:`repro.sim.faults.FaultInjector.attach`).
    """

    def __init__(self, failure_threshold: int = 2, cooldown: float = 20.0) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = float(cooldown)
        self._breakers: dict[int, CircuitBreaker] = {}
        #: bumped only when an observation (or a registration) changes a
        #: breaker's *routing* state — ``failures``/``opened_at`` — never
        #: on the success counters, so the per-handoff success probes the
        #: dispatcher feeds back do not thrash the caches below.
        self._obs_version = 0
        self._mask_cache: np.ndarray | None = None
        self._mask_version = -1
        self._mask_built_at = 0.0
        self._mask_valid_until = 0.0
        self._pristine_version = -1
        self._pristine_cache = True

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_host(self, host_id: int) -> None:
        if host_id in self._breakers:
            raise ValueError(f"host {host_id} is already registered")
        self._breakers[host_id] = CircuitBreaker(
            failure_threshold=self.failure_threshold, cooldown=self.cooldown
        )
        self._obs_version += 1

    @property
    def host_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._breakers))

    def breaker(self, host_id: int) -> CircuitBreaker:
        try:
            return self._breakers[host_id]
        except KeyError:
            raise KeyError(
                f"host {host_id} was never registered with the health "
                f"monitor (registered: {sorted(self._breakers)})"
            ) from None

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------

    def probe(self, host_id: int, healthy: bool, now: float) -> None:
        """Fold one observation (heartbeat or handoff outcome) in."""
        breaker = self.breaker(host_id)
        before = (breaker.failures, breaker.opened_at)
        if healthy:
            breaker.record_success(now)
        else:
            breaker.record_failure(now)
        if (breaker.failures, breaker.opened_at) != before:
            self._obs_version += 1

    # ------------------------------------------------------------------
    # the dispatch mask
    # ------------------------------------------------------------------

    def up_mask(self, now: float) -> np.ndarray:
        """Believed-live mask over hosts 0..n-1 (closed or half-open).

        The returned array is **read-only** and shared between calls:
        it is rebuilt only when an observation changed a breaker's
        routing state, or when ``now`` leaves the window over which the
        cached mask is provably constant — ``[built_at, valid_until)``
        where ``valid_until`` is the earliest cooldown expiry among
        breakers that were open at build time (open → half-open is the
        only transition the clock alone can cause).
        """
        mask = self._mask_cache
        if (
            mask is not None
            and self._mask_version == self._obs_version
            and self._mask_built_at <= now < self._mask_valid_until
        ):
            return mask
        ids = self.host_ids
        mask = np.array([self._breakers[i].allows(now) for i in ids], dtype=bool)
        mask.setflags(write=False)
        valid_until = math.inf
        for b in self._breakers.values():
            if b.opened_at is not None:
                reopen = b.opened_at + b.cooldown
                if now < reopen:
                    valid_until = min(valid_until, reopen)
        self._mask_cache = mask
        self._mask_version = self._obs_version
        self._mask_built_at = now
        self._mask_valid_until = valid_until
        return mask

    def pristine(self) -> bool:
        """True when no breaker holds *any* failure evidence.

        Stronger than ``up_mask(now).all()``: a closed breaker with
        sub-threshold consecutive failures still allows dispatch but is
        not pristine.  The fault-free fast path keys its engagement off
        this — any failure evidence at all means the engine path must
        watch the breakers evolve.  Cached on the observation version,
        so the per-handoff success probes cost one integer compare.
        """
        if self._pristine_version != self._obs_version:
            self._pristine_cache = all(
                b.opened_at is None and b.failures == 0
                for b in self._breakers.values()
            )
            self._pristine_version = self._obs_version
        return self._pristine_cache

    def states(self, now: float) -> dict[int, str]:
        return {i: b.state(now) for i, b in sorted(self._breakers.items())}

    def status(self, now: float) -> dict:
        """Observability snapshot (serialisable)."""
        return {
            str(i): {
                "state": b.state(now),
                "consecutive_failures": b.failures,
                "trips": b.n_trips,
                "observations": {"ok": b.n_successes, "failed": b.n_failures},
            }
            for i, b in sorted(self._breakers.items())
        }
