"""Newline-delimited JSON wire protocol for the dispatch server.

One request per line, one reply per line, both JSON objects.  Requests
carry an ``op`` field::

    {"op": "submit", "size": 3.5, "arrival": 12.0}
    {"op": "status"}
    {"op": "shards"}
    {"op": "drain"}

Replies always carry ``ok``; errors carry ``error`` with a message and
never tear down the connection — a client that sends one malformed line
gets one error reply and may continue.

The framing is deliberately the simplest thing that is robust: a bounded
line length (an unbounded ``readline`` is a memory DoS against the
server) and strict object-shaped JSON.
"""

from __future__ import annotations

import json

__all__ = ["KNOWN_OPS", "MAX_LINE", "ProtocolError", "decode_line", "encode"]

#: longest accepted request line, in bytes (including the newline).
MAX_LINE = 1 << 16

#: every operation the front end routes; ``shards`` answers only when the
#: core is a sharded coordinator (a single-process server replies with an
#: error, not a protocol violation).
KNOWN_OPS = ("submit", "submit_batch", "status", "shards", "drain")


class ProtocolError(ValueError):
    """A request line that cannot be accepted (reason in ``args[0]``)."""


def encode(obj: dict) -> bytes:
    """One reply, compact JSON, newline-terminated."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` on over-long lines, invalid JSON,
    non-object payloads and a missing/non-string ``op`` field — the four
    ways a client can hand us something we cannot even begin to route.
    """
    if len(line) > MAX_LINE:
        raise ProtocolError(f"request line exceeds {MAX_LINE} bytes")
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(msg).__name__}")
    op = msg.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request must carry a string 'op' field")
    return msg
