"""Degraded-mode SITA cutoff management: online re-fit with fallback.

"Dispatching Odyssey" (PAPERS.md) makes the empirical case that real
cluster workloads are non-stationary: a SITA cutoff fitted to last
week's size distribution quietly stops unbalancing the right way.  The
online dispatcher therefore re-fits its cutoff from a **sliding window**
of recently admitted job sizes, through the same shared-computation
engine the batch experiments use (:class:`repro.core.search.MomentMemo`
+ :func:`repro.core.search.analytic_cutoff_pair`).

A re-fit is *advice*, not gospel — the window can be too small, the
estimated load infeasible, the fitted cutoff degenerate, or the window
**fault-contaminated** (jobs admitted while hosts were crashing carry a
censored size mix: the re-dispatch churn re-samples large jobs).  Every
re-fit is validated, and on any failure the manager falls back to the
**last-known-good** cutoff and says so in its status — the server keeps
dispatching with yesterday's cutoff rather than today's garbage.
"""

from __future__ import annotations

import warnings
from collections import deque

import numpy as np

from ..core.search import MomentMemo, analytic_cutoff_pair
from ..workloads.distributions import Empirical

__all__ = ["CutoffManager", "RefitRejected"]


class RefitRejected(ValueError):
    """A fitted cutoff failed validation (reason in ``args[0]``)."""


class CutoffManager:
    """Sliding-window cutoff re-fit with a last-known-good fallback.

    Parameters
    ----------
    initial_cutoff:
        The offline-fitted cutoff the server starts (and falls back) on.
    n_hosts:
        Host count, used to turn the window's arrival rate into a load.
    window:
        Sliding-window length (number of admitted jobs).
    refit_every:
        Attempt a re-fit every this many observations (after the window
        has filled once).
    memo:
        Shared :class:`MomentMemo`; each retired window's ``Empirical``
        is explicitly :meth:`~repro.core.search.MomentMemo.discard`-ed so
        the bounded memo is not churned by dead distributions.
    load_bounds:
        The estimated load is clipped into this open interval before the
        analytic search (which requires ``0 < load < 1``).
    min_split_fraction:
        A fitted cutoff must leave at least this fraction of the window
        on *each* side — a cutoff below every observed size (or above)
        routes everything to one host, which is no SITA at all.
    """

    def __init__(
        self,
        initial_cutoff: float,
        n_hosts: int,
        window: int = 2048,
        refit_every: int = 512,
        memo: MomentMemo | None = None,
        load_bounds: tuple[float, float] = (0.05, 0.95),
        min_split_fraction: float = 0.02,
    ) -> None:
        if not (initial_cutoff > 0 and np.isfinite(initial_cutoff)):
            raise ValueError(
                f"initial cutoff must be positive and finite, got {initial_cutoff}"
            )
        if window < 8:
            raise ValueError(f"window must be >= 8, got {window}")
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        self.n_hosts = int(n_hosts)
        self.window = int(window)
        self.refit_every = int(refit_every)
        self.memo = memo if memo is not None else MomentMemo()
        self.load_bounds = load_bounds
        self.min_split_fraction = float(min_split_fraction)
        self._sizes: deque[float] = deque(maxlen=window)
        self._arrivals: deque[float] = deque(maxlen=window)
        self._since_refit = 0
        #: observations still needed before a contaminated window is
        #: considered fully turned over (0 = clean).
        self._contaminated_for = 0
        self.cutoff = float(initial_cutoff)
        self.last_known_good = float(initial_cutoff)
        self.mode = "initial"
        self.n_refits = 0
        self.n_fallbacks = 0
        self.last_error: str | None = None

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------

    def observe(self, size: float, now: float) -> bool:
        """Record one admitted job; returns True when a re-fit is due."""
        self._sizes.append(float(size))
        self._arrivals.append(float(now))
        self._since_refit += 1
        if self._contaminated_for > 0:
            self._contaminated_for -= 1
        if len(self._sizes) < self.window:
            return False
        if self._since_refit < self.refit_every:
            return False
        return True

    def mark_contaminated(self) -> None:
        """A crash touched the stream: distrust the window until it turns
        over completely (every contaminated sample has slid out)."""
        self._contaminated_for = self.window

    @property
    def contaminated(self) -> bool:
        return self._contaminated_for > 0

    # ------------------------------------------------------------------
    # re-fit
    # ------------------------------------------------------------------

    def _estimate_load(self) -> float:
        arrivals = self._arrivals
        span = arrivals[-1] - arrivals[0]
        if span <= 0:
            raise RefitRejected("window spans zero simulated time")
        lam = (len(arrivals) - 1) / span
        rho = lam * float(np.mean(self._sizes)) / self.n_hosts
        lo, hi = self.load_bounds
        return min(max(rho, lo), hi)

    def _validate(self, cutoff: float, sizes: np.ndarray) -> None:
        if not (np.isfinite(cutoff) and cutoff > 0):
            raise RefitRejected(f"fitted cutoff {cutoff!r} is not positive finite")
        short = float(np.mean(sizes <= cutoff))
        if not self.min_split_fraction <= short <= 1.0 - self.min_split_fraction:
            raise RefitRejected(
                f"fitted cutoff {cutoff:.6g} leaves a degenerate split "
                f"({short:.1%} of the window below it)"
            )

    def refit(self) -> bool:
        """Attempt one re-fit; True if the cutoff was updated.

        Never raises: every failure path (contaminated window, infeasible
        load, degenerate cutoff) falls back to the last-known-good cutoff
        and records why in :attr:`last_error`.
        """
        self._since_refit = 0
        if self.contaminated:
            self._fall_back(
                f"window fault-contaminated for another "
                f"{self._contaminated_for} observations"
            )
            return False
        sizes = np.asarray(self._sizes, dtype=float)
        dist = None
        try:
            load = self._estimate_load()
            dist = Empirical(sizes)
            with warnings.catch_warnings():
                # The scalar optimiser probes a jagged empirical
                # objective; its internal NaN chatter is not actionable
                # and must not spam a long-running server's stderr.
                warnings.simplefilter("ignore", RuntimeWarning)
                fitted = analytic_cutoff_pair(
                    load, dist, want=("opt",), memo=self.memo
                )["opt"]
            self._validate(fitted, sizes)
        except (ValueError, ArithmeticError) as exc:
            self._fall_back(str(exc))
            return False
        finally:
            # The window Empirical is dead after this fit: release its
            # memo slice instead of letting it crowd the LRU.
            if dist is not None:
                self.memo.discard(dist)
        self.cutoff = float(fitted)
        self.last_known_good = self.cutoff
        self.mode = "fitted"
        self.last_error = None
        self.n_refits += 1
        return True

    def _fall_back(self, reason: str) -> None:
        self.cutoff = self.last_known_good
        self.mode = "fallback"
        self.last_error = reason
        self.n_fallbacks += 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def status(self) -> dict:
        return {
            "mode": self.mode,
            "cutoff": self.cutoff,
            "last_known_good": self.last_known_good,
            "refits": self.n_refits,
            "fallbacks": self.n_fallbacks,
            "window_fill": len(self._sizes),
            "contaminated": self.contaminated,
            "last_error": self.last_error,
        }
