"""Fault-tolerant online dispatch server (``repro serve``).

The batch simulators answer "what would this policy have done on this
trace"; this package runs the same policies as a *server*: jobs arrive
one at a time, hosts crash and repair underneath, intake is admission-
controlled, and the accounting survives SIGKILL.  See
``docs/ROBUSTNESS.md`` ("Online dispatch under faults").

``repro serve --shards N`` scales the server past one process: the
sharded coordinator (:mod:`repro.serve.shard`) partitions the hosts
across worker processes behind a pluggable shard router
(:mod:`repro.serve.router`) and merges their accounting
deterministically — bit-identically, for fault-free SITA routing.
"""

from .admission import AdmissionController, TokenBucket
from .health import CircuitBreaker, HealthMonitor
from .refit import CutoffManager, RefitRejected
from .router import HashShardRouter, PowerOfDRouter, ShardRouter, SitaShardRouter
from .server import DispatchServer, OnlineDispatchError
from .shard import ShardedDispatchServer
from .snapshot import SnapshotStore, serve_signature

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CutoffManager",
    "DispatchServer",
    "HashShardRouter",
    "HealthMonitor",
    "OnlineDispatchError",
    "PowerOfDRouter",
    "RefitRejected",
    "ShardRouter",
    "ShardedDispatchServer",
    "SitaShardRouter",
    "SnapshotStore",
    "TokenBucket",
    "serve_signature",
]
