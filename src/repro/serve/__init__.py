"""Fault-tolerant online dispatch server (``repro serve``).

The batch simulators answer "what would this policy have done on this
trace"; this package runs the same policies as a *server*: jobs arrive
one at a time, hosts crash and repair underneath, intake is admission-
controlled, and the accounting survives SIGKILL.  See
``docs/ROBUSTNESS.md`` ("Online dispatch under faults").
"""

from .admission import AdmissionController, TokenBucket
from .health import CircuitBreaker, HealthMonitor
from .refit import CutoffManager, RefitRejected
from .server import DispatchServer, OnlineDispatchError
from .snapshot import SnapshotStore, serve_signature

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CutoffManager",
    "DispatchServer",
    "HealthMonitor",
    "OnlineDispatchError",
    "RefitRejected",
    "SnapshotStore",
    "TokenBucket",
    "serve_signature",
]
