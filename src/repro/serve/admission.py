"""Admission control: token-bucket intake and bounded backpressure.

The online dispatcher must not fall over when offered more work than the
hosts can absorb — the failure mode of an unbounded intake is an
ever-growing queue whose latency grows without bound long before memory
runs out.  Two mechanisms bound it:

* a **token bucket** rate-limits intake: tokens refill at ``rate`` per
  simulated second up to ``burst``; a job that arrives to an empty
  bucket is *shed* with an explicit ``rejected`` outcome (never silently
  dropped, never queued);
* a **deferred-queue cap**: jobs that were admitted but cannot dispatch
  (every breaker open) wait at the dispatcher, and that queue has a hard
  bound — overflow sheds the *new* arrival rather than growing.

Both are deterministic functions of the virtual clock, so an admission
trace replays bit-identically.
"""

from __future__ import annotations

import math

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Deterministic token bucket over the caller-supplied clock.

    ``rate=math.inf`` disables rate limiting entirely (the bucket always
    grants), which keeps the no-admission-control configuration
    bit-identical to a server without a bucket in the path.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float = math.inf, burst: float = 1.0) -> None:
        if not rate > 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if not (burst >= 1 and math.isfinite(burst)):
            raise ValueError(f"burst must be >= 1 and finite, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_acquire(self, now: float) -> bool:
        """Take one token if available; never blocks."""
        if math.isinf(self.rate):
            return True
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Intake decision: ``admit`` or ``reject`` (with a recorded reason).

    The controller does not own the deferred queue — the dispatcher
    does — it is handed the current backlog depth so the cap check and
    the bucket check sit in one auditable place.
    """

    def __init__(
        self,
        rate: float = math.inf,
        burst: float = 1.0,
        max_deferred: int = 1024,
    ) -> None:
        if max_deferred < 0:
            raise ValueError(f"max_deferred must be >= 0, got {max_deferred}")
        self.bucket = TokenBucket(rate=rate, burst=burst)
        self.max_deferred = int(max_deferred)
        self.n_admitted = 0
        self.n_rejected_rate = 0
        self.n_rejected_backlog = 0

    def admit(self, now: float, deferred_depth: int) -> str:
        """``"admit"``, ``"reject-rate"`` or ``"reject-backlog"``."""
        if deferred_depth > self.max_deferred:
            raise ValueError(
                f"deferred depth {deferred_depth} exceeds the hard cap "
                f"{self.max_deferred} — the dispatcher failed to shed"
            )
        if deferred_depth == self.max_deferred and self.max_deferred > 0:
            self.n_rejected_backlog += 1
            return "reject-backlog"
        if not self.bucket.try_acquire(now):
            self.n_rejected_rate += 1
            return "reject-rate"
        self.n_admitted += 1
        return "admit"

    def unlimited(self) -> bool:
        """True when every offer is guaranteed to be admitted.

        An infinite-rate bucket never touches its refill state and the
        backlog check is a pure function of the deferred depth the
        dispatcher passes in, so with ``rate == inf`` a caller holding an
        empty deferred queue may admit a whole batch via
        :meth:`admit_batch` with the exact per-job outcomes.
        """
        return math.isinf(self.bucket.rate)

    def admit_batch(self, count: int) -> None:
        """Record ``count`` admissions at once (fast-path bulk intake).

        Only valid when :meth:`unlimited` is true and the deferred queue
        is empty — i.e. when ``count`` consecutive :meth:`admit` calls
        would all have returned ``"admit"`` without touching any other
        state.
        """
        if not self.unlimited():
            raise ValueError("admit_batch requires an unlimited bucket")
        self.n_admitted += int(count)

    def status(self) -> dict:
        return {
            "admitted": self.n_admitted,
            "rejected_rate": self.n_rejected_rate,
            "rejected_backlog": self.n_rejected_backlog,
            "max_deferred": self.max_deferred,
            # None = unlimited; math.inf would render as the non-standard
            # JSON token ``Infinity`` on the status endpoint.
            "rate": self.bucket.rate if math.isfinite(self.bucket.rate) else None,
            "burst": self.bucket.burst,
        }
