"""Array contracts for the simulation kernels (the compiled-tier gate).

The ROADMAP's next performance rung is a compiled (Numba/Cython) tier
for the Lindley-recursion kernels.  A compiled kernel takes its arrays
zero-copy, so the implicit assumptions the NumPy versions paper over
with ``np.asarray`` — dtype, rank, matching lengths, C-contiguity,
which buffers are written, which must not alias — become hard ABI
requirements.  This module makes those assumptions *declared* and
*checkable*:

* :func:`kernel_contract` — a decorator attaching a
  :class:`KernelContract` to a kernel.  The declaration is a plain
  literal, so the static checker (:mod:`repro.devtools.contracts`,
  rules SIM201–SIM205) reads it straight out of the AST and verifies
  every call site against it with dtype/shape flow analysis.
* Runtime cross-check — under ``REPRO_SIM_STRICT=1`` (the same switch
  as the engine sanitizer) every decorated call validates its ndarray
  arguments against the declaration and snapshots non-``writes`` inputs
  read-only for the duration of the call, so an undeclared in-place
  mutation raises immediately.  The static claims are falsifiable: what
  SIM201–SIM205 accept, this validator accepts (see
  ``tests/sim/test_kernel_contract.py``).

Only :class:`numpy.ndarray` arguments are validated.  Lists, scalars
and ``None`` pass through untouched: the Python kernels convert them
via ``np.asarray``, and the compiled tier will do the same conversion
at its boundary — the contract pins down the zero-copy fast path, not
the convenience coercions.

Declaration syntax (all keywords optional)::

    @kernel_contract(
        shapes={"arrival_times": ("n",), "sizes": ("n",), "return": ("n",)},
        dtypes={"arrival_times": "float64", "sizes": "float64",
                "return": "float64"},
        writes=(),                       # parameters mutated in place
        contiguous=("arrival_times", "sizes"),
    )
    def fcfs_waits(arrival_times, sizes): ...

Shape entries are dimension symbols (unified across parameters and the
return value: every ``"n"`` must agree) or literal ints.  Tuple-valued
returns declare ``"return[0]"``, ``"return[1]"`` … keys.  ``dtypes``
values may be a name or a tuple of admissible names.  Any pair of
ndarray arguments where at least one side is in ``writes`` must be
disjoint in memory (a written buffer aliasing anything else corrupts
the recursion); two read-only inputs may overlap freely, and
``allow_alias`` exempts specific written pairs.
"""

from __future__ import annotations

import functools
import inspect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence, TypeVar

import numpy as np

from .engine import strict_from_env

__all__ = [
    "ContractViolation",
    "KernelContract",
    "contract_of",
    "contract_validation",
    "kernel_contract",
    "set_contract_validation",
    "validation_enabled",
]

_F = TypeVar("_F", bound=Callable[..., Any])

#: dimension spec: a literal extent or a symbol unified across the call.
DimSpec = int | str


class ContractViolation(ValueError):
    """A kernel call broke its declared array contract.

    Subclasses :class:`ValueError` so callers (and tests) that guard
    against bad kernel inputs with ``except ValueError`` keep working
    when the contract validator fires first.
    """


@dataclass(frozen=True)
class KernelContract:
    """The declared array contract of one kernel."""

    shapes: Mapping[str, tuple[DimSpec, ...]] = field(default_factory=dict)
    dtypes: Mapping[str, str | tuple[str, ...]] = field(default_factory=dict)
    writes: tuple[str, ...] = ()
    contiguous: tuple[str, ...] = ()
    allow_alias: tuple[tuple[str, str], ...] = ()
    #: the kernel claims nopython compilability (checked by SIM301–SIM308).
    nopython: bool = False

    def dtype_names(self, name: str) -> tuple[str, ...]:
        """Admissible dtype names for parameter (or return key) ``name``."""
        decl = self.dtypes.get(name)
        if decl is None:
            return ()
        return (decl,) if isinstance(decl, str) else tuple(decl)

    def return_keys(self) -> list[str]:
        """Every declared ``return`` / ``return[i]`` key, sorted."""
        keys = set(self.shapes) | set(self.dtypes) | set(self.contiguous)
        return sorted(k for k in keys if k == "return" or k.startswith("return["))

    def may_alias(self, a: str, b: str) -> bool:
        return (a, b) in self.allow_alias or (b, a) in self.allow_alias


# ----------------------------------------------------------------------
# validation switch (shared with the engine sanitizer)
# ----------------------------------------------------------------------

#: tri-state override: None defers to ``REPRO_SIM_STRICT``.
_VALIDATE: bool | None = None


def validation_enabled() -> bool:
    """Whether decorated kernels validate at call time."""
    if _VALIDATE is not None:
        return _VALIDATE
    return strict_from_env()


def set_contract_validation(enabled: bool | None) -> bool | None:
    """Force validation on/off (``None`` defers to ``REPRO_SIM_STRICT``).

    Returns the previous override so callers can restore it.
    """
    global _VALIDATE
    previous = _VALIDATE
    _VALIDATE = enabled
    return previous


@contextmanager
def contract_validation(enabled: bool | None) -> Iterator[None]:
    """Scoped :func:`set_contract_validation` (tests use this)."""
    previous = set_contract_validation(enabled)
    try:
        yield
    finally:
        set_contract_validation(previous)


# ----------------------------------------------------------------------
# the validator
# ----------------------------------------------------------------------


def _check_array(
    label: str,
    name: str,
    arr: np.ndarray,
    contract: KernelContract,
    dims: dict[str, int],
) -> None:
    """Validate one ndarray against its declared dtype/shape/contiguity."""
    admissible = contract.dtype_names(name)
    if admissible and all(arr.dtype != np.dtype(d) for d in admissible):
        raise ContractViolation(
            f"{label}: {name} has dtype {arr.dtype}, contract declares "
            f"{'/'.join(admissible)} (dtype drift breaks the compiled "
            "kernel's zero-copy path)"
        )
    spec = contract.shapes.get(name)
    if spec is not None:
        if arr.ndim != len(spec):
            raise ContractViolation(
                f"{label}: {name} is {arr.ndim}-D, contract declares "
                f"{len(spec)}-D shape {spec}"
            )
        for dim_spec, extent in zip(spec, arr.shape):
            if isinstance(dim_spec, int):
                if extent != dim_spec:
                    raise ContractViolation(
                        f"{label}: {name} has extent {extent} where the "
                        f"contract declares literal {dim_spec}"
                    )
            else:
                bound = dims.setdefault(dim_spec, extent)
                if bound != extent:
                    raise ContractViolation(
                        f"{label}: dimension {dim_spec!r} is {bound} "
                        f"elsewhere in this call but {name} has {extent} "
                        "(shape mismatch / unintended broadcast)"
                    )
    if name in contract.contiguous and not arr.flags["C_CONTIGUOUS"]:
        raise ContractViolation(
            f"{label}: {name} is not C-contiguous; pass it through "
            "np.ascontiguousarray before the scan"
        )


def _validate_inputs(
    label: str, contract: KernelContract, arguments: Mapping[str, Any]
) -> dict[str, int]:
    """Check every ndarray argument; returns the dimension bindings."""
    dims: dict[str, int] = {}
    arrays: list[tuple[str, np.ndarray]] = [
        (name, value)
        for name, value in arguments.items()
        if isinstance(value, np.ndarray)
    ]
    for name, arr in arrays:
        _check_array(label, name, arr, contract, dims)
    written = set(contract.writes)
    for i, (name_a, a) in enumerate(arrays):
        for name_b, b in arrays[i + 1 :]:
            if contract.may_alias(name_a, name_b):
                continue
            if name_a not in written and name_b not in written:
                continue  # two read-only inputs may share memory safely
            # `a is b` matters: may_share_memory is False for size-0
            # arrays, but the same object is an alias at any size.
            if a is b or np.may_share_memory(a, b):
                raise ContractViolation(
                    f"{label}: {name_a} and {name_b} share memory; the "
                    "contract requires disjoint buffers (aliasing between "
                    "input and scratch corrupts the recursion)"
                )
    return dims


def _validate_result(
    label: str, contract: KernelContract, result: Any, dims: dict[str, int]
) -> None:
    for key in contract.return_keys():
        if key == "return":
            value = result
        else:
            index = int(key[len("return[") : -1])
            if not isinstance(result, tuple) or index >= len(result):
                raise ContractViolation(
                    f"{label}: contract declares {key} but the kernel did "
                    "not return a matching tuple"
                )
            value = result[index]
        if isinstance(value, np.ndarray):
            _check_array(label, key, value, contract, dims)


def _freeze_readonly(
    contract: KernelContract, arguments: Mapping[str, Any]
) -> list[tuple[np.ndarray, bool]]:
    """Mark non-``writes`` ndarray arguments read-only; returns undo info.

    Any in-place mutation of a caller-visible array the contract does
    not declare then raises inside the kernel itself — an exact runtime
    twin of the static SIM202 check, with no O(n) snapshotting.
    """
    guards: list[tuple[np.ndarray, bool]] = []
    seen: set[int] = set()
    for name, value in arguments.items():
        if name in contract.writes or not isinstance(value, np.ndarray):
            continue
        if id(value) in seen:
            continue
        seen.add(id(value))
        guards.append((value, bool(value.flags.writeable)))
        value.flags.writeable = False
    return guards


def _restore_writeable(guards: Sequence[tuple[np.ndarray, bool]]) -> None:
    for arr, writeable in guards:
        arr.flags.writeable = writeable


def kernel_contract(
    *,
    shapes: Mapping[str, tuple[DimSpec, ...]] | None = None,
    dtypes: Mapping[str, str | tuple[str, ...]] | None = None,
    writes: tuple[str, ...] = (),
    contiguous: tuple[str, ...] = (),
    allow_alias: tuple[tuple[str, str], ...] = (),
    nopython: bool = False,
) -> Callable[[_F], _F]:
    """Declare a kernel's array contract (see the module docstring).

    The declaration must be spelled with literal dicts/tuples — the
    static checker reads it from the AST, and a computed declaration
    would be invisible to it.

    ``nopython=True`` marks a compile-candidate kernel: its body must
    pass the compile-readiness rules SIM301–SIM308 before the compiled
    tier may register it (see :mod:`repro.devtools.compile_rules`).  The
    function is returned *unwrapped* — ``numba.njit`` cannot see through
    the validating closure, so runtime validation for these kernels
    happens at the pure-python façade that dispatches to them (the
    :mod:`repro.sim.fast` entry points), never inside the compiled body.
    """
    contract = KernelContract(
        shapes=dict(shapes or {}),
        dtypes=dict(dtypes or {}),
        writes=tuple(writes),
        contiguous=tuple(contiguous),
        allow_alias=tuple(allow_alias),
        nopython=nopython,
    )

    def decorate(fn: _F) -> _F:
        if nopython:
            fn.__kernel_contract__ = contract  # type: ignore[attr-defined]
            return fn
        signature = inspect.signature(fn)
        label = fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not validation_enabled():
                return fn(*args, **kwargs)
            arguments = signature.bind(*args, **kwargs).arguments
            dims = _validate_inputs(label, contract, arguments)
            guards = _freeze_readonly(contract, arguments)
            try:
                result = fn(*args, **kwargs)
            finally:
                _restore_writeable(guards)
            _validate_result(label, contract, result, dims)
            return result

        wrapper.__kernel_contract__ = contract  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def contract_of(fn: Callable[..., Any]) -> KernelContract | None:
    """The :class:`KernelContract` attached to ``fn``, if any."""
    return getattr(fn, "__kernel_contract__", None)
