"""Per-job results and summary statistics.

The paper evaluates three things (section 1.2): **mean slowdown** (the
headline metric — response time over service requirement), **variance in
slowdown** (predictability), and **mean response time**; plus **fairness**
— expected slowdown conditioned on job size.  :class:`SimulationResult`
holds the raw per-job arrays produced by either simulator and
:class:`Summary` condenses them, with optional warmup trimming and
batch-means confidence intervals for the steady-state means.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "SimulationResult",
    "Summary",
    "array_digest",
    "batch_means_ci",
    "jain_fairness_index",
    "observe_result",
    "set_result_observer",
]


def jain_fairness_index(values: np.ndarray) -> float:
    """Jain's fairness index ``(Σv)² / (n·Σv²)`` over per-job metrics.

    The standard allocation-fairness scalar (Jain, Chiu & Hawe 1984):
    1 when every job experiences the same value, ``1/n`` when a single
    job absorbs everything.  Applied to per-job *slowdowns* it condenses
    the paper's fairness question — is expected slowdown flat in job
    size? — into one monitorable number, which is what the online
    dispatcher's status endpoint reports.  Returns ``nan`` for an empty
    input and for degenerate all-zero values.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return math.nan
    if np.any(v < 0):
        raise ValueError("Jain's index is defined for non-negative values")
    denom = v.size * float(np.sum(v * v))
    if denom == 0.0:
        return math.nan
    return float(np.sum(v)) ** 2 / denom


def array_digest(*arrays: np.ndarray | None, precision: int | None = None) -> str:
    """Order-sensitive 128-bit digest of one or more arrays.

    Folds dtype, shape and raw bytes of each array (in order) into a
    ``blake2b`` hash, so two runs agree iff they produced bit-identical
    arrays.  ``precision`` rounds floating arrays to that many decimals
    first (and collapses ``-0.0`` to ``0.0``), for comparisons that
    should tolerate last-bit float noise — e.g. across simulator
    backends whose summation orders legitimately differ.  ``None``
    entries fold as an explicit absence marker, so "no array" and "empty
    array" stay distinguishable.
    """
    h = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        if arr is None:
            h.update(b"<absent>")
            continue
        a = np.asarray(arr)
        if precision is not None and np.issubdtype(a.dtype, np.floating):
            # rounding may produce -0.0; +0.0 normalises it so the byte
            # representation is unique per value
            a = np.round(a, precision) + 0.0
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


#: process-wide observer of finished simulation runs, installed by
#: ``repro audit`` to digest every result an experiment produces —
#: including the many interior runs of a cutoff search the experiment
#: driver never returns.
_RESULT_OBSERVER: Callable[["SimulationResult"], None] | None = None


def set_result_observer(
    observer: Callable[["SimulationResult"], None] | None,
) -> Callable[["SimulationResult"], None] | None:
    """Install ``observer(result)`` on every completed simulation run;
    return the previous observer so callers can restore it.

    Both backends (:func:`repro.sim.fast.simulate_fast` and
    :meth:`repro.sim.server.DistributedServer.run_trace`) report here
    exactly once per run.  Pass ``None`` to uninstall.  Not a public
    extension point; the supported consumer is the replay-divergence
    auditor.
    """
    global _RESULT_OBSERVER
    previous = _RESULT_OBSERVER
    _RESULT_OBSERVER = observer
    return previous


def observe_result(result: "SimulationResult") -> None:
    """Report a finished run to the installed observer (no-op if none)."""
    if _RESULT_OBSERVER is not None:
        _RESULT_OBSERVER(result)


def batch_means_ci(
    values: np.ndarray, n_batches: int = 20, z: float = 1.96
) -> tuple[float, float]:
    """Steady-state mean and CI half-width via the method of batch means.

    Per-job metrics from a queueing simulation are autocorrelated, so the
    naive i.i.d. CI is too narrow; batching into ``n_batches`` contiguous
    blocks and treating the block means as independent is the standard
    remedy.  Returns ``(mean, half_width)``.
    """
    v = np.asarray(values, dtype=float)
    if v.size < 2 * n_batches:
        raise ValueError(
            f"need at least {2 * n_batches} observations for {n_batches} batches"
        )
    usable = (v.size // n_batches) * n_batches
    batches = v[:usable].reshape(n_batches, -1).mean(axis=1)
    mean = float(batches.mean())
    half = float(z * batches.std(ddof=1) / math.sqrt(n_batches))
    return mean, half


@dataclass(frozen=True)
class Summary:
    """Condensed statistics over one simulation run."""

    n_jobs: int
    mean_slowdown: float
    var_slowdown: float
    mean_waiting_slowdown: float
    mean_response: float
    var_response: float
    mean_wait: float
    max_slowdown: float
    #: 95th and 99th percentile of per-job slowdown (tail predictability).
    p95_slowdown: float
    p99_slowdown: float
    host_load_fraction: tuple[float, ...]
    host_job_fraction: tuple[float, ...]
    #: Jain's fairness index over per-job slowdowns (1 = perfectly flat);
    #: ``nan`` on summaries predating the field.
    jain_slowdown: float = math.nan

    def as_row(self) -> dict[str, float]:
        """Flatten for tabular reports."""
        row = {
            "n_jobs": self.n_jobs,
            "mean_slowdown": self.mean_slowdown,
            "var_slowdown": self.var_slowdown,
            "mean_response": self.mean_response,
            "var_response": self.var_response,
            "mean_wait": self.mean_wait,
        }
        # Folded in only when finite — historical rows stay byte-stable
        # (same precedent as the fault columns in result digests).
        if not math.isnan(self.jain_slowdown):
            row["jain_slowdown"] = self.jain_slowdown
        for i, f in enumerate(self.host_load_fraction):
            row[f"load_frac_host{i}"] = f
        return row


@dataclass(frozen=True)
class SimulationResult:
    """Raw per-job output of a simulation run.

    All arrays are indexed by job (in arrival order).  Derived metrics are
    computed lazily; slicing helpers implement warmup trimming and the
    paper's size-class conditioning.
    """

    policy_name: str
    n_hosts: int
    arrival_times: np.ndarray
    sizes: np.ndarray
    wait_times: np.ndarray
    host_assignments: np.ndarray
    wasted_work: np.ndarray | None = None
    #: time the job actually occupied its host; defaults to ``sizes``
    #: (unit-speed hosts).  Differs on heterogeneous-speed hosts, where a
    #: nominal size x runs for x/speed seconds.
    processing_times: np.ndarray | None = None
    #: jobs destroyed by host crashes ("lost" failure semantics); lost
    #: jobs never complete, so they appear in no per-job array.
    n_lost: int = 0
    #: host crashes injected during the run (0 without fault injection).
    n_failures: int = 0
    #: cumulative host down-time over the run, in simulated seconds.
    host_downtime: float = 0.0
    #: which simulator produced this result ("fast", "event" or
    #: "event-fallback" when the fast kernel failed and the run was
    #: gracefully retried on the event engine); "" when unrecorded.
    backend: str = ""

    def __post_init__(self) -> None:
        n = self.arrival_times.size
        for name in ("sizes", "wait_times", "host_assignments"):
            if getattr(self, name).size != n:
                raise ValueError(f"{name} length mismatch")
        if self.processing_times is not None:
            if self.processing_times.size != n:
                raise ValueError("processing_times length mismatch")
            if np.any(self.processing_times <= 0):
                raise ValueError("processing times must be positive")
        if np.any(self.wait_times < -1e-9):
            raise ValueError("negative wait time — simulator bug")

    # ------------------------------------------------------------------
    # derived per-job arrays
    # ------------------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        return self.arrival_times.size

    def digest(self, precision: int | None = None) -> str:
        """128-bit fingerprint of this run, for replay auditing.

        Folds the policy name, host count and every per-job array; two
        replays with identical seeds must produce identical digests
        (``precision=None``, bit-exact) or the run is nondeterministic.
        A quantized digest (``precision=10`` or so) tolerates last-bit
        float differences for cross-backend comparisons.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(self.policy_name.encode())
        h.update(str(self.n_hosts).encode())
        h.update(
            array_digest(
                self.arrival_times,
                self.sizes,
                self.wait_times,
                self.host_assignments,
                self.wasted_work,
                self.processing_times,
                precision=precision,
            ).encode()
        )
        # Fault-free runs keep their historical digests; only runs that
        # actually saw failures fold the fault statistics in.
        if self.n_lost or self.n_failures:
            h.update(
                f"faults:{self.n_lost}:{self.n_failures}:"
                f"{self.host_downtime!r}".encode()
            )
        return h.hexdigest()

    @property
    def response_times(self) -> np.ndarray:
        if self.processing_times is not None:
            return self.wait_times + self.processing_times
        return self.wait_times + self.sizes

    @property
    def slowdowns(self) -> np.ndarray:
        """Response / size — the paper's headline per-job metric."""
        return self.response_times / self.sizes

    @property
    def waiting_slowdowns(self) -> np.ndarray:
        """Wait / size (the quantity in the paper's Theorem 1)."""
        return self.wait_times / self.sizes

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def trimmed(self, warmup_fraction: float = 0.0) -> "SimulationResult":
        """Drop the first ``warmup_fraction`` of jobs (transient removal)."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must be in [0,1), got {warmup_fraction}")
        start = int(self.n_jobs * warmup_fraction)
        if start == 0:
            return self
        return SimulationResult(
            policy_name=self.policy_name,
            n_hosts=self.n_hosts,
            arrival_times=self.arrival_times[start:],
            sizes=self.sizes[start:],
            wait_times=self.wait_times[start:],
            host_assignments=self.host_assignments[start:],
            wasted_work=None if self.wasted_work is None else self.wasted_work[start:],
            processing_times=None
            if self.processing_times is None
            else self.processing_times[start:],
            n_lost=self.n_lost,
            n_failures=self.n_failures,
            host_downtime=self.host_downtime,
            backend=self.backend,
        )

    def summary(self, warmup_fraction: float = 0.0) -> Summary:
        """Compute the paper's metrics, optionally after warmup trimming."""
        r = self.trimmed(warmup_fraction)
        slow = r.slowdowns
        resp = r.response_times
        total_work = float(np.sum(r.sizes))
        load_frac = []
        job_frac = []
        for i in range(r.n_hosts):
            mask = r.host_assignments == i
            load_frac.append(float(np.sum(r.sizes[mask])) / total_work)
            job_frac.append(float(np.mean(mask)))
        return Summary(
            n_jobs=r.n_jobs,
            mean_slowdown=float(np.mean(slow)),
            var_slowdown=float(np.var(slow)),
            mean_waiting_slowdown=float(np.mean(r.waiting_slowdowns)),
            mean_response=float(np.mean(resp)),
            var_response=float(np.var(resp)),
            mean_wait=float(np.mean(r.wait_times)),
            max_slowdown=float(np.max(slow)),
            p95_slowdown=float(np.percentile(slow, 95)),
            p99_slowdown=float(np.percentile(slow, 99)),
            host_load_fraction=tuple(load_frac),
            host_job_fraction=tuple(job_frac),
            jain_slowdown=jain_fairness_index(slow),
        )

    def class_mean_slowdowns(self, cutoff: float) -> tuple[float, float]:
        """Mean slowdown of (short, long) jobs split at ``cutoff``.

        SITA-U-fair is defined by these two numbers being equal.
        """
        short = self.sizes <= cutoff
        if not short.any() or short.all():
            raise ValueError(f"cutoff {cutoff} leaves an empty size class")
        slow = self.slowdowns
        return float(np.mean(slow[short])), float(np.mean(slow[~short]))

    def slowdown_ci(
        self, warmup_fraction: float = 0.0, n_batches: int = 20
    ) -> tuple[float, float]:
        """Batch-means CI for mean slowdown."""
        return batch_means_ci(self.trimmed(warmup_fraction).slowdowns, n_batches)
