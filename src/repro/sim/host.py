"""FCFS run-to-completion host machines.

The paper's architectural model (section 1.1): each host machine runs the
jobs dispatched to it in first-come-first-served order, exactly one job at
a time, with no preemption and no time-sharing.  A host therefore has a
single scalar of hidden state — the *virtual completion time* ``V``: the
instant it will go idle if nothing else arrives.  Remaining work at time
``t`` is ``max(0, V − t)``, which is what the Least-Work-Left dispatcher
inspects.

Hosts optionally enforce a processing *limit* (kill the running job after
``limit`` seconds of service).  The base model never uses this; the TAGS
extension (task assignment by guessing size, the paper's ref [10]) kills
jobs that exceed a host's size cutoff and restarts them from scratch on
the next host.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from .engine import Simulator
from .jobs import Job

__all__ = ["FCFSHost"]


class FCFSHost:
    """One FCFS run-to-completion host attached to a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The event engine driving this host.
    host_id:
        Index of this host within the server.
    on_completion:
        Called as ``on_completion(host, job)`` when a job finishes.
    on_eviction:
        Called as ``on_eviction(host, job)`` when a job hits ``limit``
        and is killed (TAGS).  If ``None`` and a limit is set, eviction
        raises — the server must opt in.
    limit:
        Maximum service a job may receive here before being killed
        (``math.inf`` disables killing).
    speed:
        Processing speed: a job of nominal size ``x`` occupies this host
        for ``x/speed`` seconds (1.0 = the paper's identical hosts).
    """

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        on_completion: Callable[["FCFSHost", Job], None],
        on_eviction: Callable[["FCFSHost", Job], None] | None = None,
        limit: float = math.inf,
        speed: float = 1.0,
    ) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.sim = sim
        self.host_id = host_id
        self.on_completion = on_completion
        self.on_eviction = on_eviction
        self.limit = limit
        self.speed = float(speed)
        self.queue: deque[Job] = deque()
        self.running: Job | None = None
        self._virtual_completion = 0.0
        #: Total useful service delivered (for per-host load accounting).
        self.busy_time = 0.0
        #: Total service delivered to jobs later evicted (wasted).
        self.wasted_time = 0.0
        self.jobs_completed = 0

    # ------------------------------------------------------------------
    # state inspected by dispatch policies
    # ------------------------------------------------------------------

    @property
    def n_in_system(self) -> int:
        """Jobs queued plus the one running (Shortest-Queue's metric)."""
        return len(self.queue) + (1 if self.running is not None else 0)

    def work_left(self, now: float) -> float:
        """Unfinished work at ``now`` assuming true sizes (LWL's metric)."""
        return max(0.0, self._virtual_completion - now)

    @property
    def virtual_completion(self) -> float:
        """Unclamped instant the host goes idle (strict-mode inspection)."""
        return self._virtual_completion

    @property
    def idle(self) -> bool:
        return self.running is None and not self.queue

    # ------------------------------------------------------------------
    # job flow
    # ------------------------------------------------------------------

    def _service_here(self, job: Job) -> float:
        """Wall-clock time ``job`` will occupy this host (up to eviction)."""
        return min(job.size, self.limit) / self.speed

    def submit(self, job: Job) -> None:
        """Enqueue ``job``; starts immediately if the host is idle."""
        job.assigned_host = self.host_id
        now = self.sim.now
        self._virtual_completion = max(self._virtual_completion, now) + self._service_here(job)
        self.queue.append(job)
        if self.running is None:
            self._start_next()

    def _start_next(self) -> None:
        assert self.running is None
        if not self.queue:
            return
        job = self.queue.popleft()
        self.running = job
        job.start_time = self.sim.now
        service = self._service_here(job)
        self.sim.schedule_after(service, self._finish, job, service)

    def _finish(self, job: Job, service: float) -> None:
        assert self.running is job
        self.running = None
        evicted = service * self.speed < job.size
        if evicted:
            self.wasted_time += service
            job.wasted_work += service
            job.restarts += 1
            if self.on_eviction is None:
                raise RuntimeError(
                    f"host {self.host_id} evicted job {job.index} but no "
                    "on_eviction handler is installed"
                )
        else:
            self.busy_time += service
            job.completion_time = self.sim.now
            if self.speed != 1.0:
                job.processing_time = service
            self.jobs_completed += 1
        # Start the next queued job before notifying, so simultaneous
        # re-dispatch (central queue) sees a consistent host state.
        self._start_next()
        if evicted:
            self.on_eviction(self, job)
        else:
            self.on_completion(self, job)
