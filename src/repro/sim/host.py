"""FCFS run-to-completion host machines.

The paper's architectural model (section 1.1): each host machine runs the
jobs dispatched to it in first-come-first-served order, exactly one job at
a time, with no preemption and no time-sharing.  A host therefore has a
single scalar of hidden state — the *virtual completion time* ``V``: the
instant it will go idle if nothing else arrives.  Remaining work at time
``t`` is ``max(0, V − t)``, which is what the Least-Work-Left dispatcher
inspects.

Hosts optionally enforce a processing *limit* (kill the running job after
``limit`` seconds of service).  The base model never uses this; the TAGS
extension (task assignment by guessing size, the paper's ref [10]) kills
jobs that exceed a host's size cutoff and restarts them from scratch on
the next host.

Hosts can also *crash* and be *repaired* (fault injection, see
:mod:`repro.sim.faults`): :meth:`FCFSHost.crash` takes the host down,
cancelling the in-flight completion event and either keeping the running
job's progress for a later resume or surrendering it (and the queue) to
the server, and :meth:`FCFSHost.repair` brings it back, restarting
service from the retained progress.  The failure *semantics* — lost,
re-dispatch or resume — live in the server; the host only implements the
mechanics.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from .engine import Simulator
from .events import EventHandle
from .jobs import Job

__all__ = ["FCFSHost"]


class FCFSHost:
    """One FCFS run-to-completion host attached to a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The event engine driving this host.
    host_id:
        Index of this host within the server.
    on_completion:
        Called as ``on_completion(host, job)`` when a job finishes.
    on_eviction:
        Called as ``on_eviction(host, job)`` when a job hits ``limit``
        and is killed (TAGS).  If ``None`` and a limit is set, eviction
        raises — the server must opt in.
    limit:
        Maximum service a job may receive here before being killed
        (``math.inf`` disables killing).
    speed:
        Processing speed: a job of nominal size ``x`` occupies this host
        for ``x/speed`` seconds (1.0 = the paper's identical hosts).
    """

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        on_completion: Callable[["FCFSHost", Job], None],
        on_eviction: Callable[["FCFSHost", Job], None] | None = None,
        limit: float = math.inf,
        speed: float = 1.0,
    ) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.sim = sim
        self.host_id = host_id
        self.on_completion = on_completion
        self.on_eviction = on_eviction
        self.limit = limit
        self.speed = float(speed)
        self.queue: deque[Job] = deque()
        self.running: Job | None = None
        self._virtual_completion = 0.0
        #: Total useful service delivered (for per-host load accounting).
        self.busy_time = 0.0
        #: Total service delivered to jobs later evicted (wasted).
        self.wasted_time = 0.0
        self.jobs_completed = 0
        #: False while crashed (fault injection); down hosts accept no work.
        self.up = True
        #: Job whose progress survived a crash, waiting for repair
        #: ("resume" failure semantics).
        self.interrupted: Job | None = None
        self._interrupted_done = 0.0
        self._finish_handle: EventHandle | None = None
        self._leg_start = 0.0
        self._running_done = 0.0
        self._submit_seq = 0

    # ------------------------------------------------------------------
    # state inspected by dispatch policies
    # ------------------------------------------------------------------

    @property
    def n_in_system(self) -> int:
        """Jobs queued plus the one running (Shortest-Queue's metric).

        A job interrupted by a crash and awaiting resume still occupies
        the host and counts here.
        """
        return (
            len(self.queue)
            + (1 if self.running is not None else 0)
            + (1 if self.interrupted is not None else 0)
        )

    def work_left(self, now: float) -> float:
        """Unfinished work at ``now`` assuming true sizes (LWL's metric)."""
        return max(0.0, self._virtual_completion - now)

    @property
    def virtual_completion(self) -> float:
        """Unclamped instant the host goes idle (strict-mode inspection)."""
        return self._virtual_completion

    @property
    def idle(self) -> bool:
        """No work anywhere on the host (a down host may still hold work)."""
        return (
            self.running is None and not self.queue and self.interrupted is None
        )

    # ------------------------------------------------------------------
    # job flow
    # ------------------------------------------------------------------

    def _service_here(self, job: Job) -> float:
        """Wall-clock time ``job`` will occupy this host (up to eviction)."""
        return min(job.size, self.limit) / self.speed

    def submit(self, job: Job) -> None:
        """Enqueue ``job``; starts immediately if the host is idle."""
        if not self.up:
            raise RuntimeError(
                f"cannot submit job {job.index} to host {self.host_id}: host is down"
            )
        job.assigned_host = self.host_id
        job.host_seq = self._submit_seq
        self._submit_seq += 1
        now = self.sim.now
        self._virtual_completion = max(self._virtual_completion, now) + self._service_here(job)
        self.queue.append(job)
        if self.running is None:
            self._start_next()

    def _start_next(self) -> None:
        assert self.running is None
        if not self.queue:
            return
        job = self.queue.popleft()
        job.start_time = self.sim.now
        self._begin(job, done=0.0)

    def _begin(self, job: Job, done: float) -> None:
        """Put ``job`` in service with ``done`` work units already banked."""
        self.running = job
        self._running_done = done
        self._leg_start = self.sim.now
        leg = (min(job.size, self.limit) - done) / self.speed
        self._finish_handle = self.sim.schedule_after(leg, self._finish, job, leg)

    def _finish(self, job: Job, service: float) -> None:
        assert self.running is job
        self.running = None
        self._finish_handle = None
        evicted = job.size > self.limit
        if evicted:
            self.wasted_time += service
            job.wasted_work += service
            job.restarts += 1
            if self.on_eviction is None:
                raise RuntimeError(
                    f"host {self.host_id} evicted job {job.index} but no "
                    "on_eviction handler is installed"
                )
        else:
            self.busy_time += service
            job.completion_time = self.sim.now
            if self.speed != 1.0:
                # Total occupancy across every resumed leg; service alone
                # would under-count a job interrupted by a crash.
                job.processing_time = job.size / self.speed
            self.jobs_completed += 1
        # Start the next queued job before notifying, so simultaneous
        # re-dispatch (central queue) sees a consistent host state.
        self._start_next()
        if evicted:
            self.on_eviction(self, job)
        else:
            self.on_completion(self, job)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def crash(self, keep_progress: bool) -> tuple[Job | None, float, list[Job]]:
        """Take the host down; cancel the in-flight completion.

        Parameters
        ----------
        keep_progress:
            ``True`` ("resume" semantics): the running job's progress is
            banked on the host and the queue stays put, waiting for
            :meth:`repair`.  ``False`` ("lost"/"redispatch"): the running
            job's partial service is wasted and both it and the queued
            jobs are surrendered to the caller.

        Returns
        -------
        tuple
            ``(victim, work_done, drained)`` — the job that was in
            service (``None`` if the host was idle), the work units it
            had completed, and the queued jobs removed from the host
            (always empty when ``keep_progress``).
        """
        if not self.up:
            raise RuntimeError(f"host {self.host_id} is already down")
        self.up = False
        victim = self.running
        done = 0.0
        if victim is not None:
            assert self._finish_handle is not None
            self._finish_handle.cancel()
            self._finish_handle = None
            self.running = None
            elapsed = self.sim.now - self._leg_start
            done = self._running_done + elapsed * self.speed
            if keep_progress:
                self.busy_time += elapsed
                self.interrupted = victim
                self._interrupted_done = done
            else:
                self.wasted_time += elapsed
                victim.wasted_work += elapsed * self.speed
        drained: list[Job] = []
        if keep_progress:
            return victim, done, drained
        drained = list(self.queue)
        self.queue.clear()
        # Nothing is left on the host; remaining work drops to zero.
        self._virtual_completion = self.sim.now
        return victim, done, drained

    def repair(self) -> Job | None:
        """Bring the host back up; resume or restart service.

        Returns the job that resumed from banked progress, if any (so the
        server can count the interruption against it).
        """
        if self.up:
            raise RuntimeError(f"host {self.host_id} is not down")
        self.up = True
        now = self.sim.now
        resumed = self.interrupted
        # Remaining work moved wholesale past the repair: recompute the
        # virtual completion instead of patching it leg by leg.
        backlog = sum(self._service_here(j) for j in self.queue)
        if resumed is not None:
            self.interrupted = None
            done = self._interrupted_done
            self._interrupted_done = 0.0
            backlog += (min(resumed.size, self.limit) - done) / self.speed
            self._virtual_completion = now + backlog
            self._begin(resumed, done=done)
        else:
            self._virtual_completion = now + backlog
            self._start_next()
        return resumed
