"""High-level simulation entry point.

:func:`simulate` is the one call users need: it routes each policy to the
fastest correct backend (vectorised kernels for everything except the
SJF central queue, which needs the event engine) and returns a
:class:`~repro.sim.metrics.SimulationResult`.
"""

from __future__ import annotations

import numpy as np

from ..workloads.distributions import _as_rng
from ..workloads.traces import Trace
from .fast import simulate_fast
from .metrics import SimulationResult
from .server import DistributedServer

__all__ = ["simulate"]


def simulate(
    trace: Trace,
    policy,
    n_hosts: int,
    rng: np.random.Generator | int | None = None,
    size_estimates: np.ndarray | None = None,
    backend: str = "auto",
    host_speeds=None,
    strict: bool | None = None,
) -> SimulationResult:
    """Replay ``trace`` through ``policy`` on ``n_hosts`` hosts.

    Parameters
    ----------
    trace:
        Job arrival epochs and service requirements.
    policy:
        Any task assignment policy (see :mod:`repro.core.policies`).
    n_hosts:
        Number of identical FCFS run-to-completion hosts.
    rng:
        Seed or generator for policy randomness; the same seed yields the
        same result on either backend for deterministic policies.
    size_estimates:
        Optional per-job size estimates shown to the dispatcher instead of
        the true sizes (section-7 robustness studies).
    backend:
        ``"auto"`` (fast kernels when possible), ``"fast"`` (force; an
        error for policies only the event engine implements) or
        ``"event"`` (force the reference engine).
    strict:
        ``True`` runs the event engine with the runtime sanitizer,
        asserting the engine invariants after every event (see
        docs/DEVTOOLS.md).  Implies ``backend="event"``; combining with
        ``backend="fast"`` is an error.  ``None`` (default) defers to
        the ``REPRO_SIM_STRICT`` environment variable whenever the
        event engine is selected.
    """
    if backend not in ("auto", "fast", "event"):
        raise ValueError(f"unknown backend {backend!r}")
    if strict and backend == "fast":
        raise ValueError(
            "strict mode runs on the event engine; drop backend='fast'"
        )
    rng = _as_rng(rng)
    kind = getattr(policy, "kind", None)
    import numpy as _np

    hetero = host_speeds is not None and not _np.all(
        _np.asarray(host_speeds, dtype=float) == 1.0
    )
    needs_event = (
        kind == "central" and getattr(policy, "discipline", "fcfs") != "fcfs"
    ) or (hetero and kind == "central")
    if backend == "event" or strict or (backend == "auto" and needs_event):
        server = DistributedServer(
            n_hosts, policy, rng, host_speeds=host_speeds, strict=strict
        )
        return server.run_trace(trace, size_estimates=size_estimates)
    return simulate_fast(
        trace, policy, n_hosts, rng=rng, size_estimates=size_estimates,
        host_speeds=host_speeds,
    )
