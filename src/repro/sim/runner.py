"""High-level simulation entry point.

:func:`simulate` is the one call users need: it routes each policy to the
fastest correct backend (vectorised kernels for everything except the
SJF central queue, which needs the event engine, and any run with fault
injection) and returns a :class:`~repro.sim.metrics.SimulationResult`.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from ..workloads.distributions import _as_rng
from ..workloads.traces import Trace
from .engine import InvariantViolation
from .fast import simulate_fast
from .faults import FaultModel
from .metrics import SimulationResult
from .server import DistributedServer

__all__ = ["simulate"]


def simulate(
    trace: Trace,
    policy,
    n_hosts: int,
    rng: np.random.Generator | int | None = None,
    size_estimates: np.ndarray | None = None,
    backend: str = "auto",
    host_speeds=None,
    strict: bool | None = None,
    faults: FaultModel | None = None,
    on_kernel_failure: str = "raise",
) -> SimulationResult:
    """Replay ``trace`` through ``policy`` on ``n_hosts`` hosts.

    Parameters
    ----------
    trace:
        Job arrival epochs and service requirements.
    policy:
        Any task assignment policy (see :mod:`repro.core.policies`).
    n_hosts:
        Number of identical FCFS run-to-completion hosts.
    rng:
        Seed or generator for policy randomness; the same seed yields the
        same result on either backend for deterministic policies.
    size_estimates:
        Optional per-job size estimates shown to the dispatcher instead of
        the true sizes (section-7 robustness studies).
    backend:
        ``"auto"`` (fast kernels when possible), ``"fast"`` (force; an
        error for policies only the event engine implements) or
        ``"event"`` (force the reference engine).
    strict:
        ``True`` runs the event engine with the runtime sanitizer,
        asserting the engine invariants after every event (see
        docs/DEVTOOLS.md).  Implies ``backend="event"``; combining with
        ``backend="fast"`` is an error.  ``None`` (default) defers to
        the ``REPRO_SIM_STRICT`` environment variable whenever the
        event engine is selected.
    faults:
        Optional :class:`~repro.sim.faults.FaultModel` enabling per-host
        crash/repair processes (see docs/ROBUSTNESS.md).  Fault
        injection only exists in the event engine, so this implies
        ``backend="event"``; combining with ``backend="fast"`` is an
        error.
    on_kernel_failure:
        ``"raise"`` (default) propagates a fast-kernel
        :class:`~repro.sim.engine.InvariantViolation`;  ``"fallback"``
        instead warns, re-runs the point on the reference event engine
        and tags the result's ``backend`` as ``"event-fallback"`` — the
        graceful-degradation mode long sweeps use so one bad point
        cannot kill hours of work.
    """
    if backend not in ("auto", "fast", "event"):
        raise ValueError(f"unknown backend {backend!r}")
    if on_kernel_failure not in ("raise", "fallback"):
        raise ValueError(f"unknown on_kernel_failure {on_kernel_failure!r}")
    if strict and backend == "fast":
        raise ValueError(
            "strict mode runs on the event engine; drop backend='fast'"
        )
    if faults is not None and backend == "fast":
        raise ValueError(
            "fault injection runs on the event engine; drop backend='fast'"
        )
    seed_arg = rng
    rng = _as_rng(rng)
    kind = getattr(policy, "kind", None)
    import numpy as _np

    hetero = host_speeds is not None and not _np.all(
        _np.asarray(host_speeds, dtype=float) == 1.0
    )
    needs_event = (
        kind == "central" and getattr(policy, "discipline", "fcfs") != "fcfs"
    ) or (hetero and kind == "central")
    if (
        backend == "event"
        or strict
        or faults is not None
        or (backend == "auto" and needs_event)
    ):
        server = DistributedServer(
            n_hosts, policy, rng, host_speeds=host_speeds, strict=strict,
            faults=faults,
        )
        return server.run_trace(trace, size_estimates=size_estimates)
    try:
        return simulate_fast(
            trace, policy, n_hosts, rng=rng, size_estimates=size_estimates,
            host_speeds=host_speeds,
        )
    except InvariantViolation as exc:
        if on_kernel_failure != "fallback" or backend == "fast":
            raise
        warnings.warn(
            f"fast kernel failed for {getattr(policy, 'name', policy)!r} "
            f"({exc}); falling back to the event engine for this point",
            RuntimeWarning,
            stacklevel=2,
        )
        # Re-derive the RNG from the caller's seed: the failed fast
        # attempt may have consumed draws, and the fallback must match a
        # direct event-engine run with the same seed.  (A caller-supplied
        # Generator object cannot be rewound; pass a seed for exact
        # cross-validation of fallback rows.)
        server = DistributedServer(
            n_hosts, policy, _as_rng(seed_arg), host_speeds=host_speeds,
            strict=strict,
        )
        result = server.run_trace(trace, size_estimates=size_estimates)
        return dataclasses.replace(result, backend="event-fallback")
