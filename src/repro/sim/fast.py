"""Vectorised / tight-loop simulation kernels for large parameter sweeps.

The event-driven engine (:mod:`repro.sim.engine`) is the legible reference
implementation; this module is the optimised path, exploiting two facts
about the paper's architectural model (FCFS, run-to-completion, one job at
a time per host):

1. **A host is one number.**  The entire state of a FCFS run-to-completion
   host is its virtual completion time ``V``; remaining work at time ``t``
   is ``max(0, V − t)``.

2. **Static policies decouple the hosts.**  Once Random/Round-Robin/SITA
   assignments are fixed, each host is an independent FCFS queue and the
   per-job waits follow the Lindley recursion, which vectorises exactly:
   with ``U_m = s_m − (t_{m+1} − t_m)`` and prefix sums ``P``, the wait of
   job ``j`` is ``P_{j−1} − min(P_0, …, P_{j−1})`` (:func:`fcfs_waits`).

3. **Least-Work-Left is the central queue.**  The paper (section 3.1,
   citing [11]) notes LWL ≡ Central-Queue; both reduce to an ``h``-server
   Kiefer–Wolfowitz recursion, implemented here as an ``O(n log h)`` heap
   of virtual completion times (:func:`lwl_waits`).

Every kernel is cross-validated against the event engine in
``tests/sim/test_fast_vs_engine.py`` — per-job waiting times must agree to
floating-point accuracy.  (Host *identities* may differ on exact ties,
e.g. among simultaneously idle hosts; waits are unaffected.)
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..workloads.distributions import _as_rng
from ..workloads.traces import Trace
from .engine import InvariantViolation
from .metrics import SimulationResult, observe_result

__all__ = [
    "fcfs_waits",
    "lwl_waits",
    "estimated_lwl_waits",
    "shortest_queue_waits",
    "tags_waits",
    "simulate_fast",
]


def _check_kernel_output(policy_name: str, waits: np.ndarray) -> None:
    """Sanity-check a kernel's waits before they become a result.

    The vectorised kernels trade legibility for speed; if one ever
    produces a non-finite or materially negative wait (a kernel bug or a
    pathological input), raise
    :class:`~repro.sim.engine.InvariantViolation` so callers can fall
    back to the reference event engine for that point instead of
    aborting a multi-hour sweep (see ``repro.sim.runner.simulate``'s
    ``on_kernel_failure``).
    """
    if not np.all(np.isfinite(waits)):
        raise InvariantViolation(
            f"fast kernel produced non-finite waits for {policy_name}"
        )
    if waits.size and float(np.min(waits)) < -1e-6:
        raise InvariantViolation(
            f"fast kernel produced negative waits for {policy_name} "
            f"(min {float(np.min(waits)):.3e})"
        )


def fcfs_waits(arrival_times: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Waiting times of one FCFS single-server queue (vectorised Lindley).

    ``W_1 = 0`` and ``W_{j+1} = max(0, W_j + s_j − (t_{j+1} − t_j))``;
    unrolled, ``W_j = P_{j−1} − min_{k ≤ j−1} P_k`` with
    ``P_j = Σ_{m ≤ j} (s_m − gap_m)``, computed with ``cumsum`` +
    ``minimum.accumulate`` — no Python loop.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    n = t.size
    if n == 0:
        return np.empty(0)
    u = s[:-1] - np.diff(t)
    prefix = np.concatenate(([0.0], np.cumsum(u)))
    return prefix - np.minimum.accumulate(prefix)


def lwl_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    n_hosts: int,
    host_speeds: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and host assignments under Least-Work-Left / Central-Queue.

    Kiefer–Wolfowitz via a min-heap of per-host virtual completion times:
    each job is matched with the earliest-free host, ``O(n log h)``.
    With ``host_speeds`` the popped host's duration is ``size/speed`` —
    LWL's choice (min remaining work, i.e. min V) is unchanged, so the
    heap remains exact.  (The LWL ≡ Central-Queue equivalence holds only
    for identical hosts.)

    Returns ``(waits, hosts)``; on ties among idle hosts the heap order
    (not the lowest index) picks the host — waits are identical either way.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    speeds = np.ones(n_hosts) if host_speeds is None else np.asarray(host_speeds, float)
    n = t.size
    if np.all(speeds == 1.0):
        # Identical hosts: tie-breaks cannot affect waits, so the
        # O(n log h) earliest-free heap is exact.  The loop runs on
        # plain Python floats (``tolist``) with the heap functions bound
        # locally: indexing a NumPy array in a tight loop boxes a fresh
        # np.float64 per access and re-resolves attributes, roughly
        # doubling the cost of the recursion (timings in
        # docs/PERFORMANCE.md).  Float arithmetic is IEEE-754 either
        # way, so the waits are bit-identical.
        t_list = t.tolist()
        s_list = s.tolist()
        waits_list = [0.0] * n
        hosts_list = [0] * n
        heappop, heappush = heapq.heappop, heapq.heappush
        free = [(0.0, i) for i in range(n_hosts)]  # already a valid heap
        for j in range(n):
            tj = t_list[j]
            v, i = heappop(free)
            start = tj if v < tj else v
            waits_list[j] = start - tj
            hosts_list[j] = i
            heappush(free, (start + s_list[j], i))
        return np.asarray(waits_list), np.asarray(hosts_list, dtype=int)
    waits = np.empty(n)
    hosts = np.empty(n, dtype=int)
    # Heterogeneous speeds: which of several idle hosts is chosen now
    # changes the job's duration and every later wait, so replicate the
    # policy's exact rule — argmin of work-left, lowest index on ties.
    v = np.zeros(n_hosts)
    for j in range(n):
        tj = t[j]
        i = int(np.argmin(np.maximum(v - tj, 0.0)))
        wait = v[i] - tj
        if wait < 0.0:
            wait = 0.0
        waits[j] = wait
        hosts[j] = i
        v[i] = tj + wait + s[j] / speeds[i]
    return waits, hosts


def shortest_queue_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    n_hosts: int,
    host_speeds: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and assignments under Shortest-Queue (fewest jobs in system).

    Per host we keep the virtual completion time and a FIFO of departure
    epochs (monotone, so expiry is an amortised O(1) pop).  Ties go to the
    lowest host index, matching :class:`ShortestQueuePolicy`.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    speeds = np.ones(n_hosts) if host_speeds is None else np.asarray(host_speeds, float)
    n = t.size
    # Python-float loop state throughout (see the identical-host branch
    # of :func:`lwl_waits`): pre-extracted lists avoid per-iteration
    # np.float64 boxing, ``enumerate`` over the deque list avoids an
    # index lookup per host, and the per-host expiry loop pops on a
    # locally bound deque.  Values are bit-identical to the NumPy
    # indexing version.
    t_list = t.tolist()
    s_list = s.tolist()
    speeds_list = speeds.tolist()
    waits_list = [0.0] * n
    hosts_list = [0] * n
    v = [0.0] * n_hosts
    departures: list[deque[float]] = [deque() for _ in range(n_hosts)]
    for j in range(n):
        tj = t_list[j]
        best = 0
        best_count = -1
        for i, d in enumerate(departures):
            while d and d[0] <= tj:
                d.popleft()
            count = len(d)
            if best_count < 0 or count < best_count:
                best, best_count = i, count
        wait = v[best] - tj
        if wait < 0.0:
            wait = 0.0
        waits_list[j] = wait
        hosts_list[j] = best
        done = tj + wait + s_list[j] / speeds_list[best]
        v[best] = done
        departures[best].append(done)
    return np.asarray(waits_list), np.asarray(hosts_list, dtype=int)


def estimated_lwl_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    estimates: np.ndarray,
    n_hosts: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and assignments under estimate-driven LWL (paper §1.2 practice).

    Routing uses a believed per-host backlog maintained from the size
    *estimates*; the realised waits use the true sizes.  With
    ``estimates == sizes`` this is exactly :func:`lwl_waits` up to
    tie-breaks (ties go to the lowest host index here).
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    e = np.asarray(estimates, dtype=float)
    if not (t.shape == s.shape == e.shape) or t.ndim != 1:
        raise ValueError("arrival_times, sizes and estimates must match")
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    n = t.size
    waits = np.empty(n)
    hosts = np.empty(n, dtype=int)
    believed = np.zeros(n_hosts)
    true_v = np.zeros(n_hosts)
    for j in range(n):
        tj = t[j]
        # argmin of believed work-left; np.argmin takes the lowest index
        # on ties, matching EstimatedLWLPolicy.choose_host.
        i = int(np.argmin(np.maximum(believed - tj, 0.0)))
        believed[i] = max(believed[i], tj) + e[j]
        wait = true_v[i] - tj
        if wait < 0.0:
            wait = 0.0
        waits[j] = wait
        hosts[j] = i
        true_v[i] = tj + wait + s[j]
    return waits, hosts


def tags_waits(
    arrival_times: np.ndarray, sizes: np.ndarray, cutoffs
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Responses under TAGS as a cascade of Lindley recursions.

    Host ``i`` serves, FCFS, everything still alive there, for at most
    ``cutoffs[i]`` seconds per job.  Because FCFS completions leave a host
    in arrival order, the evicted jobs arrive at the next host already
    time-sorted, so each level is one vectorised :func:`fcfs_waits` pass —
    no event engine needed.

    Returns ``(response_times, final_hosts, wasted_work)``, all indexed by
    the original job order.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    limits = list(np.asarray(cutoffs, dtype=float)) + [np.inf]
    if any(b <= a for a, b in zip(limits, limits[1:])):
        raise ValueError(f"cutoffs must be strictly increasing, got {cutoffs}")
    n = t.size
    idx = np.arange(n)
    level_arrivals = t
    completion = np.empty(n)
    final_host = np.empty(n, dtype=int)
    wasted = np.zeros(n)
    for host, limit in enumerate(limits):
        service_here = np.minimum(s[idx], limit)
        waits = fcfs_waits(level_arrivals, service_here)
        done_at = level_arrivals + waits + service_here
        finished = s[idx] <= limit
        completion[idx[finished]] = done_at[finished]
        final_host[idx[finished]] = host
        wasted[idx[~finished]] += limit
        idx = idx[~finished]
        level_arrivals = done_at[~finished]
        if idx.size == 0:
            break
    assert idx.size == 0, "last TAGS host must be unlimited"
    return completion - t, final_host, wasted


def _static_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    assignment: np.ndarray,
    n_hosts: int,
    speeds: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and durations given a fixed host assignment (Lindley per host)."""
    waits = np.empty(arrival_times.size)
    durations = np.empty(arrival_times.size)
    for i in range(n_hosts):
        mask = assignment == i
        if np.any(mask):
            dur = sizes[mask] / speeds[i]
            waits[mask] = fcfs_waits(arrival_times[mask], dur)
            durations[mask] = dur
    return waits, durations


def simulate_fast(
    trace: Trace,
    policy,
    n_hosts: int,
    rng: np.random.Generator | int | None = None,
    size_estimates: np.ndarray | None = None,
    host_speeds=None,
) -> SimulationResult:
    """Run ``trace`` through ``policy`` on ``n_hosts`` hosts, fast.

    Drop-in equivalent of
    ``DistributedServer(n_hosts, policy, rng).run_trace(trace)`` for every
    policy except the SJF central queue (whose reordering needs the event
    engine — use :func:`repro.sim.runner.simulate`, which routes
    automatically).

    ``host_speeds`` enables heterogeneous hosts (a job of size x occupies
    a speed-v host for x/v seconds) for the static, LWL, Shortest-Queue
    and grouped-SITA kernels; the central queue loses its LWL equivalence
    on unequal speeds and TAGS keeps its identical-host semantics — both
    reject speeds here.
    """
    rng = _as_rng(rng)
    policy.reset(n_hosts, rng)
    t = trace.arrival_times - trace.arrival_times[0]
    s = trace.service_times
    if size_estimates is not None:
        est = np.asarray(size_estimates, dtype=float)
        if est.shape != s.shape:
            raise ValueError("size_estimates must match the trace length")
    else:
        est = s
    if host_speeds is None:
        speeds = np.ones(n_hosts)
    else:
        speeds = np.asarray(host_speeds, dtype=float)
        if speeds.shape != (n_hosts,):
            raise ValueError(f"host_speeds must have {n_hosts} entries")
        if np.any(speeds <= 0):
            raise ValueError("host speeds must be positive")
    uniform = bool(np.all(speeds == 1.0))

    kind = getattr(policy, "kind", None)
    hint = getattr(policy, "fast_hint", None)
    if kind == "central" and getattr(policy, "discipline", "fcfs") != "fcfs":
        raise ValueError(
            "only the FCFS central queue reduces to the LWL recursion; "
            "use repro.sim.runner.simulate for other disciplines"
        )
    if not uniform and (
        kind in ("central", "tags") or hint == "lwl-est"
    ):
        raise ValueError(
            "host_speeds are not supported for this policy: the central "
            "queue's LWL equivalence and TAGS' cutoff semantics assume "
            "identical hosts, and estimate-driven LWL has no speed model"
        )
    durations = None
    if kind == "static":
        assignment = np.asarray(policy.assign_batch(est, rng), dtype=int)
        if assignment.shape != s.shape:
            raise ValueError("assign_batch returned wrong-length assignment")
        if assignment.min() < 0 or assignment.max() >= n_hosts:
            raise ValueError("assign_batch returned out-of-range host index")
        waits, durations = _static_waits(t, s, assignment, n_hosts, speeds)
    elif kind == "central" or hint == "lwl":
        waits, assignment = lwl_waits(t, s, n_hosts, host_speeds=speeds)
        durations = s / speeds[assignment]
    elif hint == "sq":
        waits, assignment = shortest_queue_waits(t, s, n_hosts, host_speeds=speeds)
        durations = s / speeds[assignment]
    elif hint == "lwl-est":
        waits, assignment = estimated_lwl_waits(t, s, est, n_hosts)
    elif hint == "grouped":
        waits = np.empty(s.size)
        assignment = np.empty(s.size, dtype=int)
        short = est <= policy.cutoff
        n_short = policy.n_short_hosts
        for mask, group_hosts, offset in (
            (short, n_short, 0),
            (~short, n_hosts - n_short, n_short),
        ):
            if np.any(mask):
                w, h = lwl_waits(
                    t[mask], s[mask], group_hosts,
                    host_speeds=speeds[offset : offset + group_hosts],
                )
                waits[mask] = w
                assignment[mask] = h + offset
        durations = s / speeds[assignment]
    elif kind == "tags":
        responses, assignment, wasted = tags_waits(t, s, policy.cutoffs)
        # response − size cancels to float noise for zero-wait jobs on
        # long horizons; clamp (real violations would be far larger).
        tags_w = np.maximum(responses - s, 0.0)
        _check_kernel_output(getattr(policy, "name", type(policy).__name__), tags_w)
        result = SimulationResult(
            policy_name=getattr(policy, "name", type(policy).__name__),
            n_hosts=n_hosts,
            arrival_times=t,
            sizes=s,
            wait_times=tags_w,
            host_assignments=assignment,
            wasted_work=wasted,
            backend="fast",
        )
        observe_result(result)
        return result
    else:
        raise ValueError(f"unsupported policy kind={kind!r}, fast_hint={hint!r}")

    _check_kernel_output(getattr(policy, "name", type(policy).__name__), waits)
    result = SimulationResult(
        policy_name=getattr(policy, "name", type(policy).__name__),
        n_hosts=n_hosts,
        arrival_times=t,
        sizes=s,
        wait_times=waits,
        host_assignments=assignment,
        processing_times=None if uniform else durations,
        backend="fast",
    )
    observe_result(result)
    return result
