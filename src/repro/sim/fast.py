"""Vectorised / tight-loop simulation kernels for large parameter sweeps.

The event-driven engine (:mod:`repro.sim.engine`) is the legible reference
implementation; this module is the optimised path, exploiting two facts
about the paper's architectural model (FCFS, run-to-completion, one job at
a time per host):

1. **A host is one number.**  The entire state of a FCFS run-to-completion
   host is its virtual completion time ``V``; remaining work at time ``t``
   is ``max(0, V − t)``.

2. **Static policies decouple the hosts.**  Once Random/Round-Robin/SITA
   assignments are fixed, each host is an independent FCFS queue and the
   per-job waits follow the Lindley recursion, which vectorises exactly:
   with ``U_m = s_m − (t_{m+1} − t_m)`` and prefix sums ``P``, the wait of
   job ``j`` is ``P_{j−1} − min(P_0, …, P_{j−1})`` (:func:`fcfs_waits`).

3. **Least-Work-Left is the central queue.**  The paper (section 3.1,
   citing [11]) notes LWL ≡ Central-Queue; both reduce to an ``h``-server
   Kiefer–Wolfowitz recursion, implemented here as an ``O(n log h)`` heap
   of virtual completion times (:func:`lwl_waits`).

Every kernel is cross-validated against the event engine in
``tests/sim/test_fast_vs_engine.py`` — per-job waiting times must agree to
floating-point accuracy.  (Host *identities* may differ on exact ties,
e.g. among simultaneously idle hosts; waits are unaffected.)

The sequential recursions (LWL, Shortest-Queue, estimated LWL, the SITA
subset-Lindley scan) additionally dispatch to the certified
``numba.njit`` tier (:mod:`repro.sim.compiled`) when it is selected —
*after* this module's validation, so argument checking and strict-mode
contract enforcement stay here.  The compiled ports are bit-identical,
which ``repro audit`` cross-checks per experiment.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..workloads.distributions import _as_rng
from ..workloads.traces import Trace
from . import compiled as _compiled
from .contract import kernel_contract
from .engine import InvariantViolation
from .metrics import SimulationResult, observe_result

__all__ = [
    "fcfs_waits",
    "lwl_waits",
    "estimated_lwl_waits",
    "shortest_queue_waits",
    "tags_waits",
    "simulate_fast",
    "SitaScanKernel",
    "SitaScanResult",
    "sita_scan",
    "SERVE_DISPATCH_MODES",
    "serve_dispatch_batch",
]


def _check_kernel_output(policy_name: str, waits: np.ndarray) -> None:
    """Sanity-check a kernel's waits before they become a result.

    The vectorised kernels trade legibility for speed; if one ever
    produces a non-finite or materially negative wait (a kernel bug or a
    pathological input), raise
    :class:`~repro.sim.engine.InvariantViolation` so callers can fall
    back to the reference event engine for that point instead of
    aborting a multi-hour sweep (see ``repro.sim.runner.simulate``'s
    ``on_kernel_failure``).
    """
    if not np.all(np.isfinite(waits)):
        raise InvariantViolation(
            f"fast kernel produced non-finite waits for {policy_name}"
        )
    if waits.size and float(np.min(waits)) < -1e-6:
        raise InvariantViolation(
            f"fast kernel produced negative waits for {policy_name} "
            f"(min {float(np.min(waits)):.3e})"
        )


@kernel_contract(
    shapes={"arrival_times": ("n",), "sizes": ("n",), "return": ("n",)},
    dtypes={"arrival_times": "float64", "sizes": "float64", "return": "float64"},
    writes=(),
    contiguous=("arrival_times", "sizes"),
)
def fcfs_waits(arrival_times: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Waiting times of one FCFS single-server queue (vectorised Lindley).

    ``W_1 = 0`` and ``W_{j+1} = max(0, W_j + s_j − (t_{j+1} − t_j))``;
    unrolled, ``W_j = P_{j−1} − min_{k ≤ j−1} P_k`` with
    ``P_j = Σ_{m ≤ j} (s_m − gap_m)``, computed with ``cumsum`` +
    ``minimum.accumulate`` — no Python loop.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    n = t.size
    if n == 0:
        return np.empty(0)
    u = s[:-1] - np.diff(t)
    prefix = np.concatenate(([0.0], np.cumsum(u)))
    return prefix - np.minimum.accumulate(prefix)


@kernel_contract(
    shapes={
        "arrival_times": ("n",),
        "sizes": ("n",),
        "host_speeds": ("h",),
        "return[0]": ("n",),
        "return[1]": ("n",),
    },
    dtypes={
        "arrival_times": "float64",
        "sizes": "float64",
        "host_speeds": "float64",
        "return[0]": "float64",
        "return[1]": "int64",
    },
    writes=(),
    contiguous=("arrival_times", "sizes"),
)
def lwl_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    n_hosts: int,
    host_speeds: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and host assignments under Least-Work-Left / Central-Queue.

    Kiefer–Wolfowitz via a min-heap of per-host virtual completion times:
    each job is matched with the earliest-free host, ``O(n log h)``.
    With ``host_speeds`` the popped host's duration is ``size/speed`` —
    LWL's choice (min remaining work, i.e. min V) is unchanged, so the
    heap remains exact.  (The LWL ≡ Central-Queue equivalence holds only
    for identical hosts.)

    Returns ``(waits, hosts)``; on ties among idle hosts the heap order
    (not the lowest index) picks the host — waits are identical either way.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    speeds = np.ones(n_hosts) if host_speeds is None else np.asarray(host_speeds, float)
    n = t.size
    fn = _compiled.dispatch("lwl_waits")
    if fn is not None:
        return fn(
            np.ascontiguousarray(t),
            np.ascontiguousarray(s),
            int(n_hosts),
            np.ascontiguousarray(speeds),
        )
    if np.all(speeds == 1.0):
        # Identical hosts: tie-breaks cannot affect waits, so the
        # O(n log h) earliest-free heap is exact.  The loop runs on
        # plain Python floats (``tolist``) with the heap functions bound
        # locally: indexing a NumPy array in a tight loop boxes a fresh
        # np.float64 per access and re-resolves attributes, roughly
        # doubling the cost of the recursion (timings in
        # docs/PERFORMANCE.md).  Float arithmetic is IEEE-754 either
        # way, so the waits are bit-identical.
        t_list = t.tolist()
        s_list = s.tolist()
        waits_list = [0.0] * n
        hosts_list = [0] * n
        heappop, heappush = heapq.heappop, heapq.heappush
        free = [(0.0, i) for i in range(n_hosts)]  # already a valid heap
        for j in range(n):
            tj = t_list[j]
            v, i = heappop(free)
            start = tj if v < tj else v
            waits_list[j] = start - tj
            hosts_list[j] = i
            heappush(free, (start + s_list[j], i))
        return np.asarray(waits_list), np.asarray(hosts_list, dtype=int)
    waits = np.empty(n)
    hosts = np.empty(n, dtype=int)
    # Heterogeneous speeds: which of several idle hosts is chosen now
    # changes the job's duration and every later wait, so replicate the
    # policy's exact rule — argmin of work-left, lowest index on ties.
    v = np.zeros(n_hosts)
    for j in range(n):
        tj = t[j]
        i = int(np.argmin(np.maximum(v - tj, 0.0)))
        wait = v[i] - tj
        if wait < 0.0:
            wait = 0.0
        waits[j] = wait
        hosts[j] = i
        v[i] = tj + wait + s[j] / speeds[i]
    return waits, hosts


@kernel_contract(
    shapes={
        "arrival_times": ("n",),
        "sizes": ("n",),
        "host_speeds": ("h",),
        "return[0]": ("n",),
        "return[1]": ("n",),
    },
    dtypes={
        "arrival_times": "float64",
        "sizes": "float64",
        "host_speeds": "float64",
        "return[0]": "float64",
        "return[1]": "int64",
    },
    writes=(),
    contiguous=("arrival_times", "sizes"),
)
def shortest_queue_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    n_hosts: int,
    host_speeds: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and assignments under Shortest-Queue (fewest jobs in system).

    Per host we keep the virtual completion time and a FIFO of departure
    epochs (monotone, so expiry is an amortised O(1) pop).  Ties go to the
    lowest host index, matching :class:`ShortestQueuePolicy`.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    speeds = np.ones(n_hosts) if host_speeds is None else np.asarray(host_speeds, float)
    n = t.size
    if n_hosts >= 1:
        fn = _compiled.dispatch("shortest_queue_waits")
        if fn is not None:
            return fn(
                np.ascontiguousarray(t),
                np.ascontiguousarray(s),
                int(n_hosts),
                np.ascontiguousarray(speeds),
            )
    # Python-float loop state throughout (see the identical-host branch
    # of :func:`lwl_waits`): pre-extracted lists avoid per-iteration
    # np.float64 boxing, ``enumerate`` over the deque list avoids an
    # index lookup per host, and the per-host expiry loop pops on a
    # locally bound deque.  Values are bit-identical to the NumPy
    # indexing version.
    t_list = t.tolist()
    s_list = s.tolist()
    speeds_list = speeds.tolist()
    waits_list = [0.0] * n
    hosts_list = [0] * n
    v = [0.0] * n_hosts
    departures: list[deque[float]] = [deque() for _ in range(n_hosts)]
    for j in range(n):
        tj = t_list[j]
        best = 0
        best_count = -1
        for i, d in enumerate(departures):
            while d and d[0] <= tj:
                d.popleft()
            count = len(d)
            if best_count < 0 or count < best_count:
                best, best_count = i, count
        wait = v[best] - tj
        if wait < 0.0:
            wait = 0.0
        waits_list[j] = wait
        hosts_list[j] = best
        done = tj + wait + s_list[j] / speeds_list[best]
        v[best] = done
        departures[best].append(done)
    return np.asarray(waits_list), np.asarray(hosts_list, dtype=int)


@kernel_contract(
    shapes={
        "arrival_times": ("n",),
        "sizes": ("n",),
        "estimates": ("n",),
        "return[0]": ("n",),
        "return[1]": ("n",),
    },
    dtypes={
        "arrival_times": "float64",
        "sizes": "float64",
        "estimates": "float64",
        "return[0]": "float64",
        "return[1]": "int64",
    },
    writes=(),
    contiguous=("arrival_times", "sizes", "estimates"),
)
def estimated_lwl_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    estimates: np.ndarray,
    n_hosts: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and assignments under estimate-driven LWL (paper §1.2 practice).

    Routing uses a believed per-host backlog maintained from the size
    *estimates*; the realised waits use the true sizes.  With
    ``estimates == sizes`` this is exactly :func:`lwl_waits` up to
    tie-breaks (ties go to the lowest host index here).
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    e = np.asarray(estimates, dtype=float)
    if not (t.shape == s.shape == e.shape) or t.ndim != 1:
        raise ValueError("arrival_times, sizes and estimates must match")
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    n = t.size
    fn = _compiled.dispatch("estimated_lwl_waits")
    if fn is not None:
        return fn(
            np.ascontiguousarray(t),
            np.ascontiguousarray(s),
            np.ascontiguousarray(e),
            int(n_hosts),
        )
    waits = np.empty(n)
    hosts = np.empty(n, dtype=int)
    believed = np.zeros(n_hosts)
    true_v = np.zeros(n_hosts)
    for j in range(n):
        tj = t[j]
        # argmin of believed work-left; np.argmin takes the lowest index
        # on ties, matching EstimatedLWLPolicy.choose_host.
        i = int(np.argmin(np.maximum(believed - tj, 0.0)))
        believed[i] = max(believed[i], tj) + e[j]
        wait = true_v[i] - tj
        if wait < 0.0:
            wait = 0.0
        waits[j] = wait
        hosts[j] = i
        true_v[i] = tj + wait + s[j]
    return waits, hosts


@kernel_contract(
    shapes={
        "arrival_times": ("n",),
        "sizes": ("n",),
        "return[0]": ("n",),
        "return[1]": ("n",),
        "return[2]": ("n",),
    },
    dtypes={
        "arrival_times": "float64",
        "sizes": "float64",
        "return[0]": "float64",
        "return[1]": "int64",
        "return[2]": "float64",
    },
    writes=(),
    contiguous=("arrival_times", "sizes"),
)
def tags_waits(
    arrival_times: np.ndarray, sizes: np.ndarray, cutoffs
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Responses under TAGS as a cascade of Lindley recursions.

    Host ``i`` serves, FCFS, everything still alive there, for at most
    ``cutoffs[i]`` seconds per job.  Because FCFS completions leave a host
    in arrival order, the evicted jobs arrive at the next host already
    time-sorted, so each level is one vectorised :func:`fcfs_waits` pass —
    no event engine needed.

    Returns ``(response_times, final_hosts, wasted_work)``, all indexed by
    the original job order.
    """
    t = np.asarray(arrival_times, dtype=float)
    s = np.asarray(sizes, dtype=float)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("arrival_times and sizes must be equal-length 1-D")
    limits = list(np.asarray(cutoffs, dtype=float)) + [np.inf]
    if any(b <= a for a, b in zip(limits, limits[1:])):
        raise ValueError(f"cutoffs must be strictly increasing, got {cutoffs}")
    n = t.size
    idx = np.arange(n)
    level_arrivals = t
    completion = np.empty(n)
    final_host = np.empty(n, dtype=int)
    wasted = np.zeros(n)
    for host, limit in enumerate(limits):
        service_here = np.minimum(s[idx], limit)
        waits = fcfs_waits(level_arrivals, service_here)
        done_at = level_arrivals + waits + service_here
        finished = s[idx] <= limit
        completion[idx[finished]] = done_at[finished]
        final_host[idx[finished]] = host
        wasted[idx[~finished]] += limit
        idx = idx[~finished]
        level_arrivals = done_at[~finished]
        if idx.size == 0:
            break
    assert idx.size == 0, "last TAGS host must be unlimited"
    return completion - t, final_host, wasted


def _static_waits(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    assignment: np.ndarray,
    n_hosts: int,
    speeds: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Waits and durations given a fixed host assignment (Lindley per host)."""
    waits = np.empty(arrival_times.size)
    durations = np.empty(arrival_times.size)
    for i in range(n_hosts):
        mask = assignment == i
        if np.any(mask):
            dur = sizes[mask] / speeds[i]
            waits[mask] = fcfs_waits(arrival_times[mask], dur)
            durations[mask] = dur
    return waits, durations


def simulate_fast(
    trace: Trace,
    policy,
    n_hosts: int,
    rng: np.random.Generator | int | None = None,
    size_estimates: np.ndarray | None = None,
    host_speeds=None,
) -> SimulationResult:
    """Run ``trace`` through ``policy`` on ``n_hosts`` hosts, fast.

    Drop-in equivalent of
    ``DistributedServer(n_hosts, policy, rng).run_trace(trace)`` for every
    policy except the SJF central queue (whose reordering needs the event
    engine — use :func:`repro.sim.runner.simulate`, which routes
    automatically).

    ``host_speeds`` enables heterogeneous hosts (a job of size x occupies
    a speed-v host for x/v seconds) for the static, LWL, Shortest-Queue
    and grouped-SITA kernels; the central queue loses its LWL equivalence
    on unequal speeds and TAGS keeps its identical-host semantics — both
    reject speeds here.
    """
    rng = _as_rng(rng)
    policy.reset(n_hosts, rng)
    t = trace.arrival_times - trace.arrival_times[0]
    s = trace.service_times
    if size_estimates is not None:
        est = np.asarray(size_estimates, dtype=float)
        if est.shape != s.shape:
            raise ValueError("size_estimates must match the trace length")
    else:
        est = s
    if host_speeds is None:
        speeds = np.ones(n_hosts)
    else:
        speeds = np.asarray(host_speeds, dtype=float)
        if speeds.shape != (n_hosts,):
            raise ValueError(f"host_speeds must have {n_hosts} entries")
        if np.any(speeds <= 0):
            raise ValueError("host speeds must be positive")
    uniform = bool(np.all(speeds == 1.0))

    kind = getattr(policy, "kind", None)
    hint = getattr(policy, "fast_hint", None)
    if kind == "central" and getattr(policy, "discipline", "fcfs") != "fcfs":
        raise ValueError(
            "only the FCFS central queue reduces to the LWL recursion; "
            "use repro.sim.runner.simulate for other disciplines"
        )
    if not uniform and (
        kind in ("central", "tags") or hint == "lwl-est"
    ):
        raise ValueError(
            "host_speeds are not supported for this policy: the central "
            "queue's LWL equivalence and TAGS' cutoff semantics assume "
            "identical hosts, and estimate-driven LWL has no speed model"
        )
    durations = None
    if kind == "static":
        assignment = np.asarray(policy.assign_batch(est, rng), dtype=int)
        if assignment.shape != s.shape:
            raise ValueError("assign_batch returned wrong-length assignment")
        if assignment.min() < 0 or assignment.max() >= n_hosts:
            raise ValueError("assign_batch returned out-of-range host index")
        waits, durations = _static_waits(t, s, assignment, n_hosts, speeds)
    elif kind == "central" or hint == "lwl":
        waits, assignment = lwl_waits(t, s, n_hosts, host_speeds=speeds)
        durations = s / speeds[assignment]
    elif hint == "sq":
        waits, assignment = shortest_queue_waits(t, s, n_hosts, host_speeds=speeds)
        durations = s / speeds[assignment]
    elif hint == "lwl-est":
        waits, assignment = estimated_lwl_waits(t, s, est, n_hosts)
    elif hint == "grouped":
        waits = np.empty(s.size)
        assignment = np.empty(s.size, dtype=int)
        short = est <= policy.cutoff
        n_short = policy.n_short_hosts
        for mask, group_hosts, offset in (
            (short, n_short, 0),
            (~short, n_hosts - n_short, n_short),
        ):
            if np.any(mask):
                w, h = lwl_waits(
                    t[mask], s[mask], group_hosts,
                    host_speeds=speeds[offset : offset + group_hosts],
                )
                waits[mask] = w
                assignment[mask] = h + offset
        durations = s / speeds[assignment]
    elif kind == "tags":
        responses, assignment, wasted = tags_waits(t, s, policy.cutoffs)
        # response − size cancels to float noise for zero-wait jobs on
        # long horizons; clamp (real violations would be far larger).
        tags_w = np.maximum(responses - s, 0.0)
        _check_kernel_output(getattr(policy, "name", type(policy).__name__), tags_w)
        result = SimulationResult(
            policy_name=getattr(policy, "name", type(policy).__name__),
            n_hosts=n_hosts,
            arrival_times=t,
            sizes=s,
            wait_times=tags_w,
            host_assignments=assignment,
            wasted_work=wasted,
            backend="fast",
        )
        observe_result(result)
        return result
    else:
        raise ValueError(f"unsupported policy kind={kind!r}, fast_hint={hint!r}")

    _check_kernel_output(getattr(policy, "name", type(policy).__name__), waits)
    result = SimulationResult(
        policy_name=getattr(policy, "name", type(policy).__name__),
        n_hosts=n_hosts,
        arrival_times=t,
        sizes=s,
        wait_times=waits,
        host_assignments=assignment,
        processing_times=None if uniform else durations,
        backend="fast",
    )
    observe_result(result)
    return result


# ----------------------------------------------------------------------
# batched SITA cutoff scan (the cutoff-search engine's simulation kernel)
# ----------------------------------------------------------------------

#: Summary metrics :class:`SitaScanKernel` can score candidates by.  Any
#: other ``Summary`` field still needs the full per-candidate
#: ``simulate_fast`` path (see ``repro.core.cutoffs.sim_opt_cutoff``).
SCAN_METRICS = (
    "mean_slowdown",
    "mean_response",
    "mean_wait",
    "mean_waiting_slowdown",
)

#: (metric value, short_slowdown, long_slowdown, gap, n_short) for one
#: cutoff.
_ScanRow = tuple[float, float, float, float, int]


@kernel_contract(
    shapes={
        "t": ("n",),
        "s": ("n",),
        "out": ("n_out",),
        "work1": ("n_w1",),
        "work2": ("n_w2",),
        "return": ("n",),
    },
    dtypes={
        "t": "float64",
        "s": "float64",
        "out": "float64",
        "work1": "float64",
        "work2": "float64",
        "return": "float64",
    },
    writes=("out", "work1", "work2"),
    contiguous=("t", "s", "out", "work1", "work2"),
)
def _fcfs_waits_into(
    t: np.ndarray,
    s: np.ndarray,
    out: np.ndarray,
    work1: np.ndarray,
    work2: np.ndarray,
) -> np.ndarray:
    """:func:`fcfs_waits` into caller-provided storage.

    Bit-identical to ``fcfs_waits(t, s)`` — every intermediate is the
    same elementwise expression, only written into reusable workspaces
    instead of fresh allocations (the scan kernel runs this twice per
    candidate, where allocation churn would dominate).  ``out``/``work2``
    must hold ``t.size`` elements and ``work1`` one fewer; ``t`` and
    ``s`` must not alias the workspaces.
    """
    n = t.size
    if n == 0:
        return out[:0]
    fn = _compiled.dispatch("sita_scan")
    if fn is not None:
        # Fused single-pass port; leaves work1/work2 untouched (callers
        # always overwrite the workspaces before reading them).
        return fn(t, s, out[:n])
    d = np.subtract(t[1:], t[:-1], out=work1[: n - 1])  # np.diff(t)
    u = np.subtract(s[: n - 1], d, out=d)
    prefix = work2[:n]
    prefix[0] = 0.0
    np.cumsum(u, out=prefix[1:])
    m = np.minimum.accumulate(prefix, out=out[:n])
    return np.subtract(prefix, m, out=m)


@dataclass(frozen=True)
class SitaScanResult:
    """Per-candidate scores from one batched SITA cutoff scan.

    Every array is indexed by candidate.  ``values`` is bit-identical to
    ``getattr(simulate_fast(...).summary(warmup_fraction), metric)`` for
    a 2-host :class:`~repro.core.policies.sita.SITAPolicy` at that
    cutoff (non-finite values mapped to ``inf``, as the per-candidate
    loop did); ``short_slowdown``/``long_slowdown``/``gap`` are
    bit-identical to ``result.trimmed(...).class_mean_slowdowns(cutoff)``
    and the fair search's ``abs(log(s_short/s_long))`` score.  Degenerate
    candidates (one size class empty after warmup) carry NaN class
    slowdowns and an infinite ``gap``, mirroring the loop's skip.
    """

    #: the ``Summary`` field ``values`` holds (one of ``SCAN_METRICS``).
    metric: str
    candidates: np.ndarray
    #: number of jobs routed short (``size <= cutoff``) per candidate.
    n_short: np.ndarray
    values: np.ndarray
    short_slowdown: np.ndarray
    long_slowdown: np.ndarray
    #: ``abs(log(short_slowdown / long_slowdown))`` — the fair objective.
    gap: np.ndarray


class SitaScanKernel:
    """Shared state for scoring many 2-host SITA cutoffs on one trace.

    The per-candidate search loop used to pay a full ``simulate_fast``
    pass per cutoff — policy construction, assignment, Lindley, a
    :class:`SimulationResult` and a percentile-heavy ``Summary`` — twice
    over for an opt+fair pair.  This kernel sorts the job sizes **once**;
    each cutoff then maps to its size rank ``k`` via ``searchsorted``,
    the short/long classes follow directly, and only the two subset
    Lindley recursions (:func:`fcfs_waits` arithmetic) plus a handful of
    means run per candidate, all through preallocated scratch buffers.
    Because any two cutoffs falling between the same adjacent observed
    sizes induce the *same* partition, rows are memoised by ``k`` — a
    golden-section refinement that revisits a flat step of the
    (piecewise-constant) objective costs nothing.

    All arithmetic replicates the ``simulate_fast`` static path op for op
    (same shifted arrival axis, same reduce order), so the scores — and
    therefore any argmin over them — are bit-identical to the
    per-candidate loop.  The scratch buffers make a kernel instance
    stateful: share one per search, not across threads.
    """

    def __init__(
        self,
        trace: Trace,
        metric: str = "mean_slowdown",
        warmup_fraction: float = 0.0,
    ) -> None:
        if metric not in SCAN_METRICS:
            raise ValueError(
                f"metric {metric!r} is not scan-supported; expected one of "
                f"{SCAN_METRICS}"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0,1), got {warmup_fraction}"
            )
        self._metric = metric
        self._t = trace.arrival_times - trace.arrival_times[0]
        self._s = trace.service_times
        self._sorted_sizes = np.sort(self._s)
        self._start = int(self._s.size * warmup_fraction)
        self._rows: dict[int, _ScanRow] = {}
        n = self._s.size
        self._short = np.empty(n, dtype=bool)
        self._long = np.empty(n, dtype=bool)
        #: interleaved-order scatter target for the metric mean.
        self._full = np.empty(n)
        # short/long subset arrival times, sizes and waits.
        self._sub_t0 = np.empty(n)
        self._sub_s0 = np.empty(n)
        self._sub_w0 = np.empty(n)
        self._sub_t1 = np.empty(n)
        self._sub_s1 = np.empty(n)
        self._sub_w1 = np.empty(n)
        # Lindley workspaces, reused as class-slowdown buffers afterwards.
        self._scr0 = np.empty(n)
        self._scr1 = np.empty(n)
        # per-metric subset scratch (response / waiting-slowdown values).
        self._cls0 = np.empty(n)
        self._cls1 = np.empty(n)

    @property
    def metric(self) -> str:
        return self._metric

    @property
    def n_jobs(self) -> int:
        return self._s.size

    def cutoff_rank(self, cutoff: float) -> int:
        """Number of jobs with ``size <= cutoff`` (the partition key)."""
        return int(np.searchsorted(self._sorted_sizes, cutoff, side="right"))

    def evaluate(self, cutoff: float) -> _ScanRow:
        """Score one cutoff (memoised by its size rank)."""
        if not (math.isfinite(cutoff) and cutoff > 0.0):
            raise ValueError(f"cutoff must be positive and finite, got {cutoff}")
        k = self.cutoff_rank(cutoff)
        row = self._rows.get(k)
        if row is None:
            row = self._evaluate_rank(k)
            self._rows[k] = row
        return row

    def _evaluate_rank(self, k: int) -> _ScanRow:
        t, s = self._t, self._s
        n = s.size
        start = self._start
        short, long_mask = self._short, self._long
        if k <= 0:
            short.fill(False)
        else:
            # Same membership as ``sizes <= cutoff`` for every cutoff of
            # rank k: boolean-mask selection preserves arrival order, so
            # the subset Lindley inputs match _static_waits exactly.
            np.less_equal(s, self._sorted_sizes[k - 1], out=short)
        np.logical_not(short, out=long_mask)
        ss = ws = self._sub_s0[:0]
        sl = wl = self._sub_s1[:0]
        if k > 0:
            ts = np.compress(short, t, out=self._sub_t0[:k])
            ss = np.compress(short, s, out=self._sub_s0[:k])
            ws = _fcfs_waits_into(ts, ss, self._sub_w0, self._scr0, self._scr1)
            _check_kernel_output("sita-search", ws)
        if k < n:
            tl = np.compress(long_mask, t, out=self._sub_t1[: n - k])
            sl = np.compress(long_mask, s, out=self._sub_s1[: n - k])
            wl = _fcfs_waits_into(tl, sl, self._sub_w1, self._scr0, self._scr1)
            _check_kernel_output("sita-search", wl)
        # Per-job slowdowns, computed subset-side: each job's
        # ``(wait + size) / size`` uses the same operands whether the
        # waits sit in subset or scattered order, so the values — and the
        # class means over them — match the ``simulate_fast`` path bit
        # for bit.  Only the *system* mean needs the interleaved arrival
        # order (``np.mean`` is pairwise, so summation order matters);
        # exactly one array is scattered back for it.
        cs = np.add(ws, ss, out=self._scr0[:k])
        np.divide(cs, ss, out=cs)
        cl = np.add(wl, sl, out=self._scr1[: n - k])
        np.divide(cl, sl, out=cl)
        full = self._full
        if self._metric == "mean_slowdown":
            full[short] = cs
            full[long_mask] = cl
        elif self._metric == "mean_response":
            full[short] = np.add(ws, ss, out=self._cls0[:k])
            full[long_mask] = np.add(wl, sl, out=self._cls1[: n - k])
        elif self._metric == "mean_wait":
            full[short] = ws
            full[long_mask] = wl
        else:  # mean_waiting_slowdown
            full[short] = np.divide(ws, ss, out=self._cls0[:k])
            full[long_mask] = np.divide(wl, sl, out=self._cls1[: n - k])
        value = float(np.mean(full[start:]))
        # Class mean slowdowns: the trimmed short class is the short
        # subset minus its first k0 (warmup) jobs, in the same arrival
        # order as the scattered ``slow[start:][mask]`` selection.
        k0 = int(np.count_nonzero(short[:start]))
        l0 = start - k0
        if k0 < k and l0 < n - k:
            s_short = float(np.mean(cs[k0:]))
            s_long = float(np.mean(cl[l0:]))
            gap = abs(math.log(s_short / s_long))
        else:
            s_short = s_long = math.nan
            gap = math.inf
        return (
            value if math.isfinite(value) else math.inf,
            s_short,
            s_long,
            gap,
            k,
        )

    @kernel_contract(
        shapes={"return": ("n",)},
        dtypes={"return": "float64"},
        writes=(),
        contiguous=("return",),
    )
    def waits_for_cutoff(self, cutoff: float) -> np.ndarray:
        """Untrimmed per-job waits at ``cutoff``, in a fresh array.

        The equivalence-test entry point (scratch-free, unmemoised):
        compares directly against ``simulate_fast(...).wait_times``.
        """
        k = self.cutoff_rank(cutoff)
        n = self._s.size
        if k <= 0:
            short = np.zeros(n, dtype=bool)
        else:
            short = self._s <= self._sorted_sizes[k - 1]
        waits = np.empty(n)
        if k > 0:
            waits[short] = fcfs_waits(self._t[short], self._s[short])
        if k < n:
            long_mask = ~short
            waits[long_mask] = fcfs_waits(self._t[long_mask], self._s[long_mask])
        return waits

    def scan(self, candidates) -> SitaScanResult:
        """Score every candidate cutoff in one pass over the sorted sizes."""
        c_arr = np.asarray(candidates, dtype=float)
        if c_arr.ndim != 1 or c_arr.size == 0:
            raise ValueError("candidates must be a non-empty 1-D array")
        if not np.all(np.isfinite(c_arr)) or np.any(c_arr <= 0):
            raise ValueError("candidate cutoffs must be positive and finite")
        rows = np.asarray([self.evaluate(float(c)) for c in c_arr], dtype=float)
        return SitaScanResult(
            metric=self._metric,
            candidates=c_arr,
            n_short=rows[:, 4].astype(int),
            values=rows[:, 0],
            short_slowdown=rows[:, 1],
            long_slowdown=rows[:, 2],
            gap=rows[:, 3],
        )


@kernel_contract(
    shapes={"candidates": ("m",)},
    dtypes={"candidates": ("float64", "int64")},
    writes=(),
)
def sita_scan(
    trace: Trace,
    candidates,
    metric: str = "mean_slowdown",
    warmup_fraction: float = 0.0,
) -> SitaScanResult:
    """Batched 2-host SITA cutoff scan over ``candidates`` on ``trace``.

    One-shot convenience over :class:`SitaScanKernel`; searches that also
    refine (``repro.core.search.sim_cutoff_pair``) hold on to the kernel
    so refinement evaluations share its sorted sizes and rank memo.
    """
    kernel = SitaScanKernel(trace, metric=metric, warmup_fraction=warmup_fraction)
    return kernel.scan(candidates)


#: host-selection modes of :func:`serve_dispatch_batch`.
SERVE_DISPATCH_MODES = {"lwl": 0, "sita": 1, "fixed": 2}


@kernel_contract(
    shapes={
        "arrival_times": ("n",),
        "sizes": ("n",),
        "estimates": ("n",),
        "host_speeds": ("h",),
        "cutoffs": ("c",),
        "v": ("h",),
        "hosts": ("n",),
        "starts": ("n",),
    },
    dtypes={
        "arrival_times": "float64",
        "sizes": "float64",
        "estimates": "float64",
        "host_speeds": "float64",
        "cutoffs": "float64",
        "v": "float64",
        "hosts": "int64",
        "starts": "float64",
    },
    writes=("v", "hosts", "starts"),
    contiguous=(
        "arrival_times",
        "sizes",
        "estimates",
        "host_speeds",
        "cutoffs",
        "v",
        "hosts",
        "starts",
    ),
)
def serve_dispatch_batch(
    arrival_times: np.ndarray,
    sizes: np.ndarray,
    estimates: np.ndarray,
    host_speeds: np.ndarray,
    cutoffs: np.ndarray,
    v: np.ndarray,
    hosts: np.ndarray,
    starts: np.ndarray,
    mode: int,
) -> None:
    """Route one arrival batch through incremental O(1) host updates.

    The online dispatcher's fault-free fast path (see
    :mod:`repro.serve.fastpath`): instead of scheduling an event per
    job, each job advances a single per-host scalar — the virtual
    completion time ``v`` — by the event engine's own float expressions
    (``start = max(v[h], t)``, ``v[h] = start + size/speed``), so the
    produced start epochs (written into ``starts``) and the implied
    completions ``starts + sizes/speeds[hosts]`` are bit-identical to
    the engine path.

    ``mode`` selects the host rule — ``0``: Least-Work-Left, a
    first-minimum scan of ``max(0, v - t)`` matching ``np.argmin``
    tie-breaking; ``1``: SITA, the first cutoff ``>=`` the size estimate
    (``searchsorted`` left); ``2``: ``hosts`` arrives pre-filled
    (Random/Round-Robin, whose draws must advance the policy's RNG or
    pointer one job at a time in Python).  Chosen hosts are written
    back into ``hosts`` in every mode.
    """
    n = arrival_times.shape[0]
    if n == 0:
        return
    fn = _compiled.dispatch("serve_dispatch_batch")
    if fn is not None:
        fn(
            arrival_times,
            sizes,
            estimates,
            host_speeds,
            cutoffs,
            v,
            hosts,
            starts,
            int(mode),
        )
        return
    # Python tier: plain-float loops (tolist), same IEEE-754 arithmetic
    # as the nopython body — see lwl_waits on why this beats ndarray
    # indexing in a tight loop.
    t_list = arrival_times.tolist()
    s_list = sizes.tolist()
    v_list = v.tolist()
    sp_list = host_speeds.tolist()
    n_hosts = len(v_list)
    hosts_out = [0] * n
    starts_out = [0.0] * n
    if mode == 0:
        for j in range(n):
            tj = t_list[j]
            best = 0
            best_key = v_list[0] - tj
            if best_key < 0.0:
                best_key = 0.0
            for i in range(1, n_hosts):
                key = v_list[i] - tj
                if key < 0.0:
                    key = 0.0
                if key < best_key:
                    best = i
                    best_key = key
            vb = v_list[best]
            start = tj if vb < tj else vb
            starts_out[j] = start
            hosts_out[j] = best
            v_list[best] = start + s_list[j] / sp_list[best]
    elif mode == 1:
        e_list = estimates.tolist()
        c_list = cutoffs.tolist()
        n_cut = len(c_list)
        for j in range(n):
            tj = t_list[j]
            est = e_list[j]
            best = 0
            while best < n_cut and c_list[best] < est:
                best += 1
            vb = v_list[best]
            start = tj if vb < tj else vb
            starts_out[j] = start
            hosts_out[j] = best
            v_list[best] = start + s_list[j] / sp_list[best]
    elif mode == 2:
        h_list = hosts.tolist()
        for j in range(n):
            tj = t_list[j]
            best = h_list[j]
            vb = v_list[best]
            start = tj if vb < tj else vb
            starts_out[j] = start
            hosts_out[j] = best
            v_list[best] = start + s_list[j] / sp_list[best]
    else:
        raise ValueError(f"unknown dispatch mode {mode!r}")
    hosts[:] = hosts_out
    starts[:] = starts_out
    v[:] = v_list
