"""A minimal, deterministic discrete-event simulation engine.

This is the substrate under the paper's trace-driven simulator: a binary
heap of :class:`~repro.sim.events.Event` objects, a monotone simulation
clock, lazy cancellation, and stop conditions.  It is deliberately small
and legible — the vectorised hot path for large sweeps lives in
:mod:`repro.sim.fast` and is cross-validated against this engine (see
``tests/sim/test_fast_vs_engine.py``), following the optimisation workflow
of the HPC guides: make it work and make it testable before making it fast.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from .events import Event, EventHandle

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling in the past)."""


class Simulator:
    """Event-calendar simulator with a monotone clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run()          # drains the calendar
        sim.now            # -> 1.5

    Callbacks may schedule further events; time only moves forward.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._heap)

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Run the next non-cancelled event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the calendar.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time (the clock
            is advanced to ``until``).
        max_events:
            Safety valve: stop after this many callbacks.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            self.step()
            executed += 1
        if until is not None:
            self._now = max(self._now, until)
