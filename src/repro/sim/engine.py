"""A minimal, deterministic discrete-event simulation engine.

This is the substrate under the paper's trace-driven simulator: a binary
heap of :class:`~repro.sim.events.Event` objects, a monotone simulation
clock, lazy cancellation, and stop conditions.  It is deliberately small
and legible — the vectorised hot path for large sweeps lives in
:mod:`repro.sim.fast` and is cross-validated against this engine (see
``tests/sim/test_fast_vs_engine.py``), following the optimisation workflow
of the HPC guides: make it work and make it testable before making it fast.
"""

from __future__ import annotations

import heapq
import math
import os
from typing import Any, Callable

from .events import Event, EventHandle

__all__ = [
    "Simulator",
    "SimulationError",
    "InvariantViolation",
    "set_event_hook",
    "strict_from_env",
]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling in the past)."""


class InvariantViolation(SimulationError):
    """A strict-mode sanity check failed: simulator state is inconsistent.

    Raised by the engine's monotone-clock check and by any invariant
    checker registered via :meth:`Simulator.add_invariant_checker` (the
    :class:`~repro.sim.server.DistributedServer` installs one asserting
    work conservation, FCFS order and job conservation).  This always
    indicates a simulator bug, never a modelling choice — results from a
    run that raised it must be discarded.
    """


#: process-wide observer of executed events, installed by ``repro audit``
#: (:mod:`repro.devtools.audit`) to digest the event stream.  ``None``
#: (the default) costs one truthiness test per event.
_EVENT_HOOK: Callable[[Event], None] | None = None


def set_event_hook(hook: Callable[[Event], None] | None) -> Callable[[Event], None] | None:
    """Install ``hook(event)`` to observe every executed event; return the
    previous hook so callers can restore it.

    The hook fires once per non-cancelled event, after the clock has
    advanced and before the callback runs, across **every**
    :class:`Simulator` instance in the process — which is what an audit
    wants: the complete, ordered stream of state transitions.  Pass
    ``None`` to uninstall.  Not a public extension point; the supported
    consumer is the replay-divergence auditor.
    """
    global _EVENT_HOOK
    previous = _EVENT_HOOK
    _EVENT_HOOK = hook
    return previous


def strict_from_env() -> bool:
    """Whether ``REPRO_SIM_STRICT`` asks for strict mode (default: off)."""
    return os.environ.get("REPRO_SIM_STRICT", "").strip().lower() not in (
        "", "0", "false", "no", "off",
    )


class Simulator:
    """Event-calendar simulator with a monotone clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run()          # drains the calendar
        sim.now            # -> 1.5

    Callbacks may schedule further events; time only moves forward.

    Parameters
    ----------
    strict:
        Run the **sanitizer**: re-verify clock monotonicity on every event
        and call the registered invariant checkers after each callback,
        raising :class:`InvariantViolation` on the first inconsistency.
        ``None`` (the default) defers to the ``REPRO_SIM_STRICT``
        environment variable, so an entire test suite can be swept under
        the sanitizer without code changes::

            REPRO_SIM_STRICT=1 python -m pytest
    """

    def __init__(self, strict: bool | None = None) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0
        self._strict = strict_from_env() if strict is None else bool(strict)
        self._checkers: list[Callable[["Simulator"], None]] = []
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def strict(self) -> bool:
        """Whether the per-event sanitizer is active."""
        return self._strict

    def add_invariant_checker(self, checker: Callable[["Simulator"], None]) -> None:
        """Register ``checker(sim)`` to run after every event in strict mode.

        Checkers are the pluggable half of the sanitizer: components that
        own state (e.g. the distributed server) register a function that
        raises :class:`InvariantViolation` when that state is
        inconsistent.  Registration is allowed in any mode but checkers
        only run when :attr:`strict` is true, so the non-strict hot path
        pays nothing.
        """
        self._checkers.append(checker)

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def stop(self) -> None:
        """Ask :meth:`run` to return before the next event.

        Needed by components that schedule *unbounded* event streams —
        the fault injector's crash/repair processes never drain on their
        own, so the server calls ``stop()`` once every job is accounted
        for.  Pending events stay in the calendar; a subsequent
        :meth:`run` call would resume from where the clock stopped.
        """
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._heap)

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Run the next non-cancelled event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if self._strict and event.time < self._now:
                raise InvariantViolation(
                    f"clock would move backwards: event at {event.time} "
                    f"popped at simulated time {self._now}"
                )
            self._now = event.time
            self._events_processed += 1
            if _EVENT_HOOK is not None:
                _EVENT_HOOK(event)
            event.callback(*event.args)
            if self._strict:
                for checker in self._checkers:
                    checker(self)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the calendar.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time (the clock
            is advanced to ``until``).
        max_events:
            Safety valve: stop after this many callbacks.
        """
        executed = 0
        self._stopped = False
        while self._heap:
            if self._stopped:
                return
            if max_events is not None and executed >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            self.step()
            executed += 1
        if until is not None:
            self._now = max(self._now, until)
