"""Simulation substrate: event engine, distributed server, fast kernels."""

from .engine import InvariantViolation, SimulationError, Simulator, strict_from_env
from .events import Event, EventHandle
from .fast import fcfs_waits, lwl_waits, shortest_queue_waits, simulate_fast
from .host import FCFSHost
from .jobs import Job
from .metrics import SimulationResult, Summary, batch_means_ci
from .runner import simulate
from .server import DistributedServer, SystemState

__all__ = [
    "InvariantViolation",
    "SimulationError",
    "Simulator",
    "strict_from_env",
    "Event",
    "EventHandle",
    "fcfs_waits",
    "lwl_waits",
    "shortest_queue_waits",
    "simulate_fast",
    "FCFSHost",
    "Job",
    "SimulationResult",
    "Summary",
    "batch_means_ci",
    "simulate",
    "DistributedServer",
    "SystemState",
]
