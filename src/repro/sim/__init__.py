"""Simulation substrate: event engine, distributed server, fast kernels."""

from .engine import (
    InvariantViolation,
    SimulationError,
    Simulator,
    set_event_hook,
    strict_from_env,
)
from .events import Event, EventHandle
from .fast import fcfs_waits, lwl_waits, shortest_queue_waits, simulate_fast
from .faults import FaultInjector, FaultModel
from .host import FCFSHost
from .jobs import Job
from .metrics import (
    SimulationResult,
    Summary,
    array_digest,
    batch_means_ci,
    observe_result,
    set_result_observer,
)
from .runner import simulate
from .server import DistributedServer, SystemState

__all__ = [
    "InvariantViolation",
    "SimulationError",
    "Simulator",
    "set_event_hook",
    "strict_from_env",
    "Event",
    "EventHandle",
    "fcfs_waits",
    "lwl_waits",
    "shortest_queue_waits",
    "simulate_fast",
    "FaultInjector",
    "FaultModel",
    "FCFSHost",
    "Job",
    "SimulationResult",
    "Summary",
    "array_digest",
    "batch_means_ci",
    "observe_result",
    "set_result_observer",
    "simulate",
    "DistributedServer",
    "SystemState",
]
