"""Deterministic fault injection for the distributed server.

The paper's evaluation (and its §7 limitations) assumes perfectly
reliable hosts — yet its headline recommendation, deliberately
*unbalancing* load onto one lightly-loaded short-job host, is exactly the
configuration most exposed to that host failing.  This module adds the
missing failure axis: per-host crash/repair processes driven from a
seeded RNG tree, so every fault schedule replays bit-identically.

Model
-----

Each targeted host alternates between *up* and *down* periods.  Up-time
(time between repair and the next crash) is drawn with mean
:attr:`FaultModel.mtbf`; down-time (repair duration) with mean
:attr:`FaultModel.mttr`.  Draws come from one independent child stream
per host, spawned from a single :class:`numpy.random.SeedSequence` — the
schedule of host ``i`` never depends on how events interleave with other
hosts, which keeps ``repro audit`` clean.

What happens to the job in service when its host crashes is the
*failure semantics* (:data:`SEMANTICS`):

``"lost"``
    The job disappears: it never completes and is reported through
    :attr:`~repro.sim.metrics.SimulationResult.n_lost`.
``"redispatch"``
    The job loses its progress (counted as wasted work, like a TAGS
    eviction) and re-enters the dispatcher to be routed again — from
    scratch — to a live host.
``"resume"``
    The job keeps its progress, waits out the repair on the crashed
    host, and resumes with only its remaining work (checkpointed hosts).

Queued jobs that never received service are re-dispatched among live
hosts under ``lost``/``redispatch`` (the host's memory is gone) and wait
in place under ``resume``.  Arrivals while *every* host is down are held
at the dispatcher and flushed, FCFS, on the next repair.

Dispatch stays failure-aware through
:meth:`repro.core.policies.base.Policy.choose_live_host`: the
load-balancing policies simply skip down hosts, while SITA variants
spill their size interval to the nearest live host (see
``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["SEMANTICS", "FAULT_DISTRIBUTIONS", "FaultModel", "FaultInjector"]

#: the three supported failure semantics for the job in service.
SEMANTICS = ("lost", "redispatch", "resume")

#: supported up/down duration distributions.
FAULT_DISTRIBUTIONS = ("exponential", "deterministic")


@dataclass(frozen=True)
class FaultModel:
    """Configuration of the per-host crash/repair processes.

    Parameters
    ----------
    mtbf:
        Mean time between failures — the mean *up* period, in simulated
        seconds.  ``math.inf`` disables failures entirely (the injector
        schedules nothing, so results are bit-identical to a run with no
        fault model at all).
    mttr:
        Mean time to repair — the mean *down* period.
    semantics:
        Fate of the job in service at a crash; one of :data:`SEMANTICS`.
    seed:
        Root of the fault-schedule RNG tree.  Independent of the policy
        RNG: the same workload/policy seed with a different fault seed
        replays the same arrivals under a different failure schedule.
    hosts:
        Which host indices fail (``None`` = all of them).  Targeting a
        single host reproduces the paper-motivated scenario "the
        short-job host dies".
    distribution:
        ``"exponential"`` (memoryless, the classical availability model)
        or ``"deterministic"`` (fixed durations — invaluable in tests).
    """

    mtbf: float
    mttr: float
    semantics: str = "resume"
    seed: int = 0
    hosts: tuple[int, ...] | None = None
    distribution: str = "exponential"

    def __post_init__(self) -> None:
        if not (self.mtbf > 0):
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if not (self.mttr > 0 and math.isfinite(self.mttr)):
            raise ValueError(f"mttr must be positive and finite, got {self.mttr}")
        if self.semantics not in SEMANTICS:
            raise ValueError(
                f"unknown failure semantics {self.semantics!r}; "
                f"choose one of {SEMANTICS}"
            )
        if self.distribution not in FAULT_DISTRIBUTIONS:
            raise ValueError(
                f"unknown fault distribution {self.distribution!r}; "
                f"choose one of {FAULT_DISTRIBUTIONS}"
            )
        if self.hosts is not None:
            object.__setattr__(self, "hosts", tuple(int(h) for h in self.hosts))

    @property
    def enabled(self) -> bool:
        """Whether this model can produce any failure at all."""
        return math.isfinite(self.mtbf)

    @property
    def availability(self) -> float:
        """Steady-state fraction of time a targeted host is up."""
        if not self.enabled:
            return 1.0
        return self.mtbf / (self.mtbf + self.mttr)

    def describe(self) -> str:
        """Stable one-line signature (used as part of checkpoint keys)."""
        hosts = "all" if self.hosts is None else ",".join(map(str, self.hosts))
        return (
            f"mtbf={self.mtbf!r},mttr={self.mttr!r},sem={self.semantics},"
            f"seed={self.seed},hosts={hosts},dist={self.distribution}"
        )


class FaultInjector:
    """Drives the crash/repair processes of one :class:`DistributedServer`.

    Construction validates the model against the host count and spawns
    one child RNG stream per targeted host; :meth:`attach` schedules the
    first crashes.  The injector then keeps each host's process alive —
    crash, repair after an MTTR draw, crash again after an MTBF draw —
    until the server stops the clock (the event stream is conceptually
    infinite, which is why :meth:`repro.sim.engine.Simulator.stop`
    exists).

    The injector calls exactly two server entry points,
    ``server.crash_host(i)`` and ``server.repair_host(i)``; all failure
    semantics live in the server/host layer.
    """

    def __init__(self, model: FaultModel, n_hosts: int) -> None:
        if model.hosts is not None:
            bad = [h for h in model.hosts if not 0 <= h < n_hosts]
            if bad:
                raise ValueError(
                    f"fault model targets hosts {bad} outside 0..{n_hosts - 1}"
                )
            targets = tuple(sorted(set(model.hosts)))
        else:
            targets = tuple(range(n_hosts))
        self.model = model
        self.targets = targets
        # One independent stream per targeted host: the draw sequence of a
        # host's schedule never depends on event interleaving elsewhere.
        seeds = np.random.SeedSequence(model.seed).spawn(len(targets))
        self._streams = {
            host: np.random.default_rng(seq) for host, seq in zip(targets, seeds)
        }
        # The attached DistributedServer (duck-typed to avoid a cycle).
        self._server: Any = None
        #: crashes injected so far, per host.
        self.n_crashes: dict[int, int] = {h: 0 for h in targets}
        #: cumulative down-time per host (closed repair intervals only).
        self.downtime: dict[int, float] = {h: 0.0 for h in targets}
        self._down_since: dict[int, float] = {}

    # ------------------------------------------------------------------
    # duration draws
    # ------------------------------------------------------------------

    def _draw(self, host: int, mean: float) -> float:
        if self.model.distribution == "deterministic":
            return mean
        return float(self._streams[host].exponential(mean))

    # ------------------------------------------------------------------
    # event-plumbing
    # ------------------------------------------------------------------

    def attach(self, server) -> None:
        """Schedule the first crash of every targeted host on ``server``.

        The server's host count is re-checked here: the injector may have
        been constructed against a different ``n_hosts`` than the server
        it is finally attached to (the online dispatcher builds both from
        config), and a silently out-of-range target would simply never
        crash anything.
        """
        if self._server is not None:
            raise RuntimeError("fault injector is already attached to a server")
        n_hosts = len(server.hosts)
        bad = [h for h in self.targets if h >= n_hosts]
        if bad:
            raise ValueError(
                f"fault model targets hosts {bad}, but the attached server "
                f"registered only hosts 0..{n_hosts - 1}"
            )
        self._server = server
        if not self.model.enabled:
            return
        for host in self.targets:
            server.sim.schedule_after(
                self._draw(host, self.model.mtbf), self._crash, host
            )

    def _crash(self, host: int) -> None:
        self.n_crashes[host] += 1
        self._down_since[host] = self._server.sim.now
        self._server.crash_host(host)
        self._server.sim.schedule_after(
            self._draw(host, self.model.mttr), self._repair, host
        )

    def _repair(self, host: int) -> None:
        self.downtime[host] += self._server.sim.now - self._down_since.pop(host)
        self._server.repair_host(host)
        self._server.sim.schedule_after(
            self._draw(host, self.model.mtbf), self._crash, host
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def total_crashes(self) -> int:
        return sum(self.n_crashes.values())

    def total_downtime(self, now: float) -> float:
        """Cumulative host down-time, counting still-open repair windows."""
        open_windows = sum(now - since for since in self._down_since.values())
        return sum(self.downtime.values()) + open_windows

    def schedule_status(self) -> dict:
        """Explicit introspection of the fault schedule's state.

        "No crashes happened" is ambiguous without this: it can mean the
        model has failures disabled (``mtbf=inf``), the injector was
        never attached to a server, or the schedule is live but the first
        draw simply hasn't fired yet.  The ``state`` field names which:

        ``"disabled"``
            The model cannot produce failures (``mtbf=math.inf``).
        ``"unattached"``
            :meth:`attach` has not been called; nothing is scheduled.
        ``"active"``
            Attached and armed: every targeted host has a crash or a
            repair pending (the processes self-reschedule forever, so an
            active schedule never exhausts).
        """
        if not self.model.enabled:
            state = "disabled"
        elif self._server is None:
            state = "unattached"
        else:
            state = "active"
        return {
            "state": state,
            "targets": list(self.targets),
            "semantics": self.model.semantics,
            "availability": self.model.availability,
            "crashes": dict(self.n_crashes),
            "down_now": sorted(self._down_since),
            "total_crashes": self.total_crashes,
        }
