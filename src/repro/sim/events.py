"""Event primitives for the discrete-event engine.

The engine (:mod:`repro.sim.engine`) is a classical event-calendar
simulator: an event is a callback scheduled at a simulated time, ties are
broken by insertion order (FIFO), and events can be cancelled.  Keeping
the primitives in their own module keeps the engine readable and lets
tests exercise ordering semantics in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)`` so simultaneous events run in the order they
    were scheduled — deterministic replay is a hard requirement for the
    trace-driven experiments.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by ``Simulator.schedule``; supports cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event dead; the engine skips it lazily (O(1))."""
        self._event.cancelled = True
