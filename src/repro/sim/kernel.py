"""The contract-carrying kernel tier: the surface a compiled backend ports.

Every function re-exported here carries a machine-verified
:class:`~repro.sim.contract.KernelContract` — dtype, shape, aliasing,
contiguity and write-set declarations that the static checker
(``repro lint --profile kernels``, rules SIM201–SIM205) verifies at
every call site and that the runtime validator enforces under
``REPRO_SIM_STRICT=1``.  When the ROADMAP's compiled (Numba/Cython)
tier lands, this module is its porting checklist: a compiled kernel
may assume exactly what the contract declares, nothing more.

Import kernels from here when you care about the contract surface::

    from repro.sim.kernel import fcfs_waits, lwl_waits

The implementations live in :mod:`repro.sim.fast`; this module adds no
behaviour, only the stable, contract-audited namespace.
"""

from .contract import (
    ContractViolation,
    KernelContract,
    contract_of,
    contract_validation,
    kernel_contract,
    set_contract_validation,
    validation_enabled,
)
from .fast import (
    SCAN_METRICS,
    SitaScanKernel,
    SitaScanResult,
    estimated_lwl_waits,
    fcfs_waits,
    lwl_waits,
    shortest_queue_waits,
    simulate_fast,
    sita_scan,
    tags_waits,
)

__all__ = [
    "SCAN_METRICS",
    "ContractViolation",
    "KernelContract",
    "SitaScanKernel",
    "SitaScanResult",
    "contract_of",
    "contract_validation",
    "estimated_lwl_waits",
    "fcfs_waits",
    "kernel_contract",
    "lwl_waits",
    "set_contract_validation",
    "shortest_queue_waits",
    "simulate_fast",
    "sita_scan",
    "tags_waits",
    "validation_enabled",
]
