"""The contract-carrying kernel tier: the surface the compiled backend ports.

Every function re-exported here carries a machine-verified
:class:`~repro.sim.contract.KernelContract` — dtype, shape, aliasing,
contiguity and write-set declarations that the static checker
(``repro lint --profile kernels``, rules SIM201–SIM205) verifies at
every call site and that the runtime validator enforces under
``REPRO_SIM_STRICT=1``.

The compiled tier exists now: :mod:`repro.sim.compiled` holds
``numba.njit`` ports of the sequential recursions, certified for
nopython compilation by the compile-readiness rules
(``repro lint --profile compile``, SIM301–SIM308) through the committed
``compiled_manifest.json``.  A compiled kernel assumes exactly what its
contract declares, nothing more — which is why dispatch happens *after*
the python façade's validation.  Tier selection is re-exported here:
``REPRO_KERNEL_TIER=python|compiled|auto`` or the
:func:`kernel_tier` / :func:`set_kernel_tier` overrides.

Import kernels from here when you care about the contract surface::

    from repro.sim.kernel import fcfs_waits, lwl_waits

The python implementations live in :mod:`repro.sim.fast`; this module
adds no behaviour, only the stable, contract-audited namespace.
"""

from .compiled import (
    NUMBA_VERSION,
    active_tier,
    compiled_available,
    kernel_tier,
    requested_tier,
    set_kernel_tier,
)
from .contract import (
    ContractViolation,
    KernelContract,
    contract_of,
    contract_validation,
    kernel_contract,
    set_contract_validation,
    validation_enabled,
)
from .fast import (
    SCAN_METRICS,
    SitaScanKernel,
    SitaScanResult,
    estimated_lwl_waits,
    fcfs_waits,
    lwl_waits,
    shortest_queue_waits,
    simulate_fast,
    sita_scan,
    tags_waits,
)

__all__ = [
    "NUMBA_VERSION",
    "SCAN_METRICS",
    "ContractViolation",
    "KernelContract",
    "SitaScanKernel",
    "SitaScanResult",
    "active_tier",
    "compiled_available",
    "contract_of",
    "contract_validation",
    "estimated_lwl_waits",
    "fcfs_waits",
    "kernel_contract",
    "kernel_tier",
    "lwl_waits",
    "requested_tier",
    "set_contract_validation",
    "set_kernel_tier",
    "shortest_queue_waits",
    "simulate_fast",
    "sita_scan",
    "tags_waits",
    "validation_enabled",
]
