"""Job objects flowing through the simulated distributed server."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Job"]


@dataclass
class Job:
    """One batch job.

    ``size`` is the true CPU requirement; ``size_estimate`` is what the
    dispatcher believes (equal by default — section 7 of the paper discusses
    imperfect estimates, modelled in :mod:`repro.core.estimation`).
    """

    index: int
    arrival_time: float
    size: float
    size_estimate: float | None = None
    assigned_host: int | None = None
    start_time: float | None = None
    completion_time: float | None = None
    #: CPU time burned on hosts that later evicted the job (TAGS only).
    wasted_work: float = 0.0
    #: wall-clock time the job occupied its final host; ``None`` means the
    #: nominal ``size`` (unit-speed hosts).
    processing_time: float | None = None
    #: Number of times the job was killed and restarted (TAGS only).
    restarts: int = 0
    #: True once a host crash destroyed the job ("lost" failure semantics).
    lost: bool = False
    #: Number of host crashes that hit this job while in service
    #: (fault injection; counts both re-dispatches and resumed legs).
    interruptions: int = 0
    #: Per-host FCFS stamp assigned on submission — the strict-mode FCFS
    #: invariant orders queues by this, not by job index, because
    #: re-dispatch after a crash legitimately reorders indices.
    host_seq: int = -1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"job size must be positive, got {self.size}")
        if self.size_estimate is None:
            self.size_estimate = self.size

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def wait_time(self) -> float:
        """Total time not receiving *useful* service.

        Response minus the time the job occupied its host (the nominal
        ``size`` on unit-speed hosts; ``size/speed`` otherwise).  Under
        TAGS the wasted partial runs count as waiting.
        """
        if self.completion_time is None:
            raise ValueError(f"job {self.index} has not completed")
        busy = self.processing_time if self.processing_time is not None else self.size
        return self.response_time - busy

    @property
    def response_time(self) -> float:
        """Arrival to completion."""
        if self.completion_time is None:
            raise ValueError(f"job {self.index} has not completed")
        return self.completion_time - self.arrival_time

    @property
    def slowdown(self) -> float:
        """Response time divided by service requirement (the paper's metric)."""
        return self.response_time / self.size
