"""The distributed server: dispatcher + hosts, driven by a job trace.

This is the paper's architectural model (figure 1): a single stream of
batch jobs arrives at a dispatcher, which sends each job to exactly one of
``h`` identical FCFS run-to-completion hosts according to a *task
assignment policy*.  Three dispatch disciplines exist:

* **immediate dispatch** (``policy.kind`` of ``"static"`` or ``"state"``):
  the job is routed the instant it arrives — Random, Round-Robin,
  Shortest-Queue, Least-Work-Left and all the SITA variants work this way;
* **central queue** (``policy.kind == "central"``): jobs are held at the
  dispatcher in FCFS order and a host pulls the next job when it goes
  idle — provably equivalent to Least-Work-Left (paper section 3.1);
* **TAGS** (``policy.kind == "tags"``): every job starts on host 0; host
  ``i`` kills any job that exceeds cutoff ``i`` and the job restarts from
  scratch on host ``i+1`` (the unknown-size policy of the paper's ref
  [10], included as an extension).

Policies are duck-typed (see :class:`repro.core.policies.base.Policy` for
the reference protocol) so the simulator has no dependency on the policy
package.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from ..workloads.distributions import _as_rng
from ..workloads.traces import Trace
from .engine import InvariantViolation, Simulator
from .faults import FaultInjector, FaultModel
from .host import FCFSHost
from .jobs import Job
from .metrics import SimulationResult, observe_result

__all__ = ["DistributedServer", "SystemState"]


class SystemState:
    """Read-only view of the server handed to state-dependent policies."""

    __slots__ = ("_server",)

    def __init__(self, server: "DistributedServer") -> None:
        self._server = server

    @property
    def now(self) -> float:
        return self._server.sim.now

    @property
    def n_hosts(self) -> int:
        return len(self._server.hosts)

    def work_left(self) -> np.ndarray:
        """Remaining work at each host (true sizes)."""
        now = self._server.sim.now
        return np.array([h.work_left(now) for h in self._server.hosts])

    def queue_lengths(self) -> np.ndarray:
        """Jobs in system (queued + running) at each host."""
        return np.array([h.n_in_system for h in self._server.hosts])

    def up_mask(self) -> np.ndarray:
        """Boolean mask of live hosts (all True without fault injection)."""
        return np.array([h.up for h in self._server.hosts], dtype=bool)


class DistributedServer:
    """Event-driven distributed server fed by a :class:`Trace`.

    Parameters
    ----------
    n_hosts:
        Number of identical host machines.
    policy:
        A task assignment policy (see module docstring for the protocol).
    rng:
        Seed or generator for any randomness inside the policy.
    strict:
        Run under the engine sanitizer: after every event the server
        re-asserts monotone clock, non-negative remaining work, FCFS
        order per host and conservation of jobs (arrived = queued +
        running + completed + deferred + lost), raising
        :class:`~repro.sim.engine.InvariantViolation` on the first
        breach.  ``None`` defers to the ``REPRO_SIM_STRICT`` environment
        variable (see :func:`~repro.sim.engine.strict_from_env`).
    faults:
        Optional :class:`~repro.sim.faults.FaultModel` enabling per-host
        crash/repair processes (see :mod:`repro.sim.faults` and
        ``docs/ROBUSTNESS.md``).  ``None`` keeps the classical reliable
        server, bit-identical to the pre-fault behaviour.  Not supported
        together with TAGS, whose eviction cascade assumes reliable
        hosts.
    """

    def __init__(
        self,
        n_hosts: int,
        policy,
        rng: np.random.Generator | int | None = None,
        host_speeds=None,
        strict: bool | None = None,
        faults: FaultModel | None = None,
    ) -> None:
        if n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        kind = getattr(policy, "kind", None)
        if kind not in ("static", "state", "central", "tags"):
            raise ValueError(f"policy {policy!r} has unsupported kind {kind!r}")
        if faults is not None and kind == "tags":
            raise ValueError(
                "fault injection is not supported with TAGS: its eviction "
                "cascade assumes reliable hosts"
            )
        if kind == "tags" and n_hosts != len(policy.cutoffs) + 1:
            raise ValueError(
                f"TAGS with {len(policy.cutoffs)} cutoffs needs "
                f"{len(policy.cutoffs) + 1} hosts, got {n_hosts}"
            )
        if host_speeds is None:
            speeds = np.ones(n_hosts)
        else:
            speeds = np.asarray(host_speeds, dtype=float)
            if speeds.shape != (n_hosts,):
                raise ValueError(
                    f"host_speeds must have {n_hosts} entries, got {speeds.shape}"
                )
            if np.any(speeds <= 0):
                raise ValueError("host speeds must be positive")
            if kind == "tags" and not np.all(speeds == 1.0):
                raise ValueError(
                    "TAGS cutoff semantics are defined for identical hosts; "
                    "heterogeneous speeds are not supported"
                )
        self.host_speeds = speeds
        self.policy = policy
        self.rng = _as_rng(rng)
        self.sim = Simulator(strict=strict)
        limits = [math.inf] * n_hosts
        on_eviction = None
        if kind == "tags":
            limits = list(policy.cutoffs) + [math.inf]
            on_eviction = self._handle_eviction
        self.hosts = [
            FCFSHost(
                self.sim,
                i,
                on_completion=self._handle_completion,
                on_eviction=on_eviction,
                limit=limits[i],
                speed=float(speeds[i]),
            )
            for i in range(n_hosts)
        ]
        self.state = SystemState(self)
        self.central_queue: deque[Job] = deque()
        self._completed: list[Job] = []
        self._lost: list[Job] = []
        #: arrivals held at the dispatcher because every host was down.
        self._deferred: deque[Job] = deque()
        self._n_arrived = 0
        self._expected: int | None = None
        self.faults = faults
        self.fault_injector = (
            FaultInjector(faults, n_hosts) if faults is not None else None
        )
        if self.sim.strict:
            self.sim.add_invariant_checker(self._check_invariants)
        policy.reset(n_hosts, self.rng)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _handle_arrival(self, job: Job) -> None:
        self._n_arrived += 1
        self._dispatch(job)

    def _dispatch(self, job: Job) -> None:
        """Route one job (a fresh arrival or a crash re-dispatch)."""
        kind = self.policy.kind
        if kind == "central":
            self.central_queue.append(job)
            self._feed_idle_hosts()
        elif kind == "tags":
            self.hosts[0].submit(job)
        elif self.fault_injector is not None:
            up = self.state.up_mask()
            if not up.any():
                # Every host is down; hold the job at the dispatcher and
                # flush it (FCFS) at the next repair.
                self._deferred.append(job)
                return
            host_idx = int(self.policy.choose_live_host(job, self.state, up))
            if not 0 <= host_idx < len(self.hosts) or not up[host_idx]:
                raise ValueError(
                    f"policy returned invalid or down host {host_idx} "
                    f"for job {job.index}"
                )
            self.hosts[host_idx].submit(job)
        else:
            host_idx = self.policy.choose_host(job, self.state)
            if not 0 <= host_idx < len(self.hosts):
                raise ValueError(
                    f"policy returned invalid host {host_idx} for job {job.index}"
                )
            self.hosts[host_idx].submit(job)

    def _handle_completion(self, host: FCFSHost, job: Job) -> None:
        self._completed.append(job)
        if self.policy.kind == "central":
            self._feed_idle_hosts()
        if self.fault_injector is not None:
            self._maybe_finish()

    def _handle_eviction(self, host: FCFSHost, job: Job) -> None:
        nxt = host.host_id + 1
        assert nxt < len(self.hosts), "last host must never evict"
        self.hosts[nxt].submit(job)

    def _pop_central(self) -> Job:
        """Take the next job from the central queue per the discipline."""
        if getattr(self.policy, "discipline", "fcfs") == "sjf":
            best = min(
                range(len(self.central_queue)),
                key=lambda i: self.central_queue[i].size_estimate,
            )
            job = self.central_queue[best]
            del self.central_queue[best]
            return job
        return self.central_queue.popleft()

    def _feed_idle_hosts(self) -> None:
        for host in self.hosts:
            if not self.central_queue:
                return
            if host.up and host.idle:
                host.submit(self._pop_central())

    # ------------------------------------------------------------------
    # fault injection (called by the FaultInjector)
    # ------------------------------------------------------------------

    def crash_host(self, host_id: int) -> None:
        """A host just failed; apply the configured failure semantics.

        ``resume``: the host banks the running job's progress and keeps
        its queue.  ``lost``: the running job is destroyed; queued jobs
        (which received no service) are re-dispatched to live hosts.
        ``redispatch``: like ``lost`` but the running job re-enters the
        dispatcher from scratch, its partial service counted as wasted
        work.
        """
        assert self.faults is not None
        semantics = self.faults.semantics
        keep = semantics == "resume"
        victim, _done, drained = self.hosts[host_id].crash(keep_progress=keep)
        if victim is not None:
            victim.interruptions += 1
        if keep:
            return
        if victim is not None:
            if semantics == "lost":
                victim.lost = True
                self._lost.append(victim)
                self._maybe_finish()
            elif self.policy.kind == "central":
                # The victim arrived before anything still queued centrally.
                victim.restarts += 1
                self.central_queue.appendleft(victim)
            else:
                victim.restarts += 1
                self._dispatch(victim)
        for job in drained:
            self._dispatch(job)

    def repair_host(self, host_id: int) -> None:
        """A host came back; restart its service and drain the dispatcher."""
        self.hosts[host_id].repair()
        while self._deferred:
            self._dispatch(self._deferred.popleft())
        if self.policy.kind == "central":
            self._feed_idle_hosts()

    def _maybe_finish(self) -> None:
        """Stop the clock once every expected job completed or was lost.

        Without this the fault injector's crash/repair stream would keep
        the calendar alive forever.
        """
        if self._expected is None:
            return
        if len(self._completed) + len(self._lost) >= self._expected:
            self.sim.stop()

    # ------------------------------------------------------------------
    # strict-mode sanitizer
    # ------------------------------------------------------------------

    def _check_invariants(self, sim: Simulator) -> None:
        """Assert server-level invariants; called after every event.

        Runs only under ``strict`` mode (the engine never calls checkers
        otherwise).  Checks, in order:

        1. *non-negative remaining work*: a busy host's virtual completion
           time is never in the past (up to float tolerance on long
           horizons);
        2. *FCFS order per host*: jobs wait in the order they were
           dispatched — submission (``host_seq``) order on every backlog.
           (Job-*index* order would be too strong: a crash re-dispatch
           legitimately places an old job behind newer ones.)
        3. *conservation of jobs*: every arrival is queued, running,
           interrupted by a crash, held at the dispatcher, completed or
           lost — nothing disappears untracked and nothing is duplicated;
        4. *down hosts hold no service*: a crashed host never has a job
           actively running.
        """
        now = sim.now
        tol = 1e-9 * (1.0 + abs(now))
        in_system = 0
        for host in self.hosts:
            if host.running is not None and not host.up:
                raise InvariantViolation(
                    f"host {host.host_id} is down but running job "
                    f"{host.running.index}"
                )
            if host.running is not None and host.virtual_completion < now - tol:
                raise InvariantViolation(
                    f"host {host.host_id} is busy with job "
                    f"{host.running.index} but its virtual completion "
                    f"{host.virtual_completion} is before now={now}"
                )
            prev = -1
            for queued in host.queue:
                if queued.host_seq <= prev:
                    raise InvariantViolation(
                        f"host {host.host_id} queue is out of FCFS order: "
                        f"job {queued.index} (submission {queued.host_seq}) "
                        f"waits behind submission {prev}"
                    )
                prev = queued.host_seq
            in_system += host.n_in_system
        held = self._dispatcher_held()
        accounted = in_system + sum(held.values())
        if accounted != self._n_arrived:
            detail = ", ".join(f"{n} {k}" for k, n in held.items())
            raise InvariantViolation(
                f"job conservation broken at t={now}: {self._n_arrived} "
                f"arrived but {accounted} accounted for "
                f"({in_system} on hosts, {detail})"
            )

    def _dispatcher_held(self) -> dict[str, int]:
        """Jobs the dispatcher accounts for outside the hosts, by bucket.

        The conservation checker sums these with the per-host counts;
        subclasses that park jobs in additional places (the online
        dispatcher's retry-backoff timers and shed list) extend the dict
        so conservation stays checkable there too.
        """
        return {
            "central": len(self.central_queue),
            "deferred": len(self._deferred),
            "completed": len(self._completed),
            "lost": len(self._lost),
        }

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run_trace(self, trace: Trace, size_estimates=None) -> SimulationResult:
        """Replay ``trace`` through the server and collect per-job results.

        Parameters
        ----------
        trace:
            Arrival epochs and service requirements.
        size_estimates:
            Optional per-job size estimates shown to the policy instead of
            the true sizes (section-7 robustness experiments).
        """
        if size_estimates is not None:
            est = np.asarray(size_estimates, dtype=float)
            if est.shape != trace.service_times.shape:
                raise ValueError("size_estimates must match the trace length")
        else:
            est = trace.service_times
        t0 = trace.arrival_times[0]
        for i in range(trace.n_jobs):
            job = Job(
                index=i,
                arrival_time=float(trace.arrival_times[i] - t0),
                size=float(trace.service_times[i]),
                size_estimate=float(est[i]),
            )
            self.sim.schedule(job.arrival_time, self._handle_arrival, job)
        if self.fault_injector is not None:
            self._expected = trace.n_jobs
            self.fault_injector.attach(self)
            # The crash/repair stream is unbounded, so completion of the
            # last job stops the clock (``_maybe_finish``).  A pathological
            # fault model (repairs slower than crashes under re-dispatch)
            # could make no progress at all; the event budget turns that
            # livelock into a diagnosable error instead of a hung sweep.
            budget = 200 * trace.n_jobs + 100_000
            self.sim.run(max_events=budget)
            done = len(self._completed) + len(self._lost)
            if done != trace.n_jobs:
                raise RuntimeError(
                    f"simulation ended with {done} of {trace.n_jobs} jobs "
                    f"accounted for after {self.sim.events_processed} events "
                    "— the fault model may be too aggressive to make progress "
                    f"(availability {self.fault_injector.model.availability:.3f})"
                )
        else:
            self.sim.run()
            if len(self._completed) != trace.n_jobs:
                raise RuntimeError(
                    f"simulation ended with {len(self._completed)} of "
                    f"{trace.n_jobs} jobs completed"
                )
        jobs = sorted(self._completed, key=lambda j: j.index)
        sizes = np.array([j.size for j in jobs])
        waits = np.array([j.wait_time for j in jobs])
        # Long horizons lose absolute precision: completion − arrival − size
        # can cancel to a tiny negative for a zero-wait job.  Clamp those;
        # anything beyond float noise is a real bug and must still raise.
        if np.any(waits < -1e-6 * (1.0 + sizes)):
            raise RuntimeError("negative wait time beyond float tolerance")
        np.maximum(waits, 0.0, out=waits)
        processing = None
        if not np.all(self.host_speeds == 1.0):
            processing = np.array(
                [
                    j.processing_time if j.processing_time is not None else j.size
                    for j in jobs
                ]
            )
        injector = self.fault_injector
        result = SimulationResult(
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            n_hosts=len(self.hosts),
            arrival_times=np.array([j.arrival_time for j in jobs]),
            sizes=sizes,
            wait_times=waits,
            host_assignments=np.array([j.assigned_host for j in jobs], dtype=int),
            wasted_work=np.array([j.wasted_work for j in jobs]),
            processing_times=processing,
            n_lost=len(self._lost),
            n_failures=0 if injector is None else injector.total_crashes,
            host_downtime=(
                0.0 if injector is None else injector.total_downtime(self.sim.now)
            ),
            backend="event",
        )
        observe_result(result)
        return result
