"""``python -m repro.devtools`` — alias for the linter CLI."""

import sys

from .lint import main

sys.exit(main())
