"""Developer tooling for simulation correctness.

The results in this repository are only as trustworthy as the simulator
is deterministic, so the conventions that guarantee determinism (seeded
``np.random.Generator`` everywhere, simulated-time-only clocks, the
``Policy`` reset protocol) are enforced by tooling rather than left to
docstrings:

* a **static pass** — ``repro lint`` / :func:`lint_paths` — runs the
  per-file AST rules ``SIM001`` … ``SIM007``
  (:mod:`repro.devtools.rules`), the whole-program flow rules
  ``SIM101`` … ``SIM106`` (:mod:`repro.devtools.flow`), the
  kernel-contract / concurrency rules ``SIM201`` … ``SIM210``
  (:mod:`repro.devtools.contracts`), and the compile-readiness rules
  ``SIM301`` … ``SIM308`` (:mod:`repro.devtools.compile_rules`, which
  also certify the :mod:`repro.sim.compiled` kernel tier through a
  committed manifest); profiles (``--profile
  kernels,concurrency,compile|all``) select among them, and the
  whole-program tiers share one project-wide symbol table and call
  graph (:mod:`repro.devtools.graph`);
* a **runtime pass**, in two layers — ``Simulator(strict=True)`` or the
  ``REPRO_SIM_STRICT=1`` environment hook asserts engine invariants
  after every event (see :mod:`repro.sim.engine`), and ``repro audit``
  (:mod:`repro.devtools.audit`) replays an experiment with identical
  seeds, digests the event stream, and reports the first divergent
  event if two replays disagree.

Everything is zero-dependency (stdlib :mod:`ast` + :mod:`hashlib` only)
and documented rule by rule in ``docs/DEVTOOLS.md``.
"""

from .compile_rules import (
    COMPILE_RULES,
    certification,
    certified_kernels,
    register_compile,
    run_compile_rules,
)
from .contracts import (
    CONTRACT_RULES,
    PROFILES,
    StaticContract,
    contract_index,
    register_contract,
    run_contract_rules,
)
from .findings import Finding, format_findings, sort_findings
from .graph import (
    PROJECT_RULES,
    ProjectGraph,
    ProjectRule,
    register_project,
    run_project_rules,
)
from .lint import (
    LintError,
    LintStats,
    apply_baseline,
    collect_files,
    lint_paths,
    lint_source,
    load_baseline,
    load_config,
    resolve_selection,
    write_baseline,
)
from .rules import RULES, LintContext, Rule, register, run_rules

__all__ = [
    "Finding",
    "format_findings",
    "sort_findings",
    "LintError",
    "LintStats",
    "apply_baseline",
    "collect_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "resolve_selection",
    "write_baseline",
    "RULES",
    "PROJECT_RULES",
    "CONTRACT_RULES",
    "COMPILE_RULES",
    "PROFILES",
    "certification",
    "certified_kernels",
    "register_compile",
    "run_compile_rules",
    "StaticContract",
    "contract_index",
    "register_contract",
    "run_contract_rules",
    "ProjectGraph",
    "ProjectRule",
    "register_project",
    "run_project_rules",
    "LintContext",
    "Rule",
    "register",
    "run_rules",
]
