"""Developer tooling for simulation correctness.

The results in this repository are only as trustworthy as the simulator
is deterministic, so the conventions that guarantee determinism (seeded
``np.random.Generator`` everywhere, simulated-time-only clocks, the
``Policy`` reset protocol) are enforced by tooling rather than left to
docstrings:

* a **static pass** — ``repro lint`` / :func:`lint_paths` — runs the
  AST rules ``SIM001`` … ``SIM007`` (:mod:`repro.devtools.rules`);
* a **runtime pass** — ``Simulator(strict=True)`` or the
  ``REPRO_SIM_STRICT=1`` environment hook — asserts engine invariants
  after every event (see :mod:`repro.sim.engine`).

Both are zero-dependency (stdlib :mod:`ast` only) and documented rule by
rule in ``docs/DEVTOOLS.md``.
"""

from .findings import Finding, format_findings, sort_findings
from .lint import (
    LintError,
    collect_files,
    lint_paths,
    lint_source,
    load_config,
    resolve_selection,
)
from .rules import RULES, LintContext, Rule, register, run_rules

__all__ = [
    "Finding",
    "format_findings",
    "sort_findings",
    "LintError",
    "collect_files",
    "lint_paths",
    "lint_source",
    "load_config",
    "resolve_selection",
    "RULES",
    "LintContext",
    "Rule",
    "register",
    "run_rules",
]
