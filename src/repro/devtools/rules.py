"""Domain-specific lint rules for discrete-event-simulation code.

Each rule is a small :class:`ast.NodeVisitor` with a stable ID
(``SIM001`` …) registered in :data:`RULES` — the same
register-by-declaration idiom as the policy registry in
:mod:`repro.core.policies`.  Rules are *pure detectors*: they receive a
:class:`LintContext` (where the file lives inside the package), walk the
tree, and append :class:`~repro.devtools.findings.Finding` objects.  All
reporting, selection and ``noqa`` suppression lives in
:mod:`repro.devtools.lint`.

The rules encode the repo's simulation-correctness conventions (see
``docs/DEVTOOLS.md`` for rationale and examples):

========  ============================================================
SIM001    no global NumPy RNG / stdlib ``random`` — pass a Generator
SIM002    no wall-clock reads inside ``sim``/``core``/``analysis``
SIM003    no ``==``/``!=`` on simulated-time or size float expressions
SIM004    ``Policy`` subclasses set ``kind``/``name``, chain ``reset``
SIM005    no mutable default arguments
SIM006    public library module must declare ``__all__``
SIM007    no bare ``except:`` / silently swallowed ``Exception``
========  ============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import ClassVar

from .findings import Finding

__all__ = ["LintContext", "Rule", "RULES", "register", "run_rules"]


# ---------------------------------------------------------------------------
# context and registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LintContext:
    """Where a file sits relative to the ``repro`` package.

    ``module`` is the dotted-path tuple inside ``src/repro`` (e.g.
    ``("sim", "engine")``), or ``None`` for files outside the library —
    path-scoped rules key off it.  Virtual paths work too: tests lint
    snippets under invented paths like ``src/repro/sim/x.py``.
    """

    path: str
    module: tuple[str, ...] | None = field(default=None)

    @classmethod
    def for_path(cls, path: str | PurePath) -> "LintContext":
        parts = PurePath(path).parts
        module: tuple[str, ...] | None = None
        for i in range(len(parts) - 1):
            if parts[i] == "src" and parts[i + 1] == "repro":
                module = tuple(p[:-3] if p.endswith(".py") else p for p in parts[i + 2 :])
                break
        return cls(path=str(path), module=module)

    @property
    def in_library(self) -> bool:
        """True when the file is part of the ``repro`` package."""
        return self.module is not None

    def in_subpackage(self, *names: str) -> bool:
        """True when the file lives under one of the named subpackages."""
        return self.module is not None and len(self.module) > 0 and self.module[0] in names

    @property
    def is_private_module(self) -> bool:
        return self.module is not None and bool(self.module) and self.module[-1].startswith("_")


RULES: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the global registry by its ID."""
    if not getattr(cls, "id", None):
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


class Rule(ast.NodeVisitor):
    """Base class for lint rules: visit the tree, collect findings."""

    #: stable identifier, e.g. ``"SIM001"`` — used by --select/--ignore/noqa.
    id: ClassVar[str] = ""
    #: one-line description shown in ``repro lint --explain``-style docs.
    summary: ClassVar[str] = ""

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def applies(self) -> bool:
        """Whether this rule is active for the file in ``self.ctx``."""
        return True

    def check_module(self, tree: ast.Module) -> None:
        """Entry point; default walks the tree with the visitor methods."""
        self.visit(tree)

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
            )
        )


def run_rules(
    tree: ast.Module, ctx: LintContext, select: set[str] | None = None
) -> list[Finding]:
    """Run every registered (selected) rule over ``tree``."""
    findings: list[Finding] = []
    for rule_id in sorted(RULES):
        if select is not None and rule_id not in select:
            continue
        rule = RULES[rule_id](ctx)
        if not rule.applies():
            continue
        rule.check_module(tree)
        findings.extend(rule.findings)
    return findings


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c`` → ``("a", "b", "c")``; empty tuple for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _terminal_name(node: ast.AST) -> str | None:
    """The identifier a value expression 'ends' in (attribute tail or name)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_abstract(cls: ast.ClassDef) -> bool:
    """Heuristic: ABC base or any ``@abstractmethod`` in the body."""
    for base in cls.bases:
        if _dotted(base)[-1:] in (("ABC",), ("ABCMeta",)):
            return True
    for kw in cls.keywords:
        if kw.arg == "metaclass" and _dotted(kw.value)[-1:] == ("ABCMeta",):
            return True
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in stmt.decorator_list:
                if _dotted(deco)[-1:] in (("abstractmethod",), ("abstractproperty",)):
                    return True
    return False


def _snake_words(name: str) -> set[str]:
    return {w for w in name.lower().split("_") if w}


# ---------------------------------------------------------------------------
# SIM001 — global randomness
# ---------------------------------------------------------------------------


#: module-level samplers/state of the legacy ``numpy.random`` API.  The
#: Generator constructors (``default_rng``, ``Generator``, bit generators,
#: ``SeedSequence``) are the *approved* API and stay allowed.
_NP_RANDOM_BANNED = frozenset(
    {
        "seed", "rand", "randn", "random", "ranf", "random_sample", "sample",
        "choice", "randint", "random_integers", "shuffle", "permutation",
        "uniform", "normal", "exponential", "standard_normal",
        "standard_exponential", "lognormal", "pareto", "weibull", "gamma",
        "beta", "poisson", "binomial", "geometric", "bytes", "get_state",
        "set_state", "RandomState",
    }
)


@register
class GlobalRandomRule(Rule):
    """SIM001: global RNG state breaks seeded reproducibility.

    Every stochastic routine must take an explicit
    ``numpy.random.Generator`` (see ``workloads.distributions._as_rng``)
    so that equal seeds give equal traces on every backend.  The legacy
    ``np.random.*`` module functions and stdlib ``random`` mutate hidden
    global state and are banned inside ``src/repro`` — except in
    ``workloads/distributions.py``, which owns RNG coercion.
    """

    id = "SIM001"
    summary = "global NumPy RNG or stdlib random; pass an np.random.Generator"

    def applies(self) -> bool:
        return self.ctx.in_library and self.ctx.module != ("workloads", "distributions")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(node, "stdlib `random` is banned; use np.random.Generator")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(node, "stdlib `random` is banned; use np.random.Generator")
        elif node.module in ("numpy.random", "numpy"):
            for alias in node.names:
                if alias.name in _NP_RANDOM_BANNED:
                    self.report(
                        node,
                        f"global `numpy.random.{alias.name}` is banned; "
                        "take an np.random.Generator parameter",
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted(node)
        if (
            len(dotted) >= 3
            and dotted[0] in ("np", "numpy")
            and dotted[1] == "random"
            and dotted[2] in _NP_RANDOM_BANNED
        ):
            self.report(
                node,
                f"global `{'.'.join(dotted[:3])}` mutates hidden RNG state; "
                "take an np.random.Generator parameter",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# SIM002 — wall-clock reads in simulation code
# ---------------------------------------------------------------------------


_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"), ("time", "time_ns"), ("time", "perf_counter"),
        ("time", "perf_counter_ns"), ("time", "monotonic"),
        ("time", "monotonic_ns"), ("time", "process_time"),
        ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
        ("datetime", "datetime", "now"), ("datetime", "datetime", "utcnow"),
        ("datetime", "datetime", "today"), ("datetime", "date", "today"),
    }
)
_WALL_CLOCK_NAMES = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "process_time", "time_ns"}
)


@register
class WallClockRule(Rule):
    """SIM002: simulation logic must read only simulated time.

    Inside ``sim/``, ``core/`` and ``analysis/`` the only clock is
    ``Simulator.now``; a wall-clock read makes results depend on host
    speed and destroys replay determinism.  Benchmarks, experiments and
    the CLI legitimately time themselves and are exempt.
    """

    id = "SIM002"
    summary = "wall-clock call in simulation code; use the simulated clock"

    def applies(self) -> bool:
        return self.ctx.in_subpackage("sim", "core", "analysis")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted in _WALL_CLOCK_CALLS or dotted[-2:] in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock call `{'.'.join(dotted)}()` in simulation code; "
                "use the simulated clock (Simulator.now)",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_NAMES or alias.name == "time":
                    self.report(
                        node,
                        f"importing wall-clock `time.{alias.name}` in simulation "
                        "code; use the simulated clock (Simulator.now)",
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# SIM003 — exact float equality on simulated time / size expressions
# ---------------------------------------------------------------------------


_TIMEY_WORDS = frozenset(
    {
        "now", "time", "times", "arrival", "arrivals", "completion",
        "completions", "cutoff", "cutoffs", "deadline", "epoch",
    }
)
#: attribute tails that are *about* a quantity, not the quantity itself.
_METADATA_TAILS = frozenset({"shape", "size", "ndim", "dtype", "name", "kind", "index"})


@register
class FloatTimeEqualityRule(Rule):
    """SIM003: ``==``/``!=`` on simulated-time floats is a latent bug.

    Times and cutoffs are accumulated floats; exact comparison silently
    flips once long horizons lose absolute precision.  Use
    ``math.isclose`` or an explicit tolerance.  The check is a name
    heuristic (``now``, ``*_time``, ``arrival*``, ``completion*``,
    ``cutoff*`` …) on either side of the comparison; boolean and
    metadata comparisons (``.shape``, counts) are skipped.
    """

    id = "SIM003"
    summary = "exact ==/!= on a simulated-time float; use math.isclose"

    def applies(self) -> bool:
        return self.ctx.in_library

    def _timeyness(self, node: ast.AST) -> str | None:
        """Return the offending identifier when ``node`` looks time-valued."""
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return None  # boolean, not a time value
        if isinstance(node, ast.BinOp):
            return self._timeyness(node.left) or self._timeyness(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._timeyness(node.operand)
        if isinstance(node, ast.Subscript):
            return self._timeyness(node.value)
        if isinstance(node, ast.Call):
            # max(now, t) etc. — look through well-known float combinators.
            if _terminal_name(node.func) in ("max", "min", "abs", "float", "sum"):
                for arg in node.args:
                    hit = self._timeyness(arg)
                    if hit:
                        return hit
            return None
        name = _terminal_name(node)
        if name is None or name in _METADATA_TAILS:
            return None
        words = _snake_words(name)
        if words & _TIMEY_WORDS and not words & {"n", "num", "count", "idx", "i"}:
            return name
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            sides = (left, right)
            if any(
                isinstance(s, ast.Constant) and (s.value is None or isinstance(s.value, (str, bool)))
                for s in sides
            ):
                continue  # sentinel / label comparison, not arithmetic
            hit = self._timeyness(left) or self._timeyness(right)
            if hit:
                self.report(
                    node,
                    f"exact float comparison on `{hit}`; simulated times lose "
                    "precision — use math.isclose or an explicit tolerance",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# SIM004 — Policy protocol conformance
# ---------------------------------------------------------------------------


_POLICY_BASES = frozenset({"Policy", "StaticPolicy", "StatePolicy"})


@register
class PolicyProtocolRule(Rule):
    """SIM004: every concrete ``Policy`` subclass must honour the protocol.

    The simulators duck-type against :class:`repro.core.policies.base.Policy`:
    a policy missing ``kind`` is rejected at runtime deep inside a sweep,
    one missing ``name`` mislabels result rows, and a ``reset`` override
    that forgets ``super().reset(...)`` leaves ``n_hosts``/``rng`` stale
    from the previous run — the classic source of cross-run contamination.
    """

    id = "SIM004"
    summary = "Policy subclass missing kind/name or reset() without super().reset()"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_tails = {_dotted(b)[-1] for b in node.bases if _dotted(b)}
        policy_bases = base_tails & _POLICY_BASES
        if policy_bases:
            self._check_policy(node, policy_bases)
        self.generic_visit(node)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _class_assigns(node: ast.ClassDef, attr: str) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == attr for t in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == attr
                and stmt.value is not None
            ):
                return True
        return False

    @staticmethod
    def _init_assigns_self(node: ast.ClassDef, attr: str) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign):
                        for t in sub.targets:
                            if (
                                isinstance(t, ast.Attribute)
                                and t.attr == attr
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                            ):
                                return True
        return False

    @staticmethod
    def _defines(node: ast.ClassDef, *names: str) -> bool:
        return any(
            isinstance(stmt, ast.FunctionDef) and stmt.name in names
            for stmt in node.body
        )

    @staticmethod
    def _calls_super_reset(fn: ast.FunctionDef) -> bool:
        for sub in ast.walk(fn):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "reset"
                and isinstance(sub.func.value, ast.Call)
                and _dotted(sub.func.value.func) == ("super",)
            ):
                return True
        return False

    def _check_policy(self, node: ast.ClassDef, policy_bases: set[str]) -> None:
        abstract = _is_abstract(node)
        # ``kind``: required when deriving straight from the abstract root.
        if "Policy" in policy_bases and not abstract:
            if not self._class_assigns(node, "kind"):
                self.report(
                    node,
                    f"Policy subclass `{node.name}` does not set `kind` "
                    "(\"static\"/\"state\"/\"central\"/\"tags\"); the server "
                    "will reject it at dispatch time",
                )
        # ``name``: required for concrete dispatchers (they label results).
        concrete = self._defines(node, "__init__", "choose_host", "assign_batch")
        if (
            not abstract
            and (policy_bases & {"StaticPolicy", "StatePolicy"} or concrete)
            and not self._class_assigns(node, "name")
            and not self._init_assigns_self(node, "name")
        ):
            self.report(
                node,
                f"Policy subclass `{node.name}` does not set `name`; result "
                "rows and plots would fall back to the class name",
            )
        # ``reset`` overrides must chain to the base for n_hosts/rng setup.
        for stmt in node.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == "reset"
                and not self._calls_super_reset(stmt)
            ):
                self.report(
                    stmt,
                    f"`{node.name}.reset` overrides Policy.reset without "
                    "calling super().reset(n_hosts, rng); stale state leaks "
                    "across runs",
                )


# ---------------------------------------------------------------------------
# SIM005 — mutable default arguments
# ---------------------------------------------------------------------------


_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)


@register
class MutableDefaultRule(Rule):
    """SIM005: a mutable default is shared across every call.

    One simulation run appending to a default ``[]`` poisons the next —
    precisely the cross-run contamination the reset protocol exists to
    prevent.  Default to ``None`` and construct inside the function.
    """

    id = "SIM005"
    summary = "mutable default argument; default to None and build inside"

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _terminal_name(default.func) in _MUTABLE_FACTORIES
            )
            if bad:
                self.report(default, "mutable default argument is shared across calls")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# SIM006 — public modules declare __all__
# ---------------------------------------------------------------------------


@register
class MissingAllRule(Rule):
    """SIM006: every public library module declares its API.

    ``__all__`` is how the package states which names are contract and
    which are implementation detail — the cross-validation story depends
    on tests reaching only the supported surface.  Private modules
    (``_foo.py``, ``__main__.py``) are exempt.
    """

    id = "SIM006"
    summary = "public module in src/repro without __all__"

    def applies(self) -> bool:
        return self.ctx.in_library and not self.ctx.is_private_module

    def check_module(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                return
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
            ):
                return
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=1,
                col=1,
                rule=self.id,
                message="public module does not declare __all__",
            )
        )


# ---------------------------------------------------------------------------
# SIM007 — swallowed exceptions
# ---------------------------------------------------------------------------


@register
class ExceptionSwallowRule(Rule):
    """SIM007: a swallowed exception turns a simulator bug into bad data.

    ``SimulationError`` and the strict-mode invariant violations exist to
    stop a run the moment state is inconsistent; a bare ``except:`` or an
    ``except Exception: pass`` converts that hard stop into silently
    wrong results — the worst failure mode a simulation study has.
    """

    id = "SIM007"
    summary = "bare except / except Exception with a pass-only body"

    @staticmethod
    def _is_noop_body(body: list[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or isinstance(stmt, ast.Continue)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in body
        )

    @staticmethod
    def _catches_everything(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        return any(
            _dotted(t)[-1:] in (("Exception",), ("BaseException",)) for t in types
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` also catches KeyboardInterrupt/SystemExit; "
                "catch a specific exception",
            )
        elif self._catches_everything(node) and self._is_noop_body(node.body):
            self.report(
                node,
                "`except Exception` with a pass-only body swallows simulator "
                "errors; handle or re-raise",
            )
        self.generic_visit(node)
