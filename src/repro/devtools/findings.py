"""Lint findings: the data carried from a rule to the reporter.

A :class:`Finding` is one diagnostic — rule ID, location, message — and
this module owns everything about *presenting* findings (stable sort
order, ``text`` and ``json`` renderings, summary lines) so the rules in
:mod:`repro.devtools.rules` stay pure detectors.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable

__all__ = ["Finding", "format_findings", "sort_findings"]


@dataclass(frozen=True, order=True)
class Finding:
    """One lint diagnostic, ordered by (path, line, col, rule)."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """GCC-style one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic report order: by file, then position, then rule ID."""
    return sorted(findings)


def _github_escape(value: str, *, property: bool = False) -> str:
    """Escape per the workflow-command rules (data vs property encoding)."""
    out = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property:
        out = out.replace(":", "%3A").replace(",", "%2C")
    return out


def format_findings(findings: Iterable[Finding], fmt: str = "text") -> str:
    """Render ``findings`` as ``text`` (one per line + summary), ``json``,
    or ``github`` (Actions ``::error`` workflow commands, which the runner
    turns into inline PR annotations).

    The JSON form is a list of objects with ``path``/``line``/``col``/
    ``rule``/``message`` keys — stable enough for CI annotations.
    """
    ordered = sort_findings(findings)
    if fmt == "json":
        return json.dumps([asdict(f) for f in ordered], indent=2)
    if fmt == "github":
        return "\n".join(
            f"::error file={_github_escape(f.path, property=True)},"
            f"line={f.line},col={f.col},"
            f"title={_github_escape(f.rule, property=True)}::"
            f"{_github_escape(f.message)}"
            for f in ordered
        )
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r} (expected 'text', 'json' or 'github')")
    lines = [f.render() for f in ordered]
    n = len(ordered)
    lines.append(f"{n} finding{'s' if n != 1 else ''}" if n else "all clean")
    return "\n".join(lines)
