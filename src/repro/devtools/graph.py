"""Project-wide symbol table and import/call graph for whole-program rules.

The per-file rules in :mod:`repro.devtools.rules` see one ``ast.Module``
at a time, which is enough for local hazards (a mutable default, a
wall-clock call) but blind to *flow*: whether a seed ever reaches an RNG
constructor, or whether any caller restores the order of a parallel map.
This module supplies the missing context:

* :class:`ModuleInfo` — one parsed file plus its symbol table: top-level
  functions (including methods, under ``Class.method`` qualnames),
  classes, constants, and an import map from local alias to fully
  qualified name (``np`` → ``numpy``, relative imports resolved against
  the module's package);
* :class:`ProjectGraph` — every module being linted, an index of call
  sites keyed by the *resolved* callee (``repro.sim.runner.simulate``,
  ``numpy.random.default_rng``), and resolution helpers;
* :class:`ProjectRule` — the base class for whole-program rules
  (``SIM101`` …, in :mod:`repro.devtools.flow`), registered in
  :data:`PROJECT_RULES` exactly like the per-file registry.

Whole-program rules receive the finished graph and may inspect any
module; findings still carry the precise file/line so ``noqa`` pragmas
and report formats work unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import ClassVar, Iterable, Sequence

from .findings import Finding
from .rules import LintContext

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "PROJECT_RULES",
    "ProjectGraph",
    "ProjectRule",
    "module_name_for_path",
    "register_project",
    "run_project_rules",
]


def module_name_for_path(path: str | PurePath) -> str:
    """Dotted module name for ``path``.

    Files under ``src/`` get their import name (``src/repro/sim/engine.py``
    → ``repro.sim.engine``); anything else is named by its path with
    separators turned into dots (``tests/sim/test_engine.py`` →
    ``tests.sim.test_engine``), which keeps names unique and keeps
    relative-import resolution working for the library modules — the only
    ones other modules import.
    """
    parts = list(PurePath(path).parts)
    if parts and parts[0] in ("/", "\\"):
        parts = parts[1:]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or "<module>"


@dataclass
class FunctionInfo:
    """One function or method definition inside a module."""

    qualname: str  #: ``f`` for top level, ``Class.method`` for methods
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: "ModuleInfo"

    @property
    def fqname(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    @property
    def is_method(self) -> bool:
        return "." in self.qualname

    def parameters(self) -> list[ast.arg]:
        """Positional + keyword-only parameters, ``self``/``cls`` included."""
        a = self.node.args
        return [*a.posonlyargs, *a.args, *a.kwonlyargs]

    def default_of(self, name: str) -> ast.expr | None:
        """The default expression of parameter ``name`` (``None`` if none)."""
        a = self.node.args
        positional = [*a.posonlyargs, *a.args]
        n_defaults = len(a.defaults)
        for i, arg in enumerate(positional):
            if arg.arg == name:
                j = i - (len(positional) - n_defaults)
                return a.defaults[j] if j >= 0 else None
        for arg, default in zip(a.kwonlyargs, a.kw_defaults):
            if arg.arg == name:
                return default
        return None


@dataclass
class CallSite:
    """One resolved call expression somewhere in the project."""

    module: "ModuleInfo"
    node: ast.Call
    callee: str  #: fully qualified resolved target


@dataclass
class ModuleInfo:
    """One parsed file plus its symbol table."""

    name: str
    path: str
    tree: ast.Module
    ctx: LintContext
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    constants: dict[str, ast.expr] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package containing this module (for relative imports)."""
        return self.name.rpartition(".")[0]

    def resolve(self, dotted: tuple[str, ...]) -> str | None:
        """Fully qualify a dotted reference as seen from this module.

        ``("np", "random", "default_rng")`` → ``numpy.random.default_rng``
        when the module did ``import numpy as np``; locally defined
        functions/classes/constants qualify under the module's own name.
        Returns ``None`` for names this module never binds (locals,
        builtins).
        """
        if not dotted:
            return None
        head, rest = dotted[0], dotted[1:]
        if head in self.imports:
            base = self.imports[head]
        elif head in self.functions or head in self.classes or head in self.constants:
            base = f"{self.name}.{head}"
        else:
            return None
        return ".".join((base, *rest)) if rest else base


def _index_module(info: ModuleInfo) -> None:
    """Populate the symbol table of ``info`` from its tree."""
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                info.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                # relative import: climb ``level`` packages from this module
                base_parts = info.name.split(".")[: -stmt.level]
                base = ".".join(base_parts)
                target_mod = f"{base}.{stmt.module}" if stmt.module else base
            else:
                target_mod = stmt.module or ""
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = (
                    f"{target_mod}.{alias.name}" if target_mod else alias.name
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = FunctionInfo(stmt.name, stmt, info)
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = stmt
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{stmt.name}.{sub.name}"
                    info.functions[qual] = FunctionInfo(qual, sub, info)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.constants[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                info.constants[stmt.target.id] = stmt.value


def _dotted_of(node: ast.AST) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


class ProjectGraph:
    """All modules under analysis plus a call index keyed by callee."""

    #: total number of :meth:`build` calls this process has made — the
    #: ``repro lint --stats`` line proves one build is shared by every
    #: whole-program pass (flow + contract tiers).
    builds_total: ClassVar[int] = 0

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        #: scratch space for analyses that amortise work across rules in
        #: one lint run (contract index, worker reachability, …).  Keyed
        #: by analysis name; owned by whichever pass computes it first.
        self.analysis_cache: dict[str, object] = {}

    @classmethod
    def build(cls, parsed: Iterable[tuple[str, ast.Module]]) -> "ProjectGraph":
        """Construct the graph from ``(path, tree)`` pairs."""
        ProjectGraph.builds_total += 1
        graph = cls()
        for path, tree in parsed:
            info = ModuleInfo(
                name=module_name_for_path(path),
                path=str(path),
                tree=tree,
                ctx=LintContext.for_path(path),
            )
            _index_module(info)
            graph.modules.setdefault(info.name, info)
            graph.by_path[info.path] = info
        for info in graph.by_path.values():
            graph._index_calls(info)
        return graph

    def _index_calls(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_of(node.func)
            target = info.resolve(dotted)
            if target is not None:
                self.calls.setdefault(target, []).append(CallSite(info, node, target))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def function(self, fqname: str) -> FunctionInfo | None:
        """Find a function by fully qualified name, if it is in the graph."""
        module_name, _, qualname = fqname.rpartition(".")
        info = self.modules.get(module_name)
        if info is not None and qualname in info.functions:
            return info.functions[qualname]
        # maybe the tail is ``Class.method``
        module_name2, _, cls_name = module_name.rpartition(".")
        info = self.modules.get(module_name2)
        if info is not None:
            return info.functions.get(f"{cls_name}.{qualname}")
        return None

    def call_sites(self, fqname: str) -> list[CallSite]:
        """Every resolved call to ``fqname`` anywhere in the project."""
        return self.calls.get(fqname, [])

    def constant(self, module: ModuleInfo, dotted: tuple[str, ...]) -> ast.expr | None:
        """The value expression behind a (possibly imported) constant name."""
        target = module.resolve(dotted)
        if target is None:
            if len(dotted) == 1 and dotted[0] in module.constants:
                return module.constants[dotted[0]]
            return None
        owner, _, name = target.rpartition(".")
        info = self.modules.get(owner)
        if info is not None:
            return info.constants.get(name)
        return None


# ---------------------------------------------------------------------------
# whole-program rule registry
# ---------------------------------------------------------------------------


PROJECT_RULES: dict[str, type["ProjectRule"]] = {}


def register_project(cls: type["ProjectRule"]) -> type["ProjectRule"]:
    """Class decorator adding a whole-program rule to the registry."""
    if not getattr(cls, "id", None):
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in PROJECT_RULES:
        raise ValueError(f"duplicate project rule id {cls.id}")
    PROJECT_RULES[cls.id] = cls
    return cls


class ProjectRule:
    """Base class for whole-program rules: inspect the graph, report.

    Unlike :class:`~repro.devtools.rules.Rule` (one instance per file), a
    project rule is instantiated once per lint run with the full
    :class:`ProjectGraph` and walks whichever modules it cares about —
    :meth:`applies_module` is the per-module scope hook, mirroring
    ``Rule.applies``.
    """

    id: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.findings: list[Finding] = []

    def applies_module(self, module: ModuleInfo) -> bool:
        """Whether this rule is active for ``module`` (default: everywhere)."""
        return True

    def check(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def modules(self) -> Sequence[ModuleInfo]:
        """The in-scope modules, in deterministic (path) order."""
        return [
            self.graph.by_path[p]
            for p in sorted(self.graph.by_path)
            if self.applies_module(self.graph.by_path[p])
        ]

    def report(self, module: ModuleInfo, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
            )
        )


def run_project_rules(
    graph: ProjectGraph, select: set[str] | None = None
) -> list[Finding]:
    """Run every registered (selected) whole-program rule over ``graph``."""
    findings: list[Finding] = []
    for rule_id in sorted(PROJECT_RULES):
        if select is not None and rule_id not in select:
            continue
        rule = PROJECT_RULES[rule_id](graph)
        rule.check()
        findings.extend(rule.findings)
    return findings
